// Package agilefpga is a simulation library reproducing the FPGA-based
// Agile Algorithm-On-Demand Co-Processor of Pradeep, Vinay, Burman and
// Kamakoti (DATE 2005). It assembles a full virtual PCI card — a
// partially reconfigurable FPGA fabric, a microcontroller running the
// paper's mini OS (Free Frame List, Frame Replacement Table, LRU frame
// replacement), a two-ended bitstream ROM with compressed configuration
// images, staging RAM, and a transaction-level 32-bit/33 MHz PCI bus —
// and executes any of a ten-function algorithm bank on demand, swapping
// functions in and out of the fabric exactly as the paper describes.
//
// Quick start:
//
//	cp, err := agilefpga.New(agilefpga.Config{})
//	if err != nil { ... }
//	if err := cp.InstallAll(); err != nil { ... }
//	res, err := cp.Call("aes128", plaintext)
//	fmt.Println(res.Latency, res.Hit, res.Output)
//
// All timing is virtual (cycle-accurate cost models per clock domain), so
// results are deterministic and independent of the machine running the
// simulation.
//
// Every CoProcessor method is safe for concurrent use (one lock per
// card), and NewCluster scales out to many cards behind a dispatcher
// with synchronous (Call), asynchronous (Submit/Wait) and bulk (Serve)
// entry points — see Cluster.
package agilefpga

import (
	"fmt"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
)

// Config selects the card's build options. The zero value is a sensible
// default: a 48-frame device, framediff compression, LRU replacement,
// scatter placement allowed.
type Config struct {
	// Rows and Cols size the fabric: Cols frames of Rows CLBs each.
	// Zero selects 32×48.
	Rows, Cols int
	// ROMBytes and RAMBytes size the on-card memories (defaults 512 KiB
	// and 64 KiB).
	ROMBytes, RAMBytes int
	// Codec picks the bitstream compression: "none", "rle", "lz77",
	// "huffman" or "framediff" (default).
	Codec string
	// Policy picks frame replacement: "lru" (default, the paper's),
	// "fifo", "lfu" or "random".
	Policy string
	// PolicySeed seeds the random policy.
	PolicySeed uint64
	// WindowBytes is the configuration module's decompression window
	// (default 256).
	WindowBytes int
	// ContiguousOnly forbids non-contiguous frame placement.
	ContiguousOnly bool
	// DiffReload enables the difference-based reconfiguration flow:
	// eviction leaves frame contents in place and a returning function
	// whose frames are provably untouched re-activates without any
	// reconfiguration.
	DiffReload bool
	// Prefetch enables configuration prefetching: the mini OS predicts
	// the next function and loads it during host idle time.
	Prefetch bool
	// DecodeCacheBytes bounds the decoded-frame cache: local RAM holding
	// recently decoded configuration images so a reload skips bitstream
	// decompression (the configuration port is still paid). Zero
	// disables the cache.
	DecodeCacheBytes int
	// SequentialConfig reverts cold loads to the additive timing model:
	// ROM streaming, window decompression, and configuration-port writes
	// charged back to back, with no card-side batch overlap. The default
	// (false) is the pipelined configuration model — while the port
	// clocks in window N, the decompressor produces N+1 and the ROM
	// streams N+2. Retained for A/B comparison (experiment E18).
	SequentialConfig bool
	// Metrics enables the telemetry registry: per-phase latency
	// histograms and behaviour counters, exported in Prometheus text
	// format (see CoProcessor.Metrics / Cluster.Metrics). Observation is
	// passive, so enabling it changes no virtual-time result.
	Metrics bool
}

// Function describes one member of the algorithm bank.
type Function struct {
	Name string
	ID   uint16
	// LUTs is the synthesis footprint; Frames its frame demand on the
	// default geometry.
	LUTs   int
	Frames int
	// BlockBytes is the natural input granule; inputs are zero-padded to
	// a whole number of blocks.
	BlockBytes int
	// InBus and OutBus are the on-card data bus widths in bytes.
	InBus, OutBus int
}

// ConvEncode runs the K=7 rate-1/2 convolutional encoder matching the
// bank's viterbi decoder (8-info-byte block framing). Hosts encode in
// software — it is cheap shift-register logic — and offload only the
// decoder.
func ConvEncode(info []byte) []byte { return algos.ConvEncode(info) }

// Functions lists the algorithm bank.
func Functions() []Function {
	out := make([]Function, 0, 10)
	for _, f := range algos.Bank() {
		out = append(out, Function{
			Name: f.Name(), ID: f.ID(), LUTs: f.LUTs,
			Frames:     fpga.DefaultGeometry.FramesForLUTs(f.LUTs),
			BlockBytes: f.BlockBytes, InBus: int(f.InBus), OutBus: int(f.OutBus),
		})
	}
	return out
}

// Result reports one co-processor call.
type Result struct {
	// Output is the function's result.
	Output []byte
	// Latency is the full round-trip virtual time, PCI included.
	Latency time.Duration
	// Hit reports whether the function was already configured.
	Hit bool
	// Phases breaks the latency down by pipeline stage ("pci", "rom",
	// "decompress", "configure", "datain", "exec", "dataout",
	// "overhead", "cache", "pipestall" — the last is time the pipelined
	// cold-load path stalled waiting on a slow decoder).
	Phases map[string]time.Duration
}

// Stats summarises card behaviour since construction (or ResetStats).
type Stats struct {
	Requests, Hits, Misses uint64
	Evictions              uint64
	FramesLoaded           uint64
	RawConfigBytes         uint64
	CompConfigBytes        uint64
	HitRate                float64
	// FramesSkipped counts frames revived by the difference-based flow.
	FramesSkipped uint64
	// Prefetches and PrefetchHits report the configuration prefetcher.
	Prefetches   uint64
	PrefetchHits uint64
	// DecompCacheHits and DecompCacheBytes report reloads served from
	// the decoded-frame cache and the decoded bytes they avoided
	// re-decompressing.
	DecompCacheHits  uint64
	DecompCacheBytes uint64
	// PipelinedLoads and PipeWindows count cold loads costed through the
	// pipelined configuration model and the decompression windows fed
	// through it; PipeStall and PipeOverlapSaved are the critical-path
	// bubble time and the virtual time the overlap hid versus charging
	// the same stage costs back to back.
	PipelinedLoads   uint64
	PipeWindows      uint64
	PipeStall        time.Duration
	PipeOverlapSaved time.Duration
	// ChainRuns, ChainStages and ChainHandoffBytes report on-fabric
	// function chaining: chained invocations served, stages they ran,
	// and intermediate bytes handed between stages through local RAM
	// instead of crossing PCI.
	ChainRuns         uint64
	ChainStages       uint64
	ChainHandoffBytes uint64
}

// BatchResult reports a pipelined batch of calls (see CallBatch).
type BatchResult struct {
	Outputs [][]byte
	// Latency is the batch completion time under double-buffered DMA.
	Latency time.Duration
	// SequentialLatency is the cost of the same items as one-at-a-time
	// synchronous calls.
	SequentialLatency time.Duration
	// OverlapSaved is the card time hidden by double-buffered input
	// staging: the data-input module stages item N+1 while the fabric
	// executes N. Zero under SequentialConfig.
	OverlapSaved time.Duration
	// Hits counts items served without reconfiguration.
	Hits int
}

// CoProcessor is a simulated agile algorithm-on-demand card.
type CoProcessor struct {
	inner *core.CoProcessor
}

// New assembles a card.
func New(cfg Config) (*CoProcessor, error) {
	var geom fpga.Geometry
	if cfg.Rows != 0 || cfg.Cols != 0 {
		geom = fpga.Geometry{Rows: cfg.Rows, Cols: cfg.Cols}
	}
	var reg *metrics.Registry
	if cfg.Metrics {
		reg = metrics.NewRegistry()
	}
	inner, err := core.New(core.Config{
		Geometry:         geom,
		ROMBytes:         cfg.ROMBytes,
		RAMBytes:         cfg.RAMBytes,
		WindowBytes:      cfg.WindowBytes,
		Codec:            cfg.Codec,
		Policy:           cfg.Policy,
		PolicySeed:       cfg.PolicySeed,
		NoScatter:        cfg.ContiguousOnly,
		DiffReload:       cfg.DiffReload,
		Prefetch:         cfg.Prefetch,
		DecodeCacheBytes: cfg.DecodeCacheBytes,
		SequentialConfig: cfg.SequentialConfig,
		Metrics:          reg,
	})
	if err != nil {
		return nil, err
	}
	return &CoProcessor{inner: inner}, nil
}

// Install provisions one bank function by name (synthesise → compress →
// download into the card's ROM).
func (cp *CoProcessor) Install(name string) error {
	f, err := algos.ByName(name)
	if err != nil {
		return err
	}
	_, err = cp.inner.Install(f)
	return err
}

// InstallAll provisions the entire algorithm bank.
func (cp *CoProcessor) InstallAll() error {
	_, err := cp.inner.InstallBank()
	return err
}

// resultOf converts a core call result to the public form.
func resultOf(r *core.CallResult) *Result {
	phases := make(map[string]time.Duration, sim.NumPhases)
	for p := 0; p < sim.NumPhases; p++ {
		if t := r.Breakdown.Get(sim.Phase(p)); t != 0 {
			phases[sim.Phase(p).String()] = t.Duration()
		}
	}
	return &Result{
		Output:  r.Output,
		Latency: r.Latency.Duration(),
		Hit:     r.Hit,
		Phases:  phases,
	}
}

// Call executes the named function on the card, configuring it on demand.
func (cp *CoProcessor) Call(name string, input []byte) (*Result, error) {
	r, err := cp.inner.Call(name, input)
	if err != nil {
		return nil, err
	}
	return resultOf(r), nil
}

// CallBatch executes the named function over every input through a
// double-buffered DMA pipeline: the PCI bus streams the next item while
// the card computes the current one. Outputs and card state match
// issuing the calls one by one; only the latency model differs.
func (cp *CoProcessor) CallBatch(name string, inputs [][]byte) (*BatchResult, error) {
	r, err := cp.inner.CallBatch(name, inputs)
	if err != nil {
		return nil, err
	}
	return &BatchResult{
		Outputs:           r.Outputs,
		Latency:           r.Latency.Duration(),
		SequentialLatency: r.SequentialLatency.Duration(),
		OverlapSaved:      r.OverlapSaved.Duration(),
		Hits:              r.Hits,
	}, nil
}

// RunHost executes the same function in host software (the offload
// baseline), returning the output and modelled host time.
func (cp *CoProcessor) RunHost(name string, input []byte) ([]byte, time.Duration, error) {
	out, t, err := cp.inner.RunHost(name, input)
	if err != nil {
		return nil, 0, err
	}
	return out, t.Duration(), nil
}

// Resident reports whether the named function currently occupies frames.
func (cp *CoProcessor) Resident(name string) (bool, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return false, err
	}
	return cp.inner.Resident(f.ID()), nil
}

// Evict removes the named function from the fabric if resident.
func (cp *CoProcessor) Evict(name string) (bool, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return false, err
	}
	return cp.inner.Evict(f.ID()), nil
}

// Utilization reports configured frames versus total.
func (cp *CoProcessor) Utilization() (configured, total int) {
	return cp.inner.Utilization()
}

// Stats summarises card behaviour.
func (cp *CoProcessor) Stats() Stats {
	st := cp.inner.Stats()
	hr := 0.0
	if st.Requests > 0 {
		hr = float64(st.Hits) / float64(st.Requests)
	}
	return Stats{
		Requests: st.Requests, Hits: st.Hits, Misses: st.Misses,
		Evictions: st.Evictions, FramesLoaded: st.FramesLoaded,
		RawConfigBytes: st.RawConfigBytes, CompConfigBytes: st.CompConfigBytes,
		HitRate:           hr,
		FramesSkipped:     st.FramesSkipped,
		Prefetches:        st.Prefetches,
		PrefetchHits:      st.PrefetchHits,
		DecompCacheHits:   st.DecompCacheHits,
		DecompCacheBytes:  st.DecompCacheBytes,
		PipelinedLoads:    st.PipelinedLoads,
		PipeWindows:       st.PipeWindows,
		PipeStall:         st.PipeStallTime.Duration(),
		PipeOverlapSaved:  st.PipeOverlapSaved.Duration(),
		ChainRuns:         st.ChainRuns,
		ChainStages:       st.ChainStages,
		ChainHandoffBytes: st.ChainHandoffBytes,
	}
}

// ResetStats zeroes the counters; residency is unaffected.
func (cp *CoProcessor) ResetStats() { cp.inner.ResetStats() }

// ScrubReport summarises one SEU-scrubbing pass (see Scrub).
type ScrubReport struct {
	FramesChecked  int
	FramesRepaired int
	Time           time.Duration
}

// Scrub reads every resident function's frames back, compares them with
// the ROM golden images, and rewrites any frame an upset corrupted — the
// standard defence of partially reconfigurable systems against radiation.
func (cp *CoProcessor) Scrub() (*ScrubReport, error) {
	rep, err := cp.inner.Controller().Scrub()
	if err != nil {
		return nil, err
	}
	return &ScrubReport{
		FramesChecked:  rep.FramesChecked,
		FramesRepaired: rep.FramesRepaired,
		Time:           rep.Time.Duration(),
	}, nil
}

// CheckInvariants verifies the mini-OS bookkeeping (used by tests and
// long-running examples).
func (cp *CoProcessor) CheckInvariants() error {
	return cp.inner.CheckInvariants()
}

// String identifies the card configuration.
func (cp *CoProcessor) String() string {
	return fmt.Sprintf("agile co-processor: %s, codec %s, policy %s",
		cp.inner.Controller().Fabric().Geometry(), cp.inner.Codec().Name(),
		cp.inner.Controller().PolicyName())
}
