package agilefpga

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.InstallAll(); err != nil {
		t.Fatal(err)
	}
	in := []byte("sixteen byte in!")
	res, err := cp.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	host, _, err := cp.RunHost("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, host) {
		t.Error("card and host disagree")
	}
	if res.Hit {
		t.Error("first call cannot hit")
	}
	if res.Latency <= 0 {
		t.Error("no latency")
	}
	if res.Phases["exec"] <= 0 || res.Phases["pci"] <= 0 {
		t.Errorf("phases incomplete: %v", res.Phases)
	}

	res2, err := cp.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit {
		t.Error("second call must hit")
	}
	st := cp.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.HitRate != 0.5 {
		t.Errorf("stats = %+v", st)
	}
	if err := cp.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFacadeFunctions(t *testing.T) {
	fns := Functions()
	if len(fns) != 16 {
		t.Fatalf("%d functions", len(fns))
	}
	for _, f := range fns {
		if f.Name == "" || f.Frames <= 0 || f.BlockBytes <= 0 {
			t.Errorf("degenerate function info %+v", f)
		}
	}
}

func TestFacadeResidencyControls(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Install("crc32"); err != nil {
		t.Fatal(err)
	}
	if r, _ := cp.Resident("crc32"); r {
		t.Error("resident before first call")
	}
	if _, err := cp.Call("crc32", []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if r, _ := cp.Resident("crc32"); !r {
		t.Error("not resident after call")
	}
	cfgd, total := cp.Utilization()
	if cfgd == 0 || total == 0 {
		t.Errorf("utilization %d/%d", cfgd, total)
	}
	if ok, _ := cp.Evict("crc32"); !ok {
		t.Error("evict failed")
	}
	if r, _ := cp.Resident("crc32"); r {
		t.Error("still resident after evict")
	}
	if _, err := cp.Resident("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := cp.Evict("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if err := cp.Install("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFacadeConfigKnobs(t *testing.T) {
	cp, err := New(Config{Rows: 16, Cols: 8, Codec: "rle", Policy: "fifo", ContiguousOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	s := cp.String()
	if !strings.Contains(s, "rle") || !strings.Contains(s, "fifo") {
		t.Errorf("String = %q", s)
	}
	if _, err := New(Config{Codec: "nope"}); err == nil {
		t.Error("bad codec accepted")
	}
	if _, err := New(Config{Rows: 1, Cols: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestFacadeBatchAndFeatures(t *testing.T) {
	cp, err := New(Config{DiffReload: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Install("tdes"); err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{[]byte("8bytes!!"), []byte("morebyte"), []byte("lastone!")}
	batch, err := cp.CallBatch("tdes", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Outputs) != 3 || batch.Hits != 2 {
		t.Errorf("batch = %+v", batch)
	}
	if batch.Latency > batch.SequentialLatency {
		t.Error("batching slower than sequential")
	}
	// Exercise the diff flow through the facade.
	if _, err := cp.Evict("tdes"); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Call("tdes", inputs[0]); err != nil {
		t.Fatal(err)
	}
	if cp.Stats().FramesSkipped == 0 {
		t.Error("diff reload inert through the facade")
	}
	if _, err := cp.CallBatch("nope", inputs); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFacadeResetStats(t *testing.T) {
	cp, _ := New(Config{})
	_ = cp.Install("gfmul8")
	if _, err := cp.Call("gfmul8", []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	cp.ResetStats()
	if cp.Stats().Requests != 0 {
		t.Error("reset failed")
	}
}

// TestFacadeCluster drives the public cluster surface: sync calls,
// async Submit/Wait, Serve over a mixed job list, the decode-cache
// stats, and error paths for unknown function names.
func TestFacadeCluster(t *testing.T) {
	cl, err := NewCluster(2, ModeAffinity, Config{
		Rows: 32, Cols: 40, DecodeCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Cards() != 2 || cl.Mode() != ModeAffinity {
		t.Fatalf("cards=%d mode=%q", cl.Cards(), cl.Mode())
	}

	in := []byte("0123456789abcdef")
	res, card, err := cl.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	if card < 0 || card > 1 || len(res.Output) == 0 {
		t.Fatalf("card=%d output=%d bytes", card, len(res.Output))
	}
	if _, _, err := cl.Call("nope", in); err == nil {
		t.Error("unknown function accepted by Call")
	}

	p := cl.Submit("crc32", []byte{1, 2, 3, 4})
	if _, _, err := p.Wait(); err != nil {
		t.Fatalf("async crc32: %v", err)
	}
	if _, _, err := cl.Submit("nope", in).Wait(); err == nil {
		t.Error("unknown function accepted by Submit")
	}

	jobs := make([]Job, 40)
	names := []string{"aes128", "sha256", "crc32", "des"}
	for i := range jobs {
		jobs[i] = Job{Function: names[i%len(names)], Input: in}
	}
	sr, err := cl.Serve(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range sr.Outputs {
		if len(out) == 0 {
			t.Fatalf("job %d returned no output", i)
		}
	}
	if _, err := cl.Serve([]Job{{Function: "nope"}}, 1); err == nil {
		t.Error("unknown function accepted by Serve")
	}

	st := cl.Stats()
	if st.Requests < uint64(len(jobs))+2 {
		t.Errorf("requests=%d", st.Requests)
	}
	if len(st.PerCardRequests) != 2 {
		t.Errorf("per-card stats for %d cards", len(st.PerCardRequests))
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFacadeDecodeCacheStats checks that the decoded-frame cache is
// reachable and reported through the single-card facade.
func TestFacadeDecodeCacheStats(t *testing.T) {
	cp, err := New(Config{DecodeCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Install("aes128"); err != nil {
		t.Fatal(err)
	}
	in := []byte("0123456789abcdef")
	if _, err := cp.Call("aes128", in); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Evict("aes128"); err != nil {
		t.Fatal(err)
	}
	res, err := cp.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Phases["decompress"]; d != 0 {
		t.Errorf("cached reload spent %v decompressing", d)
	}
	if res.Phases["cache"] == 0 {
		t.Error("cached reload reported no cache phase")
	}
	st := cp.Stats()
	if st.DecompCacheHits != 1 || st.DecompCacheBytes == 0 {
		t.Errorf("cache stats: hits=%d bytes=%d", st.DecompCacheHits, st.DecompCacheBytes)
	}
}
