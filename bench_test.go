package agilefpga

// One benchmark per experiment table/series (E1–E8, DESIGN.md §6) plus
// micro-benchmarks of the hot paths. The experiment benchmarks execute
// the same runners as cmd/agilebench at reduced scale and surface their
// headline numbers through b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates every result the reproduction reports in EXPERIMENTS.md.

import (
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/compress"
	"agilefpga/internal/core"
	"agilefpga/internal/exp"
	"agilefpga/internal/fpga"
)

func BenchmarkE1_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE1()
		if err != nil {
			b.Fatal(err)
		}
		if r.Verified != r.Total {
			b.Fatalf("verified %d/%d", r.Verified, r.Total)
		}
	}
}

func BenchmarkE2_Compression(b *testing.B) {
	var last *exp.E2Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE2()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Ratio["framediff"], "framediff-ratio")
	b.ReportMetric(last.Ratio["lz77"], "lz77-ratio")
}

func BenchmarkE3_Replacement(b *testing.B) {
	var last *exp.E3Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE3(400)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate["zipf"]["lru"], "zipf-lru-hitrate")
	b.ReportMetric(last.HitRate["zipf"]["opt"], "zipf-opt-hitrate")
}

func BenchmarkE4_Placement(b *testing.B) {
	var last *exp.E4Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE4(300)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Evictions["contiguous"]), "contig-evictions")
	b.ReportMetric(float64(last.Evictions["scatter"]), "scatter-evictions")
}

func BenchmarkE5_Offload(b *testing.B) {
	var last *exp.E5Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE5(8 * 1024)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.KernelSpeedup["modexp64"], "modexp-kernel-x")
	b.ReportMetric(last.E2ESpeedup["modexp64"], "modexp-e2e-x")
	b.ReportMetric(last.E2ESpeedup["aes128"], "aes-e2e-x")
}

func BenchmarkE6_Crossover(b *testing.B) {
	var last *exp.E6Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE6(50_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.HotCrossover["modexp64"]), "modexp-crossover-B")
}

func BenchmarkE7_Window(b *testing.B) {
	var last *exp.E7Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE7()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ConfigPath[exp.E7Windows[0]].Microseconds(), "win16-us")
	b.ReportMetric(last.ConfigPath[exp.E7Windows[2]].Microseconds(), "win256-us")
}

func BenchmarkE8_ROMCapacity(b *testing.B) {
	var last *exp.E8Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE8()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	size := exp.E8ROMSizes[len(exp.E8ROMSizes)-1]
	b.ReportMetric(float64(last.Capacity[size]["none"]), "1MiB-none-fns")
	b.ReportMetric(float64(last.Capacity[size]["framediff"]), "1MiB-framediff-fns")
}

func BenchmarkE9_DiffReload(b *testing.B) {
	var last *exp.E9Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE9()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.FullReload["viterbi"])/float64(last.DiffReload["viterbi"]), "viterbi-saving-x")
}

func BenchmarkE10_Prefetch(b *testing.B) {
	var last *exp.E10Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE10(400)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate["cyclic"]["on"], "cyclic-prefetch-hitrate")
	b.ReportMetric(last.HitRate["cyclic"]["off"], "cyclic-base-hitrate")
}

func BenchmarkE11_Batching(b *testing.B) {
	var last *exp.E11Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE11(16, 4096)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.BatchSpeedup["sha256"], "sha256-batch-x")
	b.ReportMetric(last.SeqSpeedup["sha256"], "sha256-seq-x")
}

func BenchmarkE12_Scaling(b *testing.B) {
	var last *exp.E12Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE12(400)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate[exp.E12Cols[0]], "smallest-hitrate")
	b.ReportMetric(last.HitRate[exp.E12Cols[len(exp.E12Cols)-1]], "largest-hitrate")
}

func BenchmarkE13_Scheduling(b *testing.B) {
	var last *exp.E13Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE13(300)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate["fifo"], "fifo-hitrate")
	b.ReportMetric(last.HitRate["sticky"], "sticky-hitrate")
	b.ReportMetric(float64(last.MaxDisplacement["window"]), "window-overtaking")
}

func BenchmarkE14_Reliability(b *testing.B) {
	var last *exp.E14Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE14(300, 10)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.VulnerableFrac[0], "never-scrub-vuln")
	b.ReportMetric(last.VulnerableFrac[5], "scrub5-vuln")
}

func BenchmarkE15_Cluster(b *testing.B) {
	var last *exp.E15Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE15(300)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRate["1/replicate"], "1card-hitrate")
	b.ReportMetric(last.HitRate["4/partition"], "4card-partition-hitrate")
}

// BenchmarkE18_PipelinedColdLoad compares the additive sequential
// configuration model against the pipelined one (DESIGN §12) on
// whole-bank cold loads. The acceptance bar is framediff ≥ 1.4×.
func BenchmarkE18_PipelinedColdLoad(b *testing.B) {
	var last *exp.E18Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE18()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup["framediff"], "framediff-speedup")
	b.ReportMetric(last.Speedup["huffman"], "huffman-speedup")
	b.ReportMetric(last.Speedup["none"], "none-speedup")
	if last.Speedup["framediff"] < 1.4 {
		b.Fatalf("framediff pipelined speedup %.2fx, want >= 1.4x", last.Speedup["framediff"])
	}
}

// BenchmarkE20_Chaining compares on-fabric function chaining (DESIGN
// §15) against per-stage staged calls, warm. The acceptance bar: the
// chained batch beats the two-pass staged CallBatch ceiling and the
// per-item chain beats the staged sum for both reference chains.
func BenchmarkE20_Chaining(b *testing.B) {
	var last *exp.E20Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE20(16, 2048)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if !last.Identical {
		b.Fatal("chained outputs diverged from staged outputs")
	}
	for _, chain := range []string{"sha256->aes128", "fir16->fft64"} {
		itemX := float64(last.StagedLatency[chain]) / float64(last.ChainLatency[chain])
		batchX := float64(last.StagedBatch[chain]) / float64(last.ChainBatch[chain])
		b.ReportMetric(itemX, chain+"-x")
		b.ReportMetric(batchX, chain+"-batch-x")
		if itemX <= 1 || batchX <= 1 {
			b.Fatalf("%s: chaining did not win (item %.2fx, batch %.2fx)", chain, itemX, batchX)
		}
	}
}

// BenchmarkE11_ClusterThroughput compares the serial replicate
// dispatcher against the async serving layer (4 cards, 4 submitters,
// affinity routing + decoded-frame cache) on the same mixed Zipf
// workload, in wall-clock ops/sec. The acceptance bar is speedup ≥ 2×.
func BenchmarkE11_ClusterThroughput(b *testing.B) {
	var last *exp.E16Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunE16(1000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.SerialOpsPerSec, "serial-ops/sec")
	b.ReportMetric(last.ConcurrentOpsPerSec, "concurrent-ops/sec")
	b.ReportMetric(last.Speedup, "speedup")
	if last.Speedup < 2 {
		b.Fatalf("concurrent speedup %.2fx, want >= 2x", last.Speedup)
	}
}

// --- Micro-benchmarks: hot paths of the simulator itself ---

func benchInput(n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte(i*31 + 7)
	}
	return in
}

func BenchmarkHotCall(b *testing.B) {
	cp, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cp.Install(algos.AES128()); err != nil {
		b.Fatal(err)
	}
	in := benchInput(4096)
	if _, err := cp.CallID(algos.IDAES128, in); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.CallID(algos.IDAES128, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdLoad(b *testing.B) {
	cp, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cp.Install(algos.SHA256()); err != nil {
		b.Fatal(err)
	}
	in := benchInput(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Controller().Evict(algos.IDSHA256)
		if _, err := cp.CallID(algos.IDSHA256, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	g := fpga.DefaultGeometry
	f := algos.Bitonic()
	codec := mustCodec(b, "none")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.BuildImage(g, f, codec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func mustCodec(b *testing.B, name string) compress.Codec {
	b.Helper()
	c, err := compress.New(name, fpga.DefaultGeometry.FrameBytes())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchCodec(b *testing.B, name string) {
	g := fpga.DefaultGeometry
	codec := mustCodec(b, name)
	_, blob, err := core.BuildImage(g, algos.FFT(), codec, 1)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := codec.Decompress(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressRLE(b *testing.B)       { benchCodec(b, "rle") }
func BenchmarkDecompressLZ77(b *testing.B)      { benchCodec(b, "lz77") }
func BenchmarkDecompressHuffman(b *testing.B)   { benchCodec(b, "huffman") }
func BenchmarkDecompressFrameDiff(b *testing.B) { benchCodec(b, "framediff") }

func benchCore(b *testing.B, f *algos.Function, n int) {
	in := benchInput(n)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Exec(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreAES(b *testing.B)     { benchCore(b, algos.AES128(), 4096) }
func BenchmarkCoreDES(b *testing.B)     { benchCore(b, algos.DES(), 4096) }
func BenchmarkCoreSHA256(b *testing.B)  { benchCore(b, algos.SHA256(), 4096) }
func BenchmarkCoreFFT(b *testing.B)     { benchCore(b, algos.FFT(), 4096) }
func BenchmarkCoreBitonic(b *testing.B) { benchCore(b, algos.Bitonic(), 4096) }
func BenchmarkCoreModExp(b *testing.B)  { benchCore(b, algos.ModExp(), 24*128) }
