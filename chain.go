package agilefpga

import (
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// On-fabric function chaining: several bank functions stay resident on
// one card at once and run as a dataflow pipeline, each stage's output
// feeding the next through the card's local RAM. The input crosses PCI
// once on the way in and the final output once on the way out — a
// k-stage pipeline pays 2 PCI transfers instead of 2k — and the output
// is byte-identical to feeding the stages as separate Calls.

// ChainStage reports one stage of a chained call.
type ChainStage struct {
	// Function is the stage's bank function name.
	Function string
	// Hit reports whether the stage was already configured.
	Hit bool
	// Phases is the stage's share of the chain's card time (no PCI).
	Phases map[string]time.Duration
}

// ChainResult reports one chained call.
type ChainResult struct {
	// Output is the final stage's output.
	Output []byte
	// Latency is the full round-trip virtual time, PCI included.
	Latency time.Duration
	// Hits counts stages that were already configured.
	Hits int
	// Phases breaks the whole round trip down; the per-stage shares are
	// in Stages, with PCI charged once at the chain level.
	Phases map[string]time.Duration
	// Stages carries the per-stage attribution, in chain order.
	Stages []ChainStage
}

// phasesOf renders a breakdown as the public phase map.
func phasesOf(br sim.Breakdown) map[string]time.Duration {
	phases := make(map[string]time.Duration, sim.NumPhases)
	for p := 0; p < sim.NumPhases; p++ {
		if t := br.Get(sim.Phase(p)); t != 0 {
			phases[sim.Phase(p).String()] = t.Duration()
		}
	}
	return phases
}

// functionName maps a bank function id to its name.
func functionName(id uint16) string {
	for _, f := range algos.Bank() {
		if f.ID() == id {
			return f.Name()
		}
	}
	return "unknown"
}

// chainResultOf converts a core chain result to the public form.
func chainResultOf(r *core.ChainResult) *ChainResult {
	out := &ChainResult{
		Output:  r.Output,
		Latency: r.Latency.Duration(),
		Hits:    r.Hits,
		Phases:  phasesOf(r.Breakdown),
		Stages:  make([]ChainStage, len(r.Stages)),
	}
	for i, st := range r.Stages {
		out.Stages[i] = ChainStage{
			Function: functionName(st.Fn),
			Hit:      st.Hit,
			Phases:   phasesOf(st.Breakdown),
		}
	}
	return out
}

// CallChain executes the named functions as one on-card dataflow chain
// over input: stage 0 consumes input, every later stage consumes its
// predecessor's output from local RAM, and only the final output
// returns to the host.
func (cp *CoProcessor) CallChain(names []string, input []byte) (*ChainResult, error) {
	r, err := cp.inner.CallChain(names, input)
	if err != nil {
		return nil, err
	}
	return chainResultOf(r), nil
}

// CallChainBatch executes the chain over every input with inter-item
// overlap: stage k+1 of item N runs while stage k processes item N+1,
// so a warm chain's throughput approaches its slowest stage instead of
// the sum of all stages. Outputs match CallChain item by item; only the
// latency model differs.
func (cp *CoProcessor) CallChainBatch(names []string, inputs [][]byte) (*BatchResult, error) {
	r, err := cp.inner.CallChainBatch(names, inputs)
	if err != nil {
		return nil, err
	}
	return &BatchResult{
		Outputs:           r.Outputs,
		Latency:           r.Latency.Duration(),
		SequentialLatency: r.SequentialLatency.Duration(),
		OverlapSaved:      r.OverlapSaved.Duration(),
		Hits:              r.Hits,
	}, nil
}

// lookupStages resolves a chain's function names to bank ids.
func lookupStages(names []string) ([]uint16, error) {
	fns := make([]uint16, len(names))
	for i, name := range names {
		f, err := algos.ByName(name)
		if err != nil {
			return nil, err
		}
		fns[i] = f.ID()
	}
	return fns, nil
}

// CallChain routes one chained call through the dispatcher as a single
// unit — one routing decision, one card-queue slot, all stages
// co-resident on the serving card. In affinity mode the pin is keyed on
// the whole chain, so repeated chains land where their stages are warm.
func (cl *Cluster) CallChain(names []string, input []byte) (*ChainResult, int, error) {
	fns, err := lookupStages(names)
	if err != nil {
		return nil, -1, err
	}
	res, card, err := cl.inner.CallChain(fns, input)
	if err != nil {
		return nil, card, err
	}
	return chainResultOf(res), card, nil
}

// SubmitChain enqueues one chained call asynchronously; Wait collects
// the final output. Consecutive same-chain submissions on one card are
// coalesced into the pipelined chain-batch path, overlapping stages
// across items.
func (cl *Cluster) SubmitChain(names []string, input []byte) *Pending {
	fns, err := lookupStages(names)
	if err != nil {
		return &Pending{inner: cluster.Failed(err)}
	}
	return &Pending{inner: cl.inner.SubmitChain(fns, input)}
}
