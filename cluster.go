package agilefpga

import (
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sched"
)

// Dispatch modes for Cluster.
const (
	// ModeReplicate installs the whole bank on every card and routes
	// round-robin.
	ModeReplicate = cluster.ModeReplicate
	// ModePartition gives each function one home card.
	ModePartition = cluster.ModePartition
	// ModeAffinity pins each function to the least-loaded card on first
	// use and routes it there ever after.
	ModeAffinity = cluster.ModeAffinity
)

// Job is one request for Cluster.Serve: a bank function by name and its
// input.
type Job struct {
	Function string
	Input    []byte
}

// ServeResult reports a drained job set.
type ServeResult struct {
	// Outputs holds each job's output, in job order.
	Outputs [][]byte
	// Hits counts jobs served without reconfiguration.
	Hits int
	// Elapsed is wall-clock drain time (host-side, not virtual).
	Elapsed time.Duration
}

// Pending is an in-flight asynchronous call (see Cluster.Submit).
type Pending struct {
	inner *cluster.Pending
}

// Wait blocks until the call completes, returning the result and the
// serving card.
func (p *Pending) Wait() (*Result, int, error) {
	res, card, err := p.inner.Wait()
	if err != nil {
		return nil, card, err
	}
	return resultOf(res), card, nil
}

// Cluster is a set of simulated cards behind one dispatcher, with the
// whole algorithm bank provisioned according to the mode. All methods
// are safe for concurrent use; cards execute in parallel (one lock per
// card) while each card's virtual timing stays deterministic.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds a cluster of n cards sharing one Config.
func NewCluster(n int, mode string, cfg Config) (*Cluster, error) {
	var geom fpga.Geometry
	if cfg.Rows != 0 || cfg.Cols != 0 {
		geom = fpga.Geometry{Rows: cfg.Rows, Cols: cfg.Cols}
	}
	var reg *metrics.Registry
	if cfg.Metrics {
		reg = metrics.NewRegistry()
	}
	inner, err := cluster.New(n, mode, core.Config{
		Geometry:         geom,
		ROMBytes:         cfg.ROMBytes,
		RAMBytes:         cfg.RAMBytes,
		WindowBytes:      cfg.WindowBytes,
		Codec:            cfg.Codec,
		Policy:           cfg.Policy,
		PolicySeed:       cfg.PolicySeed,
		NoScatter:        cfg.ContiguousOnly,
		DiffReload:       cfg.DiffReload,
		Prefetch:         cfg.Prefetch,
		DecodeCacheBytes: cfg.DecodeCacheBytes,
		Metrics:          reg,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Cards reports the cluster size.
func (cl *Cluster) Cards() int { return cl.inner.Cards() }

// Mode reports the dispatch mode.
func (cl *Cluster) Mode() string { return cl.inner.Mode() }

// Call executes the named function synchronously on whichever card the
// dispatcher routes it to, returning the result and the card index.
func (cl *Cluster) Call(name string, input []byte) (*Result, int, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return nil, -1, err
	}
	res, card, err := cl.inner.Call(f.ID(), input)
	if err != nil {
		return nil, card, err
	}
	return resultOf(res), card, nil
}

// Submit enqueues the named function asynchronously on its routed
// card's bounded queue and returns immediately; Wait collects the
// result. Consecutive same-function jobs on one card are coalesced into
// the pipelined batch path.
func (cl *Cluster) Submit(name string, input []byte) *Pending {
	f, err := algos.ByName(name)
	if err != nil {
		return &Pending{inner: cluster.Failed(err)}
	}
	return &Pending{inner: cl.inner.Submit(f.ID(), input)}
}

// Serve drains jobs through the async serving layer with the given
// number of submitter goroutines, returning outputs in job order.
func (cl *Cluster) Serve(jobs []Job, workers int) (*ServeResult, error) {
	inner := make([]sched.Job, len(jobs))
	for i, j := range jobs {
		f, err := algos.ByName(j.Function)
		if err != nil {
			return nil, err
		}
		inner[i] = sched.Job{Fn: f.ID(), Input: j.Input, Seq: i}
	}
	res, err := cl.inner.Serve(inner, workers)
	if err != nil {
		return nil, err
	}
	return &ServeResult{Outputs: res.Outputs, Hits: res.Hits, Elapsed: res.Elapsed}, nil
}

// ClusterStats aggregates the cards' behaviour.
type ClusterStats struct {
	Stats
	// PerCardRequests exposes the load balance the dispatcher achieved.
	PerCardRequests []uint64
}

// Stats aggregates over all cards.
func (cl *Cluster) Stats() ClusterStats {
	st := cl.inner.Stats()
	return ClusterStats{
		Stats: Stats{
			Requests: st.Total.Requests, Hits: st.Total.Hits, Misses: st.Total.Misses,
			Evictions: st.Total.Evictions, FramesLoaded: st.Total.FramesLoaded,
			RawConfigBytes: st.Total.RawConfigBytes, CompConfigBytes: st.Total.CompConfigBytes,
			HitRate:           st.HitRate,
			FramesSkipped:     st.Total.FramesSkipped,
			Prefetches:        st.Total.Prefetches,
			PrefetchHits:      st.Total.PrefetchHits,
			DecompCacheHits:   st.Total.DecompCacheHits,
			DecompCacheBytes:  st.Total.DecompCacheBytes,
			PipelinedLoads:    st.Total.PipelinedLoads,
			PipeWindows:       st.Total.PipeWindows,
			PipeStall:         st.Total.PipeStallTime.Duration(),
			PipeOverlapSaved:  st.Total.PipeOverlapSaved.Duration(),
			ChainRuns:         st.Total.ChainRuns,
			ChainStages:       st.Total.ChainStages,
			ChainHandoffBytes: st.Total.ChainHandoffBytes,
		},
		PerCardRequests: st.PerCardRequests,
	}
}

// Close shuts the serving layer down, draining queued jobs. Synchronous
// Call keeps working afterwards; Submit must not race Close.
func (cl *Cluster) Close() { cl.inner.Close() }

// CheckInvariants verifies every card's mini-OS bookkeeping.
func (cl *Cluster) CheckInvariants() error { return cl.inner.CheckInvariants() }
