// agilebench regenerates the experiment tables of EXPERIMENTS.md: every
// table and series the paper's evaluation implies plus the extension
// studies (DESIGN.md §6, E1–E13).
//
// Usage:
//
//	agilebench -exp e3             # one experiment
//	agilebench -exp all            # the full suite (default)
//	agilebench -exp e5 -format csv # machine-readable output
//	agilebench -list               # catalogue
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"agilefpga/internal/exp"
)

func main() {
	expID := flag.String("exp", "all", "experiment id (e1..e13) or 'all'")
	format := flag.String("format", "text", "output format: text|csv")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e exp.Experiment) {
		tab, err := e.Run()
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Println(tab.CSV())
		case "text":
			fmt.Println(tab.String())
		default:
			log.Fatalf("unknown format %q", *format)
		}
	}

	if *expID == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e, err := exp.ByID(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "known experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(os.Stderr, "  %s  %s\n", e.ID, e.Title)
		}
		os.Exit(2)
	}
	run(e)
}
