// agilebench regenerates the experiment tables of EXPERIMENTS.md: every
// table and series the paper's evaluation implies plus the extension
// studies (DESIGN.md §6, E1–E20 and E23).
//
// Usage:
//
//	agilebench -exp e3             # one experiment
//	agilebench -exp all            # the full suite (default)
//	agilebench -exp e5 -format csv # machine-readable output
//	agilebench -json               # write BENCH.json for perf tracking
//	agilebench -list               # catalogue
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"agilefpga/internal/exp"
)

// benchRecord is one experiment's machine-readable result.
type benchRecord struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	NsPerRun int64  `json:"ns_per_run"`
	CSV      string `json:"csv"`
}

// fleetPoint is one fleet size's outcome in the E19 scaling sweep.
type fleetPoint struct {
	Nodes     int     `json:"nodes"`
	OpsPerSec float64 `json:"ops_per_sec"`
	HitRate   float64 `json:"hit_rate"`
	HopP50Ns  int64   `json:"hop_p50_ns"`
	HopP99Ns  int64   `json:"hop_p99_ns"`
	Spills    uint64  `json:"spills"`
}

// phaseLatency is one pipeline phase's virtual-latency distribution,
// from the telemetry histograms of an instrumented reference run
// (framediff codec, Zipf stream). Values are virtual nanoseconds.
type phaseLatency struct {
	Phase string `json:"phase"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	Count uint64 `json:"count"`
}

// chainPoint is one reference chain's outcome in the E20 comparison:
// warm per-item virtual latency and PCI share for the staged (one Call
// per stage) and chained (one CallChain) arms, plus the whole-set batch
// completion both ways. Durations are virtual nanoseconds.
type chainPoint struct {
	Chain         string  `json:"chain"`
	StagedItemNs  int64   `json:"staged_item_ns"`
	ChainItemNs   int64   `json:"chain_item_ns"`
	ItemSpeedup   float64 `json:"item_speedup"`
	StagedPCINs   int64   `json:"staged_pci_ns"`
	ChainPCINs    int64   `json:"chain_pci_ns"`
	StagedBatchNs int64   `json:"staged_batch_ns"`
	ChainBatchNs  int64   `json:"chain_batch_ns"`
	BatchSpeedup  float64 `json:"batch_speedup"`
}

// benchFile is the schema of BENCH.json: per-experiment wall-clock cost
// plus the headline throughput numbers, so the perf trajectory is
// trackable across changes.
type benchFile struct {
	Experiments  []benchRecord  `json:"experiments"`
	PhaseLatency []phaseLatency `json:"phase_latency"`
	Throughput   struct {
		Requests               int     `json:"requests"`
		SerialOpsPerSec        float64 `json:"serial_ops_per_sec"`
		ConcurrentOpsPerSec    float64 `json:"concurrent_ops_per_sec"`
		Speedup                float64 `json:"speedup"`
		SerialHitRate          float64 `json:"serial_hit_rate"`
		ConcurrentHitRate      float64 `json:"concurrent_hit_rate"`
		SerialFramesLoaded     uint64  `json:"serial_frames_loaded"`
		ConcurrentFramesLoaded uint64  `json:"concurrent_frames_loaded"`
		DecompCacheHits        uint64  `json:"decode_cache_hits"`
	} `json:"throughput"`
	NetPath struct {
		Requests          int     `json:"requests"`
		Concurrency       int     `json:"concurrency"`
		BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
		MuxBatchOpsPerSec float64 `json:"mux_batch_ops_per_sec"`
		Speedup           float64 `json:"speedup"`
		BatchWindows      uint64  `json:"batch_windows"`
		BatchedJobs       uint64  `json:"batched_jobs"`
	} `json:"net_path"`
	Chain struct {
		Items     int          `json:"items"`
		ItemBytes int          `json:"item_bytes"`
		Chains    []chainPoint `json:"chains"`
	} `json:"chain"`
	Fleet struct {
		Requests           int          `json:"requests"`
		Concurrency        int          `json:"concurrency"`
		Scaling            []fleetPoint `json:"scaling"`
		KillNodes          int          `json:"kill_nodes"`
		KillRequests       int          `json:"kill_requests"`
		KillFailures       int          `json:"kill_failures"`
		KillEjections      uint64       `json:"kill_ejections"`
		KillReinstatements uint64       `json:"kill_reinstatements"`
	} `json:"fleet"`
}

// writeJSON runs the selected experiments, timing each, and writes
// BENCH.json next to the working directory.
func writeJSON(exps []exp.Experiment, path string) error {
	var out benchFile
	for _, e := range exps {
		start := time.Now() //lint:wallclock BENCH.json records real experiment runtime
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		out.Experiments = append(out.Experiments, benchRecord{
			ID:       e.ID,
			Title:    e.Title,
			NsPerRun: time.Since(start).Nanoseconds(), //lint:wallclock BENCH.json records real experiment runtime
			CSV:      tab.CSV(),
		})
	}
	phases, _, err := exp.PhaseProfile(1500, "framediff")
	if err != nil {
		return fmt.Errorf("phase profile: %w", err)
	}
	for _, pq := range phases {
		out.PhaseLatency = append(out.PhaseLatency, phaseLatency{
			Phase: pq.Phase,
			P50Ns: pq.P50.Duration().Nanoseconds(),
			P95Ns: pq.P95.Duration().Nanoseconds(),
			P99Ns: pq.P99.Duration().Nanoseconds(),
			Count: pq.Count,
		})
	}
	r, err := exp.RunE16(2000)
	if err != nil {
		return fmt.Errorf("e16 throughput: %w", err)
	}
	out.Throughput.Requests = r.Requests
	out.Throughput.SerialOpsPerSec = r.SerialOpsPerSec
	out.Throughput.ConcurrentOpsPerSec = r.ConcurrentOpsPerSec
	out.Throughput.Speedup = r.Speedup
	out.Throughput.SerialHitRate = r.SerialHitRate
	out.Throughput.ConcurrentHitRate = r.ConcurrentHitRate
	out.Throughput.SerialFramesLoaded = r.SerialFramesLoaded
	out.Throughput.ConcurrentFramesLoaded = r.ConcurrentFramesLoaded
	out.Throughput.DecompCacheHits = r.DecompCacheHits
	np, err := exp.RunE23(0, 0)
	if err != nil {
		return fmt.Errorf("e23 net path: %w", err)
	}
	out.NetPath.Requests = np.Requests
	out.NetPath.Concurrency = np.Concurrency
	out.NetPath.BaselineOpsPerSec = np.BaselineOpsPerSec
	out.NetPath.MuxBatchOpsPerSec = np.MuxBatchOpsPerSec
	out.NetPath.Speedup = np.Speedup
	out.NetPath.BatchWindows = np.BatchWindows
	out.NetPath.BatchedJobs = np.BatchedJobs
	const chainItems, chainItemBytes = 16, 2048
	ch, err := exp.RunE20(chainItems, chainItemBytes)
	if err != nil {
		return fmt.Errorf("e20 chaining: %w", err)
	}
	out.Chain.Items = chainItems
	out.Chain.ItemBytes = chainItemBytes
	labels := make([]string, 0, len(ch.StagedLatency))
	for label := range ch.StagedLatency {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		out.Chain.Chains = append(out.Chain.Chains, chainPoint{
			Chain:         label,
			StagedItemNs:  ch.StagedLatency[label].Duration().Nanoseconds(),
			ChainItemNs:   ch.ChainLatency[label].Duration().Nanoseconds(),
			ItemSpeedup:   float64(ch.StagedLatency[label]) / float64(ch.ChainLatency[label]),
			StagedPCINs:   ch.StagedPCI[label].Duration().Nanoseconds(),
			ChainPCINs:    ch.ChainPCI[label].Duration().Nanoseconds(),
			StagedBatchNs: ch.StagedBatch[label].Duration().Nanoseconds(),
			ChainBatchNs:  ch.ChainBatch[label].Duration().Nanoseconds(),
			BatchSpeedup:  float64(ch.StagedBatch[label]) / float64(ch.ChainBatch[label]),
		})
	}
	fl, err := exp.RunE19(0, 0, nil)
	if err != nil {
		return fmt.Errorf("e19 fleet: %w", err)
	}
	out.Fleet.Requests = fl.Requests
	out.Fleet.Concurrency = fl.Concurrency
	for _, n := range fl.Nodes {
		out.Fleet.Scaling = append(out.Fleet.Scaling, fleetPoint{
			Nodes:     n,
			OpsPerSec: fl.OpsPerSec[n],
			HitRate:   fl.HitRate[n],
			HopP50Ns:  fl.HopP50[n].Nanoseconds(),
			HopP99Ns:  fl.HopP99[n].Nanoseconds(),
			Spills:    fl.Spills[n],
		})
	}
	out.Fleet.KillNodes = fl.KillNodes
	out.Fleet.KillRequests = fl.KillRequests
	out.Fleet.KillFailures = fl.KillFailures
	out.Fleet.KillEjections = fl.KillEjections
	out.Fleet.KillReinstatements = fl.KillReinstatements
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	expID := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	format := flag.String("format", "text", "output format: text|csv")
	jsonOut := flag.Bool("json", false, "write machine-readable results to BENCH.json")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := exp.All()
	if *expID != "all" {
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "known experiments:")
			for _, e := range exp.All() {
				fmt.Fprintf(os.Stderr, "  %s  %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		selected = []exp.Experiment{e}
	}

	if *jsonOut {
		if err := writeJSON(selected, "BENCH.json"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote BENCH.json")
		return
	}

	for _, e := range selected {
		tab, err := e.Run()
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Println(tab.CSV())
		case "text":
			fmt.Println(tab.String())
		default:
			log.Fatalf("unknown format %q", *format)
		}
	}
}
