// Command agilelint is the multichecker for this repository's
// project-specific static-analysis suite (internal/analysis): it
// machine-checks the simulator's core invariants — virtual-time
// purity, lock discipline, sentinel-error matching, no blocking
// channel operations under a mutex, passive metrics, pooled-frame
// release, span end, context propagation, atomic/plain access
// separation, and global lock ordering — on every commit. Stale
// //lint: directives (suppressions that suppress nothing) are
// reported as findings too.
//
// Standalone mode resolves package patterns with the go tool:
//
//	agilelint ./...
//	agilelint -list
//
// Diagnostics print as file:line:col: message [analyzer]; the exit
// status is 1 when any invariant is violated.
//
// agilelint also speaks the `go vet -vettool` protocol: invoked by the
// go command with a *.cfg file it type-checks the unit from the export
// data the build provided and reports diagnostics on stderr (exit 2),
// so `go vet -vettool=$(which agilelint) ./...` runs the suite under
// vet's caching and package discovery.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agilefpga/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// `go vet` probes the tool's version for its action cache before
	// handing it units of work.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			// Bumped whenever the analyzer set or semantics change, so
			// vet's action cache re-runs every unit.
			fmt.Printf("agilelint version v2.0.0\n")
			return
		}
		// The go command also asks which analyzer flags the tool exposes
		// (JSON array); this suite has none.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	fs := flag.NewFlagSet("agilelint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: agilelint [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the agilefpga invariant suite over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *list {
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-16s %s\n", a.Name, doc)
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
