package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"agilefpga/internal/analysis"
)

// vetConfig is the unit-of-work description `go vet -vettool` writes
// for each package: the files to analyse and, crucially, the export
// data of every import, so the unit type-checks without re-resolving
// the world. The field set mirrors the x/tools unitchecker contract.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyses one vet unit, returning the process exit code:
// 0 clean, 2 diagnostics found (the go command treats any nonzero
// exit as a failed vet step and relays stderr).
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agilelint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "agilelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts flow between units through vetx files; this suite keeps no
	// cross-package facts, so the output is an empty marker the go
	// command can cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("agilelint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "agilelint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("agilelint: no export data for %q", path)
		}
		return os.Open(f)
	}
	pkg, err := analysis.LoadFiles(cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "agilelint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "agilelint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
