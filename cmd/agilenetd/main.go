// agilenetd serves a multi-card co-processor cluster over TCP, turning
// the simulator into a network service: length-prefixed binary frames
// in, status-coded responses out, with admission control in front of
// the cards and Prometheus metrics on the side.
//
// Serve mode (the default):
//
//	agilenetd -addr :7600 -cards 4 -mode affinity
//	agilenetd -addr :7600 -max-inflight 256 -metrics-addr :9090
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish and flush, then the process exits.
//
// Client mode (-call) issues requests against a running daemon and
// reports latency, retries and output size — the smoke-test face of
// the client library:
//
//	agilenetd -call crc32 -addr :7600 -requests 100 -payload 64
//
// -chain runs a comma-separated stage list as one on-card dataflow
// chain per request — the payload crosses the wire and the card's PCI
// link once, intermediates stay in card RAM:
//
//	agilenetd -chain sha256,aes128 -addr :7600 -requests 100 -payload 256
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"agilefpga"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/server"
	"agilefpga/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7600", "TCP address to serve (or call against)")
	cards := flag.Int("cards", 2, "number of cards in the cluster")
	mode := flag.String("mode", cluster.ModeAffinity, "dispatch mode: replicate|partition|affinity")
	rows := flag.Int("rows", 32, "fabric rows per card")
	cols := flag.Int("cols", 40, "fabric columns per card")
	codec := flag.String("codec", "framediff", "bitstream codec")
	policy := flag.String("policy", "lru", "replacement policy")
	prefetch := flag.Bool("prefetch", false, "configuration prefetching")
	diff := flag.Bool("diff", false, "difference-based reconfiguration")
	queue := flag.Int("queue", cluster.DefaultQueue, "per-card submission queue bound")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight, "admitted requests across all connections")
	batchWindow := flag.Int("batch-window", 0, "cross-client batching: coalesce up to this many same-function requests into one cluster batch (0/1 = off)")
	batchDwell := flag.Duration("batch-dwell", server.DefaultBatchDwell, "cross-client batching: max wait for a window to fill before it flushes")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address, e.g. :9090")
	traceSample := flag.Float64("trace-sample", 0, "distributed tracing: head-sampling probability in [0,1] (0 = tracing off); sampled requests become span trees on /debug/traces")
	traceTail := flag.Int("trace-tail", 16, "distributed tracing: always retain the slowest N sampled traces (tail capture), plus an error ring")
	debugAddr := flag.String("debug-addr", "", "serve /debug/traces, /debug/requests and /debug/pprof on this address, e.g. :6060")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")

	call := flag.String("call", "", "client mode: function name to call against -addr")
	chain := flag.String("chain", "", "client mode: comma-separated function names to run as one on-card chain against -addr")
	requests := flag.Int("requests", 10, "client mode: number of requests")
	payload := flag.Int("payload", 64, "client mode: payload bytes per request")
	timeout := flag.Duration("timeout", 5*time.Second, "client mode: per-request deadline")
	concurrency := flag.Int("concurrency", 1, "client mode: concurrent in-flight requests (pipelined over the multiplexed pool)")
	flag.Parse()

	if *call != "" && *chain != "" {
		log.Fatal("-call and -chain are mutually exclusive")
	}
	if *call != "" || *chain != "" {
		var stages []string
		if *chain != "" {
			stages = strings.Split(*chain, ",")
		}
		runClient(*addr, *call, stages, *requests, *payload, *concurrency, *timeout, *traceSample)
		return
	}

	reg := metrics.NewRegistry()
	cl, err := cluster.NewWithOptions(*cards, *mode, core.Config{
		Geometry:   fpga.Geometry{Rows: *rows, Cols: *cols},
		Codec:      *codec,
		Policy:     *policy,
		Prefetch:   *prefetch,
		DiffReload: *diff,
		Metrics:    reg,
	}, cluster.Options{Queue: *queue})
	if err != nil {
		log.Fatal(err)
	}

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.NewTracer(trace.TracerOptions{Sample: *traceSample, TailN: *traceTail})
		defer tracer.Close()
		log.Printf("tracing %.0f%% of requests (tail keeps the slowest %d)", *traceSample*100, *traceTail)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(cl, server.Options{
		MaxInflight: *maxInflight,
		BatchWindow: *batchWindow,
		BatchDwell:  *batchDwell,
		Metrics:     reg,
		Tracer:      tracer,
	})

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dmux := http.NewServeMux()
		dmux.Handle("/debug/traces", tracer.Handler())
		dmux.Handle("/debug/requests", srv.DebugRequestsHandler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("agilenetd: debug server: %v", err)
			}
		}()
		log.Printf("debug surface on http://%s/debug/{traces,requests,pprof}", dln.Addr())
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if _, err := reg.WriteTo(w); err != nil {
				log.Printf("agilenetd: /metrics: %v", err)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("agilenetd: metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("serving %d cards (%s mode) on %s, max %d in flight",
		*cards, *mode, ln.Addr(), *maxInflight)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (up to %v)...", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		<-serveErr
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		metricsSrv.Shutdown(ctx)
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		debugSrv.Shutdown(ctx)
	}
	cl.Close()
	log.Printf("drained; bye")
}

// runClient is the -call/-chain mode: a burst of requests through the
// public client API, with retries on overload. With -concurrency > 1
// the burst pipelines over the client's multiplexed connection pool;
// with a stage list each request is one chained call. A non-zero
// traceSample traces the burst: sampled calls ship their trace context
// on the wire so a tracing daemon joins the same traces.
func runClient(addr, fn string, stages []string, requests, payload, concurrency int, timeout time.Duration, traceSample float64) {
	var tracer *agilefpga.Tracer
	if traceSample > 0 {
		tracer = agilefpga.NewTracer(agilefpga.TracerOptions{Sample: traceSample})
		defer tracer.Close()
	}
	c, err := agilefpga.Dial(addr, agilefpga.DialOptions{Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if concurrency < 1 {
		concurrency = 1
	}
	in := make([]byte, payload)
	for i := range in {
		in[i] = byte(i)
	}
	start := time.Now() //lint:wallclock client-mode smoke test measures real request latency
	var mu sync.Mutex
	var bytesOut int
	cardSeen := make(map[int]int)
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			var out []byte
			var card int
			var err error
			if stages != nil {
				out, card, err = c.CallChain(ctx, stages, in)
			} else {
				out, card, err = c.Call(ctx, fn, in)
			}
			cancel()
			if err != nil {
				log.Fatalf("request %d: %v", i, err)
			}
			if len(out) == 0 {
				log.Fatalf("request %d: empty output", i)
			}
			mu.Lock()
			bytesOut += len(out)
			cardSeen[card]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:wallclock client-mode smoke test measures real request latency
	label := fn
	if stages != nil {
		label = strings.Join(stages, "->")
	}
	fmt.Printf("%d × %s ok (%d in flight): %d B in/req, %d B out total, %.1f req/s, cards %v\n",
		requests, label, concurrency, payload, bytesOut,
		float64(requests)/elapsed.Seconds(), cardSeen)
}
