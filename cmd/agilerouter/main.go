// agilerouter fronts a fleet of agilenetd nodes with one wire-protocol
// listener: consistent-hash function affinity decides which backend
// serves each call (the network generalisation of cluster affinity
// mode), hot functions spill to ring replicas under load, and failed
// backends are ejected and probed back in — so clients keep a single
// address while the fleet scales, drains, and recovers behind it.
//
//	agilerouter -addr :7700 -backends 127.0.0.1:7601,127.0.0.1:7602,127.0.0.1:7603
//	agilerouter -addr :7700 -backends ... -replication 2 -spill-threshold 8 -metrics-addr :9091
//
// SIGINT/SIGTERM drain gracefully: new requests are refused with
// UNAVAILABLE + the drain message (an upstream router ejects this one
// cleanly), in-flight requests finish, then the process exits.
//
// agilenetd's -call client mode works against a router address
// unchanged — the router speaks the identical protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"agilefpga/internal/metrics"
	"agilefpga/internal/router"
	"agilefpga/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7700", "TCP address to serve")
	backends := flag.String("backends", "", "comma-separated agilenetd addresses (required)")
	replication := flag.Int("replication", router.DefaultReplication, "ring replicas per function (spill targets)")
	spillThreshold := flag.Int("spill-threshold", router.DefaultSpillThreshold, "primary in-flight count that spills calls to a replica")
	vnodes := flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per backend on the hash ring")
	seed := flag.Uint64("seed", 0, "ring/jitter seed; equal seeds on every router give identical routing")
	maxInflight := flag.Int("max-inflight", router.DefaultMaxInflight, "admitted requests across all connections")
	ejectAfter := flag.Int("eject-after", router.DefaultEjectAfter, "consecutive backend failures before ejection")
	probeBase := flag.Duration("probe-base", router.DefaultProbeBase, "first reinstatement probe delay (jittered exponential)")
	probeMax := flag.Duration("probe-max", router.DefaultProbeMax, "reinstatement probe delay cap")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address, e.g. :9091")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling probability in [0,1] for locally rooted traces; forwarded traces always join")
	traceTail := flag.Int("trace-tail", 16, "always retain the slowest N sampled traces, plus an error ring")
	debugAddr := flag.String("debug-addr", "", "serve /debug/traces, /debug/backends and /debug/pprof on this address, e.g. :6061")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("agilerouter: -backends is required (comma-separated agilenetd addresses)")
	}

	reg := metrics.NewRegistry()
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.NewTracer(trace.TracerOptions{Sample: *traceSample, TailN: *traceTail})
		defer tracer.Close()
		log.Printf("tracing %.0f%% of locally rooted requests (tail keeps the slowest %d)", *traceSample*100, *traceTail)
	}

	r, err := router.New(addrs, router.Options{
		Replication:    *replication,
		SpillThreshold: *spillThreshold,
		VNodes:         *vnodes,
		Seed:           *seed,
		MaxInflight:    *maxInflight,
		EjectAfter:     *ejectAfter,
		ProbeBase:      *probeBase,
		ProbeMax:       *probeMax,
		Metrics:        reg,
		Tracer:         tracer,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dmux := http.NewServeMux()
		dmux.Handle("/debug/traces", tracer.Handler())
		dmux.Handle("/debug/backends", r.DebugHandler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("agilerouter: debug server: %v", err)
			}
		}()
		log.Printf("debug surface on http://%s/debug/{traces,backends,pprof}", dln.Addr())
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if _, err := reg.WriteTo(w); err != nil {
				log.Printf("agilerouter: /metrics: %v", err)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("agilerouter: metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(ln) }()
	log.Printf("routing %d backends on %s (replication %d, spill at %d in flight)",
		len(addrs), ln.Addr(), *replication, *spillThreshold)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (up to %v)...", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		<-serveErr
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		metricsSrv.Shutdown(ctx)
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		debugSrv.Shutdown(ctx)
	}
	log.Printf("drained; bye")
}
