// agilesim drives the full co-processor with a synthetic request stream
// and reports the mini OS's behaviour: hit rate, evictions, placement
// mix, prefetcher and difference-flow activity, and the per-phase latency
// profile. It is the scenario runner for exploring configurations beyond
// the fixed experiments.
//
// Usage:
//
//	agilesim                                       # defaults
//	agilesim -workload zipf -requests 5000
//	agilesim -policy fifo -codec rle -cols 24 -no-scatter
//	agilesim -prefetch -diff -sched window         # the full mini OS
//	agilesim -trace run.jsonl                      # export the event log
//	agilesim -trace-chrome run.json                # Perfetto/chrome://tracing timeline
//	agilesim -metrics-addr :9090                   # live /metrics + /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sched"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
	"agilefpga/internal/workload"
)

func main() {
	rows := flag.Int("rows", 32, "fabric rows (CLBs per frame)")
	cols := flag.Int("cols", 40, "fabric columns (frames)")
	codec := flag.String("codec", "framediff", "bitstream codec: none|rle|lz77|huffman|framediff")
	policy := flag.String("policy", "lru", "replacement policy: lru|fifo|lfu|random")
	wname := flag.String("workload", "zipf", "request stream: uniform|zipf|phased|cyclic")
	requests := flag.Int("requests", 2000, "number of requests")
	payload := flag.Int("payload", 1024, "payload bytes per request (rounded up per function)")
	seed := flag.Uint64("seed", 1234, "workload seed")
	noScatter := flag.Bool("no-scatter", false, "contiguous-only placement")
	diff := flag.Bool("diff", false, "difference-based reconfiguration flow")
	prefetch := flag.Bool("prefetch", false, "configuration prefetching")
	schedName := flag.String("sched", "fifo", "host queue scheduler: fifo|sticky|window")
	tracePath := flag.String("trace", "", "write the event log as JSON lines to this file")
	chromePath := flag.String("trace-chrome", "", "write the event log as Chrome trace-event JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /healthz on this address, e.g. :9090; keeps serving after the run")
	traceSample := flag.Float64("trace-sample", 0, "request tracing: head-sampling probability in [0,1] (0 = off); sampled calls become span trees (host call + virtual card phases) on /debug/traces")
	traceTail := flag.Int("trace-tail", 16, "request tracing: always retain the slowest N sampled traces (tail capture), plus an error ring")
	debugAddr := flag.String("debug-addr", "", "serve /debug/traces and /debug/pprof on this address, e.g. :6060; keeps serving after the run")
	flag.Parse()

	var reg *metrics.Registry
	var metricsLn net.Listener
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		var err error
		metricsLn, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if _, err := reg.WriteTo(w); err != nil {
				log.Printf("agilesim: /metrics: %v", err)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(metricsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
		fmt.Printf("serving /metrics and /healthz on http://%s\n", metricsLn.Addr())
	}

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.NewTracer(trace.TracerOptions{Sample: *traceSample, TailN: *traceTail})
		defer tracer.Close()
	}
	var debugLn net.Listener
	if *debugAddr != "" {
		var err error
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dmux := http.NewServeMux()
		dmux.Handle("/debug/traces", tracer.Handler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(debugLn, dmux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("agilesim: debug server: %v", err)
			}
		}()
		fmt.Printf("serving /debug/traces and /debug/pprof on http://%s\n", debugLn.Addr())
	}

	cp, err := core.New(core.Config{
		Geometry:   fpga.Geometry{Rows: *rows, Cols: *cols},
		Codec:      *codec,
		Policy:     *policy,
		NoScatter:  *noScatter,
		DiffReload: *diff,
		Prefetch:   *prefetch,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	var eventLog *trace.Log
	if *tracePath != "" || *chromePath != "" {
		eventLog = &trace.Log{}
		cp.SetTrace(eventLog)
	}
	if _, err := cp.InstallBank(); err != nil {
		log.Fatal(err)
	}

	var ids []uint16
	blockOf := make(map[uint16]int)
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
		blockOf[f.ID()] = f.BlockBytes
	}
	gen, err := workload.New(*wname, ids, *seed)
	if err != nil {
		log.Fatal(err)
	}
	picker, err := sched.New(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device %s, codec %s, policy %s, workload %s, sched %s, %d requests of ~%d B",
		fpga.Geometry{Rows: *rows, Cols: *cols}, *codec, *policy, *wname, *schedName, *requests, *payload)
	if *diff {
		fmt.Print(", diff-reload")
	}
	if *prefetch {
		fmt.Print(", prefetch")
	}
	fmt.Print("\n\n")

	jobs := make([]sched.Job, *requests)
	for i := range jobs {
		fn := gen.Next()
		n := *payload
		if blk := blockOf[fn]; n%blk != 0 {
			n = (n/blk + 1) * blk
		}
		in := make([]byte, n)
		in[0] = byte(i)
		jobs[i] = sched.Job{Fn: fn, Input: in, Seq: i}
	}

	var total, worst sim.Time
	resident := func() map[uint16]bool {
		m := make(map[uint16]bool)
		for _, fn := range cp.Controller().ResidentFunctions() {
			m[fn] = true
		}
		return m
	}
	serve := func(j sched.Job) error {
		// Sampled calls become span trees: a host call span with the
		// card's virtual phase breakdown underneath. A nil tracer (or
		// a sampled-out call) makes every span call a no-op.
		ref := tracer.StartRoot("call", "host", j.Fn)
		var res *core.CallResult
		var err error
		if ref.Valid() {
			res, err = cp.CallIDTraced(j.Fn, j.Input, ref.TraceID, ref.SpanID)
		} else {
			res, err = cp.CallID(j.Fn, j.Input)
		}
		if err != nil {
			tracer.End(ref, "error")
			return err
		}
		for p := 0; p < sim.NumPhases; p++ {
			if d := res.Breakdown.Get(sim.Phase(p)); d > 0 {
				tracer.Add(ref, trace.Span{
					Name: sim.Phase(p).String(), Layer: "card", Fn: j.Fn,
					VirtPS: uint64(d),
				})
			}
		}
		tracer.End(ref, "ok")
		total += res.Latency
		if res.Latency > worst {
			worst = res.Latency
		}
		return nil
	}
	_, maxDisp, err := sched.Run(jobs, picker, resident, serve)
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.Controller().CheckInvariants(); err != nil {
		log.Fatal(err)
	}

	st := cp.Stats()
	fmt.Printf("requests        %d\n", st.Requests)
	fmt.Printf("hit rate        %.3f  (%d hits / %d misses)\n",
		float64(st.Hits)/float64(st.Requests), st.Hits, st.Misses)
	fmt.Printf("evictions       %d\n", st.Evictions)
	fmt.Printf("frames loaded   %d  (%d B raw config, %d B from ROM)\n",
		st.FramesLoaded, st.RawConfigBytes, st.CompConfigBytes)
	fmt.Printf("placements      %d contiguous / %d scattered\n",
		st.ContigPlacements, st.ScatterPlacements)
	if *diff {
		fmt.Printf("frames revived  %d (difference flow)\n", st.FramesSkipped)
	}
	if *prefetch {
		fmt.Printf("prefetches      %d issued, %d hits, %v off-request time\n",
			st.Prefetches, st.PrefetchHits, st.PrefetchTime)
	}
	fmt.Printf("max overtaking  %d (scheduler %s)\n", maxDisp, *schedName)
	fmt.Printf("mean latency    %v   worst %v\n",
		sim.Time(uint64(total)/st.Requests), worst)
	fmt.Printf("\nphase totals over the run:\n")
	for p := 0; p < sim.NumPhases; p++ {
		if t := st.Phases.Get(sim.Phase(p)); t != 0 {
			fmt.Printf("  %-11s %v\n", sim.Phase(p), t)
		}
	}

	if eventLog != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := eventLog.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d events to %s\n", eventLog.Len(), *tracePath)
	}
	if eventLog != nil && *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := eventLog.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d events as a Chrome trace to %s\n", eventLog.Len(), *chromePath)
	}

	if reg != nil {
		fmt.Printf("\nlatency quantiles (virtual time, from the telemetry histograms):\n")
		for p := 0; p < sim.NumPhases; p++ {
			match := metrics.L("phase", sim.Phase(p).String())
			p50, n := reg.QuantileWhere("agile_phase_seconds", 0.50, match)
			if n == 0 {
				continue
			}
			p95, _ := reg.QuantileWhere("agile_phase_seconds", 0.95, match)
			p99, _ := reg.QuantileWhere("agile_phase_seconds", 0.99, match)
			fmt.Printf("  %-11s p50 %-12v p95 %-12v p99 %-12v (%d obs)\n",
				sim.Phase(p), p50, p95, p99, n)
		}
		fmt.Printf("\nmetrics live on http://%s/metrics\n", metricsLn.Addr())
	}
	if tracer != nil {
		// The run is over: stop the collector (idempotent; the deferred
		// Close becomes a no-op) so the rings hold every completion
		// before we report and keep serving /debug/traces.
		tracer.Close()
		fmt.Printf("\ntraces: %d completed, %d captured (tail keeps the slowest %d)\n",
			tracer.Completed(), len(tracer.Captured()), *traceTail)
	}

	if metricsSrv != nil || debugLn != nil {
		fmt.Printf("\nserving debug endpoints — ctrl-c to exit\n")
		// Keep serving until a signal, then shut the endpoints down
		// gracefully so in-progress scrapes finish and the process
		// exits cleanly.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		if metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := metricsSrv.Shutdown(ctx); err != nil {
				log.Printf("agilesim: metrics shutdown: %v", err)
			}
		}
		if debugLn != nil {
			debugLn.Close()
		}
	}
}
