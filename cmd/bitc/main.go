// bitc is the bitstream tool: it synthesises a bank function's
// configuration image for a given geometry, compresses it with each
// codec, verifies the round trip, reports sizes, and burns/inspects ROM
// images — the provisioning path of the co-processor as a standalone
// tool.
//
// Usage:
//
//	bitc -fn aes128                 # one function, all codecs
//	bitc -fn aes128 -dump 64        # plus a hexdump of the image
//	bitc -all -codec framediff      # the whole bank under one codec
//	bitc -burn card.rom             # burn the full bank into a ROM image
//	bitc -rom card.rom              # inspect a burned image
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"agilefpga/internal/algos"
	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/core"
	"agilefpga/internal/exp"
	"agilefpga/internal/fpga"
	"agilefpga/internal/memory"
)

func main() {
	fnName := flag.String("fn", "", "bank function to compile")
	all := flag.Bool("all", false, "compile the whole bank")
	codecName := flag.String("codec", "framediff", "codec for -all mode")
	rows := flag.Int("rows", fpga.DefaultGeometry.Rows, "fabric rows (CLBs per frame)")
	cols := flag.Int("cols", fpga.DefaultGeometry.Cols, "fabric columns (frames)")
	dump := flag.Int("dump", 0, "hexdump this many bytes of the raw image")
	burn := flag.String("burn", "", "burn the whole bank into a ROM image at this path")
	romPath := flag.String("rom", "", "inspect a burned ROM image")
	romBytes := flag.Int("rombytes", 512*1024, "ROM capacity for -burn")
	flag.Parse()

	g := fpga.Geometry{Rows: *rows, Cols: *cols}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	if *burn != "" {
		burnROM(*burn, g, *codecName, *romBytes)
		return
	}
	if *romPath != "" {
		inspectROM(*romPath)
		return
	}

	if *all {
		tab, err := exp.RunE2PerFunction(*codecName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab.String())
		return
	}
	if *fnName == "" {
		log.Fatal("bitc: -fn <name> or -all required; functions: ", names())
	}
	f, err := algos.ByName(*fnName)
	if err != nil {
		log.Fatal(err)
	}
	images, err := bitstream.Synthesize(g, bitstream.Netlist{
		FnID: f.ID(), Serial: 1, LUTs: f.LUTs, Seed: f.Seed(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d LUTs → %d frames of %d B on %s\n",
		f.Name(), f.LUTs, len(images), g.FrameBytes(), g)

	var raw []byte
	for _, img := range images {
		raw = append(raw, img...)
	}
	fmt.Printf("raw image: %d B\n\n", len(raw))
	fmt.Printf("%-10s  %8s  %6s  %s\n", "codec", "bytes", "ratio", "round-trip")
	for _, name := range compress.Names() {
		codec, err := compress.New(name, g.FrameBytes())
		if err != nil {
			log.Fatal(err)
		}
		rec, blob, err := core.BuildImage(g, f, codec, 1)
		if err != nil {
			log.Fatal(err)
		}
		back, err := codec.Decompress(blob)
		ok := err == nil && bytes.Equal(back, raw)
		fmt.Printf("%-10s  %8d  %5.2fx  %v\n", name, len(blob),
			float64(rec.RawSize)/float64(len(blob)), ok)
	}

	if *dump > 0 {
		n := *dump
		if n > len(raw) {
			n = len(raw)
		}
		fmt.Printf("\nraw image, first %d bytes:\n", n)
		for i := 0; i < n; i += 16 {
			end := i + 16
			if end > n {
				end = n
			}
			fmt.Printf("%06x  % x\n", i, raw[i:end])
		}
		if sig, ok := fpga.DecodeSignature(raw); ok {
			fmt.Printf("\nframe 0 signature: fn=%d index=%d total=%d serial=%d\n",
				sig.FnID, sig.Index, sig.Total, sig.Serial)
		}
	}
}

func names() []string {
	var out []string
	for _, f := range algos.Bank() {
		out = append(out, f.Name())
	}
	return out
}

// burnROM provisions the full bank onto a fresh card and writes its ROM
// image to path.
func burnROM(path string, g fpga.Geometry, codecName string, romBytes int) {
	cp, err := core.New(core.Config{Geometry: g, Codec: codecName, ROMBytes: romBytes})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cp.InstallBank(); err != nil {
		log.Fatal(err)
	}
	rom := cp.Controller().ROM()
	image := rom.Image()
	if err := os.WriteFile(path, image, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burned %d functions (%s codec) into %s: %d B image, %d B free\n",
		rom.NumRecords(), codecName, path, len(image), rom.FreeBytes())
}

// inspectROM prints the record table of a burned image.
func inspectROM(path string) {
	image, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	rom, err := memory.LoadROM(image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d B capacity, %d records, %d B free\n\n",
		path, rom.Capacity(), rom.NumRecords(), rom.FreeBytes())
	fmt.Printf("%-12s %5s %7s %8s %8s %7s %6s %6s\n",
		"name", "fn", "codec", "start", "comp B", "raw B", "frames", "serial")
	recs, err := rom.Records()
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range recs {
		codecName, cerr := compress.NameOf(rec.CodecID)
		if cerr != nil {
			codecName = "?"
		}
		fmt.Printf("%-12s %5d %7s %8d %8d %7d %6d %6d\n",
			rec.Name, rec.FnID, codecName, rec.Start, rec.CompSize, rec.RawSize,
			rec.FrameCount, rec.Serial)
	}
}
