package agilefpga_test

import (
	"fmt"
	"log"

	"agilefpga"
)

// The basic on-demand flow: install the bank, call a function cold (the
// card configures it), call again hot.
func Example() {
	cp, err := agilefpga.New(agilefpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.InstallAll(); err != nil {
		log.Fatal(err)
	}
	res, err := cp.Call("crc32", []byte{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crc=%x hit=%v\n", res.Output, res.Hit)
	res, err = cp.Call("crc32", []byte{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hit=%v\n", res.Hit)
	// Output:
	// crc=cdfb3cb6 hit=false
	// hit=true
}

// Batched calls pipeline the PCI bus against the card; results and card
// state match one-at-a-time calls exactly.
func ExampleCoProcessor_CallBatch() {
	cp, err := agilefpga.New(agilefpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.Install("des"); err != nil {
		log.Fatal(err)
	}
	batch, err := cp.CallBatch("des", [][]byte{
		[]byte("block001"), []byte("block002"), []byte("block003"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outputs=%d hits=%d pipelined≤sequential=%v\n",
		len(batch.Outputs), batch.Hits, batch.Latency <= batch.SequentialLatency)
	// Output:
	// outputs=3 hits=2 pipelined≤sequential=true
}

// The software baseline computes the same answers with a host cycle
// model, for offload comparisons.
func ExampleCoProcessor_RunHost() {
	cp, err := agilefpga.New(agilefpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.Install("sha256"); err != nil {
		log.Fatal(err)
	}
	in := make([]byte, 64)
	card, err := cp.Call("sha256", in)
	if err != nil {
		log.Fatal(err)
	}
	host, _, err := cp.RunHost("sha256", in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agree=%v digest=%d bytes\n",
		string(card.Output) == string(host), len(card.Output))
	// Output:
	// agree=true digest=32 bytes
}

// Scrubbing reads resident frames back and compares them with the ROM
// golden images — the SEU defence of experiment E14.
func ExampleCoProcessor_Scrub() {
	cp, err := agilefpga.New(agilefpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.Install("fir16"); err != nil {
		log.Fatal(err)
	}
	if _, err := cp.Call("fir16", []byte{1, 0, 2, 0}); err != nil {
		log.Fatal(err)
	}
	rep, err := cp.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked>0=%v repaired=%d\n", rep.FramesChecked > 0, rep.FramesRepaired)
	// Output:
	// checked>0=true repaired=0
}

// Functions enumerates the algorithm bank with footprints and framing.
func ExampleFunctions() {
	fns := agilefpga.Functions()
	fmt.Printf("bank=%d first=%s frames=%d\n", len(fns), fns[0].Name, fns[0].Frames)
	// Output:
	// bank=16 first=aes128 frames=9
}
