// Crypto agility: the scenario that motivated the paper (its references
// are an algorithm-agile crypto co-processor and an adaptive IPSec
// engine). A gateway terminates several security associations, each
// negotiated with a different suite — AES, DES, SHA-256 authentication,
// and periodic Diffie-Hellman-style rekeying via modular exponentiation.
// Traffic interleaves the suites, so the card keeps swapping algorithms
// on demand; the run reports how the mini OS's LRU replacement copes and
// what the offload buys over host software.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"agilefpga"
)

// sa is one security association: its cipher/auth suite and traffic share.
type sa struct {
	name   string
	cipher string
	weight int
}

func main() {
	cp, err := agilefpga.New(agilefpga.Config{
		// A smaller device than the default: the four suites need 34
		// frames but only 28 fit, so rekeying always displaces a cipher
		// — exactly when algorithm agility matters.
		Rows: 32, Cols: 28,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range []string{"aes128", "des", "sha256", "modexp64"} {
		if err := cp.Install(fn); err != nil {
			log.Fatal(err)
		}
	}

	sas := []sa{
		{"legacy-partner", "des", 5},
		{"monitoring", "sha256", 3},
		{"branch-office", "aes128", 2},
	}
	fmt.Println("IPSec-style gateway over the agile co-processor")
	fmt.Println(cp)

	var cardTime, hostTime time.Duration
	packets := 0
	// Deterministic interleaving by weight; every 40 packets a rekey
	// fires a burst of modular exponentiations.
	seq := buildSchedule(sas, 200)
	for i, suite := range seq {
		payload := makePacket(i, 1024)
		res, err := cp.Call(suite, payload)
		if err != nil {
			log.Fatalf("packet %d (%s): %v", i, suite, err)
		}
		cardTime += res.Latency
		_, ht, err := cp.RunHost(suite, payload)
		if err != nil {
			log.Fatal(err)
		}
		hostTime += ht
		packets++

		if i%10 == 9 { // rekey burst: 256 modexp records
			rekey := makePacket(i, 256*24)
			res, err := cp.Call("modexp64", rekey)
			if err != nil {
				log.Fatal(err)
			}
			cardTime += res.Latency
			_, ht, _ := cp.RunHost("modexp64", rekey)
			hostTime += ht
		}
	}

	st := cp.Stats()
	fmt.Printf("\n%d packets + rekey bursts across %d suites\n", packets, len(sas)+1)
	fmt.Printf("  hit rate        %.1f%%  (evictions: %d, frames loaded: %d)\n",
		100*st.HitRate, st.Evictions, st.FramesLoaded)
	fmt.Printf("  card time       %v\n", cardTime)
	fmt.Printf("  host time       %v\n", hostTime)
	fmt.Printf("  speedup         %.2fx\n", float64(hostTime)/float64(cardTime))
	fmt.Println("\nNote: bulk AES alone is PCI-bound on a 32-bit/33 MHz bus; the win")
	fmt.Println("comes from the rekey modexp bursts and DES legacy traffic — the")
	fmt.Println("compute-dense work the paper's references built cards for.")

	if err := cp.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}

// buildSchedule deals packets to suites proportionally to weight.
func buildSchedule(sas []sa, n int) []string {
	var seq []string
	for len(seq) < n {
		for _, s := range sas {
			for k := 0; k < s.weight && len(seq) < n; k++ {
				seq = append(seq, s.cipher)
			}
		}
	}
	return seq
}

// makePacket builds a deterministic pseudo-payload.
func makePacket(seed, n int) []byte {
	p := make([]byte, n)
	x := uint64(seed)*2654435761 + 12345
	for i := 0; i+8 <= n; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(p[i:], x)
	}
	return p
}
