// DSP pipeline: a software-defined sensor front-end built from the bank's
// DSP kernels. Each captured buffer is FIR-filtered, transformed with the
// 64-point FFT, and checksummed — three different functions per buffer on
// a device deliberately too small to hold all three at once, forcing the
// mini OS to juggle frames every buffer. A second phase batches the work
// per function to show how batching restores the hit rate.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"agilefpga"
)

const buffers = 30

func main() {
	cp, err := agilefpga.New(agilefpga.Config{
		// fir16 (5 frames) + fft64 (13) + crc32 (2) = 20 frames on a
		// 16-frame device: at least one swap per interleaved buffer.
		Rows: 32, Cols: 16,
		Codec: "framediff",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range []string{"fir16", "fft64", "crc32"} {
		if err := cp.Install(fn); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("software-defined sensor pipeline:", cp)

	// Phase 1: interleaved (fir → fft → crc per buffer).
	for i := 0; i < buffers; i++ {
		buf := capture(i)
		filtered := mustCall(cp, "fir16", buf)
		spectrum := mustCall(cp, "fft64", interleave(filtered))
		_ = mustCall(cp, "crc32", spectrum)
	}
	st := cp.Stats()
	fmt.Printf("\ninterleaved: %d calls, hit rate %.1f%%, %d evictions, %d frames loaded\n",
		st.Requests, 100*st.HitRate, st.Evictions, st.FramesLoaded)

	// Phase 2: batched (all fir, then all fft, then all crc).
	cp.ResetStats()
	var filtered [][]byte
	for i := 0; i < buffers; i++ {
		filtered = append(filtered, mustCall(cp, "fir16", capture(i)))
	}
	var spectra [][]byte
	for _, f := range filtered {
		spectra = append(spectra, mustCall(cp, "fft64", interleave(f)))
	}
	for _, s := range spectra {
		_ = mustCall(cp, "crc32", s)
	}
	st = cp.Stats()
	fmt.Printf("batched:     %d calls, hit rate %.1f%%, %d evictions, %d frames loaded\n",
		st.Requests, 100*st.HitRate, st.Evictions, st.FramesLoaded)
	fmt.Println("\nbatching turns one reconfiguration per buffer into one per phase —")
	fmt.Println("the scheduling freedom an on-demand co-processor gives the host.")

	if err := cp.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}

func mustCall(cp *agilefpga.CoProcessor, fn string, in []byte) []byte {
	res, err := cp.Call(fn, in)
	if err != nil {
		log.Fatalf("%s: %v", fn, err)
	}
	return res.Output
}

// capture synthesises one buffer of 64 int16 samples: two tones plus a
// deterministic dither.
func capture(i int) []byte {
	buf := make([]byte, 128)
	for n := 0; n < 64; n++ {
		v := 4000*sin64(5*n+i) + 2000*sin64(11*n) + (n*i)%97 - 48
		binary.LittleEndian.PutUint16(buf[2*n:], uint16(int16(v)))
	}
	return buf
}

// interleave turns real samples into (re, im=0) complex pairs for fft64.
func interleave(samples []byte) []byte {
	out := make([]byte, 2*len(samples))
	for i := 0; i+1 < len(samples); i += 2 {
		out[2*i] = samples[i]
		out[2*i+1] = samples[i+1]
	}
	return out
}

// sin64 is a coarse integer sine on a 64-step table — enough for a demo
// signal.
func sin64(x int) int {
	quarter := [17]int{0, 98, 195, 290, 382, 471, 555, 634, 707, 773, 831, 881, 923, 956, 980, 995, 1000}
	x &= 63
	switch {
	case x < 16:
		return quarter[x]
	case x < 32:
		return quarter[32-x]
	case x < 48:
		return -quarter[x-32]
	default:
		return -quarter[64-x]
	}
}
