// DSP pipeline: a software-defined sensor front-end built from the bank's
// DSP kernels. Each captured buffer is FIR-filtered, transformed with the
// 64-point FFT, and checksummed — three different functions per buffer on
// a device deliberately too small to hold all three at once, forcing the
// mini OS to juggle frames every buffer. A second phase batches the work
// per function to show how batching restores the hit rate, and a third
// runs the fft→crc tail of each buffer as one on-fabric chain: the
// spectrum never comes back to the host, so every buffer pays two PCI
// round trips instead of three and the checksums still match the staged
// arm byte for byte. (The fir→fft boundary stays on the host: the
// interleave step between them is a host transform, which is exactly
// the case chaining does not cover.)
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"agilefpga"
)

const buffers = 30

func main() {
	cp, err := agilefpga.New(agilefpga.Config{
		// fir16 (5 frames) + fft64 (13) + crc32 (2) = 20 frames on a
		// 16-frame device: at least one swap per interleaved buffer.
		Rows: 32, Cols: 16,
		Codec: "framediff",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range []string{"fir16", "fft64", "crc32"} {
		if err := cp.Install(fn); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("software-defined sensor pipeline:", cp)

	// Phase 1: interleaved (fir → fft → crc per buffer), every
	// intermediate bouncing through the host. The checksums are kept as
	// the reference the chained arm must reproduce.
	staged := make([][]byte, buffers)
	for i := 0; i < buffers; i++ {
		buf := capture(i)
		filtered := mustCall(cp, "fir16", buf)
		spectrum := mustCall(cp, "fft64", interleave(filtered))
		staged[i] = mustCall(cp, "crc32", spectrum)
	}
	st := cp.Stats()
	fmt.Printf("\ninterleaved: %d calls, hit rate %.1f%%, %d evictions, %d frames loaded\n",
		st.Requests, 100*st.HitRate, st.Evictions, st.FramesLoaded)

	// Phase 2: batched (all fir, then all fft, then all crc).
	cp.ResetStats()
	var filtered [][]byte
	for i := 0; i < buffers; i++ {
		filtered = append(filtered, mustCall(cp, "fir16", capture(i)))
	}
	var spectra [][]byte
	for _, f := range filtered {
		spectra = append(spectra, mustCall(cp, "fft64", interleave(f)))
	}
	for _, s := range spectra {
		_ = mustCall(cp, "crc32", s)
	}
	st = cp.Stats()
	fmt.Printf("batched:     %d calls, hit rate %.1f%%, %d evictions, %d frames loaded\n",
		st.Requests, 100*st.HitRate, st.Evictions, st.FramesLoaded)
	fmt.Println("\nbatching turns one reconfiguration per buffer into one per phase —")
	fmt.Println("the scheduling freedom an on-demand co-processor gives the host.")

	// Phase 3: interleaved again, but the fft → crc tail is one chained
	// call — the spectrum hands off through card RAM instead of crossing
	// PCI out and back, and both tail stages stay pinned together.
	cp.ResetStats()
	for i := 0; i < buffers; i++ {
		buf := capture(i)
		filtered := mustCall(cp, "fir16", buf)
		cr, err := cp.CallChain([]string{"fft64", "crc32"}, interleave(filtered))
		if err != nil {
			log.Fatalf("fft64->crc32: %v", err)
		}
		if string(cr.Output) != string(staged[i]) {
			log.Fatalf("buffer %d: chained checksum diverges from staged", i)
		}
	}
	st = cp.Stats()
	fmt.Printf("chained:     %d calls, hit rate %.1f%%, %d evictions, %d frames loaded\n",
		st.Requests, 100*st.HitRate, st.Evictions, st.FramesLoaded)
	fmt.Printf("             %d chain runs, %d stages, %d B handed off in card RAM\n",
		st.ChainRuns, st.ChainStages, st.ChainHandoffBytes)
	fmt.Println("\nchaining the fft → crc tail drops one PCI round trip per buffer and")
	fmt.Println("keeps both tail stages co-resident; the checksums match the staged")
	fmt.Println("arm byte for byte. The fir → fft seam stays on the host because the")
	fmt.Println("interleave between them is host code — chains only cover card-only seams.")

	if err := cp.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}

func mustCall(cp *agilefpga.CoProcessor, fn string, in []byte) []byte {
	res, err := cp.Call(fn, in)
	if err != nil {
		log.Fatalf("%s: %v", fn, err)
	}
	return res.Output
}

// capture synthesises one buffer of 64 int16 samples: two tones plus a
// deterministic dither.
func capture(i int) []byte {
	buf := make([]byte, 128)
	for n := 0; n < 64; n++ {
		v := 4000*sin64(5*n+i) + 2000*sin64(11*n) + (n*i)%97 - 48
		binary.LittleEndian.PutUint16(buf[2*n:], uint16(int16(v)))
	}
	return buf
}

// interleave turns real samples into (re, im=0) complex pairs for fft64.
func interleave(samples []byte) []byte {
	out := make([]byte, 2*len(samples))
	for i := 0; i+1 < len(samples); i += 2 {
		out[2*i] = samples[i]
		out[2*i+1] = samples[i+1]
	}
	return out
}

// sin64 is a coarse integer sine on a 64-step table — enough for a demo
// signal.
func sin64(x int) int {
	quarter := [17]int{0, 98, 195, 290, 382, 471, 555, 634, 707, 773, 831, 881, 923, 956, 980, 995, 1000}
	x &= 63
	switch {
	case x < 16:
		return quarter[x]
	case x < 32:
		return quarter[32-x]
	case x < 48:
		return -quarter[x-32]
	default:
		return -quarter[64-x]
	}
}
