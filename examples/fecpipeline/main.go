// FEC pipeline: a deep-space-style forward-error-correction chain built
// on the card's coding kernels — the CCSDS classic of Reed-Solomon outer
// code plus convolutional inner code. The host:
//
//  1. RS(255,223)-encodes each frame on the card (rs255),
//  2. convolutionally encodes in host software (cheap shift registers),
//  3. pushes the stream through a noisy channel,
//  4. offloads the expensive part — Viterbi decoding — to the card,
//  5. verifies the inner decoder scrubbed every channel error.
//
// Two functions share the fabric; the run reports how the mini OS juggles
// them and what the Viterbi offload saves over host software.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"agilefpga"
)

const frames = 12

func main() {
	cp, err := agilefpga.New(agilefpga.Config{Codec: "lz77"})
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range []string{"rs255", "viterbi"} {
		if err := cp.Install(fn); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("CCSDS-style FEC chain:", cp)

	var cardTime, hostViterbi time.Duration
	corrected := 0
	for f := 0; f < frames; f++ {
		payload := telemetry(f)

		// Outer code: RS(255,223) on the card.
		res, err := cp.Call("rs255", payload)
		if err != nil {
			log.Fatal(err)
		}
		cardTime += res.Latency
		codeword := res.Output // 255 bytes

		// Inner code: convolutional encoding in host software. Pad the
		// codeword to the encoder's 8-byte block framing.
		info := make([]byte, 256)
		copy(info, codeword)
		channel := agilefpga.ConvEncode(info)

		// The channel: a burst-free trickle of bit errors, two per
		// 16-byte coded block, within the code's correction power.
		noisy := append([]byte(nil), channel...)
		for blk := 0; blk+16 <= len(noisy); blk += 16 {
			noisy[blk+3] ^= 0x10
			noisy[blk+12] ^= 0x02
			corrected += 2
		}

		// Inner decode: Viterbi on the card.
		res, err = cp.Call("viterbi", noisy)
		if err != nil {
			log.Fatal(err)
		}
		cardTime += res.Latency
		if !bytes.Equal(res.Output[:255], codeword) {
			log.Fatalf("frame %d: inner decoder failed to scrub the channel", f)
		}

		// Software baseline for the decoder alone.
		_, ht, err := cp.RunHost("viterbi", noisy)
		if err != nil {
			log.Fatal(err)
		}
		hostViterbi += ht
	}

	st := cp.Stats()
	fmt.Printf("\n%d telemetry frames, %d channel bit errors injected and corrected\n", frames, corrected)
	fmt.Printf("  card time (rs encode + viterbi decode)  %v\n", cardTime)
	fmt.Printf("  host software viterbi alone              %v\n", hostViterbi)
	fmt.Printf("  decoder offload speedup                  ≥ %.1fx\n",
		float64(hostViterbi)/float64(cardTime))
	fmt.Printf("  fabric: hit rate %.0f%%, %d evictions (both kernels co-resident)\n",
		100*st.HitRate, st.Evictions)

	if err := cp.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}

// telemetry fabricates one 223-byte frame.
func telemetry(f int) []byte {
	p := make([]byte, 223)
	x := uint64(f)*0x9E3779B97F4A7C15 + 1
	for i := range p {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}
