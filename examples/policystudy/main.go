// Policy study: drive the same deterministic request trace through cards
// configured with each frame replacement policy and compare hit rates —
// a miniature of experiment E3 built purely on the public API.
package main

import (
	"fmt"
	"log"

	"agilefpga"
)

const requests = 400

func main() {
	// A skewed, phased trace over the whole bank: mostly a hot working
	// set that shifts every 60 requests.
	names := make([]string, 0, 10)
	for _, f := range agilefpga.Functions() {
		names = append(names, f.Name)
	}
	trace := buildTrace(names, requests)

	fmt.Printf("%-8s  %-9s  %-10s  %-9s\n", "policy", "hit rate", "evictions", "frames")
	for _, policy := range []string{"lru", "fifo", "lfu", "random"} {
		cp, err := agilefpga.New(agilefpga.Config{
			Rows: 32, Cols: 32, // ≈4 of 10 functions resident
			Policy:     policy,
			PolicySeed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cp.InstallAll(); err != nil {
			log.Fatal(err)
		}
		blockOf := make(map[string]int)
		for _, f := range agilefpga.Functions() {
			blockOf[f.Name] = f.BlockBytes
		}
		for i, fn := range trace {
			in := make([]byte, blockOf[fn])
			in[0] = byte(i)
			if _, err := cp.Call(fn, in); err != nil {
				log.Fatalf("%s request %d: %v", policy, i, err)
			}
		}
		st := cp.Stats()
		fmt.Printf("%-8s  %-9.3f  %-10d  %-9d\n", policy, st.HitRate, st.Evictions, st.FramesLoaded)
		if err := cp.CheckInvariants(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nLRU — the paper's Frame Replacement Policy — beats FIFO and Random")
	fmt.Println("by keeping the hot set resident through tail noise. LFU edges ahead")
	fmt.Println("on this *stationary* skew (frequency is the ideal signal when")
	fmt.Println("popularity never shifts); experiment E3's phased workload shows the")
	fmt.Println("reverse, which is why the paper's choice of LRU is the safer default.")
}

// buildTrace draws from a skewed stationary popularity distribution:
// three hot functions take ~2/3 of the requests, the other seven share
// the tail. Recency-based eviction (the paper's LRU) keeps the hot set
// resident through the tail noise.
func buildTrace(names []string, n int) []string {
	trace := make([]string, 0, n)
	x := uint64(42)
	for len(trace) < n {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		r := x % 12
		switch {
		case r < 4:
			trace = append(trace, names[0])
		case r < 6:
			trace = append(trace, names[1])
		case r < 8:
			trace = append(trace, names[2])
		default:
			trace = append(trace, names[3+int(x>>32)%(len(names)-3)])
		}
	}
	return trace
}
