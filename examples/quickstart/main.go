// Quickstart: assemble the simulated co-processor card, provision the
// algorithm bank into its ROM, and run a few functions on demand —
// watching the first call of each pay for partial reconfiguration and
// later calls hit the already-configured frames.
package main

import (
	"fmt"
	"log"

	"agilefpga"
)

func main() {
	cp, err := agilefpga.New(agilefpga.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cp)

	fmt.Println("\nAlgorithm bank:")
	for _, f := range agilefpga.Functions() {
		fmt.Printf("  %-11s %5d LUTs  %2d frames  block %4d B\n",
			f.Name, f.LUTs, f.Frames, f.BlockBytes)
	}

	if err := cp.InstallAll(); err != nil {
		log.Fatal(err)
	}

	msg := []byte("the agile co-processor executes any banked function on demand")
	for _, call := range []struct {
		fn   string
		note string
	}{
		{"sha256", "cold: pays ROM read + decompression + configuration"},
		{"sha256", "hot: frames already configured"},
		{"aes128", "cold: sha256 stays resident, aes gets its own frames"},
		{"aes128", "hot"},
	} {
		res, err := cp.Call(call.fn, msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%s)\n  latency %-12v hit=%v\n  phases: %v\n",
			call.fn, call.note, res.Latency, res.Hit, res.Phases)
	}

	// The same computation in host software, for comparison.
	_, hostTime, err := cp.RunHost("sha256", msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhost software sha256 of the same input: %v\n", hostTime)

	configured, total := cp.Utilization()
	st := cp.Stats()
	fmt.Printf("\nfabric: %d/%d frames configured; stats: %d requests, %.0f%% hits, %d evictions\n",
		configured, total, st.Requests, 100*st.HitRate, st.Evictions)
}
