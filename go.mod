module agilefpga

go 1.22
