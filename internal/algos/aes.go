package algos

import "sync"

// AES-128 ECB encryption, implemented from first principles (the S-box is
// derived from the GF(2⁸) inverse plus affine transform at init time
// rather than typed in). The cipher key is fixed — on the real
// co-processor it is baked into the configuration bitstream, which is
// precisely what makes an algorithm-agile card attractive for key-fixed
// appliance duty (cf. the paper's reference [2], an IPSec engine).

// aesKey is the key embedded in the aes128 core's bitstream.
var aesKey = [16]byte{'A', 'G', 'I', 'L', 'E', '-', 'A', 'E', 'S', '-', 'K', 'E', 'Y', '-', '1', '6'}

var (
	aesOnce   sync.Once
	aesSbox   [256]byte
	aesRoundK [11][16]byte
)

// gfMulByte multiplies two GF(2⁸) elements modulo the AES polynomial.
func gfMulByte(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// gfInv is the multiplicative inverse in GF(2⁸) (0 maps to 0), by
// exhaustion — it runs once.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	for b := 1; b < 256; b++ {
		if gfMulByte(a, byte(b)) == 1 {
			return byte(b)
		}
	}
	panic("algos: GF(2^8) inverse not found")
}

func aesInit() {
	// S-box: affine transform of the field inverse.
	for i := 0; i < 256; i++ {
		x := gfInv(byte(i))
		aesSbox[i] = x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
	}
	// Key expansion (FIPS-197 §5.2) into 11 round keys.
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], aesKey[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t[0], t[1], t[2], t[3] = aesSbox[t[1]]^rcon, aesSbox[t[2]], aesSbox[t[3]], aesSbox[t[0]]
			rcon = gfMulByte(rcon, 2)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	for r := 0; r < 11; r++ {
		for c := 0; c < 4; c++ {
			copy(aesRoundK[r][4*c:], w[4*r+c][:])
		}
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

func aesEncryptBlock(dst, src []byte) {
	var s [16]byte
	copy(s[:], src)
	xorKey := func(r int) {
		for i := range s {
			s[i] ^= aesRoundK[r][i]
		}
	}
	subShift := func() {
		// SubBytes + ShiftRows fused; state is column-major.
		var t [16]byte
		for c := 0; c < 4; c++ {
			for r := 0; r < 4; r++ {
				t[4*c+r] = aesSbox[s[4*((c+r)%4)+r]]
			}
		}
		s = t
	}
	mix := func() {
		for c := 0; c < 4; c++ {
			a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
			s[4*c] = gfMulByte(a0, 2) ^ gfMulByte(a1, 3) ^ a2 ^ a3
			s[4*c+1] = a0 ^ gfMulByte(a1, 2) ^ gfMulByte(a2, 3) ^ a3
			s[4*c+2] = a0 ^ a1 ^ gfMulByte(a2, 2) ^ gfMulByte(a3, 3)
			s[4*c+3] = gfMulByte(a0, 3) ^ a1 ^ a2 ^ gfMulByte(a3, 2)
		}
	}
	xorKey(0)
	for r := 1; r <= 9; r++ {
		subShift()
		mix()
		xorKey(r)
	}
	subShift()
	xorKey(10)
	copy(dst, s[:])
}

var aesFn = &Function{
	id:          IDAES128,
	name:        "aes128",
	LUTs:        2200, // iterative round datapath + key schedule storage
	InBus:       16,
	OutBus:      16,
	BlockBytes:  16,
	outPerBlock: 16,
	hwSetup:     16, // pipeline fill
	hwPerBlock:  3,  // four round units in parallel: a block every 3 cycles
	swSetup:     400,
	swPerByte:   30, // table-based software AES on a scalar host
	run: func(in []byte) []byte {
		aesOnce.Do(aesInit)
		out := make([]byte, len(in))
		for i := 0; i < len(in); i += 16 {
			aesEncryptBlock(out[i:], in[i:])
		}
		return out
	},
}

// AES128 is the AES-128 ECB encryption core.
func AES128() *Function { return aesFn }
