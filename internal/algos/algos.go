// Package algos is the co-processor's algorithm bank: the computationally
// intensive functions whose configuration bitstreams live in ROM and swap
// in and out of the fabric on demand (paper §2.5). The bank leans on the
// paper's motivating domain — its two references are crypto co-processors
// — plus classic DSP and arithmetic kernels, giving the experiments a
// heterogeneous mix of frame footprints and I/O shapes.
//
// Each Function carries:
//
//   - a behavioural model (Exec), the ground truth of what the configured
//     logic computes, cross-checked against the Go standard library where
//     one exists;
//   - a resource estimate (LUTs) from which the frame demand follows;
//   - I/O bus widths — the paper's §2.3 data modules transfer in
//     multiples of these;
//   - a fabric cycle model (ExecCycles) for the pipelined hardware core;
//   - a host-software cycle model (SWCycles) for the offload baseline.
//
// Cycle models are engineering estimates for a 100 MHz fabric and a
// 2 GHz scalar host of the paper's era (no AES-NI, no SIMD); the offload
// experiments depend on their relative shape, not their absolute truth.
package algos

import (
	"fmt"

	"agilefpga/internal/fpga"
)

// Function is one member of the algorithm bank. It implements fpga.Core.
type Function struct {
	id   uint16
	name string

	// LUTs is the synthesis resource estimate; the frame demand on a
	// given geometry follows from it.
	LUTs int
	// InBus and OutBus are the data-module interface widths in bytes
	// (paper §2.3: every transfer is a multiple of the bus width).
	InBus  uint16
	OutBus uint16
	// BlockBytes is the natural input granule; Exec zero-pads input to a
	// whole number of blocks.
	BlockBytes int
	// outPerBlock is the output bytes produced per input block; outFixed,
	// when non-zero, overrides it with a fixed output size (digests).
	outPerBlock int
	outFixed    int

	// Fabric cycle model: setup + per-block cost of the pipelined core.
	hwSetup    uint64
	hwPerBlock uint64
	// Host cycle model: setup + per-byte cost of the software routine.
	swSetup   uint64
	swPerByte float64

	run func(in []byte) []byte // operates on block-padded input
}

// ID implements fpga.Core.
func (f *Function) ID() uint16 { return f.id }

// Name implements fpga.Core.
func (f *Function) Name() string { return f.name }

// Blocks reports how many whole blocks cover n input bytes (minimum 1 for
// non-empty input).
func (f *Function) Blocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + f.BlockBytes - 1) / f.BlockBytes
}

// pad returns in zero-padded to a whole number of blocks.
func (f *Function) pad(in []byte) []byte {
	blocks := f.Blocks(len(in))
	padded := make([]byte, blocks*f.BlockBytes)
	copy(padded, in)
	return padded
}

// Exec implements fpga.Core: it runs the behavioural model over the
// block-padded input.
func (f *Function) Exec(in []byte) ([]byte, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("algos: %s: empty input", f.name)
	}
	return f.run(f.pad(in)), nil
}

// OutputLen reports the output size for n input bytes.
func (f *Function) OutputLen(n int) int {
	if f.outFixed > 0 {
		return f.outFixed
	}
	return f.Blocks(n) * f.outPerBlock
}

// ExecCycles implements fpga.Core: fabric cycles for n input bytes.
func (f *Function) ExecCycles(n int) uint64 {
	return f.hwSetup + uint64(f.Blocks(n))*f.hwPerBlock
}

// SWCycles models the host-software baseline cost for n input bytes.
func (f *Function) SWCycles(n int) uint64 {
	return f.swSetup + uint64(f.swPerByte*float64(f.Blocks(n)*f.BlockBytes))
}

// Seed is the synthesis seed for the function's pseudo-netlist.
func (f *Function) Seed() uint64 { return uint64(f.id)*0x9E3779B9 + 0xA6 }

// Function identifiers. Stable: they are baked into ROM records and frame
// signatures.
const (
	IDAES128 uint16 = iota + 1
	IDDES
	IDSHA256
	IDCRC32
	IDFIR
	IDFFT
	IDMatMul
	IDGFMul
	IDModExp
	IDBitonic
	IDSHA1
	IDTDES
	IDRS255
	IDViterbi
	IDMD5
	IDModExp128
)

// Bank returns the full algorithm bank. Functions are stateless; the
// returned slice is freshly allocated but shares the singleton functions.
func Bank() []*Function {
	return []*Function{
		AES128(), DES(), SHA256(), CRC32(), FIR(),
		FFT(), MatMul(), GFMul(), ModExp(), Bitonic(),
		SHA1(), TDES(), RS255(), Viterbi(), MD5(), ModExp128(),
	}
}

// BankSize is the number of functions in the bank.
const BankSize = 16

// ByName finds a bank function by name.
func ByName(name string) (*Function, error) {
	for _, f := range Bank() {
		if f.name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("algos: no function %q in the bank", name)
}

// RegisterAll registers the whole bank with a fabric core registry.
func RegisterAll(reg *fpga.Registry) error {
	for _, f := range Bank() {
		if err := reg.Register(f); err != nil {
			return err
		}
	}
	return nil
}

var _ fpga.Core = (*Function)(nil)
