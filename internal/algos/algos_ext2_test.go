package algos

// Tests for MD5 and the 128-bit modular exponentiation core.

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMD5MatchesStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		want := md5.Sum(msg)
		return md5Digest(msg) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Known RFC 1321 vector on an exactly block-sized input via the
	// Function (which digests the padded input).
	in := []byte("abc")
	padded := make([]byte, 64)
	copy(padded, in)
	want := md5.Sum(padded)
	got, _ := MD5().Exec(in)
	if !bytes.Equal(got, want[:]) {
		t.Error("Function-level MD5 mismatch")
	}
}

func TestMD5ConstantTableBitExact(t *testing.T) {
	// The Taylor-derived constants must match the canonical first and
	// last table entries from RFC 1321.
	md5Once.Do(md5Init)
	known := map[int]uint32{
		0:  0xd76aa478,
		1:  0xe8c7b756,
		15: 0x49b40821,
		31: 0x8d2a4c8a,
		63: 0xeb86d391,
	}
	for i, want := range known {
		if md5K[i] != want {
			t.Errorf("K[%d] = %08x, want %08x", i, md5K[i], want)
		}
	}
}

func u128ToBig(v u128) *big.Int {
	b := new(big.Int).SetUint64(v.hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(v.lo))
}

func TestModExp128MatchesBig(t *testing.T) {
	f := func(bl, bh, el, eh, ml, mh uint64) bool {
		base := u128{bl, bh}
		exp := u128{el, eh % 16} // bound the exponent's high limb to keep runtime sane
		m := u128{ml, mh}
		got := modExp128(base, exp, m)
		if m.isZero() {
			return got.isZero()
		}
		want := new(big.Int).Exp(u128ToBig(base), u128ToBig(exp), u128ToBig(m))
		return u128ToBig(got).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestModExp128KnownValues(t *testing.T) {
	cases := []struct {
		base, exp, mod, want uint64
	}{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{0, 5, 13, 0},
		{7, 1, 13, 7},
		{5, 3, 1, 0},
	}
	for _, c := range cases {
		got := modExp128(u128{lo: c.base}, u128{lo: c.exp}, u128{lo: c.mod})
		if got.lo != c.want || got.hi != 0 {
			t.Errorf("%d^%d mod %d = %d, want %d", c.base, c.exp, c.mod, got.lo, c.want)
		}
	}
}

func TestModExp128ExecFraming(t *testing.T) {
	in := make([]byte, 96) // two records
	// Record 0: 2^10 mod 1000 = 24.
	binary.LittleEndian.PutUint64(in[0:], 2)
	binary.LittleEndian.PutUint64(in[16:], 10)
	binary.LittleEndian.PutUint64(in[32:], 1000)
	// Record 1: zero modulus → zero.
	binary.LittleEndian.PutUint64(in[48:], 9)
	binary.LittleEndian.PutUint64(in[64:], 9)
	out, err := ModExp128().Exec(in)
	if err != nil || len(out) != 32 {
		t.Fatalf("out %d bytes, err %v", len(out), err)
	}
	if binary.LittleEndian.Uint64(out[0:]) != 24 {
		t.Errorf("record 0 = %d", binary.LittleEndian.Uint64(out[0:]))
	}
	if binary.LittleEndian.Uint64(out[16:]) != 0 {
		t.Errorf("record 1 = %d", binary.LittleEndian.Uint64(out[16:]))
	}
}

func TestU128Arithmetic(t *testing.T) {
	f := func(al, ah, bl, bh uint64) bool {
		a, b := u128{al, ah}, u128{bl, bh}
		ba, bb := u128ToBig(a), u128ToBig(b)
		// add128 modulo 2^128
		sum, _ := add128(a, b)
		wantSum := new(big.Int).Add(ba, bb)
		wantSum.Mod(wantSum, new(big.Int).Lsh(big.NewInt(1), 128))
		if u128ToBig(sum).Cmp(wantSum) != 0 {
			return false
		}
		// cmp matches big.Int
		if cmp128(a, b) != ba.Cmp(bb) {
			return false
		}
		// sub when a >= b
		if ba.Cmp(bb) >= 0 {
			if u128ToBig(sub128(a, b)).Cmp(new(big.Int).Sub(ba, bb)) != 0 {
				return false
			}
		}
		// shl1 modulo 2^128
		sh, _ := shl1(a)
		wantSh := new(big.Int).Lsh(ba, 1)
		wantSh.Mod(wantSh, new(big.Int).Lsh(big.NewInt(1), 128))
		return u128ToBig(sh).Cmp(wantSh) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
