package algos

// Tests for the extended bank: SHA-1, 3DES, Reed-Solomon and Viterbi.

import (
	"bytes"
	"crypto/des"
	"crypto/sha1"
	"testing"
	"testing/quick"

	"agilefpga/internal/sim"
)

// --- SHA-1 against crypto/sha1 ---

func TestSHA1MatchesStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		want := sha1.Sum(msg)
		return sha1Digest(msg) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	in := []byte("abc")
	padded := make([]byte, 64)
	copy(padded, in)
	want := sha1.Sum(padded)
	got, _ := SHA1().Exec(in)
	if !bytes.Equal(got, want[:]) {
		t.Error("Function-level SHA-1 mismatch")
	}
}

// --- 3DES against crypto/des ---

func TestTDESMatchesStdlib(t *testing.T) {
	var key []byte
	for _, k := range tdesKeys {
		key = append(key, k[:]...)
	}
	block, err := des.NewTripleDESCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	f := func(in [8]byte) bool {
		want := make([]byte, 8)
		block.Encrypt(want, in[:])
		got, err := TDES().Exec(in[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTDESDiffersFromDES(t *testing.T) {
	in := []byte("8bytes!!")
	a, _ := DES().Exec(in)
	b, _ := TDES().Exec(in)
	if bytes.Equal(a, b) {
		t.Error("3DES output equals single DES")
	}
}

// --- Reed-Solomon ---

func TestRS255SyndromesZero(t *testing.T) {
	rsOnce.Do(rsInit)
	rng := sim.NewRNG(13)
	f := func(seed uint32) bool {
		data := make([]byte, rsK)
		for i := range data {
			data[i] = byte(rng.Uint64() ^ uint64(seed))
		}
		out, err := RS255().Exec(data)
		if err != nil || len(out) != rsN {
			return false
		}
		// Systematic: data passes through unchanged.
		if !bytes.Equal(out[:rsK], data) {
			return false
		}
		// Valid codeword: all 32 syndromes vanish.
		syn := rsSyndromes(out)
		for _, s := range syn {
			if s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRS255DetectsCorruption(t *testing.T) {
	rsOnce.Do(rsInit)
	data := make([]byte, rsK)
	for i := range data {
		data[i] = byte(i * 7)
	}
	out, err := RS255().Exec(data)
	if err != nil {
		t.Fatal(err)
	}
	out[100] ^= 0x01
	syn := rsSyndromes(out)
	nonzero := false
	for _, s := range syn {
		if s != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("single-byte corruption left all syndromes zero")
	}
}

func TestRS255GeneratorRoots(t *testing.T) {
	rsOnce.Do(rsInit)
	// g(α^i) must be zero for i = 0..31 and non-zero at α^32.
	eval := func(power int) byte {
		x := rsExp[power%255]
		var acc byte
		for j := rsParity; j >= 0; j-- {
			acc = rsMul(acc, x) ^ rsGen[j]
		}
		return acc
	}
	for i := 0; i < rsParity; i++ {
		if eval(i) != 0 {
			t.Errorf("g(α^%d) = %d, want 0", i, eval(i))
		}
	}
	if eval(rsParity) == 0 {
		t.Error("g has a spurious 33rd root")
	}
}

func TestRSMulFieldProperties(t *testing.T) {
	rsOnce.Do(rsInit)
	f := func(a, b, c byte) bool {
		if rsMul(a, 1) != a || rsMul(a, 0) != 0 {
			return false
		}
		if rsMul(a, b) != rsMul(b, a) {
			return false
		}
		return rsMul(a, b^c) == rsMul(a, b)^rsMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Viterbi ---

func TestViterbiRoundTrip(t *testing.T) {
	rng := sim.NewRNG(17)
	f := func(seed uint32) bool {
		info := make([]byte, 24) // three blocks
		for i := range info {
			info[i] = byte(rng.Uint64() ^ uint64(seed))
		}
		channel := vitEncodeBits(info)
		got, err := Viterbi().Exec(channel)
		return err == nil && bytes.Equal(got, info)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	// The free distance of the K=7 rate-1/2 code is 10: a couple of
	// well-separated channel-bit flips per block must still decode.
	info := []byte{0xA5, 0x3C, 0x17, 0xF0, 0x42, 0x99, 0x01, 0xEE}
	channel := vitEncodeBits(info)
	if len(channel) != 16 {
		t.Fatalf("channel block is %d bytes", len(channel))
	}
	corrupted := append([]byte(nil), channel...)
	corrupted[2] ^= 0x40  // one channel bit
	corrupted[11] ^= 0x02 // another, far away
	got, err := Viterbi().Exec(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, info) {
		t.Errorf("decoder failed to correct 2 channel errors:\n got %x\nwant %x", got, info)
	}
}

func TestViterbiUncorrectableDegradesGracefully(t *testing.T) {
	// Massive corruption cannot round-trip, but must not panic and must
	// produce the right output length.
	channel := make([]byte, 16)
	for i := range channel {
		channel[i] = 0xFF
	}
	got, err := Viterbi().Exec(channel)
	if err != nil || len(got) != 8 {
		t.Fatalf("got %d bytes, err %v", len(got), err)
	}
}

func TestExtendedBankRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, f := range Bank() {
		names[f.Name()] = true
	}
	for _, want := range []string{"sha1", "tdes", "rs255", "viterbi"} {
		if !names[want] {
			t.Errorf("bank missing %s", want)
		}
	}
	if len(Bank()) != BankSize {
		t.Errorf("bank has %d entries, BankSize says %d", len(Bank()), BankSize)
	}
}
