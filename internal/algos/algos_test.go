package algos

import (
	"bytes"
	"crypto/aes"
	"crypto/des"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"math/big"
	"sort"
	"testing"
	"testing/quick"

	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

func TestBankComplete(t *testing.T) {
	bank := Bank()
	if len(bank) != BankSize {
		t.Fatalf("bank has %d functions, want %d", len(bank), BankSize)
	}
	seenID := map[uint16]bool{}
	seenName := map[string]bool{}
	for _, f := range bank {
		if seenID[f.ID()] || seenName[f.Name()] {
			t.Errorf("duplicate id/name: %d %q", f.ID(), f.Name())
		}
		seenID[f.ID()] = true
		seenName[f.Name()] = true
		if f.LUTs <= 0 || f.InBus == 0 || f.OutBus == 0 || f.BlockBytes <= 0 {
			t.Errorf("%s: degenerate spec %+v", f.Name(), f)
		}
	}
}

func TestRegisterAll(t *testing.T) {
	reg := fpga.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != BankSize {
		t.Errorf("registry has %d cores", reg.Len())
	}
	if err := RegisterAll(reg); err == nil {
		t.Error("double registration accepted")
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("aes128")
	if err != nil || f.ID() != IDAES128 {
		t.Errorf("ByName(aes128) = %v, %v", f, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestEmptyInputRejected(t *testing.T) {
	for _, f := range Bank() {
		if _, err := f.Exec(nil); err == nil {
			t.Errorf("%s: empty input accepted", f.Name())
		}
	}
}

func TestOutputLenMatchesExec(t *testing.T) {
	rng := sim.NewRNG(5)
	for _, f := range Bank() {
		for _, n := range []int{1, f.BlockBytes, f.BlockBytes + 1, 3 * f.BlockBytes} {
			in := make([]byte, n)
			for i := range in {
				in[i] = byte(rng.Uint64())
			}
			out, err := f.Exec(in)
			if err != nil {
				t.Fatalf("%s(%d): %v", f.Name(), n, err)
			}
			if len(out) != f.OutputLen(n) {
				t.Errorf("%s(%d): output %d bytes, OutputLen says %d", f.Name(), n, len(out), f.OutputLen(n))
			}
		}
	}
}

func TestExecDoesNotMutateInput(t *testing.T) {
	rng := sim.NewRNG(6)
	for _, f := range Bank() {
		in := make([]byte, 2*f.BlockBytes)
		for i := range in {
			in[i] = byte(rng.Uint64())
		}
		want := append([]byte(nil), in...)
		if _, err := f.Exec(in); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in, want) {
			t.Errorf("%s: Exec mutated its input", f.Name())
		}
	}
}

func TestExecDeterministic(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, f := range Bank() {
		in := make([]byte, 3*f.BlockBytes)
		for i := range in {
			in[i] = byte(rng.Uint64())
		}
		a, _ := f.Exec(in)
		b, _ := f.Exec(in)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: non-deterministic", f.Name())
		}
	}
}

func TestCycleModelsMonotonic(t *testing.T) {
	for _, f := range Bank() {
		if f.ExecCycles(f.BlockBytes) > f.ExecCycles(100*f.BlockBytes) {
			t.Errorf("%s: ExecCycles not monotonic", f.Name())
		}
		if f.SWCycles(f.BlockBytes) > f.SWCycles(100*f.BlockBytes) {
			t.Errorf("%s: SWCycles not monotonic", f.Name())
		}
		if f.ExecCycles(0) == 0 && f.hwSetup > 0 {
			t.Errorf("%s: setup cost lost", f.Name())
		}
	}
}

// --- AES against crypto/aes ---

func TestAESMatchesStdlib(t *testing.T) {
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		t.Fatal(err)
	}
	f := func(in [16]byte) bool {
		want := make([]byte, 16)
		block.Encrypt(want, in[:])
		got, err := AES128().Exec(in[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAESMultiBlockAndPadding(t *testing.T) {
	block, _ := aes.NewCipher(aesKey[:])
	in := []byte("hello agile co-processor") // 24 bytes → padded to 32
	got, err := AES128().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	padded := make([]byte, 32)
	copy(padded, in)
	want := make([]byte, 32)
	block.Encrypt(want[:16], padded[:16])
	block.Encrypt(want[16:], padded[16:])
	if !bytes.Equal(got, want) {
		t.Error("multi-block AES mismatch")
	}
}

// --- DES against crypto/des ---

func TestDESMatchesStdlib(t *testing.T) {
	block, err := des.NewCipher(desKey[:])
	if err != nil {
		t.Fatal(err)
	}
	f := func(in [8]byte) bool {
		want := make([]byte, 8)
		block.Encrypt(want, in[:])
		got, err := DES().Exec(in[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- SHA-256 against crypto/sha256 ---

func TestSHA256MatchesStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		want := sha256.Sum256(msg)
		got := sha256Digest(msg)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The Function digests the block-padded input.
	in := []byte("abc")
	padded := make([]byte, 64)
	copy(padded, in)
	want := sha256.Sum256(padded)
	got, _ := SHA256().Exec(in)
	if !bytes.Equal(got, want[:]) {
		t.Error("Function-level SHA-256 mismatch")
	}
}

// --- CRC-32 against hash/crc32 ---

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		// Compare on word-padded input (the function's granule).
		n := (len(msg) + 3) / 4 * 4
		padded := make([]byte, n)
		copy(padded, msg)
		want := crc32.ChecksumIEEE(padded)
		got, err := CRC32().Exec(padded)
		if err != nil || len(got) != 4 {
			return len(padded) == 0 // empty input is rejected by design
		}
		return binary.LittleEndian.Uint32(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- FIR properties ---

func TestFIRImpulseResponse(t *testing.T) {
	// An impulse of 1<<14 (0.5 in Q15) must reproduce the coefficients
	// halved, within rounding.
	in := make([]byte, 2*32)
	binary.LittleEndian.PutUint16(in, uint16(int16(1<<14)))
	out, err := FIR().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got := int32(int16(binary.LittleEndian.Uint16(out[2*i:])))
		want := firCoeff[i] / 4 // (1<<14 * c) >> 15 = c/2... see below
		// (1<<14 * c) >> 15 == c >> 1, truncated toward -inf for negatives.
		want = int32(int64(1<<14) * int64(firCoeff[i]) >> 15)
		if got != want {
			t.Errorf("tap %d: got %d, want %d", i, got, want)
		}
	}
}

func TestFIRLinearity(t *testing.T) {
	// FIR(a) + FIR(b) == FIR(a+b) when no saturation occurs.
	rng := sim.NewRNG(8)
	n := 64
	a := make([]byte, 2*n)
	b := make([]byte, 2*n)
	s := make([]byte, 2*n)
	for i := 0; i < n; i++ {
		x := int16(rng.Intn(2000) - 1000)
		y := int16(rng.Intn(2000) - 1000)
		binary.LittleEndian.PutUint16(a[2*i:], uint16(x))
		binary.LittleEndian.PutUint16(b[2*i:], uint16(y))
		binary.LittleEndian.PutUint16(s[2*i:], uint16(x+y))
	}
	fa, _ := FIR().Exec(a)
	fb, _ := FIR().Exec(b)
	fs, _ := FIR().Exec(s)
	for i := 0; i < n; i++ {
		ga := int32(int16(binary.LittleEndian.Uint16(fa[2*i:])))
		gb := int32(int16(binary.LittleEndian.Uint16(fb[2*i:])))
		gs := int32(int16(binary.LittleEndian.Uint16(fs[2*i:])))
		if d := gs - ga - gb; d < -2 || d > 2 { // rounding slack
			t.Fatalf("sample %d: linearity off by %d", i, d)
		}
	}
}

// --- FFT properties ---

func TestFFTConstantInput(t *testing.T) {
	// DC input concentrates all energy in bin 0: X[0] = sum/64 (with the
	// per-stage scaling), all other bins ~0.
	in := make([]byte, fftPoints*4)
	for i := 0; i < fftPoints; i++ {
		binary.LittleEndian.PutUint16(in[4*i:], uint16(int16(6400)))
	}
	out, err := FFT().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	re0 := int16(binary.LittleEndian.Uint16(out[0:]))
	if re0 < 6300 || re0 > 6500 {
		t.Errorf("DC bin = %d, want ≈6400", re0)
	}
	for i := 1; i < fftPoints; i++ {
		re := int16(binary.LittleEndian.Uint16(out[4*i:]))
		im := int16(binary.LittleEndian.Uint16(out[4*i+2:]))
		if re > 8 || re < -8 || im > 8 || im < -8 {
			t.Errorf("bin %d leakage: %d%+di", i, re, im)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 lands in bin 3.
	in := make([]byte, fftPoints*4)
	for i := 0; i < fftPoints; i++ {
		ang := 2 * 3.14159265358979 * 3 * float64(i) / fftPoints
		binary.LittleEndian.PutUint16(in[4*i:], uint16(int16(8000*cosApprox(ang))))
		binary.LittleEndian.PutUint16(in[4*i+2:], uint16(int16(8000*sinApprox(ang))))
	}
	out, _ := FFT().Exec(in)
	best, bestMag := -1, int32(0)
	for i := 0; i < fftPoints; i++ {
		re := int32(int16(binary.LittleEndian.Uint16(out[4*i:])))
		im := int32(int16(binary.LittleEndian.Uint16(out[4*i+2:])))
		mag := re*re + im*im
		if mag > bestMag {
			best, bestMag = i, mag
		}
	}
	if best != 3 {
		t.Errorf("tone landed in bin %d, want 3", best)
	}
}

func cosApprox(x float64) float64 { return sinApprox(x + 3.14159265358979/2) }

func sinApprox(x float64) float64 {
	// Range-reduce and use the math library via a local alias would be
	// simpler, but keep the test self-contained with a Taylor series.
	const pi = 3.14159265358979
	for x > pi {
		x -= 2 * pi
	}
	for x < -pi {
		x += 2 * pi
	}
	x2 := x * x
	return x * (1 - x2/6*(1-x2/20*(1-x2/42*(1-x2/72))))
}

// --- MatMul against big-integer reference ---

func TestMatMulIdentity(t *testing.T) {
	in := make([]byte, matInBytes)
	// A = arbitrary, B = I.
	rng := sim.NewRNG(9)
	for i := 0; i < matN*matN; i++ {
		binary.LittleEndian.PutUint16(in[2*i:], uint16(rng.Uint64()))
	}
	for i := 0; i < matN; i++ {
		binary.LittleEndian.PutUint16(in[2*(matN*matN+i*matN+i):], 1)
	}
	out, err := MatMul().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < matN*matN; i++ {
		a := int32(int16(binary.LittleEndian.Uint16(in[2*i:])))
		c := int32(binary.LittleEndian.Uint32(out[4*i:]))
		if a != c {
			t.Fatalf("A·I ≠ A at %d: %d vs %d", i, a, c)
		}
	}
}

func TestMatMulAssociativityWithBig(t *testing.T) {
	// Cross-check one random product against math/big arithmetic.
	rng := sim.NewRNG(10)
	in := make([]byte, matInBytes)
	for i := 0; i < 2*matN*matN; i++ {
		binary.LittleEndian.PutUint16(in[2*i:], uint16(rng.Uint64()))
	}
	out, _ := MatMul().Exec(in)
	for i := 0; i < matN; i++ {
		for j := 0; j < matN; j++ {
			acc := new(big.Int)
			for k := 0; k < matN; k++ {
				a := int64(int16(binary.LittleEndian.Uint16(in[2*(i*matN+k):])))
				b := int64(int16(binary.LittleEndian.Uint16(in[2*(matN*matN+k*matN+j):])))
				acc.Add(acc, new(big.Int).Mul(big.NewInt(a), big.NewInt(b)))
			}
			got := int32(binary.LittleEndian.Uint32(out[4*(i*matN+j):]))
			want := int32(acc.Int64()) // 32-bit accumulator wraparound
			if want != got {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

// --- GF(2^8) multiplier properties ---

func TestGFMulProperties(t *testing.T) {
	// a·1 = a, a·0 = 0, commutativity, and distributivity over XOR.
	f := func(a, b, c byte) bool {
		if gfMulByte(a, 1) != a || gfMulByte(a, 0) != 0 {
			return false
		}
		if gfMulByte(a, b) != gfMulByte(b, a) {
			return false
		}
		return gfMulByte(a, b^c) == gfMulByte(a, b)^gfMulByte(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMulExecShape(t *testing.T) {
	in := []byte{2, 3, 0x53, 0xCA, 1, 7, 0, 9}
	out, err := GFMul().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{6, gfMulByte(0x53, 0xCA), 7, 0}
	if !bytes.Equal(out, want) {
		t.Errorf("out = %x, want %x", out, want)
	}
}

// --- ModExp against math/big ---

func TestModExpMatchesBig(t *testing.T) {
	f := func(base, exp, mod uint64) bool {
		in := make([]byte, 24)
		binary.LittleEndian.PutUint64(in, base)
		binary.LittleEndian.PutUint64(in[8:], exp)
		binary.LittleEndian.PutUint64(in[16:], mod)
		out, err := ModExp().Exec(in)
		if err != nil {
			return false
		}
		got := binary.LittleEndian.Uint64(out)
		if mod == 0 {
			return got == 0
		}
		want := new(big.Int).Exp(
			new(big.Int).SetUint64(base),
			new(big.Int).SetUint64(exp),
			new(big.Int).SetUint64(mod),
		)
		return got == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Bitonic sorter ---

func TestBitonicSortsBlocks(t *testing.T) {
	rng := sim.NewRNG(11)
	in := make([]byte, 2*bitonicN*4) // two blocks
	for i := 0; i < 2*bitonicN; i++ {
		binary.LittleEndian.PutUint32(in[4*i:], uint32(rng.Uint64()))
	}
	out, err := Bitonic().Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		var vals []uint32
		var orig []uint32
		for i := 0; i < bitonicN; i++ {
			vals = append(vals, binary.LittleEndian.Uint32(out[b*bitonicN*4+4*i:]))
			orig = append(orig, binary.LittleEndian.Uint32(in[b*bitonicN*4+4*i:]))
		}
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
			t.Fatalf("block %d not sorted", b)
		}
		// Same multiset.
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		for i := range vals {
			if vals[i] != orig[i] {
				t.Fatalf("block %d is not a permutation of its input", b)
			}
		}
	}
}

// --- Offload shape: hardware must beat software per byte at scale ---

func TestHardwareBeatsSoftwareAtScale(t *testing.T) {
	// At 100 MHz fabric vs 2 GHz host: hw wins when swCycles/20 >
	// hwCycles. Every bank member offloads well at scale except md5,
	// which is the deliberate negative control: its 64 serially
	// dependent rounds cap the fabric at one block per 66 cycles while
	// its software was designed to be fast — offload cannot pay.
	const ratio = 20 // host clock / fabric clock
	n := 1 << 16
	for _, f := range Bank() {
		hw := f.ExecCycles(n)
		sw := f.SWCycles(n)
		if f.Name() == "md5" {
			if sw/ratio > hw {
				t.Errorf("md5 unexpectedly offloads well — negative control broken")
			}
			continue
		}
		if sw/ratio <= hw {
			t.Errorf("%s: hardware (%d fabric cyc) not faster than software (%d host cyc)", f.Name(), hw, sw)
		}
	}
}
