package algos

import "encoding/binary"

// Bitonic sorting network over blocks of 256 uint32 (little-endian),
// ascending. Sorting networks map beautifully onto fabric — the whole
// compare-exchange schedule is fixed wiring — and terribly onto scalar
// hosts, making this the paper's "computationally intensive function"
// par excellence for data reorganisation.

const bitonicN = 256

func bitonicRun(in []byte) []byte {
	const blockBytes = bitonicN * 4
	out := make([]byte, len(in))
	copy(out, in)
	var v [bitonicN]uint32
	for b := 0; b+blockBytes <= len(out); b += blockBytes {
		for i := 0; i < bitonicN; i++ {
			v[i] = binary.LittleEndian.Uint32(out[b+4*i:])
		}
		// Standard bitonic network: k = subsequence size, j = stride.
		for k := 2; k <= bitonicN; k <<= 1 {
			for j := k >> 1; j > 0; j >>= 1 {
				for i := 0; i < bitonicN; i++ {
					l := i ^ j
					if l > i {
						asc := i&k == 0
						if (asc && v[i] > v[l]) || (!asc && v[i] < v[l]) {
							v[i], v[l] = v[l], v[i]
						}
					}
				}
			}
		}
		for i := 0; i < bitonicN; i++ {
			binary.LittleEndian.PutUint32(out[b+4*i:], v[i])
		}
	}
	return out
}

var bitonicFn = &Function{
	id:          IDBitonic,
	name:        "bitonic256",
	LUTs:        3600, // compare-exchange columns + block RAM glue
	InBus:       4,
	OutBus:      4,
	BlockBytes:  bitonicN * 4,
	outPerBlock: bitonicN * 4,
	hwSetup:     36,  // network depth (one column per cycle)
	hwPerBlock:  292, // 256 loads + 36 column passes per block
	swSetup:     400,
	swPerByte:   20, // comparison sort ≈ 20k host cycles per 1 KiB block
	run:         bitonicRun,
}

// Bitonic is the 256-element bitonic sort core.
func Bitonic() *Function { return bitonicFn }
