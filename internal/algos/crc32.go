package algos

import (
	"encoding/binary"
	"sync"
)

// CRC-32 (IEEE 802.3, reflected). The hardware core folds 32 input bits
// per cycle through a parallel LFSR; the table here is built at init from
// the polynomial, not typed in.

var (
	crcOnce  sync.Once
	crcTable [256]uint32
)

func crcInit() {
	const poly = 0xEDB88320
	for i := range crcTable {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = c>>1 ^ poly
			} else {
				c >>= 1
			}
		}
		crcTable[i] = c
	}
}

func crc32IEEE(p []byte) uint32 {
	crcOnce.Do(crcInit)
	crc := ^uint32(0)
	for _, b := range p {
		crc = crc>>8 ^ crcTable[byte(crc)^b]
	}
	return ^crc
}

var crcFn = &Function{
	id:         IDCRC32,
	name:       "crc32",
	LUTs:       300, // parallel CRC over a 32-bit word
	InBus:      4,
	OutBus:     4,
	BlockBytes: 4,
	outFixed:   4,
	hwSetup:    4,
	hwPerBlock: 1, // one word per cycle
	swSetup:    60,
	swPerByte:  7, // byte-at-a-time table CRC (slicing-by-8 postdates the paper)
	run: func(in []byte) []byte {
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, crc32IEEE(in))
		return out
	},
}

// CRC32 is the CRC-32 (IEEE) checksum core. Its output is 4 bytes (the
// checksum of the word-padded input).
func CRC32() *Function { return crcFn }
