package algos

import (
	"encoding/binary"
	"math"
	"sync"
)

// 64-point radix-2 decimation-in-time FFT over interleaved complex Q15
// samples (re, im as signed 16-bit little-endian). The hardware core is a
// streaming pipeline with one butterfly column per stage; fixed-point
// scaling divides by 2 at every stage so the output cannot overflow.

const fftPoints = 64

var (
	fftOnce sync.Once
	fftTwRe [fftPoints / 2]int32 // Q14 twiddle factors
	fftTwIm [fftPoints / 2]int32
)

func fftInit() {
	for k := 0; k < fftPoints/2; k++ {
		ang := -2 * math.Pi * float64(k) / fftPoints
		fftTwRe[k] = int32(math.Round(math.Cos(ang) * 16384))
		fftTwIm[k] = int32(math.Round(math.Sin(ang) * 16384))
	}
}

// fftBlock transforms one 64-point block in place (Q15, scaled by 1/64).
func fftBlock(re, im []int32) {
	// Bit reversal.
	for i, j := 0, 0; i < fftPoints; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		m := fftPoints >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for size := 2; size <= fftPoints; size <<= 1 {
		half := size >> 1
		step := fftPoints / size
		for start := 0; start < fftPoints; start += size {
			for k := 0; k < half; k++ {
				tw := k * step
				i0, i1 := start+k, start+k+half
				// Complex multiply by the Q14 twiddle.
				tr := (re[i1]*fftTwRe[tw] - im[i1]*fftTwIm[tw]) >> 14
				ti := (re[i1]*fftTwIm[tw] + im[i1]*fftTwRe[tw]) >> 14
				// Butterfly with per-stage scaling (>>1) against overflow.
				re[i1] = (re[i0] - tr) >> 1
				im[i1] = (im[i0] - ti) >> 1
				re[i0] = (re[i0] + tr) >> 1
				im[i0] = (im[i0] + ti) >> 1
			}
		}
	}
}

func fftRun(in []byte) []byte {
	fftOnce.Do(fftInit)
	const blockBytes = fftPoints * 4
	out := make([]byte, len(in))
	var re, im [fftPoints]int32
	for b := 0; b+blockBytes <= len(in); b += blockBytes {
		for i := 0; i < fftPoints; i++ {
			re[i] = int32(int16(binary.LittleEndian.Uint16(in[b+4*i:])))
			im[i] = int32(int16(binary.LittleEndian.Uint16(in[b+4*i+2:])))
		}
		fftBlock(re[:], im[:])
		for i := 0; i < fftPoints; i++ {
			binary.LittleEndian.PutUint16(out[b+4*i:], uint16(int16(re[i])))
			binary.LittleEndian.PutUint16(out[b+4*i+2:], uint16(int16(im[i])))
		}
	}
	return out
}

var fftFn = &Function{
	id:          IDFFT,
	name:        "fft64",
	LUTs:        3000, // 6 butterfly stages + twiddle ROMs
	InBus:       4,    // one complex sample
	OutBus:      4,
	BlockBytes:  fftPoints * 4,
	outPerBlock: fftPoints * 4,
	hwSetup:     24, // pipeline latency
	hwPerBlock:  64, // streaming: one block every 64 cycles
	swSetup:     300,
	swPerByte:   8, // ~2k host cycles per 256-byte block
	run:         fftRun,
}

// FFT is the 64-point fixed-point FFT core.
func FFT() *Function { return fftFn }
