package algos

import "encoding/binary"

// 16-tap FIR low-pass filter over signed 16-bit little-endian samples in
// Q15 fixed point. The hardware core is a fully unrolled transposed-form
// MAC chain producing one sample per cycle; the software baseline does 16
// multiply-accumulates per sample.

// firCoeff is a 16-tap symmetric low-pass kernel in Q15.
var firCoeff = [16]int32{
	-120, -340, -510, -120, 1320, 3680, 6380, 8140,
	8140, 6380, 3680, 1320, -120, -510, -340, -120,
}

func firFilter(in []byte) []byte {
	n := len(in) / 2
	samples := make([]int32, n)
	for i := 0; i < n; i++ {
		samples[i] = int32(int16(binary.LittleEndian.Uint16(in[2*i:])))
	}
	out := make([]byte, len(in))
	for i := 0; i < n; i++ {
		var acc int64
		for t := 0; t < 16; t++ {
			idx := i - t
			if idx < 0 {
				continue // zero initial state
			}
			acc += int64(samples[idx]) * int64(firCoeff[t])
		}
		y := acc >> 15 // Q15 renormalisation
		if y > 32767 {
			y = 32767
		} else if y < -32768 {
			y = -32768
		}
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(y)))
	}
	return out
}

var firFn = &Function{
	id:          IDFIR,
	name:        "fir16",
	LUTs:        1000, // 16 MACs + delay line
	InBus:       2,
	OutBus:      2,
	BlockBytes:  2, // one sample
	outPerBlock: 2,
	hwSetup:     16, // pipeline depth
	hwPerBlock:  1,  // one sample per cycle
	swSetup:     100,
	swPerByte:   12, // ~24 host cycles per sample (16 MACs + loads)
	run:         firFilter,
}

// FIR is the 16-tap Q15 FIR filter core.
func FIR() *Function { return firFn }
