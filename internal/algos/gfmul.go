package algos

// GF(2⁸) multiplier over the AES polynomial. Input blocks are (a, b) byte
// pairs; each output byte is a·b in the field. Finite-field multipliers
// are tiny in LUTs and unbeatably parallel in fabric — the extreme end of
// the offload spectrum.

func gfmulRun(in []byte) []byte {
	out := make([]byte, len(in)/2)
	for i := 0; i+1 < len(in); i += 2 {
		out[i/2] = gfMulByte(in[i], in[i+1])
	}
	return out
}

var gfmulFn = &Function{
	id:          IDGFMul,
	name:        "gfmul8",
	LUTs:        150, // four parallel combinational multipliers
	InBus:       8,
	OutBus:      4,
	BlockBytes:  8, // four pairs
	outPerBlock: 4,
	hwSetup:     2,
	hwPerBlock:  1, // four products per cycle
	swSetup:     40,
	swPerByte:   4, // shift-and-xor loop per pair
	run:         gfmulRun,
}

// GFMul is the GF(2⁸) pairwise multiplier core.
func GFMul() *Function { return gfmulFn }
