package algos

import "encoding/binary"

// 8×8 signed 16-bit matrix multiply. Each input block carries two
// matrices A then B (row-major int16 LE, 128 bytes each); the output
// block is C = A·B in int32 (256 bytes). Accumulation is a 32-bit
// datapath: sums that exceed 32 bits wrap in two's complement, exactly as
// the hardware accumulator register would. The core is an 8×8 systolic
// array retiring one result matrix every 8 cycles once primed.

const (
	matN        = 8
	matInBytes  = 2 * matN * matN * 2 // two int16 matrices
	matOutBytes = matN * matN * 4     // one int32 matrix
)

func matmulRun(in []byte) []byte {
	blocks := len(in) / matInBytes
	out := make([]byte, blocks*matOutBytes)
	for b := 0; b < blocks; b++ {
		src := in[b*matInBytes:]
		dst := out[b*matOutBytes:]
		var a, m [matN][matN]int32
		for i := 0; i < matN; i++ {
			for j := 0; j < matN; j++ {
				a[i][j] = int32(int16(binary.LittleEndian.Uint16(src[2*(i*matN+j):])))
				m[i][j] = int32(int16(binary.LittleEndian.Uint16(src[2*(matN*matN+i*matN+j):])))
			}
		}
		for i := 0; i < matN; i++ {
			for j := 0; j < matN; j++ {
				var acc int32
				for k := 0; k < matN; k++ {
					acc += a[i][k] * m[k][j]
				}
				binary.LittleEndian.PutUint32(dst[4*(i*matN+j):], uint32(acc))
			}
		}
	}
	return out
}

var matmulFn = &Function{
	id:          IDMatMul,
	name:        "matmul8",
	LUTs:        2500, // 64 MAC cells + skew registers
	InBus:       16,   // one matrix row
	OutBus:      32,
	BlockBytes:  matInBytes,
	outPerBlock: matOutBytes,
	hwSetup:     16, // array priming
	hwPerBlock:  8,  // one result matrix every 8 cycles
	swSetup:     200,
	swPerByte:   6, // 512 MACs ≈ 1.5k host cycles per 256-byte block
	run:         matmulRun,
}

// MatMul is the 8×8 matrix multiply core.
func MatMul() *Function { return matmulFn }
