package algos

import (
	"encoding/binary"
	"sync"
)

// MD5 from RFC 1321. Obsolete for security but ubiquitous in 2005
// checksumming pipelines, and its round structure (64 rounds, one per
// cycle) maps neatly onto fabric. The sine-derived constant table is
// computed at init rather than typed in.

var (
	md5Once sync.Once
	md5K    [64]uint32
)

var md5Shift = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

func md5Init() {
	// K[i] = floor(2^32 × |sin(i+1)|), via a small Taylor sine — no math
	// import needed and bit-exact for these arguments after rounding.
	for i := range md5K {
		md5K[i] = uint32(absSin(float64(i+1)) * 4294967296.0)
	}
}

// absSin computes |sin(x)| with range reduction and a 10-term Taylor
// series — absolute error below 1e-14 on the reduced range, far tighter
// than the 2^-32 rounding granularity of the constant table (verified
// bit-exact against crypto/md5 in the tests).
func absSin(x float64) float64 {
	const pi = 3.14159265358979323846
	const twoPi = 2 * pi
	for x >= twoPi {
		x -= twoPi
	}
	if x > pi {
		x -= pi
	}
	return sinTaylor(x)
}

func sinTaylor(x float64) float64 {
	const pi = 3.14159265358979323846
	// Reduce to [0, pi/2] using symmetry.
	if x > pi/2 {
		x = pi - x
	}
	x2 := x * x
	s := x * (1 - x2/6*(1-x2/20*(1-x2/42*(1-x2/72*(1-x2/110*(1-x2/156*(1-x2/210*(1-x2/272*(1-x2/342)))))))))
	if s < 0 {
		return -s
	}
	return s
}

func md5Digest(msg []byte) [16]byte {
	md5Once.Do(md5Init)
	a0, b0, c0, d0 := uint32(0x67452301), uint32(0xefcdab89), uint32(0x98badcfe), uint32(0x10325476)
	bitLen := uint64(len(msg)) * 8
	padded := append(append([]byte(nil), msg...), 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenB [8]byte
	binary.LittleEndian.PutUint64(lenB[:], bitLen)
	padded = append(padded, lenB[:]...)

	rotl := func(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
	for blk := 0; blk < len(padded); blk += 64 {
		var m [16]uint32
		for i := 0; i < 16; i++ {
			m[i] = binary.LittleEndian.Uint32(padded[blk+4*i:])
		}
		a, b, c, d := a0, b0, c0, d0
		for i := 0; i < 64; i++ {
			var f uint32
			var g int
			switch {
			case i < 16:
				f, g = b&c|^b&d, i
			case i < 32:
				f, g = d&b|^d&c, (5*i+1)%16
			case i < 48:
				f, g = b^c^d, (3*i+5)%16
			default:
				f, g = c^(b|^d), (7*i)%16
			}
			f += a + md5K[i] + m[g]
			a, d, c, b = d, c, b, b+rotl(f, md5Shift[i])
		}
		a0 += a
		b0 += b
		c0 += c
		d0 += d
	}
	var out [16]byte
	binary.LittleEndian.PutUint32(out[0:], a0)
	binary.LittleEndian.PutUint32(out[4:], b0)
	binary.LittleEndian.PutUint32(out[8:], c0)
	binary.LittleEndian.PutUint32(out[12:], d0)
	return out
}

var md5Fn = &Function{
	id:         IDMD5,
	name:       "md5",
	LUTs:       1600, // 64-round datapath, lighter than the SHAs
	InBus:      8,
	OutBus:     4,
	BlockBytes: 64,
	outFixed:   16,
	hwSetup:    12,
	hwPerBlock: 66, // one round per cycle
	swSetup:    120,
	swPerByte:  8, // MD5 was designed to be fast in software
	run: func(in []byte) []byte {
		d := md5Digest(in)
		return d[:]
	},
}

// MD5 is the MD5 digest core. Output is the 16-byte digest of the
// block-padded input.
func MD5() *Function { return md5Fn }
