package algos

import (
	"encoding/binary"
	"math/bits"
)

// 64-bit modular exponentiation (base^exp mod m) by square-and-multiply.
// Input blocks are 24-byte records (base, exp, modulus as uint64 LE);
// each output is the 8-byte result. A modulus of zero yields zero rather
// than faulting the fabric. This is the small-RSA/DH-style kernel the
// paper's crypto references offload.

// mulMod64 computes a*b mod m with a 128-bit intermediate.
func mulMod64(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

func modExp64(base, exp, m uint64) uint64 {
	if m == 0 {
		return 0
	}
	if m == 1 {
		return 0
	}
	result := uint64(1 % m)
	base %= m
	for exp > 0 {
		if exp&1 != 0 {
			result = mulMod64(result, base, m)
		}
		base = mulMod64(base, base, m)
		exp >>= 1
	}
	return result
}

func modexpRun(in []byte) []byte {
	blocks := len(in) / 24
	out := make([]byte, blocks*8)
	for b := 0; b < blocks; b++ {
		base := binary.LittleEndian.Uint64(in[24*b:])
		exp := binary.LittleEndian.Uint64(in[24*b+8:])
		m := binary.LittleEndian.Uint64(in[24*b+16:])
		binary.LittleEndian.PutUint64(out[8*b:], modExp64(base, exp, m))
	}
	return out
}

var modexpFn = &Function{
	id:          IDModExp,
	name:        "modexp64",
	LUTs:        1800, // 64-bit Montgomery-style datapath
	InBus:       8,
	OutBus:      8,
	BlockBytes:  24,
	outPerBlock: 8,
	hwSetup:     10,
	hwPerBlock:  100, // ~96 modmuls through a single-cycle-II pipelined Montgomery unit
	swSetup:     150,
	swPerByte:   480, // ~11.5k host cycles per record: 96 modmuls of 64×64→128 mul
	//             plus 128÷64 division on a 32-bit-era scalar host
	run: modexpRun,
}

// ModExp is the 64-bit modular exponentiation core.
func ModExp() *Function { return modexpFn }
