package algos

import (
	"encoding/binary"
	"math/bits"
)

// 128-bit modular exponentiation — the RSA/DH-class kernel one tier above
// modexp64, implemented over two-limb arithmetic with a shift-and-add
// modular multiplier (no big.Int; the tests cross-check against math/big
// independently).
//
// Input blocks are 48-byte records: base, exponent, modulus as 128-bit
// little-endian values; each output is the 16-byte result. A zero modulus
// yields zero.

// u128 is a two-limb little-endian unsigned integer.
type u128 struct {
	lo, hi uint64
}

func (a u128) isZero() bool { return a.lo == 0 && a.hi == 0 }

// cmp128 returns -1, 0, +1 comparing a and b.
func cmp128(a, b u128) int {
	switch {
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// add128 returns a+b and the carry out.
func add128(a, b u128) (u128, uint64) {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	hi, c := bits.Add64(a.hi, b.hi, c)
	return u128{lo, hi}, c
}

// sub128 returns a-b (caller guarantees a >= b).
func sub128(a, b u128) u128 {
	lo, borrow := bits.Sub64(a.lo, b.lo, 0)
	hi, _ := bits.Sub64(a.hi, b.hi, borrow)
	return u128{lo, hi}
}

// shl1 returns a<<1 and the bit shifted out.
func shl1(a u128) (u128, uint64) {
	out := a.hi >> 63
	return u128{a.lo << 1, a.hi<<1 | a.lo>>63}, out
}

// mod128 reduces a modulo m (m non-zero) assuming a < 2m is NOT
// guaranteed; it subtracts while a >= m. Used only on inputs below 2m in
// the hot path, so at most one iteration runs there.
func mod128(a, m u128) u128 {
	for cmp128(a, m) >= 0 {
		a = sub128(a, m)
	}
	return a
}

// mulMod128 computes a*b mod m by shift-and-add: 128 iterations of
// (acc<<1 + bit·a) mod m, each reduced by at most one subtraction — the
// exact structure of the hardware's serial modular multiplier.
func mulMod128(a, b, m u128) u128 {
	a = mod128(a, m)
	var acc u128
	for i := 127; i >= 0; i-- {
		shifted, carry := shl1(acc)
		acc = shifted
		if carry != 0 || cmp128(acc, m) >= 0 {
			acc = sub128(acc, m)
		}
		var bit uint64
		if i >= 64 {
			bit = b.hi >> uint(i-64) & 1
		} else {
			bit = b.lo >> uint(i) & 1
		}
		if bit != 0 {
			sum, c := add128(acc, a)
			acc = sum
			if c != 0 || cmp128(acc, m) >= 0 {
				acc = sub128(acc, m)
			}
		}
	}
	return acc
}

func modExp128(base, exp, m u128) u128 {
	if m.isZero() {
		return u128{}
	}
	if m.lo == 1 && m.hi == 0 {
		return u128{}
	}
	result := u128{lo: 1}
	base = mod128(base, m)
	for i := 0; i < 128; i++ {
		var bit uint64
		if i >= 64 {
			bit = exp.hi >> uint(i-64) & 1
		} else {
			bit = exp.lo >> uint(i) & 1
		}
		if bit != 0 {
			result = mulMod128(result, base, m)
		}
		base = mulMod128(base, base, m)
	}
	return result
}

func get128(p []byte) u128 {
	return u128{binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:])}
}

func put128(p []byte, v u128) {
	binary.LittleEndian.PutUint64(p, v.lo)
	binary.LittleEndian.PutUint64(p[8:], v.hi)
}

var modexp128Fn = &Function{
	id:          IDModExp128,
	name:        "modexp128",
	LUTs:        3200, // 128-bit serial modular multiplier + exponent control
	InBus:       16,
	OutBus:      16,
	BlockBytes:  48,
	outPerBlock: 16,
	hwSetup:     12,
	hwPerBlock:  400, // ~192 modmuls through a 2-cycle-II 128-bit serial unit
	swSetup:     200,
	swPerByte:   1400, // ~67k host cycles per record: 192 modmuls of
	//              multi-precision shift-and-add on a 32-bit-era host
	run: func(in []byte) []byte {
		blocks := len(in) / 48
		out := make([]byte, blocks*16)
		for b := 0; b < blocks; b++ {
			base := get128(in[48*b:])
			exp := get128(in[48*b+16:])
			m := get128(in[48*b+32:])
			put128(out[16*b:], modExp128(base, exp, m))
		}
		return out
	},
}

// ModExp128 is the 128-bit modular exponentiation core.
func ModExp128() *Function { return modexp128Fn }
