package algos

import "sync"

// RS(255,223) systematic Reed-Solomon encoder over GF(2⁸) with the CCSDS
// field polynomial x⁸+x⁴+x³+x²+1 (0x11D) — the deep-space/storage FEC
// workhorse, and a textbook FPGA kernel: the LFSR encoder is 32 GF
// multipliers in a shift chain, one input byte per cycle.
//
// Each 223-byte input block yields a 255-byte codeword (data followed by
// 32 parity bytes). Decoding is out of scope; the syndrome property
// (codeword evaluates to zero at the generator roots) is verified in the
// tests.

const (
	rsN      = 255
	rsK      = 223
	rsParity = rsN - rsK // 32
	rsPoly   = 0x11D
)

var (
	rsOnce sync.Once
	rsExp  [512]byte // α^i, doubled to skip modulo in products
	rsLog  [256]byte
	rsGen  [rsParity + 1]byte // generator polynomial, degree 32, monic
)

func rsInit() {
	x := 1
	for i := 0; i < 255; i++ {
		rsExp[i] = byte(x)
		rsLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= rsPoly
		}
	}
	for i := 255; i < 512; i++ {
		rsExp[i] = rsExp[i-255]
	}
	// g(x) = Π_{i=0..31} (x - α^i)
	rsGen[0] = 1
	for root := 0; root < rsParity; root++ {
		alpha := rsExp[root]
		// Multiply the running polynomial by (x + α^root); work from the
		// high coefficient down so each term is used before overwrite.
		for j := root + 1; j > 0; j-- {
			rsGen[j] = rsGen[j-1] ^ rsMul(rsGen[j], alpha)
		}
		rsGen[0] = rsMul(rsGen[0], alpha)
	}
}

// rsMul multiplies in GF(2⁸) mod 0x11D.
func rsMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return rsExp[int(rsLog[a])+int(rsLog[b])]
}

// rsEncodeBlock appends the 32 parity bytes of a 223-byte data block.
func rsEncodeBlock(dst, data []byte) {
	copy(dst, data[:rsK])
	parity := dst[rsK : rsK+rsParity]
	for i := range parity {
		parity[i] = 0
	}
	// Systematic LFSR division by g(x).
	for _, d := range data[:rsK] {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[rsParity-1] = 0
		if fb != 0 {
			for j := 0; j < rsParity; j++ {
				// g is monic of degree 32; coefficient of x^(31-j).
				parity[j] ^= rsMul(fb, rsGen[rsParity-1-j])
			}
		}
	}
}

// rsSyndromes evaluates the codeword at the generator roots; all-zero
// means a valid codeword. Exported to the tests via the lowercase helper.
func rsSyndromes(code []byte) [rsParity]byte {
	var syn [rsParity]byte
	for i := 0; i < rsParity; i++ {
		var s byte
		alpha := rsExp[i]
		for _, c := range code {
			s = rsMul(s, alpha) ^ c
		}
		syn[i] = s
	}
	return syn
}

var rsFn = &Function{
	id:          IDRS255,
	name:        "rs255",
	LUTs:        2000, // 32 constant GF multipliers + parity register chain
	InBus:       1,
	OutBus:      1,
	BlockBytes:  rsK,
	outPerBlock: rsN,
	hwSetup:     8,
	hwPerBlock:  255, // one byte per cycle plus the 32-cycle parity flush
	swSetup:     200,
	swPerByte:   120, // 32 GF multiply-accumulates per input byte
	run: func(in []byte) []byte {
		rsOnce.Do(rsInit)
		blocks := len(in) / rsK
		out := make([]byte, blocks*rsN)
		for b := 0; b < blocks; b++ {
			rsEncodeBlock(out[b*rsN:], in[b*rsK:])
		}
		return out
	},
}

// RS255 is the RS(255,223) systematic encoder core.
func RS255() *Function { return rsFn }
