package algos

import "encoding/binary"

// SHA-1 from FIPS-180. Kept in the bank alongside SHA-256 because 2005
// IPSec deployments authenticated with HMAC-SHA1; the hardware core
// unrolls five rounds per cycle.

func sha1Digest(msg []byte) [20]byte {
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	bitLen := uint64(len(msg)) * 8
	padded := append(append([]byte(nil), msg...), 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenB [8]byte
	binary.BigEndian.PutUint64(lenB[:], bitLen)
	padded = append(padded, lenB[:]...)

	rotl := func(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
	for blk := 0; blk < len(padded); blk += 64 {
		var w [80]uint32
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(padded[blk+4*i:])
		}
		for i := 16; i < 80; i++ {
			w[i] = rotl(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
		}
		a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
		for i := 0; i < 80; i++ {
			var f, k uint32
			switch {
			case i < 20:
				f, k = b&c|^b&d, 0x5A827999
			case i < 40:
				f, k = b^c^d, 0x6ED9EBA1
			case i < 60:
				f, k = b&c|b&d|c&d, 0x8F1BBCDC
			default:
				f, k = b^c^d, 0xCA62C1D6
			}
			t := rotl(a, 5) + f + e + k + w[i]
			e, d, c, b, a = d, c, rotl(b, 30), a, t
		}
		h[0] += a
		h[1] += b
		h[2] += c
		h[3] += d
		h[4] += e
	}
	var out [20]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

var sha1Fn = &Function{
	id:         IDSHA1,
	name:       "sha1",
	LUTs:       2400, // five unrolled rounds + message schedule
	InBus:      8,
	OutBus:     4,
	BlockBytes: 64,
	outFixed:   20,
	hwSetup:    12,
	hwPerBlock: 20, // 80 rounds at five per cycle
	swSetup:    150,
	swPerByte:  12,
	run: func(in []byte) []byte {
		d := sha1Digest(in)
		return d[:]
	},
}

// SHA1 is the SHA-1 digest core. Output is the 20-byte digest of the
// block-padded input.
func SHA1() *Function { return sha1Fn }
