package algos

import "encoding/binary"

// SHA-256 from FIPS-180. One digest per input (the whole padded input is
// one message); the hardware core iterates the 64-round compression at
// one round per cycle.

var sha256K = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

func sha256Digest(msg []byte) [32]byte {
	h := [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	// Padding: 0x80, zeros, 64-bit big-endian bit length.
	bitLen := uint64(len(msg)) * 8
	padded := append(append([]byte(nil), msg...), 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenB [8]byte
	binary.BigEndian.PutUint64(lenB[:], bitLen)
	padded = append(padded, lenB[:]...)

	rotr := func(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }
	for blk := 0; blk < len(padded); blk += 64 {
		var w [64]uint32
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(padded[blk+4*i:])
		}
		for i := 16; i < 64; i++ {
			s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
			s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
			w[i] = w[i-16] + s0 + w[i-7] + s1
		}
		a, b, c, d, e, f, g, hh := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]
		for i := 0; i < 64; i++ {
			S1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
			ch := e&f ^ ^e&g
			t1 := hh + S1 + ch + sha256K[i] + w[i]
			S0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
			maj := a&b ^ a&c ^ b&c
			t2 := S0 + maj
			hh, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
		}
		h[0] += a
		h[1] += b
		h[2] += c
		h[3] += d
		h[4] += e
		h[5] += f
		h[6] += g
		h[7] += hh
	}
	var out [32]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

var sha256Fn = &Function{
	id:         IDSHA256,
	name:       "sha256",
	LUTs:       2600, // message schedule + compression datapath
	InBus:      8,
	OutBus:     32,
	BlockBytes: 64,
	outFixed:   32, // a digest, regardless of input length
	hwSetup:    16,
	hwPerBlock: 72, // 64 rounds + schedule overlap per 512-bit block
	swSetup:    200,
	swPerByte:  40, // pre-SHA-NI scalar software, era-appropriate
	run: func(in []byte) []byte {
		d := sha256Digest(in)
		return d[:]
	},
}

// SHA256 is the SHA-256 digest core. Its output is always 32 bytes (the
// digest of the block-padded input).
func SHA256() *Function { return sha256Fn }
