package algos

import "encoding/binary"

// Triple DES (EDE with three independent keys), built on the single-DES
// round machinery in des.go. 3DES is the workload the paper's era
// actually offloaded: ~3× the software cost of DES while a pipelined
// hardware ladder barely notices the extra passes.

var tdesKeys = [3][8]byte{
	{'T', 'D', 'E', 'S', '-', 'K', '1', '!'},
	{'T', 'D', 'E', 'S', '-', 'K', '2', '!'},
	{'T', 'D', 'E', 'S', '-', 'K', '3', '!'},
}

// tdesSubkeys[i] is the 16-subkey schedule of key i.
var tdesSubkeys [3][16]uint64

var tdesInitDone = func() bool {
	for i, key := range tdesKeys {
		tdesSubkeys[i] = desKeySchedule(binary.BigEndian.Uint64(key[:]))
	}
	return true
}()

// desKeySchedule derives the 16 round subkeys of a 64-bit key.
func desKeySchedule(key uint64) [16]uint64 {
	var sub [16]uint64
	cd := permute(key, 64, desPC1[:])
	c := uint32(cd>>28) & 0x0FFFFFFF
	d := uint32(cd) & 0x0FFFFFFF
	rot28 := func(v uint32, n byte) uint32 { return (v<<n | v>>(28-byte(n))) & 0x0FFFFFFF }
	for i := 0; i < 16; i++ {
		c = rot28(c, desShifts[i])
		d = rot28(d, desShifts[i])
		sub[i] = permute(uint64(c)<<28|uint64(d), 56, desPC2[:])
	}
	return sub
}

// desRounds runs the 16 Feistel rounds with the given schedule; decrypt
// reverses the subkey order.
func desRounds(block uint64, sub *[16]uint64, decrypt bool) uint64 {
	v := permute(block, 64, desIP[:])
	l, r := uint32(v>>32), uint32(v)
	for i := 0; i < 16; i++ {
		k := sub[i]
		if decrypt {
			k = sub[15-i]
		}
		l, r = r, l^desFeistel(r, k)
	}
	return permute(uint64(r)<<32|uint64(l), 64, desFP[:])
}

func tdesEncryptBlock(dst, src []byte) {
	v := binary.BigEndian.Uint64(src)
	v = desRounds(v, &tdesSubkeys[0], false) // E with K1
	v = desRounds(v, &tdesSubkeys[1], true)  // D with K2
	v = desRounds(v, &tdesSubkeys[2], false) // E with K3
	binary.BigEndian.PutUint64(dst, v)
}

var tdesFn = &Function{
	id:          IDTDES,
	name:        "tdes",
	LUTs:        3600, // three chained 16-stage pipelines
	InBus:       8,
	OutBus:      8,
	BlockBytes:  8,
	outPerBlock: 8,
	hwSetup:     52, // 48-stage pipeline fill
	hwPerBlock:  1,  // fully pipelined: one block per cycle
	swSetup:     400,
	swPerByte:   170, // three DES passes plus gluing
	run: func(in []byte) []byte {
		out := make([]byte, len(in))
		for i := 0; i < len(in); i += 8 {
			tdesEncryptBlock(out[i:], in[i:])
		}
		return out
	},
}

// TDES is the 3DES (EDE3) ECB encryption core.
func TDES() *Function { return tdesFn }
