package algos

import "math/bits"

// Hard-decision Viterbi decoder for the ubiquitous K=7, rate-1/2
// convolutional code (generators 0o171 and 0o133 — Voyager/802.11/DVB).
// Sixty-four add-compare-select units in fabric retire one trellis step
// per cycle; the same trellis costs a scalar host hundreds of operations
// per decoded bit, making Viterbi one of the most offloaded kernels of
// the era.
//
// Framing: each input block is 16 bytes = 128 channel bits = 64 trellis
// steps of 2 bits, decoding to 64 information bits = 8 output bytes. The
// encoder starts each block in state 0; the decoder terminates at the
// best end state (blocks are independent). The last 6 information bits
// of a block are tail bits in a classic deployment; here all 64 are
// decoded and verified by the round-trip tests.

const (
	vitK      = 7
	vitStates = 1 << (vitK - 1) // 64
	vitG1     = 0o171
	vitG2     = 0o133
	vitSteps  = 64 // trellis steps per block
)

// vitEncodeBits runs the convolutional encoder over info bits (MSB-first
// per byte), returning two channel bits per info bit packed four symbol
// pairs to a byte. The encoder restarts in state 0 every 8 info bytes,
// matching the decoder's independent-block framing. Used by the tests
// and the examples to produce decodable channel data.
func vitEncodeBits(info []byte) []byte {
	out := make([]byte, 0, len(info)*2)
	state := 0 // six most recent bits
	for n, b := range info {
		if n%8 == 0 {
			state = 0 // block boundary
		}
		for i := 7; i >= 0; i-- {
			bit := int(b>>uint(i)) & 1
			reg := bit<<6 | state // K=7 register: new bit + 6 state bits
			c1 := bits.OnesCount(uint(reg&vitG1)) & 1
			c2 := bits.OnesCount(uint(reg&vitG2)) & 1
			out = append(out, byte(c1<<1|c2))
			state = reg >> 1
		}
	}
	// Pack 4 symbol pairs per byte, first pair in the high bits.
	packed := make([]byte, (len(out)+3)/4)
	for i, sym := range out {
		packed[i/4] |= sym << uint(6-2*(i%4))
	}
	return packed
}

// vitDecodeBlock decodes one 16-byte channel block into 8 info bytes.
//
// State convention (matching the encoder): state = last six input bits
// with the most recent in bit 5, so the transition on input bit b is
// ns = b<<5 | s>>1. The top bit of any state is therefore the input bit
// that produced it, and each state has exactly two predecessors,
// (ns&31)<<1 and (ns&31)<<1|1 — the classic ACS butterfly.
func vitDecodeBlock(dst, src []byte) {
	const inf = 1 << 20
	var metric [vitStates]int
	for s := 1; s < vitStates; s++ {
		metric[s] = inf // encoder starts in state 0
	}
	var survivors [vitSteps][vitStates]byte // low bit of the chosen predecessor

	// expect[s][b]: channel symbol emitted when input b arrives in state s.
	var expect [vitStates][2]byte
	for s := 0; s < vitStates; s++ {
		for b := 0; b < 2; b++ {
			reg := b<<6 | s
			c1 := bits.OnesCount(uint(reg&vitG1)) & 1
			c2 := bits.OnesCount(uint(reg&vitG2)) & 1
			expect[s][b] = byte(c1<<1 | c2)
		}
	}

	for step := 0; step < vitSteps; step++ {
		sym := src[step/4] >> uint(6-2*(step%4)) & 3
		var next [vitStates]int
		for ns := 0; ns < vitStates; ns++ {
			b := ns >> 5 // the input bit every transition into ns carries
			s0 := (ns & 31) << 1
			s1 := s0 | 1
			c0 := metric[s0] + hamming2(expect[s0][b], sym)
			c1 := metric[s1] + hamming2(expect[s1][b], sym)
			if c0 <= c1 {
				next[ns] = c0
				survivors[step][ns] = 0
			} else {
				next[ns] = c1
				survivors[step][ns] = 1
			}
		}
		metric = next
	}

	// Terminate at the best end state and trace back; the info bit of
	// each step is the top bit of the state the path occupies after it.
	best := 0
	for s := 1; s < vitStates; s++ {
		if metric[s] < metric[best] {
			best = s
		}
	}
	var info [vitSteps]byte
	state := best
	for step := vitSteps - 1; step >= 0; step-- {
		info[step] = byte(state >> 5)
		state = (state&31)<<1 | int(survivors[step][state])
	}
	for i := range dst[:vitSteps/8] {
		dst[i] = 0
	}
	for i, b := range info {
		dst[i/8] |= b << uint(7-i%8)
	}
}

// hamming2 is the Hamming distance between two 2-bit symbols.
func hamming2(a, b byte) int { return bits.OnesCount8((a ^ b) & 3) }

var vitFn = &Function{
	id:          IDViterbi,
	name:        "viterbi",
	LUTs:        4500, // 64 ACS butterflies + path memory
	InBus:       4,
	OutBus:      4,
	BlockBytes:  16, // 128 channel bits
	outPerBlock: 8,  // 64 info bits
	hwSetup:     16,
	hwPerBlock:  100, // one trellis step per cycle + traceback
	swSetup:     500,
	swPerByte:   800, // 64-state ACS sweep per pair of channel bits
	run: func(in []byte) []byte {
		blocks := len(in) / 16
		out := make([]byte, blocks*8)
		for b := 0; b < blocks; b++ {
			vitDecodeBlock(out[b*8:], in[b*16:])
		}
		return out
	},
}

// Viterbi is the K=7 rate-1/2 hard-decision Viterbi decoder core.
func Viterbi() *Function { return vitFn }

// ConvEncode runs the matching K=7 rate-1/2 convolutional encoder over
// info bytes (restarting per 8-byte block, the decoder's framing). The
// encoder is cheap shift-register logic the host runs in software; only
// the decoder is worth offloading. Returned data feeds the viterbi core.
func ConvEncode(info []byte) []byte { return vitEncodeBits(info) }
