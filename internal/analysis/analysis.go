// Package analysis is agilelint's static-analysis framework: a
// self-contained, stdlib-only reimplementation of the shape of
// golang.org/x/tools/go/analysis, sized for this repository. (The
// build environment is hermetic — no module downloads — so the x/tools
// framework itself is not available; the Analyzer/Pass/Diagnostic
// surface below mirrors it closely enough that porting the analyzers
// onto x/tools later is mechanical.)
//
// The suite machine-checks the simulator's core invariants — the
// properties the compiler cannot see and hand-written tests only spot
// check:
//
//   - virtualtime: the simulation domain (internal/sim clock domains
//     and every package whose costs are accounted in virtual time)
//     must never read the wall clock or a globally-seeded RNG.
//   - lockcheck: helpers documented "caller must hold" (or suffixed
//     Locked) must neither re-acquire their guard nor be called from
//     functions that never acquire it.
//   - sentinelerr: sentinel errors are matched with errors.Is, never
//     ==/!=, so wrapping at one layer cannot break matching at another.
//   - chanundermutex: no blocking channel operation or WaitGroup.Wait
//     while holding a mutex — the deadlock class that bites the
//     cluster/server serving layers.
//   - passivemetrics: metrics observation is passive; an observation
//     argument must never advance a virtual clock domain.
//   - framerelease: every pooled wire.Frame acquisition reaches
//     Frame.Release exactly once on every path — no leak, no
//     double-release, no use after release (hard in wire/server).
//   - spanend: every Tracer.StartRoot/StartRemote/StartChild reaches
//     Tracer.End on every return path; zero SpanRefs are no-ops.
//   - ctxflow: request-path functions that receive a context.Context
//     propagate it — no context.Background()/TODO() below the
//     server/router entry points, no nil context arguments.
//   - atomicmix: a variable ever accessed through sync/atomic is never
//     read or written plainly.
//   - lockorder: the static lock-acquisition graph across packages is
//     acyclic, so no two code paths can deadlock by taking the same
//     locks in opposite orders.
//
// The framework additionally reports stale //lint: directives — a
// suppression that suppresses nothing is itself a finding (analyzer
// name staledirective), so exceptions cannot outlive the code they
// excused.
//
// DESIGN.md §11 documents each invariant; cmd/agilelint is the
// multichecker that runs the suite over the tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check over one package, reporting findings
	// through the pass. Exactly one of Run and RunSuite is set.
	Run func(*Pass) error
	// RunSuite performs a whole-program check over every loaded
	// package at once (one pass per package), for invariants — like
	// lock ordering — that only exist across package boundaries.
	// Under the vet-tool protocol the go command hands agilelint one
	// package at a time, so a RunSuite analyzer sees a single pass
	// there and degrades to its intra-package findings.
	RunSuite func([]*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos. Findings may be suppressed by a
// matching //lint: directive (see directives.go).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportHardf records a finding that no directive can suppress — used
// for invariants that are absolute, like wall-clock purity inside the
// simulation domain.
func (p *Pass) ReportHardf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Hard:     true,
	})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Hard findings ignore //lint: directives.
	Hard bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full agilelint suite.
func All() []*Analyzer {
	return []*Analyzer{
		VirtualTime,
		LockCheck,
		SentinelErr,
		ChanUnderMutex,
		PassiveMetrics,
		FrameRelease,
		SpanEnd,
		CtxFlow,
		AtomicMix,
		LockOrder,
	}
}

// RunAnalyzers runs every analyzer over every package, applies
// directive suppression, reports stale directives, and returns the
// surviving diagnostics sorted by position. Test files (_test.go) are
// skipped: the invariants guard production code, and tests
// legitimately use wall clocks and raw comparisons. Analyzers with a
// RunSuite hook run once over all packages together so they can see
// cross-package structure.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	newPass := func(pkg *Package, a *Analyzer) *Pass {
		return &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.sourceFiles(),
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report: func(d Diagnostic) {
				if d.Hard || !pkg.directives.allows(d.Analyzer, d.Pos) {
					out = append(out, d)
				}
			},
		}
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			if err := a.Run(newPass(pkg, a)); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunSuite == nil {
			continue
		}
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			passes[i] = newPass(pkg, a)
		}
		if err := a.RunSuite(passes); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	// A directive that suppressed nothing — for an analyzer that did
	// run — is itself a finding.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		out = append(out, pkg.directives.stale(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// calleeFunc resolves the function or method a call invokes, or nil
// when the callee is not a simple identifier/selector (indirect calls,
// conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath names the package a function belongs to ("" for
// builtins and interface methods of universe types).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexOpVar resolves a call of the form x.Lock() / x.mu.RLock() /
// pkg.mu.Unlock() to the mutex variable (or struct field) it operates
// on, together with the method name. It returns nil when the call is
// not a sync.Mutex / sync.RWMutex locking operation.
func mutexOpVar(info *types.Info, call *ast.CallExpr) (*types.Var, string, ast.Expr) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != "sync" {
		return nil, "", nil
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return nil, "", nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil
	}
	base := ast.Unparen(sel.X)
	switch b := base.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[b]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v, f.Name(), base
			}
		}
		if v, ok := info.Uses[b.Sel].(*types.Var); ok {
			return v, f.Name(), base
		}
	case *ast.Ident:
		if v, ok := info.Uses[b].(*types.Var); ok {
			return v, f.Name(), base
		}
	}
	// The mutex is reached through an expression we cannot name
	// (map index, function result); return a nil var but still
	// classify the operation so callers can be conservative.
	return nil, f.Name(), base
}
