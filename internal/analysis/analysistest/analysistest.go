// Package analysistest runs an analyzer over golden testdata packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of this
// repository's stdlib-only framework.
//
// Testdata lives under internal/analysis/testdata/src/<analyzer>/…
// and is laid out like a miniature module tree (…/internal/mcu and so
// on) so the analyzers' package-classification rules apply unchanged.
// Each expected diagnostic is declared on the offending line:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Every reported diagnostic must match a want expectation on its line
// and every expectation must be matched — unexpected and missing
// findings both fail the test. Directive-allowed lines simply carry no
// want comment: if the directive failed to suppress, the diagnostic is
// unexpected and the test fails.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"agilefpga/internal/analysis"
)

// wantRe matches the expectation list after the want marker; each
// expectation is a backquoted or double-quoted regular expression.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each testdata package (path relative to
// internal/analysis/testdata/src), runs a over it, and diffs the
// diagnostics against the want comments.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	root := moduleRoot(t)
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./internal/analysis/testdata/src/" + d
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				a.Name, w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkgs []*analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := strings.Index(text, "want ")
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[i+len("want "):], -1) {
						raw := m[1]
						if raw == "" {
							raw = m[2]
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						}
						out = append(out, &expectation{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							raw:  raw,
						})
					}
				}
			}
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
