package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicAccessFuncs are the function-style sync/atomic entry points:
// any variable whose address reaches one of these is an atomic
// variable and must never be touched plainly again.
var atomicAccessFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// AtomicMix forbids mixing sync/atomic and plain access to the same
// variable.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: `a variable ever accessed through sync/atomic must never be read or written plainly

Mixed access is a data race the race detector only catches when both
sides execute in one test run: a counter bumped with atomic.AddUint64
on the hot path but read bare in a stats snapshot tears on 32-bit
platforms and is undefined everywhere. Within each package the
analyzer collects every variable whose address is passed to a
function-style sync/atomic call (metrics counters, router
inflight/ejection state and friends) and reports any other plain read
or write of it. The typed atomic.IntNN/UintNN wrappers make this
mistake unrepresentable — prefer them; the analyzer exists for the
function-style residue. A provably single-threaded access (e.g. in a
constructor before the value is shared) carries //lint:allow atomicmix
with a justification.`,
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: variables whose address reaches sync/atomic, and the
	// &-operand nodes themselves (excluded from the plain-access scan).
	type atomicSite struct {
		fn  string
		pos token.Position
	}
	atomicVars := make(map[*types.Var]atomicSite)
	atomicOperands := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || !atomicAccessFuncs[fn.Name()] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			v := addressedVar(pass, addr.X)
			if v == nil {
				return true
			}
			atomicOperands[addr] = true
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = atomicSite{fn: fn.Name(), pos: pass.Fset.Position(call.Pos())}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: any other appearance of an atomic variable is a plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if atomicOperands[n] {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id]
			if !ok {
				return true
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			site, isAtomic := atomicVars[v]
			if !isAtomic {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic.%s (line %d) but read or written plainly here: mixed access is a data race — use the atomic accessors everywhere, or a typed atomic.IntNN",
				id.Name, site.fn, site.pos.Line)
			return true
		})
	}
	return nil
}

// addressedVar resolves the operand of &x / &s.f to the variable or
// field it names.
func addressedVar(pass *Pass, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s := pass.Info.Selections[e]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
