package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanUnderMutex flags blocking channel operations (sends, receives,
// blocking selects) and sync.WaitGroup.Wait calls made while a
// sync.Mutex or sync.RWMutex is held. A goroutine parked on a channel
// keeps the mutex, so every other locker parks behind it — the
// deadlock class that bites serving layers where a queue send and a
// state lock meet (cluster dispatcher, network server). Non-blocking
// attempts (a select with a default case) are legal: that is exactly
// the admission-control pattern internal/server uses.
var ChanUnderMutex = &Analyzer{
	Name: "chanundermutex",
	Doc: `forbid blocking channel operations while holding a mutex

Tracks Lock/RLock…Unlock/RUnlock regions lexically within each
function and reports channel sends, channel receives, selects without
a default case, and sync.WaitGroup.Wait inside a held region. Deferred
unlocks leave the region held (correct: the code after a deferred
unlock still runs under the lock). Function literals are analysed as
separate scopes — a spawned goroutine does not inherit the caller's
locks. Sites that are provably safe (for example a send under an
RWMutex read lock whose writers never block on the channel's consumer)
can carry //lint:allow chanundermutex with a justification.`,
	Run: runChanUnderMutex,
}

// heldMutex records one live acquisition.
type heldMutex struct {
	display string // source rendering, e.g. "cl.stopMu"
	op      string // Lock or RLock
	pos     token.Position
}

type cmWalker struct {
	pass *Pass
}

func runChanUnderMutex(pass *Pass) error {
	w := &cmWalker{pass: pass}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.block(fd.Body, map[*types.Var]*heldMutex{})
			}
		}
	}
	return nil
}

func cloneHeld(h map[*types.Var]*heldMutex) map[*types.Var]*heldMutex {
	c := make(map[*types.Var]*heldMutex, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// block walks a statement list, threading the held set forward.
func (w *cmWalker) block(b *ast.BlockStmt, held map[*types.Var]*heldMutex) {
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

func (w *cmWalker) stmt(s ast.Stmt, held map[*types.Var]*heldMutex) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.lockOp(call, held) {
				return
			}
		}
		w.expr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Arrow, "blocking send on %s", types.ExprString(s.Chan), held)
		}
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.stmt(s.Body, cloneHeld(held))
		w.stmt(s.Else, cloneHeld(held))
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		body := cloneHeld(held)
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if len(held) > 0 {
			if t := w.pass.Info.Types[s.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(s.For, "blocking range over channel %s", types.ExprString(s.X), held)
				}
			}
		}
		w.stmt(s.Body, cloneHeld(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := cloneHeld(held)
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := cloneHeld(held)
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				if !hasDefault && len(held) > 0 {
					w.report(cc.Comm.Pos(), "blocking select case %s", commString(cc.Comm), held)
				}
				// The operands themselves (channel exprs, sent values)
				// are evaluated either way; nested receives in them
				// still block.
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					w.expr(comm.Chan, held)
					w.expr(comm.Value, held)
				case *ast.ExprStmt:
					// the comm receive itself was handled above
				case *ast.AssignStmt:
					for _, e := range comm.Lhs {
						w.expr(e, held)
					}
				}
			}
			inner := cloneHeld(held)
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the region held (correct); any other
		// deferred work runs at return, outside this lexical analysis.
	case *ast.GoStmt:
		// A new goroutine does not inherit the spawner's locks; its
		// body is analysed as a fresh scope via the FuncLit case.
		w.expr(s.Call.Fun, held)
		for _, e := range s.Call.Args {
			w.expr(e, held)
		}
	default:
		// IncDecStmt, BranchStmt, EmptyStmt: nothing blocking.
	}
}

// lockOp updates held if call is a mutex operation, reporting whether
// it consumed the statement.
func (w *cmWalker) lockOp(call *ast.CallExpr, held map[*types.Var]*heldMutex) bool {
	v, op, base := mutexOpVar(w.pass.Info, call)
	if op == "" {
		return false
	}
	if v == nil {
		return true // unnameable mutex; stay conservative and quiet
	}
	switch op {
	case "Lock", "RLock":
		held[v] = &heldMutex{
			display: types.ExprString(base),
			op:      op,
			pos:     w.pass.Fset.Position(call.Pos()),
		}
	case "Unlock", "RUnlock":
		delete(held, v)
	}
	return true
}

// expr scans an expression for blocking operations: receives,
// WaitGroup.Wait calls, and nested function literals (fresh scopes).
func (w *cmWalker) expr(e ast.Expr, held map[*types.Var]*heldMutex) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body, map[*types.Var]*heldMutex{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.report(n.OpPos, "blocking receive from %s", types.ExprString(n.X), held)
			}
		case *ast.CallExpr:
			if f := calleeFunc(w.pass.Info, n); f != nil && len(held) > 0 {
				if funcPkgPath(f) == "sync" && f.Name() == "Wait" {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
						if named, ok := deref(sig.Recv().Type()).(*types.Named); ok && named.Obj().Name() == "WaitGroup" {
							w.report(n.Pos(), "blocking %s", types.ExprString(n.Fun)+"()", held)
						}
					}
				}
			}
		}
		return true
	})
}

func (w *cmWalker) report(pos token.Pos, format, operand string, held map[*types.Var]*heldMutex) {
	// Name one held mutex deterministically (the alphabetically first
	// display string) so diagnostics are stable.
	var h *heldMutex
	for _, cand := range held {
		if h == nil || cand.display < h.display {
			h = cand
		}
	}
	w.pass.Reportf(pos,
		format+" while holding %s (%s at line %d): a parked goroutine keeps the mutex and every other locker deadlocks behind it",
		operand, h.display, h.op, h.pos.Line)
}

func commString(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.SendStmt:
		return "sending on " + types.ExprString(s.Chan)
	case *ast.ExprStmt:
		return types.ExprString(s.X)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return types.ExprString(s.Rhs[0])
		}
	}
	return "communication"
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
