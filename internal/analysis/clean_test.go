package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"agilefpga/internal/analysis"
)

// TestRepositoryIsClean runs the whole suite over the whole module and
// requires zero diagnostics: every invariant violation must be either
// fixed or carry an explicit, justified //lint directive. This is the
// same gate CI applies via cmd/agilelint, kept here so `go test ./...`
// alone catches a regression.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export over the full module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
