package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces deadline and cancellation propagation: a function
// that receives a context.Context must thread it through, never mint a
// fresh root context or pass nil where a context is expected.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: `request-path functions that receive a context must propagate it

The wire protocol carries the caller's deadline on every hop and the
cluster enforces it at admission, in queue and on card — but only if
every layer hands the same context down. A context.Background() (or
TODO()) below an entry point silently detaches the work from the
caller's deadline and cancellation: the router keeps waiting on a
backend the client already abandoned. The analyzer reports
context.Background/context.TODO calls inside any function — or
closure nested in one — that receives a context.Context parameter,
and nil passed as a context.Context argument anywhere. True entry
points (main, connection accept loops, probe goroutines) take no
context parameter and may mint roots freely. Deliberate detachment
(e.g. fire-and-forget cleanup that must outlive the request) carries
//lint:allow ctxflow with a justification.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvTypeName(pass, fd.Recv) + "." + name
			}
			ctxWalk(pass, fd.Body, hasCtxParam(pass, fd.Type), name)
		}
	}
	return nil
}

// ctxWalk scans one function body; inCtx says whether this function
// (or an enclosing one, for literals) receives a context.Context.
func ctxWalk(pass *Pass, body *ast.BlockStmt, inCtx bool, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ctxWalk(pass, n.Body, inCtx || hasCtxParam(pass, n.Type), name)
			return false
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			if inCtx && funcPkgPath(f) == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
				pass.Reportf(n.Pos(),
					"context.%s() inside %s, which receives a context.Context: a fresh root drops the caller's deadline and cancellation — propagate the ctx parameter",
					f.Name(), name)
			}
			reportNilCtxArgs(pass, n, f)
		}
		return true
	})
}

// reportNilCtxArgs flags nil passed where the callee expects a
// context.Context.
func reportNilCtxArgs(pass *Pass, call *ast.CallExpr, f *types.Func) {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || !tv.IsNil() {
			continue
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil && isContextType(pt) {
			pass.Reportf(arg.Pos(),
				"nil passed as the context.Context argument of %s: a nil context panics in the stdlib and carries no deadline — pass the caller's ctx (or context.Background at a true entry point)",
				f.Name())
		}
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// recvTypeName names a method's receiver type for messages.
func recvTypeName(pass *Pass, recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	if tv, ok := pass.Info.Types[recv.List[0].Type]; ok {
		if named, ok := deref(tv.Type).(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return "?"
}
