package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive comments let wall-facing code opt out of a check, leaving
// a greppable, reviewable record of every exception:
//
//	start := time.Now() //lint:wallclock server latency is wall time
//
//	//lint:allow chanundermutex workers drain the queues independently
//	select { ... }
//
// //lint:wallclock is shorthand for //lint:allow virtualtime — the
// directive the virtualtime analyzer names in its message. A directive
// suppresses matching diagnostics on its own line; a directive written
// on its own line additionally covers the whole statement or
// declaration that begins on the next line (so one directive can cover
// a multi-line select or function). Hard diagnostics (wall-clock use
// inside the simulation domain) ignore directives entirely.
var directiveRe = regexp.MustCompile(`^//lint:(wallclock\b|allow\s+([A-Za-z][A-Za-z0-9]*))`)

// lineRange is a directive's reach within one file.
type lineRange struct {
	from, to int
	analyzer string
}

// directiveIndex records where //lint: directives apply, per file.
type directiveIndex struct {
	ranges map[string][]lineRange
}

// parseDirective extracts the analyzer name a comment line allows, or
// "" when the comment is not a directive.
func parseDirective(text string) string {
	m := directiveRe.FindStringSubmatch(text)
	if m == nil {
		return ""
	}
	if strings.HasPrefix(m[1], "wallclock") {
		return "virtualtime"
	}
	return m[2]
}

// buildDirectiveIndex scans every comment in the package's files.
func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{ranges: make(map[string][]lineRange)}
	for _, f := range files {
		fname := fset.Position(f.Package).Filename
		type pending struct {
			line     int
			analyzer string
		}
		var directives []pending
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				line := fset.Position(c.Pos()).Line
				directives = append(directives, pending{line, name})
				idx.ranges[fname] = append(idx.ranges[fname], lineRange{line, line, name})
			}
		}
		if len(directives) == 0 {
			continue
		}
		// Extend standalone directives over the statement or
		// declaration starting on the following line: record the
		// widest node whose first line is directive line + 1.
		want := make(map[int][]pending) // start line -> directives
		for _, d := range directives {
			want[d.line+1] = append(want[d.line+1], d)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := fset.Position(n.Pos())
			ds, ok := want[start.Line]
			if !ok {
				return true
			}
			end := fset.Position(n.End()).Line
			for _, d := range ds {
				idx.ranges[fname] = append(idx.ranges[fname], lineRange{start.Line, end, d.analyzer})
			}
			// Widest node wins; nested nodes on the same line only
			// narrow the range, so stop matching this line.
			delete(want, start.Line)
			return true
		})
	}
	return idx
}

// allows reports whether a directive covers the diagnostic.
func (idx *directiveIndex) allows(analyzer string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	for _, r := range idx.ranges[pos.Filename] {
		if r.analyzer == analyzer && pos.Line >= r.from && pos.Line <= r.to {
			return true
		}
	}
	return false
}
