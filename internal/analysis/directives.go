package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive comments let wall-facing code opt out of a check, leaving
// a greppable, reviewable record of every exception:
//
//	start := time.Now() //lint:wallclock server latency is wall time
//
//	//lint:allow chanundermutex workers drain the queues independently
//	select { ... }
//
// //lint:wallclock is shorthand for //lint:allow virtualtime — the
// directive the virtualtime analyzer names in its message. A directive
// suppresses matching diagnostics on its own line; a directive written
// on its own line additionally covers the whole statement or
// declaration that begins on the next line (so one directive can cover
// a multi-line select or function). Hard diagnostics (wall-clock use
// inside the simulation domain) ignore directives entirely.
//
// A directive that suppresses nothing is itself an error: stale
// suppressions outlive the code they excused and silently blind the
// suite to new violations on the same line. RunAnalyzers reports them
// under the staledirective name whenever the directive's analyzer is
// part of the run.
var directiveRe = regexp.MustCompile(`^//lint:(wallclock\b|allow\s+([A-Za-z][A-Za-z0-9]*))`)

// StaleDirectiveName labels the framework-level diagnostics for
// //lint: directives that suppress zero findings.
const StaleDirectiveName = "staledirective"

// directive is one //lint: comment in a file. One directive may own
// several line ranges (its own line plus the statement it heads), but
// staleness is judged per directive, not per range.
type directive struct {
	analyzer string // canonical analyzer name (wallclock → virtualtime)
	display  string // source spelling, e.g. "//lint:wallclock"
	pos      token.Position
	used     bool
}

// lineRange is a directive's reach within one file.
type lineRange struct {
	from, to int
	dir      *directive
}

// directiveIndex records where //lint: directives apply, per file.
type directiveIndex struct {
	ranges     map[string][]lineRange
	directives []*directive
}

// parseDirective extracts the analyzer name a comment line allows, or
// "" when the comment is not a directive.
func parseDirective(text string) string {
	m := directiveRe.FindStringSubmatch(text)
	if m == nil {
		return ""
	}
	if strings.HasPrefix(m[1], "wallclock") {
		return "virtualtime"
	}
	return m[2]
}

// buildDirectiveIndex scans every comment in the package's files.
func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{ranges: make(map[string][]lineRange)}
	for _, f := range files {
		fname := fset.Position(f.Package).Filename
		var directives []*directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				display := "//lint:allow " + name
				if strings.HasPrefix(c.Text, "//lint:wallclock") {
					display = "//lint:wallclock"
				}
				d := &directive{
					analyzer: name,
					display:  display,
					pos:      fset.Position(c.Pos()),
				}
				directives = append(directives, d)
				idx.directives = append(idx.directives, d)
				idx.ranges[fname] = append(idx.ranges[fname], lineRange{d.pos.Line, d.pos.Line, d})
			}
		}
		if len(directives) == 0 {
			continue
		}
		// Extend standalone directives over the statement or
		// declaration starting on the following line: record the
		// widest node whose first line is directive line + 1.
		want := make(map[int][]*directive) // start line -> directives
		for _, d := range directives {
			want[d.pos.Line+1] = append(want[d.pos.Line+1], d)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := fset.Position(n.Pos())
			ds, ok := want[start.Line]
			if !ok {
				return true
			}
			end := fset.Position(n.End()).Line
			for _, d := range ds {
				idx.ranges[fname] = append(idx.ranges[fname], lineRange{start.Line, end, d})
			}
			// Widest node wins; nested nodes on the same line only
			// narrow the range, so stop matching this line.
			delete(want, start.Line)
			return true
		})
	}
	return idx
}

// allows reports whether a directive covers the diagnostic, marking
// every covering directive used (so staleness reflects what actually
// suppressed something).
func (idx *directiveIndex) allows(analyzer string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	ok := false
	for _, r := range idx.ranges[pos.Filename] {
		if r.dir.analyzer == analyzer && pos.Line >= r.from && pos.Line <= r.to {
			r.dir.used = true
			ok = true
		}
	}
	return ok
}

// stale returns one diagnostic per directive that suppressed nothing,
// restricted to directives naming an analyzer in ran (a directive for
// an analyzer that did not run this invocation cannot be judged).
// Directives in _test.go files are exempt: analyzers skip test files,
// so nothing there could ever mark them used.
func (idx *directiveIndex) stale(ran map[string]bool) []Diagnostic {
	if idx == nil {
		return nil
	}
	var out []Diagnostic
	for _, d := range idx.directives {
		if d.used || !ran[d.analyzer] || strings.HasSuffix(d.pos.Filename, "_test.go") {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: StaleDirectiveName,
			Message:  "stale directive: " + d.display + " suppresses no " + d.analyzer + " diagnostic; delete it so the suppression cannot outlive the code it excused",
		})
	}
	return out
}
