package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

const wirePkgPath = "agilefpga/internal/wire"

// frameAcquireFuncs are the internal/wire entry points that hand the
// caller a pooled-buffer Frame whose Release duty travels with the
// value.
var frameAcquireFuncs = map[string]bool{
	"ReadRequestFrame":  true,
	"ReadResponseFrame": true,
}

// frameHardPackages are the packages where a frame-lifecycle mistake
// corrupts live traffic (the zero-copy read path itself), so no
// directive may excuse one. Membership keys on the last "/internal/"
// path element, like the virtualtime hard zone.
var frameHardPackages = map[string]bool{
	"wire":   true,
	"server": true,
}

// FrameRelease enforces the zero-copy payload lifecycle: every pooled
// wire.Frame acquisition reaches Frame.Release exactly once on every
// path.
var FrameRelease = &Analyzer{
	Name: "framerelease",
	Doc: `every pooled wire.Frame acquisition must reach Frame.Release on all paths

The zero-copy request path (DESIGN §13) aliases request payloads
directly onto pooled frame buffers: wire.ReadRequestFrame and
ReadResponseFrame return a Frame that pins one pool buffer until
Frame.Release re-pools it. A path that drops the frame leaks the
buffer; releasing twice re-pools a buffer another request may already
own; touching a frame after Release reads memory the pool may have
handed out again. The analyzer tracks every acquisition (and every
Frame-typed parameter, since argument passing transfers release duty)
lexically through branches and loops and reports leaks,
double-releases and uses after release. Ownership transfers — passing
the frame to a callee, capturing it in a closure, returning or storing
it — end tracking at the transfer point. Error-path returns guarded by
the acquisition's own error result are exempt: a failed read returns
the zero Frame, whose Release is a no-op. Inside internal/wire and
internal/server the findings are hard — no //lint:allow can excuse
them; elsewhere a justified //lint:allow framerelease is accepted.`,
	Run: runFrameRelease,
}

func runFrameRelease(pass *Pass) error {
	hard := frameHardPackages[internalElem(pass.Pkg.Path())]
	spec := &lifetimeSpec{
		noun: "frame",
		acquire: func(p *Pass, call *ast.CallExpr) string {
			f := calleeFunc(p.Info, call)
			if f == nil || funcPkgPath(f) != wirePkgPath || !frameAcquireFuncs[f.Name()] {
				return ""
			}
			return "wire." + f.Name()
		},
		release:         frameReleaseVar,
		trackParam:      func(p *Pass, t types.Type) bool { return isWireFrameType(t) },
		errGuarded:      true,
		escapeOnArgPass: true,
		report: func(p *Pass, pos token.Pos, format string, args ...any) {
			if hard {
				p.ReportHardf(pos, format+" (hard in internal/wire and internal/server: no directive can excuse a frame lifecycle bug on the zero-copy path)", args...)
			} else {
				p.Reportf(pos, format, args...)
			}
		},
		discardFmt:    "result of %s is discarded: the pooled frame buffer can never be released — bind the Frame and call Release",
		leakReturnFmt: "%s is not released before the return at line %d: the pooled buffer leaks — every acquisition must reach Frame.Release",
		leakEndFmt:    "%s is not released on every path: the pooled buffer leaks — every acquisition must reach Frame.Release",
		doubleFmt:     "frame %s released twice: the second Release re-pools a buffer another request may already own",
		useAfterFmt:   "frame %s used after Release: the pooled buffer may already back another request's payload",
	}
	return runLifetime(pass, spec)
}

// frameReleaseVar resolves fr.Release() to the frame variable, or nil.
func frameReleaseVar(p *Pass, call *ast.CallExpr) *types.Var {
	f := calleeFunc(p.Info, call)
	if f == nil || funcPkgPath(f) != wirePkgPath || f.Name() != "Release" {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isWireFrameType(sig.Recv().Type()) {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if v, ok := p.Info.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isWireFrameType reports whether t (possibly behind a pointer) is
// wire.Frame.
func isWireFrameType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == wirePkgPath && obj.Name() == "Frame"
}
