package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared engine behind the linear-resource analyzers
// (framerelease, spanend): a lexical walker that tracks variables
// holding a "must be consumed exactly once" value — a pooled
// wire.Frame that must reach Release, a trace.SpanRef that must reach
// End — through straight-line code, branches, loops and closures, and
// reports paths on which the resource leaks, is consumed twice, or is
// used after consumption.
//
// The walker is deliberately optimistic at merge points: a resource
// released on only some branches merges to a "maybe released" state
// that reports nothing, and a resource that escapes the function
// (returned, stored into a field or composite, captured by a closure,
// sent on a channel, or — when the spec says argument passing
// transfers ownership — passed to a callee) simply stops being
// tracked. False negatives are acceptable; false positives would
// train people to sprinkle //lint:allow.

// lifetimeSpec parameterizes the walker for one resource kind.
type lifetimeSpec struct {
	// noun names the resource in messages ("frame", "span ref").
	noun string
	// acquire classifies a call as an acquisition, returning a short
	// display name for the acquiring call ("wire.ReadRequestFrame"),
	// or "" when the call does not acquire.
	acquire func(p *Pass, call *ast.CallExpr) string
	// release resolves a call that consumes the resource (method
	// receiver or argument) to the consumed variable, or nil.
	release func(p *Pass, call *ast.CallExpr) *types.Var
	// trackParam, when non-nil, reports whether a parameter of type t
	// carries release duty (ownership transferred from the caller).
	trackParam func(p *Pass, t types.Type) bool
	// errGuarded: acquisitions have the (T, error) shape and return a
	// zero, release-is-a-no-op T alongside a non-nil error, so
	// branches conditioned on the companion error variable are exempt
	// from leak reports.
	errGuarded bool
	// escapeOnArgPass: passing the tracked variable as a plain call
	// argument transfers release duty to the callee.
	escapeOnArgPass bool
	// report emits a diagnostic (the spec decides hard vs soft).
	report func(p *Pass, pos token.Pos, format string, args ...any)

	// Message formats. discardFmt takes the acquire display name;
	// leakReturnFmt takes (origin, return line); leakEndFmt takes
	// (origin); doubleFmt and useAfterFmt take the variable name.
	// An empty useAfterFmt disables use-after-release checking.
	discardFmt    string
	leakReturnFmt string
	leakEndFmt    string
	doubleFmt     string
	useAfterFmt   string
}

// ltState is a tracked resource's consumption state on one path.
type ltState int

const (
	ltLive     ltState = iota // must still be released
	ltMaybe                   // released on some merged-in path, or conditionally zero
	ltDone                    // definitely released
	ltDeferred                // released by a defer: later uses legal, later release double
)

// ltRes is one tracked resource binding.
type ltRes struct {
	display string // variable name
	origin  string // "frame fr from wire.ReadRequestFrame"
	pos     token.Pos
	state   ltState
	guard   *types.Var     // companion error var from the acquire, or nil
	owner   *ast.BlockStmt // block whose end bounds the binding (nil: function body)
	warned  bool           // one use-after-release report per binding
}

type ltScope map[*types.Var]*ltRes

func cloneLtScope(sc ltScope) ltScope {
	c := make(ltScope, len(sc))
	for v, r := range sc {
		r2 := *r
		c[v] = &r2
	}
	return c
}

type ltWalker struct {
	pass     *Pass
	spec     *lifetimeSpec
	curBlock *ast.BlockStmt
}

// runLifetime walks every function in the pass under the spec.
func runLifetime(pass *Pass, spec *lifetimeSpec) error {
	w := &ltWalker{pass: pass, spec: spec}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.funcBody(fd.Type, fd.Body)
			}
		}
	}
	return nil
}

// funcBody analyses one function (or function literal) as a fresh
// scope: resources do not flow in or out except through parameters the
// spec opts into.
func (w *ltWalker) funcBody(ft *ast.FuncType, body *ast.BlockStmt) {
	sc := ltScope{}
	if w.spec.trackParam != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				v, ok := w.pass.Info.Defs[name].(*types.Var)
				if !ok || name.Name == "_" || !w.spec.trackParam(w.pass, v.Type()) {
					continue
				}
				sc[v] = &ltRes{
					display: name.Name,
					origin:  w.spec.noun + " parameter " + name.Name,
					pos:     name.Pos(),
					state:   ltLive,
				}
			}
		}
	}
	prev := w.curBlock
	w.curBlock = nil
	w.block(body, sc)
	w.curBlock = prev
	for v, r := range sc {
		if r.state == ltLive {
			w.spec.report(w.pass, r.pos, w.spec.leakEndFmt, r.origin)
		}
		delete(sc, v)
	}
}

// block walks a statement list, threading the scope forward, then
// closes out resources whose binding is lexically scoped to b.
func (w *ltWalker) block(b *ast.BlockStmt, sc ltScope) {
	prev := w.curBlock
	w.curBlock = b
	for _, s := range b.List {
		w.stmt(s, sc)
	}
	w.curBlock = prev
	for v, r := range sc {
		if r.owner == b {
			if r.state == ltLive {
				w.spec.report(w.pass, r.pos, w.spec.leakEndFmt, r.origin)
			}
			delete(sc, v)
		}
	}
}

func (w *ltWalker) stmt(s ast.Stmt, sc ltScope) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s, sc)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, sc)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.releaseOp(call, sc, false) {
				return
			}
			if name := w.spec.acquire(w.pass, call); name != "" {
				w.spec.report(w.pass, call.Pos(), w.spec.discardFmt, name)
				w.callArgs(call, sc)
				return
			}
		}
		w.expr(s.X, sc)
	case *ast.AssignStmt:
		w.assign(s, sc)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs, sc)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if v := w.plainIdentVar(e); v != nil {
				if _, tracked := sc[v]; tracked {
					delete(sc, v) // returned to the caller: duty transfers
					continue
				}
			}
			w.expr(e, sc)
		}
		line := w.pass.Fset.Position(s.Pos()).Line
		for _, r := range sc {
			if r.state == ltLive {
				w.spec.report(w.pass, r.pos, w.spec.leakReturnFmt, r.origin, line)
				r.state = ltMaybe // one report per binding per return
			}
		}
	case *ast.DeferStmt:
		if w.releaseOp(s.Call, sc, true) {
			return
		}
		w.expr(s.Call.Fun, sc)
		w.callArgs(s.Call, sc)
	case *ast.GoStmt:
		w.expr(s.Call.Fun, sc)
		w.callArgs(s.Call, sc)
	case *ast.SendStmt:
		w.expr(s.Chan, sc)
		if v := w.plainIdentVar(s.Value); v != nil {
			if _, tracked := sc[v]; tracked {
				delete(sc, v) // sent to a consumer: duty transfers
				return
			}
		}
		w.expr(s.Value, sc)
	case *ast.IncDecStmt:
		w.expr(s.X, sc)
	case *ast.IfStmt:
		w.stmt(s.Init, sc)
		w.expr(s.Cond, sc)
		body := cloneLtScope(sc)
		w.guardWeaken(s.Cond, body)
		var contribs []ltScope
		w.stmt(s.Body, body)
		if !ltTerminates(s.Body) {
			contribs = append(contribs, body)
		}
		if s.Else != nil {
			els := cloneLtScope(sc)
			w.guardWeaken(s.Cond, els)
			w.stmt(s.Else, els)
			if !ltTerminates(s.Else) {
				contribs = append(contribs, els)
			}
		} else {
			contribs = append(contribs, cloneLtScope(sc)) // condition-false path
		}
		w.merge(sc, contribs)
	case *ast.ForStmt:
		w.stmt(s.Init, sc)
		w.expr(s.Cond, sc)
		skip := cloneLtScope(sc)
		body := cloneLtScope(sc)
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
		w.merge(sc, []ltScope{body, skip})
	case *ast.RangeStmt:
		w.expr(s.X, sc)
		skip := cloneLtScope(sc)
		body := cloneLtScope(sc)
		w.stmt(s.Body, body)
		w.merge(sc, []ltScope{body, skip})
	case *ast.SwitchStmt:
		w.stmt(s.Init, sc)
		w.expr(s.Tag, sc)
		w.caseClauses(s.Body, sc, false)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, sc)
		if assign, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, e := range assign.Rhs {
				w.expr(e, sc)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			w.expr(es.X, sc)
		}
		w.caseClauses(s.Body, sc, false)
	case *ast.SelectStmt:
		w.caseClauses(s.Body, sc, true)
	default:
		// BranchStmt, EmptyStmt: nothing to track.
	}
}

// caseClauses walks switch/select bodies: each clause is a branch
// clone; a switch without a default additionally contributes the
// no-case-matched path. A select executes exactly one clause.
func (w *ltWalker) caseClauses(body *ast.BlockStmt, sc ltScope, isSelect bool) {
	var contribs []ltScope
	hasDefault := false
	for _, c := range body.List {
		var clauseBody []ast.Stmt
		inner := cloneLtScope(sc)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.expr(e, sc)
			}
			clauseBody = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			w.stmt(cc.Comm, inner)
			clauseBody = cc.Body
		default:
			continue
		}
		for _, st := range clauseBody {
			w.stmt(st, inner)
		}
		terminated := false
		if n := len(clauseBody); n > 0 {
			terminated = ltTerminates(clauseBody[n-1])
		}
		if !terminated {
			contribs = append(contribs, inner)
		}
	}
	if !isSelect && !hasDefault {
		contribs = append(contribs, cloneLtScope(sc))
	}
	w.merge(sc, contribs)
}

// merge folds branch results back into the parent scope. A resource
// gone from any contributing branch escaped there — stop tracking it;
// states that disagree merge to ltMaybe (report nothing rather than
// report a false leak or false double-release).
func (w *ltWalker) merge(parent ltScope, contribs []ltScope) {
	if len(contribs) == 0 {
		return // every branch terminated; following code is unreachable
	}
	keys := make(map[*types.Var]bool)
	for v := range parent {
		keys[v] = true
	}
	for _, c := range contribs {
		for v := range c {
			keys[v] = true
		}
	}
	for v := range keys {
		var sample *ltRes
		state := ltLive
		present := 0
		for _, c := range contribs {
			r, ok := c[v]
			if !ok {
				continue
			}
			if present == 0 {
				sample, state = r, r.state
			} else if r.state != state {
				state = ltMaybe
			}
			present++
		}
		switch {
		case present == 0:
			delete(parent, v)
		case present < len(contribs):
			if _, had := parent[v]; had {
				delete(parent, v) // escaped on some path
				continue
			}
			state = ltMaybe // bound on some paths only
			fallthrough
		default:
			r2 := *sample
			r2.state = state
			parent[v] = &r2
		}
	}
}

// ltTerminates reports (lexically, conservatively) whether control
// cannot fall out of the bottom of s into the statement after the
// enclosing branch.
func ltTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return ltTerminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && ltTerminates(s.Body) && ltTerminates(s.Else)
	case *ast.LabeledStmt:
		return ltTerminates(s.Stmt)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// assign handles acquisitions, overwrites and stores.
func (w *ltWalker) assign(s *ast.AssignStmt, sc ltScope) {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if name := w.spec.acquire(w.pass, call); name != "" {
				w.callArgs(call, sc)
				w.bindAcquire(s, call, name, sc)
				return
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			w.assignOne(s.Lhs[i], s.Rhs[i], sc)
		}
		return
	}
	for _, e := range s.Rhs {
		w.expr(e, sc)
	}
	for _, l := range s.Lhs {
		w.overwrite(l, sc)
	}
}

func (w *ltWalker) valueSpec(vs *ast.ValueSpec, sc ltScope) {
	if len(vs.Values) == 1 && len(vs.Names) >= 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			if name := w.spec.acquire(w.pass, call); name != "" {
				w.callArgs(call, sc)
				w.bindIdent(vs.Names[0], call, name, nil, sc)
				return
			}
		}
	}
	for _, e := range vs.Values {
		w.expr(e, sc)
	}
}

// assignOne handles one lhs := rhs pair of a parallel assignment.
func (w *ltWalker) assignOne(lhs, rhs ast.Expr, sc ltScope) {
	if v := w.plainIdentVar(rhs); v != nil {
		if r, tracked := sc[v]; tracked {
			if w.plainIdent(lhs) == nil {
				// stored into a field, element or dereference: escapes
				delete(sc, v)
				w.expr(lhs, sc)
				return
			}
			w.useCheck(rhs.Pos(), r)
			// a plain var-to-var copy keeps duty with the original
		}
	} else {
		w.expr(rhs, sc)
	}
	w.overwrite(lhs, sc)
}

// overwrite drops tracking for a variable assigned a non-acquire
// value (e.g. the router's passthrough SpanRef literal).
func (w *ltWalker) overwrite(lhs ast.Expr, sc ltScope) {
	if id := w.plainIdent(lhs); id != nil {
		if v := w.identVar(id); v != nil {
			delete(sc, v)
		}
		return
	}
	w.expr(lhs, sc)
}

func (w *ltWalker) bindAcquire(s *ast.AssignStmt, call *ast.CallExpr, name string, sc ltScope) {
	var guard *types.Var
	if w.spec.errGuarded && len(s.Lhs) == 2 {
		if id := w.plainIdent(s.Lhs[1]); id != nil && id.Name != "_" {
			if v := w.identVar(id); v != nil && isErrorType(v.Type()) {
				guard = v
			}
		}
	}
	id := w.plainIdent(s.Lhs[0])
	if id == nil {
		// Stored straight into a field or element: escapes at birth.
		w.expr(s.Lhs[0], sc)
		return
	}
	if id.Name == "_" {
		w.spec.report(w.pass, call.Pos(), w.spec.discardFmt, name)
		return
	}
	w.bindIdent(id, call, name, guard, sc)
	if s.Tok != token.DEFINE {
		if r := sc[w.identVar(id)]; r != nil {
			r.owner = nil // pre-declared var: binding outlives this block
		}
	}
}

func (w *ltWalker) bindIdent(id *ast.Ident, call *ast.CallExpr, name string, guard *types.Var, sc ltScope) {
	v := w.identVar(id)
	if v == nil {
		return
	}
	owner := w.curBlock
	if _, defined := w.pass.Info.Defs[id]; !defined {
		owner = nil
	}
	sc[v] = &ltRes{
		display: id.Name,
		origin:  w.spec.noun + " " + id.Name + " from " + name,
		pos:     call.Pos(),
		state:   ltLive,
		guard:   guard,
		owner:   owner,
	}
}

// releaseOp applies a release call; reports double releases.
func (w *ltWalker) releaseOp(call *ast.CallExpr, sc ltScope, deferred bool) bool {
	v := w.spec.release(w.pass, call)
	if v == nil {
		return false
	}
	r, tracked := sc[v]
	if tracked {
		if r.state == ltDone || r.state == ltDeferred {
			w.spec.report(w.pass, call.Pos(), w.spec.doubleFmt, r.display)
		}
		if deferred {
			r.state = ltDeferred
		} else {
			r.state = ltDone
		}
	}
	for _, a := range call.Args {
		if av := w.plainIdentVar(a); av != nil && av == v {
			continue // the released operand itself
		}
		w.expr(a, sc)
	}
	return true
}

// callArgs walks a call's arguments: a tracked variable passed plainly
// either escapes (ownership transfer) or is a use, per the spec.
func (w *ltWalker) callArgs(call *ast.CallExpr, sc ltScope) {
	for _, a := range call.Args {
		if v := w.plainIdentVar(a); v != nil {
			if r, tracked := sc[v]; tracked {
				if w.spec.escapeOnArgPass {
					delete(sc, v)
				} else {
					w.useCheck(a.Pos(), r)
				}
				continue
			}
		}
		w.expr(a, sc)
	}
}

// expr scans an expression for uses, escapes, nested acquisitions and
// function literals.
func (w *ltWalker) expr(e ast.Expr, sc ltScope) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v := w.identVar(e); v != nil {
			if r, tracked := sc[v]; tracked {
				w.useCheck(e.Pos(), r)
			}
		}
	case *ast.FuncLit:
		w.escapeCaptured(e, sc)
		w.funcBody(e.Type, e.Body)
	case *ast.CallExpr:
		if w.releaseOp(e, sc, false) {
			return
		}
		if w.spec.acquire(w.pass, e) != "" {
			// Acquired in expression position: the result flows into
			// the surrounding expression, transferring ownership.
			w.callArgs(e, sc)
			return
		}
		w.expr(e.Fun, sc)
		w.callArgs(e, sc)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if v := w.plainIdentVar(e.X); v != nil {
				if _, tracked := sc[v]; tracked {
					delete(sc, v) // its address escapes
					return
				}
			}
		}
		w.expr(e.X, sc)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Key, sc)
				val = kv.Value
			}
			if v := w.plainIdentVar(val); v != nil {
				if _, tracked := sc[v]; tracked {
					delete(sc, v) // stored into a composite: escapes
					continue
				}
			}
			w.expr(val, sc)
		}
	case *ast.SelectorExpr:
		w.expr(e.X, sc)
	case *ast.ParenExpr:
		w.expr(e.X, sc)
	case *ast.StarExpr:
		w.expr(e.X, sc)
	case *ast.IndexExpr:
		w.expr(e.X, sc)
		w.expr(e.Index, sc)
	case *ast.IndexListExpr:
		w.expr(e.X, sc)
		for _, i := range e.Indices {
			w.expr(i, sc)
		}
	case *ast.SliceExpr:
		w.expr(e.X, sc)
		w.expr(e.Low, sc)
		w.expr(e.High, sc)
		w.expr(e.Max, sc)
	case *ast.BinaryExpr:
		w.expr(e.X, sc)
		w.expr(e.Y, sc)
	case *ast.TypeAssertExpr:
		w.expr(e.X, sc)
	case *ast.KeyValueExpr:
		w.expr(e.Key, sc)
		w.expr(e.Value, sc)
	}
}

// escapeCaptured drops tracking for every resource a function literal
// captures: the closure now shares release duty and the lexical walk
// cannot order its execution.
func (w *ltWalker) escapeCaptured(lit *ast.FuncLit, sc ltScope) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
			delete(sc, v)
		}
		return true
	})
}

func (w *ltWalker) useCheck(pos token.Pos, r *ltRes) {
	if w.spec.useAfterFmt == "" || r.warned || r.state != ltDone {
		return
	}
	w.spec.report(w.pass, pos, w.spec.useAfterFmt, r.display)
	r.warned = true
}

// plainIdent unwraps e to a bare identifier, or nil.
func (w *ltWalker) plainIdent(e ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

// plainIdentVar resolves e to the variable it names, when e is a bare
// identifier.
func (w *ltWalker) plainIdentVar(e ast.Expr) *types.Var {
	id := w.plainIdent(e)
	if id == nil {
		return nil
	}
	return w.identVar(id)
}

func (w *ltWalker) identVar(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := w.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// guardWeaken downgrades resources whose companion error variable the
// branch condition mentions: inside such a branch the resource may be
// the zero value (acquire failed), so a leak report would be false.
func (w *ltWalker) guardWeaken(cond ast.Expr, sc ltScope) {
	if !w.spec.errGuarded || cond == nil {
		return
	}
	mentioned := make(map[*types.Var]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
				mentioned[v] = true
			}
		}
		return true
	})
	for _, r := range sc {
		if r.guard != nil && mentioned[r.guard] && r.state == ltLive {
			r.state = ltMaybe
		}
	}
}
