package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives *directiveIndex
}

// sourceFiles returns the package's non-test files. Analyzers only see
// these: the invariants guard production code, and tests legitimately
// use wall clocks, raw comparisons, and ad-hoc lifecycles.
func (p *Package) sourceFiles() []*ast.File {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load resolves the package patterns with the go tool and type-checks
// every matched (non-dependency) package. Dependencies — including the
// standard library — are resolved from compiler export data, which
// `go list -export` materialises in the build cache, so loading works
// fully offline and never re-type-checks the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		pkg, info, err := typecheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:       p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
			directives: buildDirectiveIndex(fset, files),
		})
	}
	return pkgs, nil
}

// LoadFiles type-checks one package given explicit files and an export
// lookup — the entry point the vettool protocol uses, where the go
// command hands agilelint the file list and the export data of every
// import.
func LoadFiles(importPath string, filenames []string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, info, err := typecheck(fset, importPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:       importPath,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
		directives: buildDirectiveIndex(fset, files),
	}, nil
}

func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
