package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the repository's locked-helper convention: a
// method suffixed "Locked", or whose doc comment says the caller must
// hold a mutex, runs with its guard already held. Such a helper must
// not re-acquire the guard (instant deadlock on Go's non-reentrant
// mutexes), and — within the package, where the call graph is visible
// — it must only be called from functions that either are locked
// helpers of the same guard themselves or acquire the guard before the
// call.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: `check the "caller must hold the lock" convention

Methods suffixed Locked, or documented "caller must hold …" / "with
… held", are helpers that run under an already-held mutex (the
per-card lock on core.CoProcessor is the motivating case: card state
must only move under cp.mu). The analyzer resolves each helper's
guard — the receiver's sync.Mutex/RWMutex field — then checks that the
helper never re-acquires it and that every intra-package caller either
holds the guard convention itself or lexically acquires the guard
before the call.`,
	Run: runLockCheck,
}

// lockedDocRe recognises the doc-comment forms of the convention.
var lockedDocRe = regexp.MustCompile(`(?i)\bcallers?\s+(?:must\s+)?hold\b|\bwith\s+\S+\s+held\b|\bwhile\s+holding\b|\bmu\s+held\b`)

// lockedFunc is one helper that must run under its guard.
type lockedFunc struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	guard *types.Var // mutex field of the receiver struct
	recv  string     // receiver name, for messages
}

func runLockCheck(pass *Pass) error {
	locked := make(map[*types.Func]*lockedFunc)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if lf := classifyLocked(pass, fd); lf != nil {
				locked[lf.fn] = lf
			}
		}
	}

	// A helper documented to run under the guard must not acquire it.
	for _, lf := range locked {
		guard := lf.guard
		ast.Inspect(lf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			v, op, base := mutexOpVar(pass.Info, call)
			if v == nil || v != guard {
				return true
			}
			if op == "Lock" || op == "RLock" {
				pass.Reportf(call.Pos(),
					"%s runs with %s.%s held (per its name/doc) but calls %s.%s() itself — deadlock on a non-reentrant mutex",
					lf.fn.Name(), lf.recv, guard.Name(), types.ExprString(base), op)
			}
			return true
		})
	}

	// Every intra-package caller of a locked helper must hold the guard.
	for _, fd := range decls {
		caller, _ := pass.Info.Defs[fd.Name].(*types.Func)
		callerLocked := locked[caller]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			lf, ok := locked[callee]
			if !ok {
				return true
			}
			if callerLocked != nil && callerLocked.guard == lf.guard {
				return true // locked helper calling a sibling under the same guard
			}
			if acquiresBefore(pass.Info, fd.Body, lf.guard, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s, which requires holding %s.%s, but %s never acquires it before the call",
				callee.Name(), lf.recv, lf.guard.Name(), fd.Name.Name)
			return true
		})
	}
	return nil
}

// classifyLocked decides whether fd is a locked helper and resolves
// its guard. Helpers whose guard cannot be determined (no receiver, no
// mutex field, ambiguous field not named in the doc) are skipped — the
// analyzer only checks what it can prove.
func classifyLocked(pass *Pass, fd *ast.FuncDecl) *lockedFunc {
	name := fd.Name.Name
	byName := strings.HasSuffix(name, "Locked")
	byDoc := fd.Doc != nil && lockedDocRe.MatchString(fd.Doc.Text())
	if !byName && !byDoc {
		return nil
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	fields := mutexFieldsOf(sig.Recv().Type())
	if len(fields) == 0 {
		return nil
	}
	guard := fields[0]
	if len(fields) > 1 {
		guard = nil
		if fd.Doc != nil {
			doc := fd.Doc.Text()
			for _, f := range fields {
				if regexp.MustCompile(`\b` + regexp.QuoteMeta(f.Name()) + `\b`).MatchString(doc) {
					guard = f
					break
				}
			}
		}
		if guard == nil {
			return nil
		}
	}
	recv := "receiver"
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	return &lockedFunc{fn: fn, decl: fd, guard: guard, recv: recv}
}

// mutexFieldsOf lists the sync.Mutex / sync.RWMutex fields of the
// receiver's struct type.
func mutexFieldsOf(t types.Type) []*types.Var {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); isMutexType(f.Type()) {
			out = append(out, f)
		}
	}
	return out
}

// acquiresBefore reports whether body contains a Lock/RLock on guard
// lexically before pos. Lexical order is a heuristic — it accepts an
// acquire on a different instance of the same struct — but it reliably
// catches the real failure mode: calling a locked helper from a
// function that never takes the lock at all.
func acquiresBefore(info *types.Info, body *ast.BlockStmt, guard *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() >= pos {
			return true
		}
		v, op, _ := mutexOpVar(info, call)
		if v == guard && (op == "Lock" || op == "RLock") {
			found = true
		}
		return true
	})
	return found
}
