package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the static lock-acquisition graph — which mutexes
// are acquired while which others are held, across every analysed
// package at once — and rejects cycles: two paths taking the same pair
// of locks in opposite orders deadlock the first time they interleave.
// It generalises lockcheck (which checks one lock's caller-must-hold
// contract) to the ordering relation between different locks.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: `the lock-acquisition order across cluster/server/router/client must be acyclic

Every Lock/RLock acquired while another mutex is held adds an edge
held→acquired to a global lock-order graph. Edges come from direct
lexical nesting and from calls: a function's transitive lock footprint
(what it or its callees acquire synchronously) is propagated to every
call site made under a held lock, so an ordering through a call chain
— cluster holds stopMu and calls metrics.Registry.Counter, which
takes the registry mutex — is one edge, the same as a lexical pair.
Goroutine bodies, deferred calls and uninvoked function literals are
excluded (they run outside the acquiring path). Lock identity is the
mutex variable: a struct field is one lock class per owning type, a
package-level or local mutex is its own class. A cycle is reported at
every participating acquisition site. Under go vet's one-package-at-a-
time protocol only intra-package edges are visible; the standalone
run (CI's agilelint ./...) sees the whole graph. Suppress a
demonstrably unreachable pairing with //lint:allow lockorder and a
justification.`,
	RunSuite: runLockOrder,
}

// loLockRef is one live acquisition while walking.
type loLockRef struct {
	key     string
	display string
	pos     token.Pos
}

// loCallSite is a resolvable call made while holding locks.
type loCallSite struct {
	callee string // types.Func FullName
	held   []loLockRef
	pass   *Pass
	pos    token.Pos
}

// loFuncInfo summarises one function for interprocedural propagation.
type loFuncInfo struct {
	locks map[string]bool // lock keys acquired directly (synchronous code only)
	calls map[string]bool // callee FullNames (synchronous code only)
}

// loEdge is the earliest witness for one held→acquired pair.
type loEdge struct {
	from, to    string
	fromDisplay string
	toDisplay   string
	pass        *Pass
	pos         token.Pos
}

type loCollector struct {
	infos   map[string]*loFuncInfo
	display map[string]string // lock key → display name
	sites   []loCallSite
	edges   map[[2]string]*loEdge
}

func runLockOrder(passes []*Pass) error {
	c := &loCollector{
		infos:   make(map[string]*loFuncInfo),
		display: make(map[string]string),
		edges:   make(map[[2]string]*loEdge),
	}
	// Phase 1: per-function walks — direct edges, call sites, summaries.
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				info := &loFuncInfo{locks: make(map[string]bool), calls: make(map[string]bool)}
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					name := fn.FullName()
					if prev, ok := c.infos[name]; ok {
						info = prev // merge multiple init funcs etc.
					} else {
						c.infos[name] = info
					}
				}
				w := &loWalker{c: c, pass: pass, info: info}
				w.block(fd.Body, map[string]loLockRef{})
			}
		}
	}
	// Phase 2: transitive lock footprints to a fixpoint.
	trans := make(map[string]map[string]bool, len(c.infos))
	for name, info := range c.infos {
		t := make(map[string]bool, len(info.locks))
		for k := range info.locks {
			t[k] = true
		}
		trans[name] = t
	}
	for changed := true; changed; {
		changed = false
		for name, info := range c.infos {
			t := trans[name]
			for callee := range info.calls {
				for k := range trans[callee] {
					if !t[k] {
						t[k] = true
						changed = true
					}
				}
			}
		}
	}
	// Phase 3: expand call sites made under held locks.
	for _, s := range c.sites {
		for k := range trans[s.callee] {
			for _, h := range s.held {
				c.addEdge(h.key, k, h.display, c.display[k], s.pass, s.pos)
			}
		}
	}
	// Phase 4: find strongly connected components; every edge inside a
	// multi-node component is part of a cycle.
	c.reportCycles()
	return nil
}

func (c *loCollector) addEdge(from, to, fromDisplay, toDisplay string, pass *Pass, pos token.Pos) {
	if from == to {
		return // re-acquisition of one class is lockcheck's domain
	}
	key := [2]string{from, to}
	p := pass.Fset.Position(pos)
	if prev, ok := c.edges[key]; ok {
		q := prev.pass.Fset.Position(prev.pos)
		if q.Filename < p.Filename || (q.Filename == p.Filename && q.Offset <= p.Offset) {
			return
		}
	}
	c.edges[key] = &loEdge{from: from, to: to, fromDisplay: fromDisplay, toDisplay: toDisplay, pass: pass, pos: pos}
}

func (c *loCollector) reportCycles() {
	// Kosaraju–Sharir over the (tiny) key graph, with sorted node
	// order for determinism.
	adj := make(map[string][]string)
	radj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for k := range c.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		radj[k[1]] = append(radj[k[1]], k[0])
		nodeSet[k[0]], nodeSet[k[1]] = true, true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
		sort.Strings(radj[n])
	}
	var order []string
	visited := make(map[string]bool)
	var dfs1 func(string)
	dfs1 = func(n string) {
		visited[n] = true
		for _, m := range adj[n] {
			if !visited[m] {
				dfs1(m)
			}
		}
		order = append(order, n)
	}
	for _, n := range nodes {
		if !visited[n] {
			dfs1(n)
		}
	}
	comp := make(map[string]int)
	var dfs2 func(string, int)
	dfs2 = func(n string, id int) {
		comp[n] = id
		for _, m := range radj[n] {
			if _, ok := comp[m]; !ok {
				dfs2(m, id)
			}
		}
	}
	ncomp := 0
	for i := len(order) - 1; i >= 0; i-- {
		if _, ok := comp[order[i]]; !ok {
			dfs2(order[i], ncomp)
			ncomp++
		}
	}
	compSize := make(map[int]int)
	for _, id := range comp {
		compSize[id]++
	}
	// Collect, sort and report the edges inside multi-node components.
	var cyclic []*loEdge
	for _, e := range c.edges {
		if comp[e.from] == comp[e.to] && compSize[comp[e.from]] > 1 {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		pi := cyclic[i].pass.Fset.Position(cyclic[i].pos)
		pj := cyclic[j].pass.Fset.Position(cyclic[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return cyclic[i].to < cyclic[j].to
	})
	for _, e := range cyclic {
		members := make([]string, 0, compSize[comp[e.from]])
		for n, id := range comp {
			if id == comp[e.from] {
				members = append(members, c.display[n])
			}
		}
		sort.Strings(members)
		e.pass.Reportf(e.pos,
			"acquiring %s while holding %s closes a lock-order cycle among {%s}: another path acquires these locks in the opposite order, so the two deadlock when they interleave — pick one global order",
			e.toDisplay, e.fromDisplay, joinStrings(members, ", "))
	}
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}

// loWalker threads the held-lock set lexically through one function,
// mirroring the chanundermutex walker.
type loWalker struct {
	c    *loCollector
	pass *Pass
	info *loFuncInfo // nil inside function literals (not a named summary)
}

func cloneLoHeld(h map[string]loLockRef) map[string]loLockRef {
	m := make(map[string]loLockRef, len(h))
	for k, v := range h {
		m[k] = v
	}
	return m
}

func (w *loWalker) block(b *ast.BlockStmt, held map[string]loLockRef) {
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

func (w *loWalker) stmt(s ast.Stmt, held map[string]loLockRef) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.lockOp(call, held) {
				return
			}
		}
		w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, held)
		}
		for _, e := range s.Lhs {
			w.scan(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, held)
		}
	case *ast.SendStmt:
		w.scan(s.Chan, held)
		w.scan(s.Value, held)
	case *ast.IncDecStmt:
		w.scan(s.X, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.scan(s.Cond, held)
		w.stmt(s.Body, cloneLoHeld(held))
		w.stmt(s.Else, cloneLoHeld(held))
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.scan(s.Cond, held)
		body := cloneLoHeld(held)
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.stmt(s.Body, cloneLoHeld(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.scan(s.Tag, held)
		w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.clauses(s.Body, held)
	case *ast.SelectStmt:
		w.clauses(s.Body, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the region held; any other deferred
		// call runs at return, outside this lexical walk.
	case *ast.GoStmt:
		// The spawned goroutine does not run under the spawner's
		// locks: its literal body is a fresh root (via scan); a named
		// callee gets no call-site edge. Arguments are evaluated
		// synchronously, though.
		w.scan(s.Call.Fun, held)
		for _, a := range s.Call.Args {
			w.scan(a, held)
		}
	default:
	}
}

func (w *loWalker) clauses(body *ast.BlockStmt, held map[string]loLockRef) {
	for _, cl := range body.List {
		inner := cloneLoHeld(held)
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scan(e, held)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		case *ast.CommClause:
			w.stmt(cc.Comm, inner)
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	}
}

// lockOp consumes a statement-level mutex operation, recording edges
// for a Lock under held locks.
func (w *loWalker) lockOp(call *ast.CallExpr, held map[string]loLockRef) bool {
	v, op, base := mutexOpVar(w.pass.Info, call)
	if op == "" {
		return false
	}
	if v == nil {
		return true // unnameable mutex: conservative and quiet
	}
	key, display := lockClass(w.pass, v, base)
	switch op {
	case "Lock", "RLock":
		w.c.display[key] = display
		for _, h := range held {
			w.c.addEdge(h.key, key, h.display, display, w.pass, call.Pos())
		}
		held[key] = loLockRef{key: key, display: display, pos: call.Pos()}
		if w.info != nil {
			w.info.locks[key] = true
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// scan records resolvable calls (call-site edges + summary calls) and
// walks nested function literals as fresh roots.
func (w *loWalker) scan(e ast.Expr, held map[string]loLockRef) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lw := &loWalker{c: w.c, pass: w.pass, info: nil}
			lw.block(n.Body, map[string]loLockRef{})
			return false
		case *ast.CallExpr:
			f := calleeFunc(w.pass.Info, n)
			if f == nil {
				return true
			}
			name := f.FullName()
			if w.info != nil {
				w.info.calls[name] = true
			}
			if len(held) > 0 {
				site := loCallSite{callee: name, pass: w.pass, pos: n.Pos()}
				for _, h := range held {
					site.held = append(site.held, h)
				}
				sort.Slice(site.held, func(i, j int) bool { return site.held[i].key < site.held[j].key })
				w.c.sites = append(w.c.sites, site)
			}
		}
		return true
	})
}

// lockClass canonicalises a mutex variable to a cross-package-stable
// key. A struct field keys on its owning named type (the same field
// seen from source in its own package and from export data in an
// importer must agree); package-level mutexes key on package path and
// name; locals key on their declaration position (never visible across
// packages).
func lockClass(pass *Pass, v *types.Var, base ast.Expr) (key, display string) {
	if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
		if s := pass.Info.Selections[sel]; s != nil {
			if named, ok := deref(s.Recv()).(*types.Named); ok {
				obj := named.Obj()
				pkgPath := ""
				if obj.Pkg() != nil {
					pkgPath = obj.Pkg().Path()
				}
				return pkgPath + "." + obj.Name() + "." + v.Name(), obj.Name() + "." + v.Name()
			}
		}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
	}
	pkgPath := ""
	if v.Pkg() != nil {
		pkgPath = v.Pkg().Path()
	}
	if v.IsField() {
		// Field reached without a selection (embedded access): fall
		// back to package+name — coarser, still deterministic.
		return pkgPath + ".field." + v.Name(), v.Name()
	}
	pos := pass.Fset.Position(v.Pos())
	return fmt.Sprintf("%s.local.%s@%s:%d", pkgPath, v.Name(), pos.Filename, pos.Line), v.Name()
}
