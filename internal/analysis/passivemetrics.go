package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// metricsPkgPath, tracePkgPath and simPkgPath are the real packages
// the invariant connects; analyzer testdata imports the same packages,
// so exact paths are correct in both contexts.
const (
	metricsPkgPath = "agilefpga/internal/metrics"
	tracePkgPath   = "agilefpga/internal/trace"
	simPkgPath     = "agilefpga/internal/sim"
)

// metricsObservationFuncs are the internal/metrics entry points an
// instrumented code path calls while recording: series constructors
// and the mutating observation methods.
var metricsObservationFuncs = map[string]bool{
	"Counter":       true,
	"Gauge":         true,
	"Histogram":     true,
	"HistogramWith": true,
	"Observe":       true,
	"Add":           true,
	"Inc":           true,
	"Dec":           true,
	"Set":           true,
}

// traceObservationFuncs are the internal/trace entry points that
// record spans: the same passivity rule applies — a span is a record
// of virtual time already spent, so building one must never spend it.
var traceObservationFuncs = map[string]bool{
	"StartRoot":   true,
	"StartRemote": true,
	"StartChild":  true,
	"Add":         true,
	"End":         true,
}

// clockAdvancingFuncs are the internal/sim functions that move a
// virtual clock domain.
var clockAdvancingFuncs = map[string]bool{
	"Advance": true,
	"Reset":   true,
}

// PassiveMetrics enforces that telemetry is an observer, never an
// actor: the arguments of a metrics observation or trace span
// recording must not advance a virtual clock domain.
// TestMetricsChangeNoVirtualTime and TestTracingNoVirtualTime
// spot-check this property dynamically for single paths; the analyzer
// proves the syntactic form of it everywhere — no call reachable from
// an observation's argument list may be (*sim.Domain).Advance or
// Reset.
var PassiveMetrics = &Analyzer{
	Name: "passivemetrics",
	Doc: `metrics observation and trace recording must not advance virtual time

Every instrumented phase computes its virtual-time cost first and then
observes the already-computed value; writing
hist.Observe(dom.Advance(n)) — or stamping a span with
VirtPS: uint64(dom.Advance(n)) — would make telemetry perturb the very
quantity it measures, breaking the paper's deterministic cost model
whenever metrics or tracing are enabled. The analyzer flags any
(*sim.Domain).Advance / Reset call nested inside the argument
expressions of an internal/metrics observation or internal/trace span
call.`,
	Run: runPassiveMetrics,
}

func runPassiveMetrics(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			var kind string
			switch pkg := funcPkgPath(callee); {
			case pkg == metricsPkgPath && metricsObservationFuncs[callee.Name()]:
				kind = "metrics"
			case pkg == tracePkgPath && traceObservationFuncs[callee.Name()]:
				kind = "trace"
			default:
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(inner ast.Node) bool {
					ic, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					adv := calleeFunc(pass.Info, ic)
					if adv == nil || funcPkgPath(adv) != simPkgPath || !clockAdvancingFuncs[adv.Name()] {
						return true
					}
					sig, ok := adv.Type().(*types.Signature)
					if !ok || sig.Recv() == nil {
						return true
					}
					if named, ok := deref(sig.Recv().Type()).(*types.Named); !ok || named.Obj().Name() != "Domain" {
						return true
					}
					if !reported[ic.Pos()] {
						reported[ic.Pos()] = true
						pass.Reportf(ic.Pos(),
							"(*sim.Domain).%s advances virtual time inside the arguments of %s call %s.%s — observation must be passive: compute the time first, then observe it",
							adv.Name(), kind, recvDisplay(call), callee.Name())
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// recvDisplay names the metrics value being called, for the message.
func recvDisplay(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s := types.ExprString(sel.X)
		if len(s) > 40 {
			s = s[:37] + "..."
		}
		return s
	}
	return "metrics"
}
