package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SentinelErr flags ==/!= comparisons against sentinel error values
// (package-level error variables like cluster.ErrQueueFull, io.EOF,
// http.ErrServerClosed) and switch statements that dispatch on an
// error with == semantics. Sentinels must be matched with errors.Is:
// the cluster wraps its sentinels ("%w"-wrapping adds the function id
// to ErrUnknownFunction), so an == comparison silently stops matching
// the moment any layer adds context.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc: `require errors.Is for sentinel error comparisons

Backpressure and shutdown are signalled through sentinel errors
(cluster.ErrQueueFull, cluster.ErrStopped, the wire decode sentinels).
Layers wrap these with fmt.Errorf("…: %w", err), so == comparisons
are one wrap away from silently never matching — and a missed
ErrQueueFull turns explicit load-shedding into a misclassified
internal error. errors.Is follows the unwrap chain and is the only
correct match.`,
	Run: runSentinelErr,
}

func runSentinelErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkCompare(pass, n.OpPos, n.Op.String(), n.X, n.Y)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tagT := pass.Info.Types[n.Tag].Type
				if tagT == nil || !isErrorType(tagT) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelVar(pass.Info, e); s != nil {
							pass.Reportf(e.Pos(),
								"switch on an error compares cases with ==; match the sentinel %s with errors.Is instead",
								sentinelName(pass, s, e))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkCompare(pass *Pass, pos token.Pos, op string, x, y ast.Expr) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		sent, other := pair[0], pair[1]
		s := sentinelVar(pass.Info, sent)
		if s == nil {
			continue
		}
		ot := pass.Info.Types[other]
		if ot.IsNil() || ot.Type == nil || !isErrorType(ot.Type) {
			continue
		}
		pass.Reportf(pos,
			"sentinel error %s compared with %s; wrapped errors never match — use errors.Is(err, %s)",
			sentinelName(pass, s, sent), op, sentinelName(pass, s, sent))
		return
	}
}

// sentinelVar resolves an expression to a package-level variable of
// error type, the shape every sentinel in this codebase (and the
// standard library) takes.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level (local variable, field, parameter)
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// sentinelName renders the sentinel the way the source spelled it.
func sentinelName(pass *Pass, v *types.Var, e ast.Expr) string {
	if v.Pkg() != nil && v.Pkg() != pass.Pkg {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
