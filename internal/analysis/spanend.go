package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spanStartFuncs are the internal/trace entry points that open a span
// the creator must close with Tracer.End. Tracer.Add is absent on
// purpose: it records an already-timed span and returns a ref that
// needs no End.
var spanStartFuncs = map[string]bool{
	"StartRoot":   true,
	"StartRemote": true,
	"StartChild":  true,
}

// SpanEnd enforces the span lifecycle: every started span reaches
// Tracer.End on every return path.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: `every Tracer.StartRoot/StartRemote/StartChild must reach Tracer.End

A started span that is never ended stays open in the tracer forever:
it never reaches the tail-capture rings, its parent's child timings
lie, and under head sampling it pins per-trace state for the process
lifetime (DESIGN §14). The analyzer tracks every SpanRef returned by a
Start call lexically through branches and loops and reports return
paths that skip Tracer.End, plus refs ended twice (a double End
records the span twice). Zero SpanRefs — from a nil tracer or a
sampled-out trace — make both Start and End no-ops, so only refs that
demonstrably came from a Start call are tracked. Passing a ref to
another call (for child-span creation) is a use, not a transfer: End
duty stays with the creator. Returning, storing or capturing the ref
transfers that duty and ends tracking. Suppress a deliberate
exception with //lint:allow spanend and a justification.`,
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	spec := &lifetimeSpec{
		noun: "span ref",
		acquire: func(p *Pass, call *ast.CallExpr) string {
			f := calleeFunc(p.Info, call)
			if f == nil || funcPkgPath(f) != tracePkgPath || !spanStartFuncs[f.Name()] {
				return ""
			}
			if !isTracerMethod(f) {
				return ""
			}
			return "Tracer." + f.Name()
		},
		release: spanEndVar,
		report: func(p *Pass, pos token.Pos, format string, args ...any) {
			p.Reportf(pos, format, args...)
		},
		discardFmt:    "result of %s is discarded: the span can never be ended — bind the SpanRef and call Tracer.End",
		leakReturnFmt: "%s is not ended before the return at line %d: the span stays open forever — every Start must reach Tracer.End",
		leakEndFmt:    "%s is not ended on every path: the span stays open forever — every Start must reach Tracer.End",
		doubleFmt:     "span ref %s passed to Tracer.End twice: the span would be recorded twice",
	}
	return runLifetime(pass, spec)
}

// spanEndVar resolves t.End(ref, status) to the ref variable, or nil.
func spanEndVar(p *Pass, call *ast.CallExpr) *types.Var {
	f := calleeFunc(p.Info, call)
	if f == nil || funcPkgPath(f) != tracePkgPath || f.Name() != "End" || !isTracerMethod(f) {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if v, ok := p.Info.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isTracerMethod reports whether f is a method of trace.Tracer.
func isTracerMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := deref(sig.Recv().Type()).(*types.Named)
	return ok && named.Obj().Name() == "Tracer"
}
