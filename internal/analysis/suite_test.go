package analysis_test

import (
	"testing"

	"agilefpga/internal/analysis"
	"agilefpga/internal/analysis/analysistest"
)

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, analysis.VirtualTime,
		"virtualtime/internal/mcu",
		"virtualtime/internal/server",
	)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysis.LockCheck, "lockcheck/internal/core")
}

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, analysis.SentinelErr, "sentinelerr/internal/cluster")
}

func TestChanUnderMutex(t *testing.T) {
	analysistest.Run(t, analysis.ChanUnderMutex, "chanundermutex/internal/server")
}

func TestPassiveMetrics(t *testing.T) {
	analysistest.Run(t, analysis.PassiveMetrics,
		"passivemetrics/internal/mcu",
		"passivemetrics/internal/server",
	)
}

func TestFrameRelease(t *testing.T) {
	analysistest.Run(t, analysis.FrameRelease,
		"framerelease/internal/server",
		"framerelease/internal/router",
	)
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysis.SpanEnd, "spanend/internal/client")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow, "ctxflow/internal/server")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix/internal/router")
}

// TestLockOrder loads the two leaf packages together with the shared
// core so the suite sees the whole graph: each leaf alone is
// cycle-free, and only the cross-package union closes the A/B cycle.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder,
		"lockorder/internal/core",
		"lockorder/internal/server",
		"lockorder/internal/cluster",
	)
}
