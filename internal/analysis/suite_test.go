package analysis_test

import (
	"testing"

	"agilefpga/internal/analysis"
	"agilefpga/internal/analysis/analysistest"
)

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, analysis.VirtualTime,
		"virtualtime/internal/mcu",
		"virtualtime/internal/server",
	)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysis.LockCheck, "lockcheck/internal/core")
}

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, analysis.SentinelErr, "sentinelerr/internal/cluster")
}

func TestChanUnderMutex(t *testing.T) {
	analysistest.Run(t, analysis.ChanUnderMutex, "chanundermutex/internal/server")
}

func TestPassiveMetrics(t *testing.T) {
	analysistest.Run(t, analysis.PassiveMetrics,
		"passivemetrics/internal/mcu",
		"passivemetrics/internal/server",
	)
}
