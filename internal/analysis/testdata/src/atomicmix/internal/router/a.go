// Package router is atomicmix golden testdata: a variable whose
// address ever reaches a function-style sync/atomic call must never be
// read or written plainly again.
package router

import "sync/atomic"

type backend struct {
	inflight uint64
	ejected  uint32
}

// acquire and release stick to the atomic accessors — legal.
func (b *backend) acquire() {
	atomic.AddUint64(&b.inflight, 1)
}

func (b *backend) release() {
	atomic.AddUint64(&b.inflight, ^uint64(0))
}

// snapshot reads the counter bare: tears on 32-bit platforms and races
// everywhere.
func (b *backend) snapshot() uint64 {
	return b.inflight // want `inflight is accessed with sync/atomic\.AddUint64 \(line \d+\) but read or written plainly`
}

// reset mixes a plain write with the CompareAndSwap side.
func (b *backend) reset() {
	if atomic.CompareAndSwapUint32(&b.ejected, 0, 1) {
		return
	}
	b.ejected = 0 // want `ejected is accessed with sync/atomic\.CompareAndSwapUint32 \(line \d+\) but read or written plainly`
}

// newBackend initialises before the value is shared: provably
// single-threaded, so the justified directive is honoured.
func newBackend() *backend {
	b := &backend{}
	//lint:allow atomicmix constructor runs before the backend is shared
	b.inflight = 0
	return b
}
