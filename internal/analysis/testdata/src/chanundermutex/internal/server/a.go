// Package server is chanundermutex golden testdata: no blocking
// channel operation or WaitGroup.Wait while holding a mutex.
package server

import "sync"

type Q struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (q *Q) BadSend(v int) {
	q.mu.Lock()
	q.ch <- v // want `blocking send on q\.ch while holding q\.mu`
	q.mu.Unlock()
}

func (q *Q) GoodSend(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

func (q *Q) NonBlocking(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

func (q *Q) BadReceive() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `blocking receive from q\.ch while holding q\.mu`
}

func (q *Q) BadReadLock() int {
	q.rw.RLock()
	defer q.rw.RUnlock()
	return <-q.ch // want `blocking receive from q\.ch while holding q\.rw \(RLock`
}

func (q *Q) BadWait() {
	q.mu.Lock()
	q.wg.Wait() // want `blocking q\.wg\.Wait\(\) while holding q\.mu`
	q.mu.Unlock()
}

func (q *Q) BadSelect(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- 1: // want `blocking select case sending on q\.ch`
	case <-done: // want `blocking select case <-done`
	}
}

func (q *Q) GoroutineDoesNotInherit() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1
	}()
}

func (q *Q) WaitAfterUnlock() {
	q.mu.Lock()
	q.mu.Unlock()
	q.wg.Wait()
}

//lint:allow chanundermutex read side only orders against close; workers drain the channel independently
func (q *Q) Allowed(v int) {
	q.rw.RLock()
	q.ch <- v
	q.rw.RUnlock()
}
