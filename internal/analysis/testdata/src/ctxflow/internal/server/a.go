// Package server is ctxflow golden testdata: a function that receives
// a context.Context must propagate it — no fresh root contexts below an
// entry point, no nil contexts anywhere.
package server

import "context"

func do(ctx context.Context, fn uint16) error { return nil }

// handle receives a context and mints a root anyway.
func handle(ctx context.Context) error {
	fresh := context.Background() // want `context\.Background\(\) inside handle, which receives a context\.Context`
	return do(fresh, 1)
}

// handleAsync shows closures inheriting the enclosing obligation.
func handleAsync(ctx context.Context) {
	go func() {
		c := context.TODO() // want `context\.TODO\(\) inside handleAsync`
		_ = c
	}()
}

type mux struct{}

// route shows methods named Type.method in the message.
func (m *mux) route(ctx context.Context) error {
	return do(context.Background(), 2) // want `context\.Background\(\) inside mux\.route`
}

// passNil would panic in the stdlib before any deadline could apply.
func passNil() error {
	return do(nil, 3) // want `nil passed as the context\.Context argument of do`
}

// accept is a true entry point: no context parameter, roots are free.
func accept() error {
	return do(context.Background(), 4)
}

// propagate is the required shape.
func propagate(ctx context.Context) error {
	return do(ctx, 5)
}

// detach deliberately outlives the request; the justified directive
// suppresses the report and therefore is not stale.
func detach(ctx context.Context) {
	//lint:allow ctxflow cleanup must survive request cancellation
	cleanup := context.Background()
	_ = cleanup
}

// tidy carries a directive that suppresses nothing: the directive
// itself is the finding.
func tidy(ctx context.Context) error {
	//lint:allow ctxflow nothing left to excuse // want `stale directive: //lint:allow ctxflow suppresses no ctxflow diagnostic`
	return do(ctx, 6)
}
