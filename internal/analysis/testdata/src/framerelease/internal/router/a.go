// Package router is framerelease golden testdata outside the hard
// zone: findings are still reported, but a justified
// //lint:allow framerelease is honoured here.
package router

import (
	"io"

	"agilefpga/internal/wire"
)

// drop leaks without a directive: reported even in the soft zone.
func drop(r io.Reader) error {
	var resp wire.Response
	fr, err := wire.ReadResponseFrame(r, &resp) // want `frame fr from wire\.ReadResponseFrame is not released before the return at line \d+`
	if err != nil {
		return err
	}
	_ = fr
	return nil
}

// capture carries a justified suppression: the eviction path releases
// the frame out of band, which the lexical walker cannot see. The
// directive suppresses the leak report and therefore is not stale.
func capture(r io.Reader) error {
	var resp wire.Response
	//lint:allow framerelease the eviction path releases the captured frame out of band
	fr, err := wire.ReadResponseFrame(r, &resp)
	if err != nil {
		return err
	}
	_ = fr
	return nil
}
