// Package server is framerelease golden testdata shaped like the real
// connection read-loop: every wire.ReadRequestFrame /
// ReadResponseFrame acquisition must reach Frame.Release on all paths.
// The package classifies into the hard zone (internal/server), so
// //lint:allow framerelease suppresses nothing here — and is itself
// reported stale when it tries.
package server

import (
	"io"

	"agilefpga/internal/wire"
)

func sink(req *wire.Request) {}

func process(resp *wire.Response) error { return nil }

// serve is the clean read-loop shape: acquire, guard on the companion
// error, serve, release once per iteration.
func serve(r io.Reader) error {
	var req wire.Request
	for {
		fr, err := wire.ReadRequestFrame(r, &req)
		if err != nil {
			return err
		}
		sink(&req)
		fr.Release()
	}
}

// deferRelease is the other clean shape: release pinned to function
// exit the moment the acquisition succeeds.
func deferRelease(r io.Reader) error {
	var resp wire.Response
	fr, err := wire.ReadResponseFrame(r, &resp)
	if err != nil {
		return err
	}
	defer fr.Release()
	return process(&resp)
}

// leakOnReturn drops the frame on the early-out path; the error-guarded
// return stays exempt because a failed read returns the zero Frame.
func leakOnReturn(r io.Reader) error {
	var req wire.Request
	fr, err := wire.ReadRequestFrame(r, &req) // want `frame fr from wire\.ReadRequestFrame is not released before the return at line \d+`
	if err != nil {
		return err
	}
	if req.Fn == 0 {
		return nil
	}
	fr.Release()
	return nil
}

// doubleRelease re-pools a buffer another request may already own.
func doubleRelease(r io.Reader) error {
	var req wire.Request
	fr, err := wire.ReadRequestFrame(r, &req)
	if err != nil {
		return err
	}
	sink(&req)
	fr.Release()
	fr.Release() // want `frame fr released twice`
	return nil
}

// useAfterRelease touches the frame after its buffer was re-pooled.
func useAfterRelease(r io.Reader) error {
	var req wire.Request
	fr, err := wire.ReadRequestFrame(r, &req)
	if err != nil {
		return err
	}
	fr.Release()
	_ = fr // want `frame fr used after Release`
	return nil
}

// discard never binds the frame, so it can never be released.
func discard(r io.Reader) {
	var req wire.Request
	wire.ReadRequestFrame(r, &req) // want `result of wire\.ReadRequestFrame is discarded`
}

// transfer hands the frame to a callee: release duty moves with it.
func transfer(r io.Reader, consume func(wire.Frame)) error {
	var req wire.Request
	fr, err := wire.ReadRequestFrame(r, &req)
	if err != nil {
		return err
	}
	consume(fr)
	return nil
}

// readOne returns the frame to its caller along with the decoded
// request: duty transfers out.
func readOne(r io.Reader, req *wire.Request) (wire.Frame, error) {
	fr, err := wire.ReadRequestFrame(r, req)
	if err != nil {
		return wire.Frame{}, err
	}
	return fr, nil
}

// releasesParam discharges the duty that arrived with the parameter.
func releasesParam(fr wire.Frame, req *wire.Request) {
	sink(req)
	fr.Release()
}

// ownsParam receives release duty with the parameter and drops it.
func ownsParam(fr wire.Frame, req *wire.Request) { // want `frame parameter fr is not released on every path`
	sink(req)
}

// excused shows the hard zone ignoring directives: the leak is still
// reported, and the powerless directive is flagged stale on top.
func excused(r io.Reader) {
	var req wire.Request
	//lint:allow framerelease directives are powerless in the hard zone // want `stale directive: //lint:allow framerelease suppresses no framerelease diagnostic`
	fr, _ := wire.ReadRequestFrame(r, &req) // want `frame fr from wire\.ReadRequestFrame is not released on every path`
	sink(&req)
	_ = fr
}
