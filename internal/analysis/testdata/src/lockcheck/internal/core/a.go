// Package core is lockcheck golden testdata: helpers suffixed Locked
// or documented "caller must hold" must not re-acquire their guard and
// must only be called under it.
package core

import "sync"

type Card struct {
	mu    sync.Mutex
	state int
}

// bumpLocked increments the card state; the suffix marks it a locked
// helper.
func (c *Card) bumpLocked() {
	c.state++
}

// reacquireLocked is a locked helper that deadlocks by taking its own
// guard.
func (c *Card) reacquireLocked() {
	c.mu.Lock() // want `reacquireLocked runs with c\.mu held .* but calls c\.mu\.Lock\(\) itself`
	c.state++
	c.mu.Unlock()
}

// drain resets the card. The caller must hold c.mu.
func (c *Card) drain() {
	c.state = 0
}

// resetLocked chains to a sibling helper under the same guard — legal.
func (c *Card) resetLocked() {
	c.bumpLocked()
	c.drain()
}

func (c *Card) Good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
	c.drain()
}

func (c *Card) Bad() {
	c.bumpLocked() // want `call to bumpLocked, which requires holding c\.mu`
	c.drain()      // want `call to drain, which requires holding c\.mu`
}

func (c *Card) Suppressed() {
	c.bumpLocked() //lint:allow lockcheck constructor path runs before the card is shared
}
