// Package cluster is lockorder golden testdata: the B-then-A half of
// the cross-package cycle, plus an intra-package opposite-order pair
// excused by //lint:allow lockorder.
package cluster

import (
	"sync"

	"agilefpga/internal/analysis/testdata/src/lockorder/internal/core"
)

// Drain holds B across a call whose footprint takes A.
func Drain(p *core.Pair) {
	p.B.Lock()
	p.BumpA() // want `acquiring Pair\.A while holding Pair\.B closes a lock-order cycle among \{Pair\.A, Pair\.B\}`
	p.B.Unlock()
}

// Sweep matches server.Registered's Registry.Mu → Pair.A order.
func Sweep(reg *core.Registry, p *core.Pair) {
	reg.Mu.Lock()
	p.BumpA()
	reg.Mu.Unlock()
}

// shard's two internal locks are taken in both orders, but every call
// site runs under an external serialisation the analyzer cannot see,
// so both acquisition sites carry a justified suppression.
type shard struct {
	c sync.Mutex
	d sync.Mutex
	n int
}

func (s *shard) lockCD() {
	s.c.Lock()
	//lint:allow lockorder callers serialise shards on the balancer token
	s.d.Lock()
	s.n++
	s.d.Unlock()
	s.c.Unlock()
}

func (s *shard) lockDC() {
	s.d.Lock()
	//lint:allow lockorder callers serialise shards on the balancer token
	s.c.Lock()
	s.n++
	s.c.Unlock()
	s.d.Unlock()
}
