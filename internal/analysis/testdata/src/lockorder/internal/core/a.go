// Package core is shared lockorder golden testdata: Pair carries the
// two mutexes whose acquisition order internal/server and
// internal/cluster disagree about, closing a cycle neither package can
// see alone.
package core

import "sync"

// Pair is a two-lock state block shared across packages.
type Pair struct {
	A sync.Mutex
	B sync.Mutex
	n int
}

// BumpA mutates under A alone.
func (p *Pair) BumpA() {
	p.A.Lock()
	p.n++
	p.A.Unlock()
}

// BumpB mutates under B alone.
func (p *Pair) BumpB() {
	p.B.Lock()
	p.n++
	p.B.Unlock()
}

// Registry is a lock both sides acquire before Pair.A in the same
// order — that shared edge stays out of any cycle.
type Registry struct {
	Mu sync.Mutex
	N  int
}
