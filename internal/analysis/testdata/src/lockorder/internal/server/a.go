// Package server is lockorder golden testdata: it acquires Pair.A and
// then, through core.BumpB's lock footprint, Pair.B — the opposite
// order from internal/cluster, closing a cross-package cycle.
package server

import "agilefpga/internal/analysis/testdata/src/lockorder/internal/core"

// Serve holds A across a call whose footprint takes B.
func Serve(p *core.Pair) {
	p.A.Lock()
	p.BumpB() // want `acquiring Pair\.B while holding Pair\.A closes a lock-order cycle among \{Pair\.A, Pair\.B\}`
	p.A.Unlock()
}

// Registered takes Registry.Mu then Pair.A — the same order
// cluster.Sweep uses, so the shared edge is benign and unreported.
func Registered(reg *core.Registry, p *core.Pair) {
	reg.Mu.Lock()
	p.BumpA()
	reg.Mu.Unlock()
}
