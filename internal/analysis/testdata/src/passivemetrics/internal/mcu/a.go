// Package mcu is passivemetrics golden testdata: metrics observation
// arguments must never advance a virtual clock domain.
package mcu

import (
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
)

func observe(r *metrics.Registry, d *sim.Domain) {
	h := r.Histogram("agile_phase")
	t := d.Advance(10)
	h.Observe(t)                                          // legal: the cost was computed first, observation is passive
	h.Observe(d.Advance(10))                              // want `\(\*sim\.Domain\)\.Advance advances virtual time inside the arguments of metrics call h\.Observe`
	r.Counter("agile_requests").Add(uint64(d.Advance(1))) // want `Advance advances virtual time`
	h.Observe(d.Elapsed())
	r.Gauge("agile_depth").Set(int64(d.Cycles()))
	hw := r.HistogramWith("agile_window", metrics.SizeBuckets())
	hw.Observe(t)                                           // legal: passive observation of a precomputed value
	hw.Observe(d.Advance(2))                                // want `Advance advances virtual time`
	r.HistogramWith("agile_bad", nil).Observe(d.Advance(3)) // want `Advance advances virtual time`
}
