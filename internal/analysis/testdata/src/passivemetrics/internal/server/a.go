// Package server is passivemetrics golden testdata for the tracing
// side of the invariant: span recording arguments must never advance
// a virtual clock domain.
package server

import (
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

func record(tr *trace.Tracer, d *sim.Domain) {
	ref := tr.StartRoot("rpc", "server", 1)
	cost := d.Advance(10)
	tr.Add(ref, trace.Span{Name: "exec", Layer: "card", VirtPS: uint64(cost)})             // legal: the cost was computed first, the span is a passive record
	tr.Add(ref, trace.Span{Name: "exec", Layer: "card", VirtPS: uint64(d.Advance(10))})    // want `\(\*sim\.Domain\)\.Advance advances virtual time inside the arguments of trace call tr\.Add`
	child := tr.StartChild(ref, "queue", "cluster", uint16(d.Advance(1)))                  // want `Advance advances virtual time inside the arguments of trace call tr\.StartChild`
	tr.End(child, func() string { d.Reset(); return "reset" }())                           // want `\(\*sim\.Domain\)\.Reset advances virtual time inside the arguments of trace call tr\.End`
	tr.Add(ref, trace.Span{Name: "drain", Layer: "card", VirtPS: uint64(d.Elapsed())})     // legal: Elapsed reads the clock without moving it
	_ = tr.StartRemote(ref.TraceID, ref.SpanID, true, "hop", "server", uint16(d.Cycles())) // legal: Cycles reads the clock without moving it
	tr.End(ref, "ok")
}
