// Package cluster is sentinelerr golden testdata: sentinel errors are
// matched with errors.Is, never ==/!=.
package cluster

import (
	"errors"
	"io"
)

var ErrQueueFull = errors.New("cluster: card queue full")

func classify(err error) int {
	if err == ErrQueueFull { // want `sentinel error ErrQueueFull compared with ==`
		return 1
	}
	if err != io.EOF { // want `sentinel error io\.EOF compared with !=`
		return 2
	}
	if errors.Is(err, ErrQueueFull) {
		return 3
	}
	if err == nil {
		return 4
	}
	switch err {
	case ErrQueueFull: // want `switch on an error compares cases with ==`
		return 5
	case nil:
		return 6
	}
	//lint:allow sentinelerr identity comparison is deliberate here
	if err == ErrQueueFull {
		return 7
	}
	return 0
}

// Non-error comparisons with the same shape stay legal.
func codes(code uint32) bool {
	const ErrCodeBadInput = uint32(2)
	return code == ErrCodeBadInput
}
