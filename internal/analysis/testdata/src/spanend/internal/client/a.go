// Package client is spanend golden testdata: every SpanRef returned by
// Tracer.StartRoot/StartRemote/StartChild must reach Tracer.End on all
// return paths. Zero SpanRefs are no-ops and stay exempt.
package client

import (
	"errors"

	"agilefpga/internal/trace"
)

var errBusy = errors.New("busy")

func work() {}

// good ends its span on the one return path.
func good(t *trace.Tracer) {
	ref := t.StartRoot("call", "client", 1)
	work()
	t.End(ref, "ok")
}

// goodDefer pins End to function exit — the canonical shape.
func goodDefer(t *trace.Tracer) {
	ref := t.StartRoot("call", "client", 1)
	defer t.End(ref, "ok")
	work()
}

// leakOnReturn skips End on the early-out path.
func leakOnReturn(t *trace.Tracer, busy bool) error {
	ref := t.StartRoot("call", "client", 1) // want `span ref ref from Tracer\.StartRoot is not ended before the return at line \d+`
	if busy {
		return errBusy
	}
	t.End(ref, "ok")
	return nil
}

// leakChild ends the root but drops the child; passing the parent ref
// to StartChild is a use, not a transfer.
func leakChild(t *trace.Tracer) {
	root := t.StartRoot("op", "client", 1)
	child := t.StartChild(root, "attempt", "client", 1) // want `span ref child from Tracer\.StartChild is not ended on every path`
	_ = child
	t.End(root, "ok")
}

// doubleEnd would record the span twice.
func doubleEnd(t *trace.Tracer) {
	ref := t.StartRemote(7, 9, true, "rpc", "server", 2)
	work()
	t.End(ref, "ok")
	t.End(ref, "error") // want `span ref ref passed to Tracer\.End twice`
}

// discard can never be ended.
func discard(t *trace.Tracer) {
	t.StartRoot("orphan", "client", 1) // want `result of Tracer\.StartRoot is discarded`
	work()
}

// zeroRef: the zero SpanRef makes End a no-op — legal and untracked.
func zeroRef(t *trace.Tracer) {
	var ref trace.SpanRef
	work()
	t.End(ref, "ok")
}

// handoff returns the ref: End duty transfers to the caller.
func handoff(t *trace.Tracer) trace.SpanRef {
	ref := t.StartRoot("op", "client", 1)
	work()
	return ref
}

// background keeps a deliberate long-lived span open; the justified
// directive suppresses the leak report and therefore is not stale.
func background(t *trace.Tracer) {
	//lint:allow spanend the shutdown hook ends the session span
	ref := t.StartRoot("session", "client", 1)
	work()
	_ = ref
}
