// Package mcu is virtualtime golden testdata for a simulation-domain
// package: every wall-clock read is a hard diagnostic, the
// //lint:wallclock directive must NOT be able to silence it — and a
// directive that consequently suppresses nothing is itself reported
// stale.
package mcu

import (
	"math/rand"
	"time"
)

func configure() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock inside the simulation domain`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock inside the simulation domain`
	return time.Since(start)     // want `time\.Since reads the wall clock inside the simulation domain`
}

func cheat() time.Time {
	return time.Now() //lint:wallclock directives cannot override the sim domain // want `//lint:wallclock cannot override this here` `stale directive: //lint:wallclock suppresses no virtualtime diagnostic`
}

func jitter() int {
	return rand.Intn(8) // want `math/rand\.Intn in the simulation domain`
}

// Pure value manipulation stays legal: durations and formatting do not
// read the clock.
func legal(d time.Duration) string {
	return (d + time.Millisecond).String()
}
