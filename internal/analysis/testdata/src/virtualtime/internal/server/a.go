// Package server is virtualtime golden testdata for a wall-facing
// package: wall-clock reads are legal only under an explicit
// //lint:wallclock directive.
package server

import "time"

func latency() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock: annotate the site with //lint:wallclock`
	return time.Since(start) //lint:wallclock server latency is wall time by design
}

//lint:wallclock the whole poller is wall-facing
func poll() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func budget(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the wall clock`
}
