package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simDomainPackages are the packages whose cost accounting lives
// entirely in virtual time (paper §3's deterministic config/IO/execute
// cost model, realized by internal/sim clock domains). A wall-clock
// read anywhere in here silently corrupts every latency number the
// simulator reports, so the virtualtime analyzer treats these as a
// hard no-directive zone. Membership is by final import-path element
// under an internal/ tree, which also lets analyzer testdata mirror
// the layout.
var simDomainPackages = map[string]bool{
	"sim":       true,
	"core":      true,
	"mcu":       true,
	"fpga":      true,
	"memory":    true,
	"pci":       true,
	"replace":   true,
	"sched":     true,
	"compress":  true,
	"bitstream": true,
	"algos":     true,
}

// internalElem extracts the path below the last "/internal/" marker
// ("" when the package is not under an internal tree). Analyzers key
// package classification on this so both the real tree
// ("agilefpga/internal/mcu") and analyzer testdata
// (".../testdata/src/virtualtime/internal/mcu") classify identically.
func internalElem(pkgPath string) string {
	const marker = "/internal/"
	if i := strings.LastIndex(pkgPath, marker); i >= 0 {
		return pkgPath[i+len(marker):]
	}
	if after, ok := strings.CutPrefix(pkgPath, "internal/"); ok {
		return after
	}
	return ""
}

// inSimDomain classifies an import path into or out of the hard
// virtual-time zone.
func inSimDomain(pkgPath string) bool {
	return simDomainPackages[internalElem(pkgPath)]
}

// wallClockFuncs are the package time functions that read or schedule
// against the host's wall clock. Pure value manipulation (Duration
// arithmetic, Time formatting) stays legal everywhere.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// VirtualTime forbids wall-clock reads and ambient RNG in the
// simulation domain, and requires an explicit //lint:wallclock
// directive everywhere else.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc: `forbid wall-clock reads in the simulation's virtual-time domain

The simulator's entire value rests on deterministic virtual time:
internal/sim clock domains advance by cycle counts, never by the host
clock. Inside the simulation domain (sim, core, mcu, fpga, memory,
pci, replace, sched, compress, bitstream, algos) any call to time.Now,
time.Sleep, time.Since and friends — or to math/rand's globally seeded
generators — is an error no directive can silence. Wall-facing
packages (server, client, cluster deadline paths, cmd/*) may read the
wall clock, but each site must carry a //lint:wallclock directive so
the exception is explicit and reviewable.`,
	Run: runVirtualTime,
}

func runVirtualTime(pass *Pass) error {
	sim := inSimDomain(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				if !wallClockFuncs[fn.Name()] {
					return true
				}
				if sim {
					pass.ReportHardf(sel.Pos(),
						"time.%s reads the wall clock inside the simulation domain (package %s): virtual time must come from internal/sim clock domains, and //lint:wallclock cannot override this here",
						fn.Name(), pass.Pkg.Name())
				} else {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock: annotate the site with //lint:wallclock if this code is genuinely wall-facing",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if sim {
					pass.ReportHardf(sel.Pos(),
						"%s.%s in the simulation domain (package %s): simulation randomness must be deterministic — use sim.NewRNG with an explicit seed",
						funcPkgPath(fn), fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
