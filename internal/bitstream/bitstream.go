// Package bitstream produces configuration bitstreams for the simulated
// fabric: a packet builder, a pseudo-netlist synthesizer that turns a
// function's resource demand into frame images, and assemblers for the
// module-based (per-frame) and difference-based partial reconfiguration
// flows described in Xilinx XAPP290, which the paper cites for its
// proof-of-concept.
//
// The wire format (sync word, type-1 register writes, CRC) is defined by
// package fpga, whose configuration port parses it; this package is the
// producer side.
package bitstream

import (
	"encoding/binary"
	"fmt"

	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

// Builder assembles a bitstream word by word, tracking the running CRC
// exactly as the configuration port will compute it.
type Builder struct {
	words []uint32
	crc   uint32
}

// NewBuilder returns a builder primed with a dummy pad word and the sync
// word, ready for packets.
func NewBuilder() *Builder {
	b := &Builder{}
	b.Raw(fpga.DummyWord)
	b.Raw(fpga.SyncWord)
	return b
}

// Raw appends a word without packet framing or CRC accounting.
func (b *Builder) Raw(w uint32) { b.words = append(b.words, w) }

// WriteReg appends a type-1 write of vals to reg.
func (b *Builder) WriteReg(reg int, vals ...uint32) {
	b.Raw(fpga.MakeType1(fpga.OpWrite, reg, len(vals)))
	for _, v := range vals {
		if reg != fpga.RegCRC {
			b.crc = fpga.CRCUpdate(b.crc, reg, v)
		}
		b.Raw(v)
	}
}

// Command writes cmd to the command register, mirroring the port's CRC
// reset on RCRC.
func (b *Builder) Command(cmd uint32) {
	b.WriteReg(fpga.RegCMD, cmd)
	if cmd == fpga.CmdRCRC {
		b.crc = 0
	}
}

// WriteCRC appends a CRC check packet carrying the running CRC, then
// resets it (the port does the same on a successful match).
func (b *Builder) WriteCRC() {
	b.WriteReg(fpga.RegCRC, b.crc)
	b.crc = 0
}

// Words reports the number of words assembled so far.
func (b *Builder) Words() int { return len(b.words) }

// Bytes serialises the bitstream big-endian, as the byte-wide port
// consumes it.
func (b *Builder) Bytes() []byte {
	out := make([]byte, 4*len(b.words))
	for i, w := range b.words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// FrameWords converts a frame image to big-endian FDRI payload words,
// zero-padding the final word if the frame size is not word-aligned.
func FrameWords(g fpga.Geometry, image []byte) ([]uint32, error) {
	if len(image) != g.FrameBytes() {
		return nil, fmt.Errorf("bitstream: frame image is %d bytes, geometry wants %d", len(image), g.FrameBytes())
	}
	words := make([]uint32, g.FrameWords())
	for i := range words {
		var buf [4]byte
		copy(buf[:], image[4*i:])
		words[i] = binary.BigEndian.Uint32(buf[:])
	}
	return words, nil
}

// maxFDRIWords is the largest payload a single type-1 packet can carry
// (11-bit word count).
const maxFDRIWords = 0x7FF

// Assemble builds a module-based partial bitstream that loads images[i]
// into frame frames[i]. The stream carries the full handshake the port
// demands: CRC reset, IDCODE check, frame-length check, WCFG, one
// FAR+FDRI pair per frame, LFRM, a CRC check, and DESYNC.
func Assemble(g fpga.Geometry, idcode uint32, frames []int, images [][]byte) ([]byte, error) {
	if len(frames) != len(images) {
		return nil, fmt.Errorf("bitstream: %d frames but %d images", len(frames), len(images))
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("bitstream: empty frame set")
	}
	if g.FrameWords() > maxFDRIWords {
		return nil, fmt.Errorf("bitstream: frame of %d words exceeds the %d-word FDRI packet limit", g.FrameWords(), maxFDRIWords)
	}
	b := NewBuilder()
	b.Command(fpga.CmdRCRC)
	b.WriteReg(fpga.RegIDCODE, idcode)
	b.WriteReg(fpga.RegFLR, uint32(g.FrameWords()))
	b.Command(fpga.CmdWCFG)
	for i, fi := range frames {
		if fi < 0 || fi >= g.NumFrames() {
			return nil, fmt.Errorf("bitstream: frame %d out of range (device has %d)", fi, g.NumFrames())
		}
		words, err := FrameWords(g, images[i])
		if err != nil {
			return nil, err
		}
		b.WriteReg(fpga.RegFAR, uint32(fi))
		b.WriteReg(fpga.RegFDRI, words...)
	}
	b.Command(fpga.CmdLFRM)
	b.WriteCRC()
	b.Command(fpga.CmdDESYNC)
	return b.Bytes(), nil
}

// AssembleDiff builds a difference-based partial bitstream: frames whose
// image already matches current[i] are omitted entirely (XAPP290's
// difference flow). It returns the stream and the number of frames it
// actually writes; if nothing differs the returned stream is nil and the
// count zero.
func AssembleDiff(g fpga.Geometry, idcode uint32, frames []int, images, current [][]byte) ([]byte, int, error) {
	if len(frames) != len(images) || len(frames) != len(current) {
		return nil, 0, fmt.Errorf("bitstream: mismatched diff inputs (%d/%d/%d)", len(frames), len(images), len(current))
	}
	var dFrames []int
	var dImages [][]byte
	for i := range frames {
		if !equalBytes(images[i], current[i]) {
			dFrames = append(dFrames, frames[i])
			dImages = append(dImages, images[i])
		}
	}
	if len(dFrames) == 0 {
		return nil, 0, nil
	}
	bs, err := Assemble(g, idcode, dFrames, dImages)
	return bs, len(dFrames), err
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Netlist is a pseudo-netlist: the resource demand and statistical shape
// of a function's logic, sufficient to synthesise deterministic frame
// images with realistic configuration-bit statistics.
type Netlist struct {
	FnID   uint16
	Serial uint16
	// LUTs is the usable-LUT demand of the function. The frame count is
	// derived from it and the geometry.
	LUTs int
	// Seed perturbs the synthesised bit patterns; functions synthesised
	// with different seeds get different logic.
	Seed uint64
}

// lutDictionary holds truth tables that dominate real designs: wide
// AND/OR/XOR reductions, muxes, carry logic, pass-throughs. Synthesised
// LUTs draw from it with heavy reuse, which is what makes real bitstreams
// compressible.
var lutDictionary = []uint16{
	0x8000, // AND4
	0xFFFE, // OR4
	0x6996, // XOR4 (parity)
	0xCACA, // 2:1 mux on inputs a,b select c
	0xAAAA, // pass-through input a
	0xCCCC, // pass-through input b
	0xF0F0, // pass-through input c
	0xFF00, // pass-through input d
	0xE8E8, // majority/carry
	0x9669, // XNOR parity
	0x7888, // AND-OR blend
	0x0660, // decode pattern
}

// Synthesize produces the frame images of a function: FramesForLUTs(LUTs)
// frames, each carrying a valid signature in its first CLB and
// dictionary-patterned logic for its share of the LUT demand. Images are
// deterministic in the netlist fields.
//
// Frames of one function share a common base pattern with small per-frame
// mutations, mirroring the column-to-column symmetry of real placed
// designs (datapaths replicate the same slice configuration across
// columns). This symmetry is exactly what the framediff codec — the
// paper's §4 open problem — is built to exploit.
func Synthesize(g fpga.Geometry, n Netlist) ([][]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if n.LUTs < 0 {
		return nil, fmt.Errorf("bitstream: negative LUT demand %d", n.LUTs)
	}
	count := g.FramesForLUTs(n.LUTs)
	if count > g.NumFrames() {
		return nil, fmt.Errorf("bitstream: function %d needs %d frames, device has %d", n.FnID, count, g.NumFrames())
	}

	// Base pattern for a full frame's worth of logic, shared by every
	// frame of the function.
	per := g.LUTsPerFrame()
	baseRNG := sim.NewRNG(n.Seed ^ uint64(n.FnID)<<32 ^ 0xBA5E)
	baseLUT := make([]uint16, per)
	for i := range baseLUT {
		// 7 in 8 LUTs come from the dictionary; the rest are "random
		// logic" truth tables (re-rolled if zero, so used==demanded).
		if baseRNG.Intn(8) < 7 {
			baseLUT[i] = lutDictionary[baseRNG.Intn(len(lutDictionary))]
		} else {
			for baseLUT[i] == 0 {
				baseLUT[i] = uint16(baseRNG.Uint64())
			}
		}
	}
	baseSwitch := make([]uint32, g.Rows)
	for i := range baseSwitch {
		// Sparse routing: roughly a quarter of the PIPs in active rows.
		baseSwitch[i] = uint32(baseRNG.Uint64()) & uint32(baseRNG.Uint64())
	}

	images := make([][]byte, count)
	remaining := n.LUTs
	for idx := 0; idx < count; idx++ {
		use := remaining
		if use > per {
			use = per
		}
		remaining -= use
		images[idx] = synthFrame(g, n, idx, count, use, baseLUT, baseSwitch)
	}
	return images, nil
}

// mutateOneIn is the per-frame LUT mutation rate: one in this many base
// LUTs is re-rolled per frame, so frames are similar but not identical.
const mutateOneIn = 16

// synthFrame builds one frame image: signature CLB first, then Rows-1
// logic CLBs filling `use` LUTs sequentially from the shared base pattern.
func synthFrame(g fpga.Geometry, n Netlist, idx, total, use int, baseLUT []uint16, baseSwitch []uint32) []byte {
	img := make([]byte, g.FrameBytes())
	rng := sim.NewRNG(n.Seed ^ uint64(n.FnID)<<32 ^ uint64(idx)<<16 ^ uint64(n.Serial))
	slot := 0
	for row := 1; row < g.Rows; row++ {
		var clb fpga.CLB
		usedInCLB := 0
		for s := range clb.Slices {
			for l := range clb.Slices[s].LUTs {
				if slot >= use {
					slot++
					continue
				}
				init := baseLUT[slot]
				if rng.Intn(mutateOneIn) == 0 {
					init = lutDictionary[rng.Intn(len(lutDictionary))]
				}
				clb.Slices[s].LUTs[l].Init = init
				usedInCLB++
				slot++
			}
		}
		if usedInCLB > 0 {
			// Flip-flop flags: one bit per used LUT, capped at 8 bits.
			clb.Flags = byte(1<<uint(min(usedInCLB, 8)) - 1)
			clb.Switch = baseSwitch[row]
		}
		fpga.EncodeCLB(img[row*fpga.CLBBytes:], &clb)
	}
	fpga.EncodeSignature(img, fpga.Signature{
		FnID:   n.FnID,
		Index:  uint16(idx),
		Total:  uint16(total),
		Serial: n.Serial,
	})
	return img
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
