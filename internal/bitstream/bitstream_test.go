package bitstream

import (
	"testing"
	"testing/quick"

	"agilefpga/internal/fpga"
)

var testGeom = fpga.Geometry{Rows: 8, Cols: 16}

type nopCore uint16

func (c nopCore) ID() uint16                     { return uint16(c) }
func (c nopCore) Name() string                   { return "nop" }
func (c nopCore) Exec(in []byte) ([]byte, error) { return append([]byte(nil), in...), nil }
func (c nopCore) ExecCycles(n int) uint64        { return uint64(n) }

func newFabric(t *testing.T) *fpga.Fabric {
	t.Helper()
	reg := fpga.NewRegistry()
	if err := reg.Register(nopCore(9)); err != nil {
		t.Fatal(err)
	}
	return fpga.NewFabric(testGeom, reg)
}

func TestSynthesizeShape(t *testing.T) {
	n := Netlist{FnID: 9, Serial: 1, LUTs: 100, Seed: 42}
	images, err := Synthesize(testGeom, n)
	if err != nil {
		t.Fatal(err)
	}
	want := testGeom.FramesForLUTs(100)
	if len(images) != want {
		t.Fatalf("got %d frames, want %d", len(images), want)
	}
	for i, img := range images {
		if len(img) != testGeom.FrameBytes() {
			t.Fatalf("frame %d: %d bytes", i, len(img))
		}
		sig, ok := fpga.DecodeSignature(img)
		if !ok {
			t.Fatalf("frame %d: no signature", i)
		}
		if sig.FnID != 9 || int(sig.Index) != i || int(sig.Total) != want || sig.Serial != 1 {
			t.Fatalf("frame %d: signature %+v", i, sig)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	n := Netlist{FnID: 3, Serial: 2, LUTs: 50, Seed: 7}
	a, err := Synthesize(testGeom, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(testGeom, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("frame %d differs between identical syntheses", i)
		}
	}
	n.Seed = 8
	c, err := Synthesize(testGeom, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(a[0]) == string(c[0]) {
		t.Error("different seeds produced identical logic")
	}
}

func TestSynthesizeLUTBudget(t *testing.T) {
	// The synthesised images must realise exactly the demanded LUT count.
	f := func(raw uint16) bool {
		demand := int(raw) % (testGeom.LUTsPerFrame() * 4)
		images, err := Synthesize(testGeom, Netlist{FnID: 1, LUTs: demand, Seed: 3})
		if err != nil {
			return false
		}
		used := 0
		for _, img := range images {
			for row := 1; row < testGeom.Rows; row++ {
				clb := fpga.DecodeCLB(img[row*fpga.CLBBytes:])
				used += clb.UsedLUTs()
			}
		}
		// Synthesised LUT inits are never zero, so usage is exact.
		return used == demand
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeRejectsOversized(t *testing.T) {
	demand := testGeom.LUTsPerFrame()*testGeom.NumFrames() + 1
	if _, err := Synthesize(testGeom, Netlist{FnID: 1, LUTs: demand}); err == nil {
		t.Error("oversized function synthesised")
	}
	if _, err := Synthesize(testGeom, Netlist{FnID: 1, LUTs: -1}); err == nil {
		t.Error("negative LUT demand accepted")
	}
}

func TestAssembleLoadsThroughPort(t *testing.T) {
	fab := newFabric(t)
	images, err := Synthesize(testGeom, Netlist{FnID: 9, Serial: 5, LUTs: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]int, len(images))
	for i := range frames {
		frames[i] = 3 + 2*i // non-contiguous placement
	}
	bs, err := Assemble(testGeom, fab.IDCode(), frames, images)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Port().Write(bs); err != nil {
		t.Fatalf("port rejected assembled stream: %v", err)
	}
	inst, err := fab.Activate(frames)
	if err != nil {
		t.Fatalf("activate: %v", err)
	}
	out, _, err := inst.Exec([]byte("hello"))
	if err != nil || string(out) != "hello" {
		t.Fatalf("exec: %v %q", err, out)
	}
	// Configuration memory must hold exactly the synthesised images.
	for i, fi := range frames {
		got, err := fab.ReadFrame(fi)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(images[i]) {
			t.Errorf("frame %d readback differs from image", fi)
		}
	}
}

func TestAssembleValidation(t *testing.T) {
	images, _ := Synthesize(testGeom, Netlist{FnID: 9, LUTs: 10})
	if _, err := Assemble(testGeom, 0, []int{0, 1}, images); err == nil {
		t.Error("frame/image count mismatch accepted")
	}
	if _, err := Assemble(testGeom, 0, nil, nil); err == nil {
		t.Error("empty frame set accepted")
	}
	if _, err := Assemble(testGeom, 0, []int{99}, images); err == nil {
		t.Error("out-of-range frame accepted")
	}
	short := [][]byte{make([]byte, 3)}
	if _, err := Assemble(testGeom, 0, []int{0}, short); err == nil {
		t.Error("short image accepted")
	}
}

func TestAssembleRejectsTallGeometry(t *testing.T) {
	tall := fpga.Geometry{Rows: 400, Cols: 4} // 400*21/4 = 2100 words > 2047
	images := [][]byte{make([]byte, tall.FrameBytes())}
	if _, err := Assemble(tall, 0, []int{0}, images); err == nil {
		t.Error("FDRI overflow not detected")
	}
}

func TestAssembleDiffSkipsIdenticalFrames(t *testing.T) {
	fab := newFabric(t)
	images, err := Synthesize(testGeom, Netlist{FnID: 9, Serial: 1, LUTs: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]int, len(images))
	for i := range frames {
		frames[i] = i
	}
	bs, err := Assemble(testGeom, fab.IDCode(), frames, images)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Port().Write(bs); err != nil {
		t.Fatal(err)
	}

	// Same function again: nothing differs, nothing to write.
	current := make([][]byte, len(frames))
	for i, fi := range frames {
		current[i], _ = fab.ReadFrame(fi)
	}
	diff, n, err := AssembleDiff(testGeom, fab.IDCode(), frames, images, current)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || diff != nil {
		t.Fatalf("identical diff wrote %d frames", n)
	}

	// Perturb one target image: exactly one frame must be rewritten.
	images2 := make([][]byte, len(images))
	for i := range images {
		images2[i] = append([]byte(nil), images[i]...)
	}
	images2[1][fpga.SigBytes+5] ^= 0xFF
	diff, n, err = AssembleDiff(testGeom, fab.IDCode(), frames, images2, current)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("diff wrote %d frames, want 1", n)
	}
	if len(diff) >= len(bs) {
		t.Errorf("diff stream (%d B) not smaller than full stream (%d B)", len(diff), len(bs))
	}
	if _, err := fab.Port().Write(diff); err != nil {
		t.Fatalf("port rejected diff stream: %v", err)
	}
	got, _ := fab.ReadFrame(1)
	if string(got) != string(images2[1]) {
		t.Error("diff did not apply the changed frame")
	}
}

func TestAssembleDiffValidation(t *testing.T) {
	if _, _, err := AssembleDiff(testGeom, 0, []int{0}, nil, nil); err == nil {
		t.Error("mismatched diff inputs accepted")
	}
}

func TestBuilderCRCTracksPort(t *testing.T) {
	// A builder-produced stream with a deliberate extra register write
	// must still pass the port CRC check, proving builder and port agree
	// on CRC accounting.
	fab := newFabric(t)
	b := NewBuilder()
	b.Command(fpga.CmdRCRC)
	b.WriteReg(fpga.RegIDCODE, fab.IDCode())
	b.WriteReg(fpga.RegCOR, 0x1234)
	b.WriteReg(fpga.RegCTL, 0x9)
	b.WriteCRC()
	b.Command(fpga.CmdDESYNC)
	if _, err := fab.Port().Write(b.Bytes()); err != nil {
		t.Fatalf("CRC disagreement: %v", err)
	}
}

func TestFrameWordsPadding(t *testing.T) {
	g := fpga.Geometry{Rows: 3, Cols: 2} // 63 bytes per frame: padded final word
	img := make([]byte, g.FrameBytes())
	img[len(img)-1] = 0xEE
	words, err := FrameWords(g, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != g.FrameWords() {
		t.Fatalf("words = %d", len(words))
	}
	if _, err := FrameWords(g, make([]byte, 10)); err == nil {
		t.Error("short image accepted")
	}
}

func TestPartialReconfigLeavesNeighboursRunning(t *testing.T) {
	// The paper's core property: configuring new frames must not disturb a
	// function resident in other frames.
	reg := fpga.NewRegistry()
	if err := reg.Register(nopCore(9)); err != nil {
		t.Fatal(err)
	}
	type xorCore struct{ nopCore }
	fab := fpga.NewFabric(testGeom, reg)

	imagesA, _ := Synthesize(testGeom, Netlist{FnID: 9, Serial: 1, LUTs: 30, Seed: 1})
	framesA := []int{0}
	bsA, _ := Assemble(testGeom, fab.IDCode(), framesA, imagesA)
	if _, err := fab.Port().Write(bsA); err != nil {
		t.Fatal(err)
	}
	instA, err := fab.Activate(framesA)
	if err != nil {
		t.Fatal(err)
	}

	// Load a second copy of the function elsewhere.
	imagesB, _ := Synthesize(testGeom, Netlist{FnID: 9, Serial: 2, LUTs: 30, Seed: 2})
	bsB, _ := Assemble(testGeom, fab.IDCode(), []int{5}, imagesB)
	if _, err := fab.Port().Write(bsB); err != nil {
		t.Fatal(err)
	}

	// Function A still valid and executable.
	if !instA.Valid() {
		t.Fatal("partial reconfiguration invalidated untouched frames")
	}
	if _, _, err := instA.Exec([]byte{1, 2}); err != nil {
		t.Fatalf("exec after neighbour reconfig: %v", err)
	}
	_ = xorCore{}
}

func TestAssembledStreamsDeterministic(t *testing.T) {
	images, _ := Synthesize(testGeom, Netlist{FnID: 9, Serial: 1, LUTs: 80, Seed: 4})
	frames := []int{1, 2}
	a, err := Assemble(testGeom, fpga.DefaultIDCode, frames, images)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Assemble(testGeom, fpga.DefaultIDCode, frames, images)
	if string(a) != string(b) {
		t.Error("assembly not deterministic")
	}
}
