package client

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// Backoff is the repository's one retry-delay policy: exponential
// growth from Base doubling per attempt, capped at Max, with the
// actual delay uniformly jittered in [d/2, d) so synchronised peers
// desynchronise. The client's retry loop and the router's backend
// health probes share this implementation — a fix to the schedule in
// one place fixes every caller.
//
// Safe for concurrent use.
type Backoff struct {
	// Base is attempt 0's nominal delay; Max caps the doubled series.
	Base time.Duration
	Max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a schedule. Non-positive base/max select the
// client defaults. Seed 0 draws a random seed (the production
// default); any other seed makes the jitter reproducible.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	return &Backoff{Base: base, Max: max, rng: newJitterRNG(seed)}
}

// newJitterRNG builds the backoff jitter PRNG. Seed 0 draws a random
// seed (the production default); any other seed is reproducible.
func newJitterRNG(seed uint64) *rand.Rand {
	if seed == 0 {
		seed = rand.Uint64()
	}
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}

// Delay computes the jittered delay before retry number attempt
// (counting from 0).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base << uint(attempt)
	if d <= 0 || d > b.Max {
		d = b.Max
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return d/2 + time.Duration(b.rng.Int64N(int64(d/2)+1))
}

// Sleep waits out attempt's jittered delay, or returns the context's
// error if it ends first.
func (b *Backoff) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Delay(attempt)) //lint:wallclock retry backoff really sleeps; callers live outside the simulation
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
