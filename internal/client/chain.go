package client

import (
	"context"

	"agilefpga/internal/trace"
)

// CallChain runs the stage list over payload as one on-card dataflow
// chain on the server, returning the final stage's output and the
// serving card. The request ships as a single chain frame — the input
// crosses the network and the card's PCI link once, every intermediate
// result stays in card RAM — and the answer is an ordinary response
// frame. Deadlines, retries and backoff behave exactly as in Call (a
// chain is a pure function of its payload, so retrying is safe).
func (c *Client) CallChain(ctx context.Context, stages []uint16, payload []byte) ([]byte, int, error) {
	var fn uint16
	if len(stages) > 0 {
		fn = stages[0]
	}
	ref := c.opts.Tracer.StartRoot("chain", "client", fn)
	out, card, err := c.call(ctx, fn, stages, payload, ref)
	c.opts.Tracer.End(ref, spanStatus(err))
	return out, card, err
}

// CallChainRef is CallChain under a caller-owned parent span — the
// proxy-hop shape, like CallRef.
func (c *Client) CallChainRef(ctx context.Context, stages []uint16, payload []byte, parent trace.SpanRef) ([]byte, int, error) {
	var fn uint16
	if len(stages) > 0 {
		fn = stages[0]
	}
	return c.call(ctx, fn, stages, payload, parent)
}
