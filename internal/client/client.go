// Package client is the network counterpart of internal/server: a
// multiplexing, retrying wire-protocol client. Concurrent Calls are
// pipelined over a small pool of connections — each connection carries
// many requests in flight, a dedicated reader goroutine demultiplexes
// responses (which may arrive out of order) back to waiting calls by
// request id, and new calls are routed to the connection with the
// fewest requests in flight. Calls carry the context deadline to the
// server as a relative budget, and retry transient failures —
// RESOURCE_EXHAUSTED, UNAVAILABLE, and transport errors — with
// jittered exponential backoff until the context or the retry budget
// runs out. Requests are pure functions of their payload, so retrying
// after an ambiguous transport failure is safe.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"agilefpga/internal/metrics"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// Defaults for Options.
const (
	DefaultPoolSize    = 4
	DefaultDialTimeout = 5 * time.Second
	DefaultMaxRetries  = 4
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
)

// ErrClosed is returned by Call after Close.
var ErrClosed = errors.New("client: closed")

// Options tunes the client. The zero value of every field selects a
// default; MaxRetries < 0 disables retries.
type Options struct {
	// PoolSize bounds multiplexed connections (default 4). Concurrent
	// calls share connections — each connection pipelines many requests
	// — so the pool never grows past PoolSize no matter the concurrency;
	// new connections are dialled lazily while every live one is busy.
	PoolSize int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// MaxRetries is the number of retries after the first attempt
	// (default 4; negative = no retries).
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay (default 5ms);
	// each further retry doubles it, capped at MaxBackoff (default
	// 500ms). The actual delay is uniformly jittered in [d/2, d) so
	// synchronised clients desynchronise.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnRetry, if set, observes each retry decision (attempt counts
	// from 0) — used by tests and metrics wiring.
	OnRetry func(attempt int, err error)
	// JitterSeed seeds the backoff jitter PRNG, making retry schedules
	// reproducible in tests. Zero (the default) draws a random seed, so
	// production clients stay desynchronised from one another.
	JitterSeed uint64
	// Metrics, if set, receives the client series: the
	// agile_net_mux_inflight_per_conn gauge labelled by pool slot.
	Metrics *metrics.Registry
	// Tracer, if set, traces calls: every Call roots one span (head
	// sampling decides whether it is recorded), each attempt becomes a
	// child span, and sampled attempts ship their trace context in the
	// wire frame so the server's spans join the same trace.
	Tracer *trace.Tracer
}

// StatusError is a non-OK wire status answered by the server.
type StatusError struct {
	Status wire.Status
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server answered %s: %s", e.Status, e.Msg)
}

// Retryable reports whether the status is transient.
func (e *StatusError) Retryable() bool { return e.Status.Retryable() }

// TransportError is a connection-level failure (dial, write, read, or a
// response that broke the framing). Always retryable: the protocol is
// idempotent.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "transport: " + e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// retryable classifies an attempt error.
func retryable(err error) bool {
	switch e := err.(type) {
	case *StatusError:
		return e.Retryable()
	case *TransportError:
		return true
	}
	return false
}

// result is what the reader goroutine hands a waiting call.
type result struct {
	resp *wire.Response
	err  error
}

// muxConn is one multiplexed connection: many calls in flight, one
// reader goroutine routing responses back by request id.
type muxConn struct {
	c        net.Conn
	slot     int           // pool index, for the per-conn gauge label
	inflight atomic.Int64  // calls between register and settle
	done     chan struct{} // closed when the reader exits

	wmu sync.Mutex // serialises writes; a frame is never interleaved

	mu      sync.Mutex
	waiters map[uint64]chan result // in-flight request id → its call
	err     error                  // set once the connection breaks
}

// register installs a waiter for id. The returned channel has capacity
// one, so the reader's send never blocks even if the call abandons.
func (m *muxConn) register(id uint64) (chan result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	ch := make(chan result, 1)
	m.waiters[id] = ch
	return ch, nil
}

// unregister abandons a waiter (context expiry, write failure). A late
// response for the id is then legal and dropped by the reader.
func (m *muxConn) unregister(id uint64) {
	m.mu.Lock()
	delete(m.waiters, id)
	m.mu.Unlock()
}

// fail marks the connection broken and settles every outstanding
// waiter with err. Sends happen outside the lock; each channel is
// buffered and owned by exactly one waiter, so they cannot block.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	m.err = err
	ws := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	for _, ch := range ws {
		ch <- result{err: err}
	}
}

// readLoop is the demultiplexer: it owns the read side of the
// connection, routing each response to the waiter that registered its
// id. Responses may arrive in any order — a slow request never blocks
// a fast one behind it. On read error the connection is dead: it
// leaves the pool and every outstanding call fails (retryably).
func (m *muxConn) readLoop(drop func(*muxConn)) {
	defer close(m.done)
	for {
		resp, err := wire.ReadResponse(m.c)
		if err != nil {
			drop(m)
			m.c.Close()
			m.fail(&TransportError{err})
			return
		}
		m.mu.Lock()
		ch := m.waiters[resp.ID]
		delete(m.waiters, resp.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- result{resp: resp}
		}
		// Unknown id: the call abandoned its wait (context expiry) and a
		// late answer arrived. Dropping it is the contract.
	}
}

// Client multiplexes calls to one server over a bounded connection
// pool. Safe for concurrent use.
type Client struct {
	addr   string
	opts   Options
	nextID atomic.Uint64
	bo     *Backoff

	dialMu sync.Mutex // serialises pool growth so a dial storm cannot overshoot

	mu     sync.Mutex
	conns  []*muxConn // fixed PoolSize slots; nil = not yet dialled
	closed bool

	gauges []*metrics.Gauge // per-slot inflight gauges (nil-safe)
}

// Dial validates the address by establishing the first pooled
// connection, and returns the client.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = DefaultPoolSize
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	c := &Client{
		addr:   addr,
		opts:   opts,
		conns:  make([]*muxConn, opts.PoolSize),
		gauges: make([]*metrics.Gauge, opts.PoolSize),
		bo:     NewBackoff(opts.BaseBackoff, opts.MaxBackoff, opts.JitterSeed),
	}
	for i := range c.gauges {
		c.gauges[i] = opts.Metrics.Gauge("agile_net_mux_inflight_per_conn",
			metrics.L("conn", strconv.Itoa(i)))
	}
	if _, err := c.grow(); err != nil {
		return nil, err
	}
	return c, nil
}

// pick chooses the connection for a new call: the live connection with
// the fewest requests in flight, dialling into an empty pool slot
// first when every live connection is already busy.
func (c *Client) pick() (*muxConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		var best *muxConn
		hasEmpty := false
		for _, m := range c.conns {
			if m == nil {
				hasEmpty = true
				continue
			}
			if best == nil || m.inflight.Load() < best.inflight.Load() {
				best = m
			}
		}
		c.mu.Unlock()
		if best != nil && (!hasEmpty || best.inflight.Load() == 0) {
			return best, nil
		}
		m, err := c.grow()
		if m != nil {
			return m, nil
		}
		if err != nil {
			if best != nil {
				return best, nil // dial failed but a live conn can still carry the call
			}
			return nil, err
		}
		// grow lost a race (the pool filled meanwhile) — rescan.
	}
}

// grow dials one connection into the first empty pool slot and starts
// its reader. Returns (nil, nil) when the pool is already full.
func (c *Client) grow() (*muxConn, error) {
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.mu.Lock()
	slot := -1
	for i, m := range c.conns {
		if m == nil {
			slot = i
			break
		}
	}
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if slot < 0 {
		return nil, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, &TransportError{err}
	}
	m := &muxConn{c: nc, slot: slot, done: make(chan struct{}), waiters: make(map[uint64]chan result)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		close(m.done)
		return nil, ErrClosed
	}
	c.conns[slot] = m
	c.mu.Unlock()
	go m.readLoop(c.dropConn)
	return m, nil
}

// dropConn frees a broken connection's pool slot so pick can redial.
func (c *Client) dropConn(m *muxConn) {
	c.mu.Lock()
	if m.slot < len(c.conns) && c.conns[m.slot] == m {
		c.conns[m.slot] = nil
	}
	c.mu.Unlock()
}

// Call runs function fn over payload on the server, returning the
// output and the serving card. The context deadline bounds the whole
// call including retries and is forwarded to the server as the
// request's remaining budget. Non-OK statuses surface as *StatusError;
// connection failures as *TransportError (after retries are spent).
func (c *Client) Call(ctx context.Context, fn uint16, payload []byte) ([]byte, int, error) {
	// One root span per Call, one child per attempt. A nil tracer (or a
	// sampled-out decision) yields zero refs and every span call below
	// is a no-op — the untraced path allocates nothing.
	ref := c.opts.Tracer.StartRoot("call", "client", fn)
	out, card, err := c.call(ctx, fn, nil, payload, ref)
	c.opts.Tracer.End(ref, spanStatus(err))
	return out, card, err
}

// CallRef is Call under a caller-owned parent span: attempts become
// children of parent and no root span is opened or ended here — the
// shape a proxy hop needs to keep one trace across client → router →
// backend. A tracer-less client forwards parent as the wire trace
// context unchanged, so context still propagates through a hop that
// records nothing itself.
func (c *Client) CallRef(ctx context.Context, fn uint16, payload []byte, parent trace.SpanRef) ([]byte, int, error) {
	return c.call(ctx, fn, nil, payload, parent)
}

// Inflight reports the calls currently in flight across the pool —
// the load signal a router uses for least-loaded spill decisions.
func (c *Client) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, m := range c.conns {
		if m != nil {
			n += m.inflight.Load()
		}
	}
	return int(n)
}

// call is the retry loop behind Call and CallChain. A non-nil stages
// list ships the attempt as a chain frame instead of a plain request;
// fn is then stage 0, kept for span labels.
func (c *Client) call(ctx context.Context, fn uint16, stages []uint16, payload []byte, ref trace.SpanRef) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, -1, err
		}
		aref := c.opts.Tracer.StartChild(ref, "attempt", "client", fn)
		wref := aref
		if !wref.Valid() {
			// Tracer-less (or sampled-out) hop: ship the caller's own
			// context so an upstream trace survives the forward.
			wref = ref
		}
		out, card, err := c.once(ctx, fn, stages, payload, wref)
		c.opts.Tracer.End(aref, spanStatus(err))
		if err == nil {
			return out, card, nil
		}
		if !retryable(err) || attempt >= c.opts.MaxRetries {
			return nil, card, err
		}
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(attempt, err)
		}
		if err := c.bo.Sleep(ctx, attempt); err != nil {
			return nil, card, err
		}
	}
}

// spanStatus renders an attempt outcome as a span status string.
func spanStatus(err error) string {
	switch e := err.(type) {
	case nil:
		return "ok"
	case *StatusError:
		return e.Status.String()
	case *TransportError:
		return "transport"
	default:
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "error"
}

// once is a single attempt, pipelined onto one multiplexed connection.
// A valid aref ships as the request's wire trace context, so the
// server's spans join this attempt's trace. A non-nil stages list sends
// a chain frame; plain and chain attempts share the pool, the id space
// and the demultiplexer (responses are ordinary response frames).
func (c *Client) once(ctx context.Context, fn uint16, stages []uint16, payload []byte, aref trace.SpanRef) ([]byte, int, error) {
	m, err := c.pick()
	if err != nil {
		return nil, -1, err
	}
	var budget time.Duration
	dl, hasDL := ctx.Deadline()
	if hasDL {
		budget = time.Until(dl) //lint:wallclock context deadlines are wall time; the budget shipped on the wire is relative
		if budget <= 0 {
			return nil, -1, context.DeadlineExceeded
		}
	}
	id := c.nextID.Add(1)
	ch, err := m.register(id)
	if err != nil {
		return nil, -1, err // already a *TransportError from the reader
	}
	m.inflight.Add(1)
	c.gauges[m.slot].Inc()
	defer func() {
		m.inflight.Add(-1)
		c.gauges[m.slot].Dec()
	}()
	var tc wire.TraceContext
	if aref.Valid() {
		tc = wire.TraceContext{TraceID: aref.TraceID, SpanID: aref.SpanID, Flags: wire.FlagSampled}
	}
	m.wmu.Lock()
	if hasDL {
		m.c.SetWriteDeadline(dl)
	} else {
		m.c.SetWriteDeadline(time.Time{})
	}
	var werr error
	if stages != nil {
		werr = wire.WriteChainRequest(m.c, &wire.ChainRequest{ID: id, Stages: stages, Deadline: budget, Payload: payload, Trace: tc})
	} else {
		werr = wire.WriteRequest(m.c, &wire.Request{ID: id, Fn: fn, Deadline: budget, Payload: payload, Trace: tc})
	}
	m.wmu.Unlock()
	if werr != nil {
		m.unregister(id)
		// The stream may hold a torn frame — framing trust is gone, so
		// the connection dies; its reader reaps the other waiters.
		m.c.Close()
		return nil, -1, &TransportError{werr}
	}
	select {
	case <-ctx.Done():
		m.unregister(id)
		return nil, -1, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return nil, -1, r.err
		}
		if r.resp.Status != wire.StatusOK {
			return nil, int(r.resp.Card), &StatusError{Status: r.resp.Status, Msg: string(r.resp.Payload)}
		}
		return r.resp.Payload, int(r.resp.Card), nil
	}
}

// backoff computes the jittered delay before retry number attempt.
// Kept as a method so tests exercise the schedule the retry loop uses;
// the policy itself lives in the shared Backoff type.
func (c *Client) backoff(attempt int) time.Duration {
	return c.bo.Delay(attempt)
}

// Close closes every pooled connection and waits for their readers to
// exit. Calls still in flight settle with a transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*muxConn(nil), c.conns...)
	c.mu.Unlock()
	for _, m := range conns {
		if m != nil {
			m.c.Close()
		}
	}
	for _, m := range conns {
		if m != nil {
			<-m.done
		}
	}
	return nil
}
