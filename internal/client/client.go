// Package client is the network counterpart of internal/server: a
// pooled, retrying wire-protocol client. Calls borrow a pooled
// connection (dialling on demand), carry the context deadline to the
// server as a relative budget, and retry transient failures —
// RESOURCE_EXHAUSTED, UNAVAILABLE, and transport errors — with
// jittered exponential backoff until the context or the retry budget
// runs out. Requests are pure functions of their payload, so retrying
// after an ambiguous transport failure is safe.
package client

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"agilefpga/internal/wire"
)

// Defaults for Options.
const (
	DefaultPoolSize    = 4
	DefaultDialTimeout = 5 * time.Second
	DefaultMaxRetries  = 4
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
)

// Options tunes the client. The zero value of every field selects a
// default; MaxRetries < 0 disables retries.
type Options struct {
	// PoolSize bounds idle pooled connections (default 4). More
	// concurrent calls than pool slots dial extra connections that are
	// closed instead of pooled when they come back idle.
	PoolSize int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// MaxRetries is the number of retries after the first attempt
	// (default 4; negative = no retries).
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay (default 5ms);
	// each further retry doubles it, capped at MaxBackoff (default
	// 500ms). The actual delay is uniformly jittered in [d/2, d) so
	// synchronised clients desynchronise.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnRetry, if set, observes each retry decision (attempt counts
	// from 0) — used by tests and metrics wiring.
	OnRetry func(attempt int, err error)
	// JitterSeed seeds the backoff jitter PRNG, making retry schedules
	// reproducible in tests. Zero (the default) draws a random seed, so
	// production clients stay desynchronised from one another.
	JitterSeed uint64
}

// StatusError is a non-OK wire status answered by the server.
type StatusError struct {
	Status wire.Status
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server answered %s: %s", e.Status, e.Msg)
}

// Retryable reports whether the status is transient.
func (e *StatusError) Retryable() bool { return e.Status.Retryable() }

// TransportError is a connection-level failure (dial, write, read, or a
// response that broke the framing). Always retryable: the protocol is
// idempotent.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "transport: " + e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// retryable classifies an attempt error.
func retryable(err error) bool {
	switch e := err.(type) {
	case *StatusError:
		return e.Retryable()
	case *TransportError:
		return true
	}
	return false
}

// Client is a pooled connection to one server. Safe for concurrent use.
type Client struct {
	addr   string
	opts   Options
	idle   chan net.Conn
	nextID atomic.Uint64
	rng    *rand.Rand
	rngMu  sync.Mutex
	closed atomic.Bool
}

// Dial validates the address by establishing (and pooling) one
// connection, and returns the client.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = DefaultPoolSize
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	c := &Client{
		addr: addr,
		opts: opts,
		idle: make(chan net.Conn, opts.PoolSize),
		rng:  newJitterRNG(opts.JitterSeed),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.put(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, &TransportError{err}
	}
	return conn, nil
}

// get borrows an idle connection or dials a fresh one.
func (c *Client) get() (net.Conn, error) {
	select {
	case conn := <-c.idle:
		return conn, nil
	default:
		return c.dial()
	}
}

// put returns a connection to the pool, closing it if the pool is full
// or the client closed.
func (c *Client) put(conn net.Conn) {
	if c.closed.Load() {
		conn.Close()
		return
	}
	select {
	case c.idle <- conn:
	default:
		conn.Close()
	}
}

// Call runs function fn over payload on the server, returning the
// output and the serving card. The context deadline bounds the whole
// call including retries and is forwarded to the server as the
// request's remaining budget. Non-OK statuses surface as *StatusError;
// connection failures as *TransportError (after retries are spent).
func (c *Client) Call(ctx context.Context, fn uint16, payload []byte) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, -1, err
		}
		out, card, err := c.once(ctx, fn, payload)
		if err == nil {
			return out, card, nil
		}
		if !retryable(err) || attempt >= c.opts.MaxRetries {
			return nil, card, err
		}
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(attempt, err)
		}
		if err := c.sleep(ctx, c.backoff(attempt)); err != nil {
			return nil, card, err
		}
	}
}

// once is a single attempt over a single connection.
func (c *Client) once(ctx context.Context, fn uint16, payload []byte) ([]byte, int, error) {
	conn, err := c.get()
	if err != nil {
		return nil, -1, err
	}
	healthy := false
	defer func() {
		if healthy {
			c.put(conn)
		} else {
			conn.Close()
		}
	}()
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl) //lint:wallclock context deadlines are wall time; the budget shipped on the wire is relative
		if budget <= 0 {
			return nil, -1, context.DeadlineExceeded
		}
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	id := c.nextID.Add(1)
	req := &wire.Request{ID: id, Fn: fn, Deadline: budget, Payload: payload}
	if err := wire.WriteRequest(conn, req); err != nil {
		return nil, -1, &TransportError{err}
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		return nil, -1, &TransportError{err}
	}
	if resp.ID != id {
		// The stream answered some other request — framing trust is
		// gone, drop the connection.
		return nil, -1, &TransportError{fmt.Errorf("response id %d for request %d", resp.ID, id)}
	}
	if resp.Status != wire.StatusOK {
		healthy = true // protocol intact; only the request failed
		return nil, int(resp.Card), &StatusError{Status: resp.Status, Msg: string(resp.Payload)}
	}
	healthy = true
	return resp.Payload, int(resp.Card), nil
}

// newJitterRNG builds the backoff jitter PRNG. Seed 0 draws a random
// seed (the production default); any other seed is reproducible.
func newJitterRNG(seed uint64) *rand.Rand {
	if seed == 0 {
		seed = rand.Uint64()
	}
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}

// backoff computes the jittered delay before retry number attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int64N(int64(d/2)+1))
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d) //lint:wallclock retry backoff really sleeps; the client is outside the simulation
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Close closes pooled connections. In-flight calls on borrowed
// connections finish; their connections are closed on return.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for {
		select {
		case conn := <-c.idle:
			conn.Close()
		default:
			return nil
		}
	}
}
