package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"agilefpga/internal/wire"
)

func testClient() *Client {
	c := &Client{opts: Options{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}}
	c.rng = rand.New(rand.NewSource(1))
	return c
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := testClient()
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		// Nominal delay for this attempt: base << attempt, capped.
		nominal := c.opts.BaseBackoff << uint(attempt)
		if nominal <= 0 || nominal > c.opts.MaxBackoff {
			nominal = c.opts.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < nominal/2 || d > nominal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
			}
		}
		if nominal < prevMax {
			t.Fatalf("attempt %d: nominal shrank", attempt)
		}
		prevMax = nominal
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&StatusError{Status: wire.StatusResourceExhausted}, true},
		{&StatusError{Status: wire.StatusUnavailable}, true},
		{&StatusError{Status: wire.StatusInternal}, false},
		{&StatusError{Status: wire.StatusNotFound}, false},
		{&TransportError{errors.New("conn reset")}, true},
		{errors.New("anything else"), false},
	}
	for i, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("case %d (%v): retryable = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

func TestStatusErrorMessage(t *testing.T) {
	e := &StatusError{Status: wire.StatusResourceExhausted, Msg: "server at capacity"}
	if e.Error() != "server answered resource_exhausted: server at capacity" {
		t.Fatalf("message = %q", e.Error())
	}
	var te *TransportError
	wrapped := &TransportError{errors.New("boom")}
	if !errors.As(error(wrapped), &te) || errors.Unwrap(wrapped).Error() != "boom" {
		t.Fatal("transport error does not unwrap")
	}
}

func TestDialFailureIsTransport(t *testing.T) {
	// A port nothing listens on: dial must fail with a retryable
	// transport error, not hang.
	_, err := Dial("127.0.0.1:1", Options{DialTimeout: 200 * time.Millisecond})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransportError", err)
	}
	if !retryable(err) {
		t.Fatal("dial failures must be retryable")
	}
}
