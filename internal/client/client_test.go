package client

import (
	"errors"
	"testing"
	"time"

	"agilefpga/internal/wire"
)

func testClient() *Client {
	c := &Client{opts: Options{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterSeed: 1}}
	c.bo = NewBackoff(c.opts.BaseBackoff, c.opts.MaxBackoff, c.opts.JitterSeed)
	return c
}

// TestBackoffSeedDeterminism pins the satellite contract: the same
// JitterSeed yields the same retry schedule, different seeds diverge.
func TestBackoffSeedDeterminism(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		c := &Client{opts: Options{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterSeed: seed}}
		c.bo = NewBackoff(c.opts.BaseBackoff, c.opts.MaxBackoff, seed)
		var ds []time.Duration
		for attempt := 0; attempt < 6; attempt++ {
			ds = append(ds, c.backoff(attempt))
		}
		return ds
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := mk(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := testClient()
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		// Nominal delay for this attempt: base << attempt, capped.
		nominal := c.opts.BaseBackoff << uint(attempt)
		if nominal <= 0 || nominal > c.opts.MaxBackoff {
			nominal = c.opts.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < nominal/2 || d > nominal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
			}
		}
		if nominal < prevMax {
			t.Fatalf("attempt %d: nominal shrank", attempt)
		}
		prevMax = nominal
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&StatusError{Status: wire.StatusResourceExhausted}, true},
		{&StatusError{Status: wire.StatusUnavailable}, true},
		{&StatusError{Status: wire.StatusInternal}, false},
		{&StatusError{Status: wire.StatusNotFound}, false},
		{&TransportError{errors.New("conn reset")}, true},
		{errors.New("anything else"), false},
	}
	for i, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("case %d (%v): retryable = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

func TestStatusErrorMessage(t *testing.T) {
	e := &StatusError{Status: wire.StatusResourceExhausted, Msg: "server at capacity"}
	if e.Error() != "server answered resource_exhausted: server at capacity" {
		t.Fatalf("message = %q", e.Error())
	}
	var te *TransportError
	wrapped := &TransportError{errors.New("boom")}
	if !errors.As(error(wrapped), &te) || errors.Unwrap(wrapped).Error() != "boom" {
		t.Fatal("transport error does not unwrap")
	}
}

func TestDialFailureIsTransport(t *testing.T) {
	// A port nothing listens on: dial must fail with a retryable
	// transport error, not hang.
	_, err := Dial("127.0.0.1:1", Options{DialTimeout: 200 * time.Millisecond})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransportError", err)
	}
	if !retryable(err) {
		t.Fatal("dial failures must be retryable")
	}
}
