package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"agilefpga/internal/metrics"
	"agilefpga/internal/testutil"
	"agilefpga/internal/wire"
)

// TestMain fails the package if any client goroutine — a connection
// reader, a demux, a retry sleeper — outlives its test. Abrupt
// connection close and drain-during-pipeline below exist precisely to
// exercise the reader's exit paths.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.CheckGoroutineLeaks(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// fakeServer accepts connections and runs handler on each, tracking
// every conn so close tears everything down deterministically.
type fakeServer struct {
	ln       net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	conns    []net.Conn
	accepted atomic.Int64
}

func newFakeServer(t *testing.T, handler func(net.Conn)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fs.accepted.Add(1)
			fs.mu.Lock()
			fs.conns = append(fs.conns, c)
			fs.mu.Unlock()
			fs.wg.Add(1)
			go func() {
				defer fs.wg.Done()
				defer c.Close()
				handler(c)
			}()
		}
	}()
	t.Cleanup(fs.close)
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) close() {
	fs.ln.Close()
	fs.mu.Lock()
	for _, c := range fs.conns {
		c.Close()
	}
	fs.mu.Unlock()
	fs.wg.Wait()
}

// echo answers each request immediately with its own payload.
func echo(c net.Conn) {
	for {
		req, err := wire.ReadRequest(c)
		if err != nil {
			return
		}
		wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
	}
}

// TestMuxOutOfOrderResponses pins the demultiplexer contract: the
// server answers a whole pipeline of requests in reverse order, and
// every concurrent Call still receives exactly its own bytes.
func TestMuxOutOfOrderResponses(t *testing.T) {
	const n = 8
	fs := newFakeServer(t, func(c net.Conn) {
		reqs := make([]*wire.Request, 0, n)
		for len(reqs) < n {
			req, err := wire.ReadRequest(c)
			if err != nil {
				return
			}
			reqs = append(reqs, req)
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			wire.WriteResponse(c, &wire.Response{ID: reqs[i].ID, Status: wire.StatusOK, Card: int16(i), Payload: reqs[i].Payload})
		}
	})
	cl, err := Dial(fs.addr(), Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("payload-%d", i))
			out, _, err := cl.Call(context.Background(), 7, want)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(out, want) {
				errs[i] = fmt.Errorf("call %d got %q", i, out)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	if got := fs.accepted.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1 — pool must multiplex", got)
	}
}

// TestMuxSlowDoesNotBlockFast is the deterministic head-of-line test:
// a slow request is held by the server until a fast request submitted
// after it has already completed on the same connection.
func TestMuxSlowDoesNotBlockFast(t *testing.T) {
	slowSeen := make(chan uint64, 1)   // server → test: the slow request arrived
	releaseSlow := make(chan struct{}) // test → server: answer it now
	fs := newFakeServer(t, func(c net.Conn) {
		slow, err := wire.ReadRequest(c)
		if err != nil {
			return
		}
		slowSeen <- slow.ID
		for {
			req, err := wire.ReadRequest(c)
			if err != nil {
				return
			}
			if req.Fn == 99 { // the parting shot: answer the held request
				<-releaseSlow
				wire.WriteResponse(c, &wire.Response{ID: slow.ID, Status: wire.StatusOK, Payload: slow.Payload})
				wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
				continue
			}
			wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
		}
	})
	cl, err := Dial(fs.addr(), Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := cl.Call(context.Background(), 1, []byte("slow"))
		slowDone <- err
	}()
	<-slowSeen // the slow request is parked server-side
	// A fast call issued afterwards completes while slow is still held.
	if out, _, err := cl.Call(context.Background(), 2, []byte("fast")); err != nil || !bytes.Equal(out, []byte("fast")) {
		t.Fatalf("fast call behind a stalled request: out=%q err=%v", out, err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call settled before release: %v", err)
	default:
	}
	close(releaseSlow)
	go cl.Call(context.Background(), 99, []byte("release")) //nolint — answered alongside slow
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMuxAbruptConnClose: the server slams the connection with calls
// in flight. Every waiter must settle with a retryable transport
// error (no hang), the broken conn must leave the pool, and the next
// call must transparently redial.
func TestMuxAbruptConnClose(t *testing.T) {
	var kill atomic.Bool
	kill.Store(true)
	fs := newFakeServer(t, func(c net.Conn) {
		req, err := wire.ReadRequest(c)
		if err != nil {
			return
		}
		if kill.Load() {
			return // deferred close in the harness slams the conn unanswered
		}
		wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
		echo(c)
	})
	cl, err := Dial(fs.addr(), Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Call(context.Background(), 1, []byte("doomed"))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransportError", err)
	}
	if !retryable(err) {
		t.Fatal("an abrupt close must be retryable")
	}
	kill.Store(false)
	// The dead conn's slot was reclaimed: a fresh call redials and works.
	out, _, err := cl.Call(context.Background(), 1, []byte("revived"))
	if err != nil || !bytes.Equal(out, []byte("revived")) {
		t.Fatalf("call after redial: out=%q err=%v", out, err)
	}
}

// TestMuxCloseDrainsPipeline: Close with a pipeline in flight settles
// every waiter (no goroutine parks forever on its response channel)
// and waits for the readers to exit — the leak TestMain seals it.
func TestMuxCloseDrainsPipeline(t *testing.T) {
	const n = 4
	held := make(chan struct{}, n)
	fs := newFakeServer(t, func(c net.Conn) {
		for {
			if _, err := wire.ReadRequest(c); err != nil {
				return
			}
			held <- struct{}{} // park every request unanswered
		}
	})
	cl, err := Dial(fs.addr(), Options{PoolSize: 2, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cl.Call(context.Background(), 1, []byte{byte(i + 1)})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-held // all n requests are parked server-side
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		var te *TransportError
		if !errors.As(err, &te) {
			t.Errorf("call %d settled with %v, want TransportError", i, err)
		}
	}
	// The client is closed for business.
	if _, _, err := cl.Call(context.Background(), 1, []byte("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("call after Close = %v, want ErrClosed", err)
	}
}

// TestMuxAbandonedCallDropsLateResponse: a call that times out
// unregisters its waiter; the late answer arriving afterwards must be
// dropped silently and the connection must stay healthy for new calls.
func TestMuxAbandonedCallDropsLateResponse(t *testing.T) {
	gate := make(chan struct{})
	fs := newFakeServer(t, func(c net.Conn) {
		req, err := wire.ReadRequest(c)
		if err != nil {
			return
		}
		<-gate // outlive the caller's context
		wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
		echo(c)
	})
	cl, err := Dial(fs.addr(), Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Call(ctx, 1, []byte("abandoned"))
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call err = %v, want context.Canceled", err)
	}
	close(gate) // the stale response now lands on the demux
	out, _, err := cl.Call(context.Background(), 2, []byte("after"))
	if err != nil || !bytes.Equal(out, []byte("after")) {
		t.Fatalf("call after abandonment: out=%q err=%v", out, err)
	}
	if got := fs.accepted.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1 — a late response must not poison the conn", got)
	}
}

// TestMuxPoolBoundsConnections: far more concurrent calls than pool
// slots still dial at most PoolSize connections, and the per-conn
// inflight gauge returns to zero once the pipeline drains.
func TestMuxPoolBoundsConnections(t *testing.T) {
	fs := newFakeServer(t, echo)
	reg := metrics.NewRegistry()
	cl, err := Dial(fs.addr(), Options{PoolSize: 2, MaxRetries: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i), byte(i >> 8), 1}
			out, _, err := cl.Call(context.Background(), 3, payload)
			if err != nil || !bytes.Equal(out, payload) {
				t.Errorf("call %d: out=%q err=%v", i, out, err)
			}
		}(i)
	}
	wg.Wait()
	if got := fs.accepted.Load(); got > 2 {
		t.Errorf("server saw %d connections, want ≤ 2", got)
	}
	for slot := 0; slot < 2; slot++ {
		g := reg.Gauge("agile_net_mux_inflight_per_conn", metrics.L("conn", fmt.Sprint(slot)))
		if v := g.Value(); v != 0 {
			t.Errorf("conn %d inflight gauge = %d after drain, want 0", slot, v)
		}
	}
}

// TestMuxWriteDeadline: an expired context fails before any bytes move.
func TestMuxExpiredContextFailsFast(t *testing.T) {
	fs := newFakeServer(t, echo)
	cl, err := Dial(fs.addr(), Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := cl.Call(ctx, 1, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
