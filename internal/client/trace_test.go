package client

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// TestCallTracesRetriesAsChildSpans pins the client's span shape: one
// root call span per Call, one child attempt span per wire attempt —
// a refused first attempt becomes an errored child, the successful
// retry a clean one — and every attempt ships its own span id as the
// request's wire trace context.
func TestCallTracesRetriesAsChildSpans(t *testing.T) {
	var n atomic.Int64
	var ctxs [2]wire.TraceContext
	fs := newFakeServer(t, func(c net.Conn) {
		for {
			req, err := wire.ReadRequest(c)
			if err != nil {
				return
			}
			i := n.Add(1)
			if i <= 2 {
				ctxs[i-1] = req.Trace
			}
			if i == 1 {
				wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusResourceExhausted, Payload: []byte("full")})
				continue
			}
			wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
		}
	})
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 21})
	defer tracer.Close()
	c, err := Dial(fs.addr(), Options{
		Tracer:      tracer,
		PoolSize:    1,
		BaseBackoff: time.Microsecond,
		JitterSeed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, _, err := c.Call(context.Background(), 7, []byte{1, 2, 3})
	if err != nil || len(out) != 3 {
		t.Fatalf("Call = %x, %v", out, err)
	}
	tracer.Close()
	captured := tracer.Captured()
	if len(captured) != 1 {
		t.Fatalf("captured %d traces, want 1", len(captured))
	}
	tr := captured[0]
	var call *trace.Span
	var attempts []*trace.Span
	for i := range tr.Spans {
		switch tr.Spans[i].Name {
		case "call":
			call = &tr.Spans[i]
		case "attempt":
			attempts = append(attempts, &tr.Spans[i])
		}
	}
	if call == nil || len(attempts) != 2 {
		t.Fatalf("want a call span and 2 attempts, got %+v", tr.Spans)
	}
	if call.Status != "ok" {
		t.Errorf("retried-to-success call must finish ok, got status %q", call.Status)
	}
	// The failed first attempt marks the whole trace errored — retries
	// are precisely what the error ring should surface — even though
	// the call itself recovered.
	if !tr.Err {
		t.Error("trace with a failed attempt must be flagged errored")
	}
	failed, succeeded := attempts[0], attempts[1]
	if failed.Status == "ok" {
		failed, succeeded = succeeded, failed
	}
	if failed.Status == "ok" || succeeded.Status != "ok" {
		t.Errorf("want one errored and one ok attempt, got %q and %q", attempts[0].Status, attempts[1].Status)
	}
	for i, a := range attempts {
		if a.Parent != call.SpanID {
			t.Errorf("attempt %d parent %#x, want call %#x", i, a.Parent, call.SpanID)
		}
	}
	// Both wire requests carried the trace with distinct attempt span
	// ids, so the server can tell the retry from the first try.
	for i, tc := range ctxs {
		if !tc.Valid() || !tc.Sampled() || tc.TraceID != tr.TraceID {
			t.Fatalf("attempt %d wire context %+v does not carry trace %#x", i, tc, tr.TraceID)
		}
	}
	if ctxs[0].SpanID == ctxs[1].SpanID {
		t.Error("retry reused the first attempt's span id")
	}
}

// TestUntracedCallShipsNoContext pins interop: without a tracer the
// client emits version-1 frames with no trace context at all.
func TestUntracedCallShipsNoContext(t *testing.T) {
	var got wire.TraceContext
	done := make(chan struct{}, 1)
	fs := newFakeServer(t, func(c net.Conn) {
		for {
			req, err := wire.ReadRequest(c)
			if err != nil {
				return
			}
			got = req.Trace
			done <- struct{}{}
			wire.WriteResponse(c, &wire.Response{ID: req.ID, Status: wire.StatusOK, Payload: req.Payload})
		}
	})
	c, err := Dial(fs.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Call(context.Background(), 7, []byte{1}); err != nil {
		t.Fatal(err)
	}
	<-done
	if got.Valid() {
		t.Fatalf("untraced client shipped trace context %+v", got)
	}
}
