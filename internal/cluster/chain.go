package cluster

import (
	"context"
	"errors"
	"fmt"

	"agilefpga/internal/core"
	"agilefpga/internal/trace"
)

// Chain dispatch (DESIGN §15). A chain rides the card queues as ONE
// entry: one routing decision, one queue slot, one card run for all of
// its stages. Routing must co-locate the whole stage list on a card
// that carries every stage, and the affinity mode pins by the chain —
// the stage list, not any single function — so repeated chains land on
// the card already holding all stages resident.

// ErrChainSplit reports a chain whose stages are partitioned across
// different home cards: a partition-mode cluster cannot run it as one
// on-card dataflow (the stages never co-reside).
var ErrChainSplit = errors.New("cluster: chain stages partitioned across different cards")

// stagesKey renders a stage list as a map key for chain affinity.
func stagesKey(fns []uint16) string {
	b := make([]byte, 0, 2*len(fns))
	for _, fn := range fns {
		b = append(b, byte(fn>>8), byte(fn))
	}
	return string(b)
}

// sameStages reports whether two submissions name the same chain (both
// nil for plain calls).
func sameStages(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// routeChain picks the card to serve a whole chain, applying the mode's
// policy to the stage list as a unit.
func (cl *Cluster) routeChain(fns []uint16) (int, error) {
	if len(fns) == 0 {
		return -1, fmt.Errorf("%w: empty chain", ErrUnknownFunction)
	}
	home := -1
	for i, fn := range fns {
		h, ok := cl.home[fn]
		if !ok {
			return -1, fmt.Errorf("%w: id %d (chain stage %d)", ErrUnknownFunction, fn, i)
		}
		if h >= 0 { // partition: every stage must share one home
			if home >= 0 && h != home {
				return -1, fmt.Errorf("%w: stage %d on card %d, earlier stages on card %d",
					ErrChainSplit, i, h, home)
			}
			home = h
		}
	}
	if home >= 0 {
		return home, nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.mode == ModeAffinity {
		key := stagesKey(fns)
		if card, ok := cl.chainAffinity[key]; ok {
			return card, nil
		}
		// First sight of this chain: pin it to the card with the least
		// pinned frame demand, charging the demand of the chain's
		// distinct stages (they will all be resident at once).
		best := 0
		for c := 1; c < len(cl.load); c++ {
			if cl.load[c] < cl.load[best] {
				best = c
			}
		}
		cl.chainAffinity[key] = best
		seen := make(map[uint16]bool, len(fns))
		for _, fn := range fns {
			if !seen[fn] {
				seen[fn] = true
				cl.load[best] += cl.demand[fn]
			}
		}
		return best, nil
	}
	card := cl.rr
	cl.rr = (cl.rr + 1) % len(cl.cards)
	return card, nil
}

// CallChain routes one chained request, returning the result and the
// serving card. Safe for concurrent use, like Call.
func (cl *Cluster) CallChain(fns []uint16, input []byte) (*core.ChainResult, int, error) {
	card, err := cl.routeChain(fns)
	if err != nil {
		return nil, -1, err
	}
	res, err := cl.cards[card].CallChainID(fns, input)
	return res, card, err
}

// ChainAffinity reports the card the affinity router has pinned a chain
// to, or -1 if the chain has not been routed yet (or the mode keeps no
// pins).
func (cl *Cluster) ChainAffinity(fns []uint16) int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if c, ok := cl.chainAffinity[stagesKey(fns)]; ok {
		return c
	}
	return -1
}

// SubmitChain enqueues one chained request on its routed card's bounded
// queue and returns immediately; the chain occupies one queue slot.
// Failures surface through Wait, like Submit.
func (cl *Cluster) SubmitChain(fns []uint16, input []byte) *Pending {
	return cl.SubmitChainContext(context.Background(), fns, input, true)
}

// SubmitChainContext is SubmitChain with deadline plumbing and an
// admission choice, mirroring SubmitContext.
func (cl *Cluster) SubmitChainContext(ctx context.Context, fns []uint16, input []byte, wait bool) *Pending {
	return cl.SubmitChainContextTraced(ctx, fns, input, wait, trace.SpanRef{})
}

// SubmitChainContextTraced is SubmitChainContext carrying the caller's
// trace span, mirroring SubmitContextTraced. The card worker coalesces
// consecutive same-chain submissions into one pipelined chain batch
// (stage s of item N overlapping stage s+1 of item N-1).
func (cl *Cluster) SubmitChainContextTraced(ctx context.Context, fns []uint16, input []byte, wait bool, ref trace.SpanRef) *Pending {
	stages := append([]uint16(nil), fns...)
	var fn uint16
	if len(stages) > 0 {
		fn = stages[0]
	}
	p := &Pending{fn: fn, stages: stages, input: input, ctx: ctx, done: make(chan struct{}), card: -1, ref: ref}
	if ref.Valid() {
		p.tSubmit = nowNS()
	}
	if err := ctx.Err(); err != nil {
		p.complete(nil, -1, err)
		return p
	}
	card, err := cl.routeChain(stages)
	if err != nil {
		p.complete(nil, -1, err)
		return p
	}
	p.card = card
	if err := cl.enqueue(ctx, card, p, wait); err != nil {
		p.complete(nil, card, err)
	}
	return p
}

// serveChainRun executes a coalesced run of same-chain jobs on one
// card: a single chained call for a lone job, a pipelined chain batch
// otherwise. Per-item results come back as CallResult views whose Hit
// means "every stage was already resident".
func (cl *Cluster) serveChainRun(card int, run []*Pending, runRef trace.SpanRef, stampDone func([]*Pending)) {
	cp := cl.cards[card]
	stages := run[0].stages
	if len(run) == 1 {
		var res *core.ChainResult
		var err error
		if runRef.Valid() {
			res, err = cp.CallChainIDTraced(stages, run[0].input, runRef.TraceID, runRef.SpanID)
		} else {
			res, err = cp.CallChainID(stages, run[0].input)
		}
		stampDone(run)
		if err != nil {
			run[0].complete(nil, card, err)
			return
		}
		run[0].complete(&core.CallResult{
			Output:    res.Output,
			Breakdown: res.Breakdown,
			Latency:   res.Latency,
			Hit:       res.Hits == len(res.Stages),
		}, card, nil)
		return
	}
	inputs := make([][]byte, len(run))
	for i, p := range run {
		inputs[i] = p.input
	}
	var batch *core.ChainBatchResult
	var err error
	if runRef.Valid() {
		batch, err = cp.CallChainBatchIDTraced(stages, inputs, runRef.TraceID, runRef.SpanID)
	} else {
		batch, err = cp.CallChainBatchID(stages, inputs)
	}
	stampDone(run)
	if err != nil {
		for _, p := range run {
			p.complete(nil, card, err)
		}
		return
	}
	for i, p := range run {
		p.complete(batch.Results[i], card, nil)
	}
}
