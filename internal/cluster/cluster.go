// Package cluster dispatches requests across several co-processor cards
// — the natural scale-out once one card's fabric cannot hold the working
// set. Three placement strategies bracket the design space:
//
//   - replicate: every card carries the full bank in ROM; requests
//     round-robin across cards. Each card still thrashes its fabric, but
//     capacity multiplies.
//   - partition: each function is pinned to one card, assignment chosen
//     by greedy balance of frame demand. Once the per-card share fits
//     the fabric, every request after warmup is a hit — reconfiguration
//     disappears entirely.
//   - affinity: every card carries the full bank (like replicate), but
//     the dispatcher routes consistently by function id: the first
//     request for a function pins it to the least-loaded card (by frame
//     demand) and every later request follows the pin. Capacity
//     multiplies like replicate, yet fabrics stop thrashing like
//     partition — and unlike partition, the pins adapt to the observed
//     workload instead of the static bank.
//
// The dispatcher is host software and safe for concurrent use: each
// card is a full core.CoProcessor with its own lock, so cards execute
// genuinely in parallel. Beyond the synchronous Call, the cluster runs
// one worker goroutine per card behind a bounded submission queue;
// Submit/Wait is the async interface and Serve drains a whole job list.
// Workers coalesce consecutive same-function jobs into the card's
// double-buffered CallBatch pipeline.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/mcu"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sched"
	"agilefpga/internal/trace"
)

// Modes.
const (
	ModeReplicate = "replicate"
	ModePartition = "partition"
	ModeAffinity  = "affinity"
)

// Modes lists the dispatch strategies.
func Modes() []string { return []string{ModeReplicate, ModePartition, ModeAffinity} }

// Options tunes the dispatcher. The zero value of every field selects a
// default.
type Options struct {
	// Queue bounds each card's submission queue (default 32). A full
	// queue applies backpressure: Submit blocks until the card drains.
	Queue int
	// Coalesce caps how many consecutive same-function jobs a card
	// worker folds into one pipelined CallBatch (default 16).
	Coalesce int
}

// Defaults for Options.
const (
	DefaultQueue    = 32
	DefaultCoalesce = 16
)

// Cluster is a set of cards behind one dispatcher.
type Cluster struct {
	cards []*core.CoProcessor
	mode  string
	// home maps function id → card index (partition mode). Immutable
	// after New.
	home map[uint16]int
	// demand maps function id → frame demand, for affinity balancing.
	// Immutable after New.
	demand map[uint16]int

	// mu guards the routing state below.
	mu sync.Mutex
	// rr is the round-robin cursor (replicate mode).
	rr int
	// affinity maps function id → pinned card (affinity mode).
	affinity map[uint16]int
	// chainAffinity maps a chain's stage-list key → pinned card
	// (affinity mode): chains pin as a unit, not per stage, so repeated
	// chains land on the card already holding every stage resident.
	chainAffinity map[string]int
	// load is the pinned frame demand per card (affinity mode).
	load []int

	// Async serving layer: one bounded queue and one worker per card,
	// started on first Submit. stopMu orders submissions against Close:
	// enqueues happen under the read lock, Close flips stopped under the
	// write lock before closing the queues, so a late Submit observes
	// stopped instead of sending on a closed channel.
	opts      Options
	queues    []chan *Pending
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
	stopMu    sync.RWMutex
	stopped   bool

	// metrics is the shared telemetry registry every card records into
	// (nil when core.Config.Metrics was nil); cardLabels caches the
	// per-card label the dispatcher gauges carry.
	metrics    *metrics.Registry
	cardLabels []metrics.Label
}

// New builds a cluster of n cards sharing one configuration, provisioning
// the whole algorithm bank according to mode.
func New(n int, mode string, cfg core.Config) (*Cluster, error) {
	return NewWithOptions(n, mode, cfg, Options{})
}

// NewWithOptions is New with dispatcher tuning.
func NewWithOptions(n int, mode string, cfg core.Config, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one card, got %d", n)
	}
	if opts.Queue <= 0 {
		opts.Queue = DefaultQueue
	}
	if opts.Coalesce <= 0 {
		opts.Coalesce = DefaultCoalesce
	}
	cl := &Cluster{
		mode:          mode,
		home:          make(map[uint16]int),
		demand:        make(map[uint16]int),
		affinity:      make(map[uint16]int),
		chainAffinity: make(map[string]int),
		load:          make([]int, n),
		opts:          opts,
	}
	cl.metrics = cfg.Metrics
	for i := 0; i < n; i++ {
		cp, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		cp.SetCard(i)
		cl.cards = append(cl.cards, cp)
		cl.cardLabels = append(cl.cardLabels, metrics.L("card", strconv.Itoa(i)))
	}
	geom := cl.cards[0].Controller().Fabric().Geometry()
	for _, f := range algos.Bank() {
		cl.demand[f.ID()] = geom.FramesForLUTs(f.LUTs)
	}
	switch mode {
	case ModeReplicate, ModeAffinity:
		if err := cl.replicateBank(); err != nil {
			return nil, err
		}
		for _, f := range algos.Bank() {
			cl.home[f.ID()] = -1 // any card
		}
	case ModePartition:
		if err := cl.partition(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q", mode)
	}
	cl.queues = make([]chan *Pending, n)
	for i := range cl.queues {
		cl.queues[i] = make(chan *Pending, opts.Queue)
	}
	return cl, nil
}

// replicateBank provisions the full bank on every card. The host
// synthesises and compresses each image once and downloads the same
// blob to every card, instead of paying the synthesis n times.
func (cl *Cluster) replicateBank() error {
	geom := cl.cards[0].Controller().Fabric().Geometry()
	codec := cl.cards[0].Codec()
	serial := uint16(0)
	for _, f := range algos.Bank() {
		serial++
		rec, blob, err := core.BuildImage(geom, f, codec, serial)
		if err != nil {
			return fmt.Errorf("cluster: building %s: %w", f.Name(), err)
		}
		for i, cp := range cl.cards {
			if _, err := cp.InstallImage(f, rec, blob); err != nil {
				return fmt.Errorf("cluster: installing %s on card %d: %w", f.Name(), i, err)
			}
		}
	}
	return nil
}

// partition assigns functions to cards by greedy frame-demand balancing
// (largest demand first onto the least-loaded card) and installs each
// function only on its home card.
func (cl *Cluster) partition() error {
	type item struct {
		f      *algos.Function
		demand int
	}
	items := make([]item, 0, algos.BankSize)
	for _, f := range algos.Bank() {
		items = append(items, item{f, cl.demand[f.ID()]})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].demand != items[j].demand {
			return items[i].demand > items[j].demand
		}
		return items[i].f.ID() < items[j].f.ID()
	})
	load := make([]int, len(cl.cards))
	for _, it := range items {
		best := 0
		for c := 1; c < len(load); c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		if _, err := cl.cards[best].Install(it.f); err != nil {
			return fmt.Errorf("cluster: installing %s on card %d: %w", it.f.Name(), best, err)
		}
		cl.home[it.f.ID()] = best
		load[best] += it.demand
	}
	return nil
}

// Cards reports the cluster size.
func (cl *Cluster) Cards() int { return len(cl.cards) }

// Mode reports the dispatch strategy.
func (cl *Cluster) Mode() string { return cl.mode }

// Home reports the card a function is pinned to (-1 = any, replicate
// and affinity modes; -2 = unknown function).
func (cl *Cluster) Home(fn uint16) int {
	h, ok := cl.home[fn]
	if !ok {
		return -2
	}
	return h
}

// Affinity reports the card the affinity router has pinned fn to, or -1
// if fn has not been routed yet (or the mode keeps no pins).
func (cl *Cluster) Affinity(fn uint16) int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if c, ok := cl.affinity[fn]; ok {
		return c
	}
	return -1
}

// Sentinel errors. Callers that must translate dispatcher failures into
// another vocabulary (for example the wire status codes of
// internal/server) match these with errors.Is.
var (
	// ErrUnknownFunction reports a request for a function no card carries.
	ErrUnknownFunction = errors.New("cluster: function not provisioned on any card")
	// ErrQueueFull reports a non-blocking submission that found the routed
	// card's bounded queue full — the overload signal admission control
	// maps to RESOURCE_EXHAUSTED.
	ErrQueueFull = errors.New("cluster: card queue full")
	// ErrStopped reports a submission issued after Close.
	ErrStopped = errors.New("cluster: dispatcher stopped")
)

// route picks the card to serve fn, applying the mode's policy.
func (cl *Cluster) route(fn uint16) (int, error) {
	home, ok := cl.home[fn]
	if !ok {
		return -1, fmt.Errorf("%w: id %d", ErrUnknownFunction, fn)
	}
	if home >= 0 { // partition: pinned at construction
		return home, nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.mode == ModeAffinity {
		if card, ok := cl.affinity[fn]; ok {
			return card, nil
		}
		// First sight of fn: pin it to the card with the least pinned
		// frame demand (ties to the lowest index) — the online version
		// of partition's greedy balance, driven by the live workload.
		best := 0
		for c := 1; c < len(cl.load); c++ {
			if cl.load[c] < cl.load[best] {
				best = c
			}
		}
		cl.affinity[fn] = best
		cl.load[best] += cl.demand[fn]
		return best, nil
	}
	card := cl.rr
	cl.rr = (cl.rr + 1) % len(cl.cards)
	return card, nil
}

// Call routes one request, returning the result and the card that served
// it. Safe for concurrent use; calls routed to different cards execute
// in parallel.
func (cl *Cluster) Call(fnID uint16, input []byte) (*core.CallResult, int, error) {
	card, err := cl.route(fnID)
	if err != nil {
		return nil, -1, err
	}
	res, err := cl.cards[card].CallID(fnID, input)
	return res, card, err
}

// Pending is an in-flight submission. Wait blocks until the card served
// (or failed) the request.
type Pending struct {
	fn uint16
	// stages, when non-nil, marks this Pending as a chained submission:
	// the stage list runs as one on-card dataflow chain (fn is stage 0,
	// kept for metrics labels). Plain calls leave it nil.
	stages []uint16
	input  []byte
	ctx    context.Context
	done   chan struct{}
	res    *core.CallResult
	card   int
	err    error
	// group, when non-nil, marks this Pending as a carrier for a
	// same-function group submitted together (SubmitGroup): the carrier
	// occupies one queue slot and the worker expands it into its
	// children, which settle individually. A carrier itself never
	// completes.
	group []*Pending
	// ref is the caller's trace span for this job (zero when the
	// request is not sampled). It rides to the card worker, which tags
	// the card-log events with it and stamps the wall times below so
	// the caller can split queue wait from service time.
	ref trace.SpanRef
	// tSubmit/tStart/tDone are wall-clock stamps (ns): enqueue time,
	// the moment the worker began the job's coalesced run, and run
	// completion. Stamped only for traced jobs, always before
	// complete() closes done, so Wait gives the happens-before edge
	// that makes TraceTimes race-free.
	tSubmit, tStart, tDone int64
}

// expand returns the jobs this queue entry stands for: the group's
// children for a carrier, the entry itself otherwise.
func (p *Pending) expand() []*Pending {
	if p.group != nil {
		return p.group
	}
	return []*Pending{p}
}

// Wait blocks until completion, returning the result and serving card.
func (p *Pending) Wait() (*core.CallResult, int, error) {
	<-p.done
	return p.res, p.card, p.err
}

// Done is closed when the submission settles. It lets callers multiplex
// completion against their own deadline without consuming the result.
func (p *Pending) Done() <-chan struct{} { return p.done }

// TraceTimes reports the wall-clock stamps of a traced submission:
// enqueue, service start, and service end (ns). Zero stamps mean the
// job was not traced (or never reached that stage — a routing failure
// leaves start/done zero). Valid only after Wait (or Done) returns.
func (p *Pending) TraceTimes() (submitNS, startNS, doneNS int64) {
	return p.tSubmit, p.tStart, p.tDone
}

// nowNS is the cluster's wall clock for queue-wait/service-time trace
// stamps.
func nowNS() int64 {
	return time.Now().UnixNano() //lint:wallclock trace stamps measure real queue wait, not simulated cycles
}

// expired reports the submission's deadline error, if its context ended
// before a worker reached it.
func (p *Pending) expired() error {
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

func (p *Pending) complete(res *core.CallResult, card int, err error) {
	p.res, p.card, p.err = res, card, err
	close(p.done)
}

// Failed returns an already-completed Pending carrying err, for callers
// that must fail a submission before it reaches any queue (for example
// a bad function name at an outer API layer).
func Failed(err error) *Pending {
	p := &Pending{done: make(chan struct{}), card: -1}
	p.complete(nil, -1, err)
	return p
}

// Submit enqueues one request on its routed card's bounded queue and
// returns immediately. Routing errors (unknown function) surface through
// Wait, so the async API has one error path. Submit blocks only when the
// target card's queue is full (backpressure). A Submit issued after
// Close fails with ErrStopped.
func (cl *Cluster) Submit(fnID uint16, input []byte) *Pending {
	return cl.SubmitContext(context.Background(), fnID, input, true)
}

// SubmitContext is Submit with deadline plumbing and an admission
// choice. The context travels with the job: a worker that dequeues an
// already-expired job fails it with the context's error instead of
// spending fabric time on an answer nobody is waiting for. When wait is
// true a full queue blocks until space, the context ends, or the
// cluster stops; when wait is false a full queue fails fast with
// ErrQueueFull so callers doing admission control can shed load
// explicitly. All failures surface through Wait.
func (cl *Cluster) SubmitContext(ctx context.Context, fnID uint16, input []byte, wait bool) *Pending {
	return cl.SubmitContextTraced(ctx, fnID, input, wait, trace.SpanRef{})
}

// SubmitContextTraced is SubmitContext carrying the caller's trace
// span: the job is stamped with wall times at enqueue and around its
// card run (TraceTimes), and the card-log events of the run are tagged
// with the span's ids. A zero ref degrades to the untraced path.
func (cl *Cluster) SubmitContextTraced(ctx context.Context, fnID uint16, input []byte, wait bool, ref trace.SpanRef) *Pending {
	p := &Pending{fn: fnID, input: input, ctx: ctx, done: make(chan struct{}), card: -1, ref: ref}
	if ref.Valid() {
		p.tSubmit = nowNS()
	}
	if err := ctx.Err(); err != nil {
		p.complete(nil, -1, err)
		return p
	}
	card, err := cl.route(fnID)
	if err != nil {
		p.complete(nil, -1, err)
		return p
	}
	p.card = card
	if err := cl.enqueue(ctx, card, p, wait); err != nil {
		p.complete(nil, card, err)
	}
	return p
}

// SubmitGroup enqueues a group of same-function jobs as one queue
// entry, served by the card worker as a single coalesced run (one
// pipelined CallBatch when more than one job survives queue-time
// expiry) — the cross-client batching entry point: the network
// batcher collects requests from different connections and hands them
// to the card's batch machinery in one hop, paying one queue slot and
// one routing decision for the whole window. Each job keeps its own
// context: a job whose deadline expires while queued is failed
// individually, exactly as with per-job submissions (a nil ctxs entry
// means no deadline; ctxs may be shorter than inputs). When wait is
// false a full queue fails the whole group with ErrQueueFull; when
// wait is true the first job's context bounds the blocking enqueue.
// All failures surface through each child's Wait.
func (cl *Cluster) SubmitGroup(ctxs []context.Context, fnID uint16, inputs [][]byte, wait bool) []*Pending {
	return cl.SubmitGroupTraced(ctxs, fnID, inputs, wait, nil)
}

// SubmitGroupTraced is SubmitGroup with per-member trace spans (refs
// may be shorter than inputs; zero entries mean untraced members). The
// worker tags the coalesced run's card-log events with the first valid
// member ref and stamps every traced member's TraceTimes.
func (cl *Cluster) SubmitGroupTraced(ctxs []context.Context, fnID uint16, inputs [][]byte, wait bool, refs []trace.SpanRef) []*Pending {
	children := make([]*Pending, len(inputs))
	for i := range inputs {
		ctx := context.Background()
		if i < len(ctxs) && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		children[i] = &Pending{fn: fnID, input: inputs[i], ctx: ctx, done: make(chan struct{}), card: -1}
		if i < len(refs) && refs[i].Valid() {
			children[i].ref = refs[i]
			children[i].tSubmit = nowNS()
		}
	}
	if len(children) == 0 {
		return children
	}
	failAll := func(card int, err error) {
		for _, c := range children {
			c.complete(nil, card, err)
		}
	}
	card, err := cl.route(fnID)
	if err != nil {
		failAll(-1, err)
		return children
	}
	for _, c := range children {
		c.card = card
	}
	carrier := &Pending{fn: fnID, card: card, group: children}
	if err := cl.enqueue(children[0].ctx, card, carrier, wait); err != nil {
		failAll(card, err)
	}
	return children
}

// enqueue places one queue entry — a single job or a group carrier —
// on card's queue, honouring the stop handshake and the wait policy.
// A non-nil return means the entry was not enqueued and the caller
// must complete its pendings with the error.
func (cl *Cluster) enqueue(ctx context.Context, card int, p *Pending, wait bool) error {
	cl.stopMu.RLock()
	defer cl.stopMu.RUnlock()
	if cl.stopped {
		return ErrStopped
	}
	cl.startOnce.Do(cl.startWorkers)
	if wait {
		// The blocking enqueue deliberately holds stopMu.RLock: Stop takes
		// the write lock, so an in-flight submit completing under the read
		// lock is exactly the stop/submit race this guards against, and
		// ctx.Done keeps the wait bounded.
		//lint:allow chanundermutex enqueue-under-RLock is the stop/submit handshake; ctx bounds the block
		select {
		case cl.queues[card] <- p:
		case <-ctx.Done():
			return ctx.Err()
		}
	} else {
		select {
		case cl.queues[card] <- p:
		default:
			if cl.metrics != nil {
				cl.metrics.Counter("agile_cluster_rejected_total", cl.cardLabels[card]).Inc()
			}
			return ErrQueueFull
		}
	}
	if cl.metrics != nil {
		cl.metrics.Counter("agile_cluster_submitted_total", cl.cardLabels[card]).Add(uint64(len(p.expand())))
		cl.metrics.Gauge("agile_cluster_queue_depth", cl.cardLabels[card]).Inc()
	}
	return nil
}

// Close shuts the worker goroutines down and waits for queued work to
// drain. Submissions issued after Close fail with ErrStopped; Serve must
// not be in flight. Synchronous Call and Stats remain usable. Close is
// idempotent.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		cl.stopMu.Lock()
		cl.stopped = true
		cl.stopMu.Unlock()
		for _, q := range cl.queues {
			close(q)
		}
		cl.wg.Wait()
	})
}

func (cl *Cluster) startWorkers() {
	cl.wg.Add(len(cl.cards))
	for i := range cl.cards {
		go cl.worker(i)
	}
}

// worker drains one card's queue. Consecutive entries for the same
// function coalesce into a single double-buffered CallBatch, so an
// affinity-mode cluster turns a run of same-function submissions into
// one resident configuration and a pipelined burst. Group carriers
// expand into their children here: a cross-client batch window arrives
// as one entry and joins the same coalescing machinery, so a group may
// carry the run past the Coalesce cap (the cap bounds how many further
// entries are folded, not a group's own size).
func (cl *Cluster) worker(card int) {
	defer cl.wg.Done()
	q := cl.queues[card]
	var depth *metrics.Gauge
	if cl.metrics != nil {
		depth = cl.metrics.Gauge("agile_cluster_queue_depth", cl.cardLabels[card])
	}
	var held *Pending
	for {
		var p *Pending
		if held != nil {
			p, held = held, nil
		} else {
			var ok bool
			p, ok = <-q
			if !ok {
				return
			}
			depth.Dec()
		}
		run := append([]*Pending(nil), p.expand()...)
	coalesce:
		for len(run) < cl.opts.Coalesce {
			select {
			case next, ok := <-q:
				if !ok {
					break coalesce
				}
				depth.Dec()
				if next.fn == p.fn && sameStages(next.stages, p.stages) {
					run = append(run, next.expand()...)
				} else {
					held = next
					break coalesce
				}
			default:
				break coalesce
			}
		}
		cl.serveRun(card, run)
	}
}

// serveRun executes a coalesced run of same-function jobs on one card.
// Jobs whose deadline expired while queued are failed without touching
// the card: their caller has already given up, so spending fabric time
// on them only delays the live jobs behind them.
func (cl *Cluster) serveRun(card int, run []*Pending) {
	now := nowNS()
	live := run[:0]
	for _, p := range run {
		if err := p.expired(); err != nil {
			if cl.metrics != nil {
				cl.metrics.Counter("agile_cluster_expired_total", cl.cardLabels[card]).Inc()
			}
			if p.ref.Valid() {
				// Expired in queue: all wait, no service.
				p.tStart, p.tDone = now, now
			}
			p.complete(nil, card, err)
			continue
		}
		if p.ref.Valid() {
			p.tStart = now
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	run = live
	// stampDone closes every traced member's service window just before
	// completion, so queue wait (tStart−tSubmit) plus service time
	// (tDone−tStart) tiles the job's whole dispatcher residency.
	stampDone := func(run []*Pending) {
		end := nowNS()
		for _, p := range run {
			if p.ref.Valid() {
				p.tDone = end
			}
		}
	}
	// runRef is the span the card-log events of this coalesced run are
	// tagged with: the first traced member's, by convention.
	var runRef trace.SpanRef
	for _, p := range run {
		if p.ref.Valid() {
			runRef = p.ref
			break
		}
	}
	cp := cl.cards[card]
	if cl.metrics != nil {
		busy := cl.metrics.Gauge("agile_cluster_worker_busy", cl.cardLabels[card])
		busy.Set(1)
		defer busy.Set(0)
		if len(run) > 1 {
			cl.metrics.Counter("agile_cluster_coalesce_runs_total", cl.cardLabels[card]).Inc()
			cl.metrics.Counter("agile_cluster_coalesced_jobs_total", cl.cardLabels[card]).Add(uint64(len(run)))
		}
	}
	if run[0].stages != nil {
		// A chained run: the worker's coalescing already grouped only
		// identical stage lists, so the whole run is one chain.
		cl.serveChainRun(card, run, runRef, stampDone)
		return
	}
	if len(run) == 1 {
		var res *core.CallResult
		var err error
		if runRef.Valid() {
			res, err = cp.CallIDTraced(run[0].fn, run[0].input, runRef.TraceID, runRef.SpanID)
		} else {
			res, err = cp.CallID(run[0].fn, run[0].input)
		}
		stampDone(run)
		run[0].complete(res, card, err)
		return
	}
	inputs := make([][]byte, len(run))
	for i, p := range run {
		inputs[i] = p.input
	}
	var batch *core.BatchResult
	var err error
	if runRef.Valid() {
		batch, err = cp.CallBatchIDTraced(run[0].fn, inputs, runRef.TraceID, runRef.SpanID)
	} else {
		batch, err = cp.CallBatchID(run[0].fn, inputs)
	}
	stampDone(run)
	if err != nil {
		// CallBatch fails the whole pipeline; every job in the run
		// observes the error.
		for _, p := range run {
			p.complete(nil, card, err)
		}
		return
	}
	for i, p := range run {
		p.complete(batch.Results[i], card, nil)
	}
}

// ServeResult reports a drained job list.
type ServeResult struct {
	// Outputs holds each job's output, indexed like the jobs slice.
	Outputs [][]byte
	// Hits counts jobs served without reconfiguration.
	Hits int
	// Elapsed is the wall-clock drain time (host-side, not virtual).
	Elapsed time.Duration
}

// Serve drains jobs through the async serving layer using the given
// number of submitter goroutines (clamped to [1, len(jobs)]), waiting
// for every job. Outputs come back in job order. The first job error is
// returned after all jobs settle.
func (cl *Cluster) Serve(jobs []sched.Job, workers int) (*ServeResult, error) {
	if len(jobs) == 0 {
		return &ServeResult{}, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	start := time.Now() //lint:wallclock Serve reports operator-facing wall latency, not simulated cycles
	pendings := make([]*Pending, len(jobs))
	var submitters sync.WaitGroup
	submitters.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer submitters.Done()
			for i := w; i < len(jobs); i += workers {
				pendings[i] = cl.Submit(jobs[i].Fn, jobs[i].Input)
			}
		}(w)
	}
	submitters.Wait()
	res := &ServeResult{Outputs: make([][]byte, len(jobs))}
	var firstErr error
	for i, p := range pendings {
		call, _, err := p.Wait()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: job %d (fn %d): %w", jobs[i].Seq, jobs[i].Fn, err)
			}
			continue
		}
		res.Outputs[i] = call.Output
		if call.Hit {
			res.Hits++
		}
	}
	res.Elapsed = time.Since(start) //lint:wallclock Serve reports operator-facing wall latency, not simulated cycles
	return res, firstErr
}

// Stats aggregates card statistics and reports per-card load balance.
type Stats struct {
	Total mcu.Stats
	// PerCardRequests exposes the balance the dispatcher achieved.
	PerCardRequests []uint64
	// HitRate over the whole cluster.
	HitRate float64
}

// Stats aggregates over all cards. Safe for concurrent use.
func (cl *Cluster) Stats() Stats {
	var out Stats
	for _, cp := range cl.cards {
		st := cp.Stats()
		out.PerCardRequests = append(out.PerCardRequests, st.Requests)
		out.Total.Requests += st.Requests
		out.Total.Hits += st.Hits
		out.Total.Misses += st.Misses
		out.Total.Evictions += st.Evictions
		out.Total.FramesLoaded += st.FramesLoaded
		out.Total.RawConfigBytes += st.RawConfigBytes
		out.Total.CompConfigBytes += st.CompConfigBytes
		out.Total.ContigPlacements += st.ContigPlacements
		out.Total.ScatterPlacements += st.ScatterPlacements
		out.Total.FramesSkipped += st.FramesSkipped
		out.Total.Prefetches += st.Prefetches
		out.Total.PrefetchHits += st.PrefetchHits
		out.Total.PrefetchTime += st.PrefetchTime
		out.Total.DecompCacheHits += st.DecompCacheHits
		out.Total.DecompCacheBytes += st.DecompCacheBytes
		out.Total.SEURepairs += st.SEURepairs
		out.Total.ScrubTime += st.ScrubTime
		out.Total.PipelinedLoads += st.PipelinedLoads
		out.Total.PipeWindows += st.PipeWindows
		out.Total.PipeStallTime += st.PipeStallTime
		out.Total.PipeOverlapSaved += st.PipeOverlapSaved
		out.Total.ChainRuns += st.ChainRuns
		out.Total.ChainStages += st.ChainStages
		out.Total.ChainHandoffBytes += st.ChainHandoffBytes
		out.Total.Defrags += st.Defrags
		out.Total.Errors += st.Errors
		out.Total.Phases.AddAll(st.Phases)
	}
	if out.Total.Requests > 0 {
		out.HitRate = float64(out.Total.Hits) / float64(out.Total.Requests)
	}
	return out
}

// SetTrace attaches one shared event log to every card, so cluster runs
// interleave all cards' events (each stamped with its card identity) in
// a single timeline. Pass nil to disable.
func (cl *Cluster) SetTrace(l *trace.Log) {
	for _, cp := range cl.cards {
		cp.SetTrace(l)
	}
}

// Metrics exposes the shared telemetry registry (nil when the cluster
// was built without one).
func (cl *Cluster) Metrics() *metrics.Registry { return cl.metrics }

// CheckInvariants verifies every card's mini-OS bookkeeping.
func (cl *Cluster) CheckInvariants() error {
	for i, cp := range cl.cards {
		if err := cp.CheckInvariants(); err != nil {
			return fmt.Errorf("cluster: card %d: %w", i, err)
		}
	}
	return nil
}
