// Package cluster dispatches requests across several co-processor cards
// — the natural scale-out once one card's fabric cannot hold the working
// set. Two placement strategies bracket the design space:
//
//   - replicate: every card carries the full bank in ROM; requests
//     round-robin across cards. Each card still thrashes its fabric, but
//     capacity multiplies.
//   - partition: each function is pinned to one card, assignment chosen
//     by greedy balance of frame demand. Once the per-card share fits
//     the fabric, every request after warmup is a hit — reconfiguration
//     disappears entirely.
//
// The dispatcher is host software: it routes by function id and keeps
// per-card statistics. Cards are full core.CoProcessor instances, each
// with its own PCI bus, microcontroller, ROM and fabric.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/mcu"
)

// Modes.
const (
	ModeReplicate = "replicate"
	ModePartition = "partition"
)

// Modes lists the dispatch strategies.
func Modes() []string { return []string{ModeReplicate, ModePartition} }

// Cluster is a set of cards behind one dispatcher.
type Cluster struct {
	cards []*core.CoProcessor
	mode  string
	// home maps function id → card index (partition mode).
	home map[uint16]int
	rr   int
}

// New builds a cluster of n cards sharing one configuration, provisioning
// the whole algorithm bank according to mode.
func New(n int, mode string, cfg core.Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one card, got %d", n)
	}
	cl := &Cluster{mode: mode, home: make(map[uint16]int)}
	for i := 0; i < n; i++ {
		cp, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		cl.cards = append(cl.cards, cp)
	}
	switch mode {
	case ModeReplicate:
		for _, cp := range cl.cards {
			if _, err := cp.InstallBank(); err != nil {
				return nil, err
			}
		}
		for _, f := range algos.Bank() {
			cl.home[f.ID()] = -1 // any card
		}
	case ModePartition:
		if err := cl.partition(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q", mode)
	}
	return cl, nil
}

// partition assigns functions to cards by greedy frame-demand balancing
// (largest demand first onto the least-loaded card) and installs each
// function only on its home card.
func (cl *Cluster) partition() error {
	type item struct {
		f      *algos.Function
		demand int
	}
	geom := cl.cards[0].Controller().Fabric().Geometry()
	items := make([]item, 0, algos.BankSize)
	for _, f := range algos.Bank() {
		items = append(items, item{f, geom.FramesForLUTs(f.LUTs)})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].demand != items[j].demand {
			return items[i].demand > items[j].demand
		}
		return items[i].f.ID() < items[j].f.ID()
	})
	load := make([]int, len(cl.cards))
	for _, it := range items {
		best := 0
		for c := 1; c < len(load); c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		if _, err := cl.cards[best].Install(it.f); err != nil {
			return fmt.Errorf("cluster: installing %s on card %d: %w", it.f.Name(), best, err)
		}
		cl.home[it.f.ID()] = best
		load[best] += it.demand
	}
	return nil
}

// Cards reports the cluster size.
func (cl *Cluster) Cards() int { return len(cl.cards) }

// Mode reports the dispatch strategy.
func (cl *Cluster) Mode() string { return cl.mode }

// Home reports the card a function is pinned to (-1 = any, replicate
// mode; -2 = unknown function).
func (cl *Cluster) Home(fn uint16) int {
	h, ok := cl.home[fn]
	if !ok {
		return -2
	}
	return h
}

// ErrUnknownFunction reports a request for a function no card carries.
var ErrUnknownFunction = errors.New("cluster: function not provisioned on any card")

// Call routes one request, returning the result and the card that served
// it.
func (cl *Cluster) Call(fnID uint16, input []byte) (*core.CallResult, int, error) {
	home, ok := cl.home[fnID]
	if !ok {
		return nil, -1, fmt.Errorf("%w: id %d", ErrUnknownFunction, fnID)
	}
	card := home
	if home < 0 { // replicate: round-robin
		card = cl.rr
		cl.rr = (cl.rr + 1) % len(cl.cards)
	}
	res, err := cl.cards[card].CallID(fnID, input)
	return res, card, err
}

// Stats aggregates card statistics and reports per-card load balance.
type Stats struct {
	Total mcu.Stats
	// PerCardRequests exposes the balance the dispatcher achieved.
	PerCardRequests []uint64
	// HitRate over the whole cluster.
	HitRate float64
}

// Stats aggregates over all cards.
func (cl *Cluster) Stats() Stats {
	var out Stats
	for _, cp := range cl.cards {
		st := cp.Stats()
		out.PerCardRequests = append(out.PerCardRequests, st.Requests)
		out.Total.Requests += st.Requests
		out.Total.Hits += st.Hits
		out.Total.Misses += st.Misses
		out.Total.Evictions += st.Evictions
		out.Total.FramesLoaded += st.FramesLoaded
		out.Total.RawConfigBytes += st.RawConfigBytes
		out.Total.CompConfigBytes += st.CompConfigBytes
		out.Total.Phases.AddAll(st.Phases)
	}
	if out.Total.Requests > 0 {
		out.HitRate = float64(out.Total.Hits) / float64(out.Total.Requests)
	}
	return out
}

// CheckInvariants verifies every card's mini-OS bookkeeping.
func (cl *Cluster) CheckInvariants() error {
	for i, cp := range cl.cards {
		if err := cp.Controller().CheckInvariants(); err != nil {
			return fmt.Errorf("cluster: card %d: %w", i, err)
		}
	}
	return nil
}
