package cluster

import (
	"bytes"
	"errors"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
)

func smallCfg() core.Config {
	return core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, ModeReplicate, smallCfg()); err == nil {
		t.Error("zero cards accepted")
	}
	if _, err := New(2, "sharded", smallCfg()); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestReplicateRoundRobin(t *testing.T) {
	cl, err := New(3, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cards() != 3 || cl.Mode() != ModeReplicate {
		t.Fatal("wrong shape")
	}
	f := algos.CRC32()
	in := []byte{1, 2, 3, 4}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		res, card, err := cl.Call(f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(res.Output, want) {
			t.Fatal("wrong output")
		}
		seen[card]++
	}
	for c := 0; c < 3; c++ {
		if seen[c] != 3 {
			t.Errorf("card %d served %d of 9", c, seen[c])
		}
	}
	st := cl.Stats()
	if st.Total.Requests != 9 {
		t.Errorf("aggregate requests = %d", st.Total.Requests)
	}
	// Each card paid its own cold miss.
	if st.Total.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Total.Misses)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartitionPinsFunctions(t *testing.T) {
	cl, err := New(4, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range algos.Bank() {
		home := cl.Home(f.ID())
		if home < 0 || home >= 4 {
			t.Fatalf("%s homed at %d", f.Name(), home)
		}
		for i := 0; i < 3; i++ {
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			res, card, err := cl.Call(f.ID(), in)
			if err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			if card != home {
				t.Fatalf("%s served by card %d, homed at %d", f.Name(), card, home)
			}
			want, _ := f.Exec(in)
			if !bytes.Equal(res.Output, want) {
				t.Fatalf("%s wrong output", f.Name())
			}
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalancesLoad(t *testing.T) {
	cl, err := New(4, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	geom := fpga.Geometry{Rows: 32, Cols: 40}
	load := make([]int, 4)
	for _, f := range algos.Bank() {
		load[cl.Home(f.ID())] += geom.FramesForLUTs(f.LUTs)
	}
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Greedy balancing: the spread stays within the largest single
	// function's demand (19 frames).
	if max-min > 19 {
		t.Errorf("load spread %v too wide", load)
	}
}

func TestPartitionEliminatesThrashAtScale(t *testing.T) {
	// Four 40-frame cards hold the 154-frame bank partitioned: after
	// warmup, zero evictions. One card replicating thrashes hard.
	run := func(n int, mode string) Stats {
		cl, err := New(n, mode, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			for _, f := range algos.Bank() {
				in := make([]byte, f.BlockBytes)
				in[0] = byte(round)
				if _, _, err := cl.Call(f.ID(), in); err != nil {
					t.Fatal(err)
				}
			}
		}
		return cl.Stats()
	}
	part := run(4, ModePartition)
	single := run(1, ModeReplicate)
	if part.Total.Evictions != 0 {
		t.Errorf("partitioned cluster evicted %d times", part.Total.Evictions)
	}
	if part.HitRate <= single.HitRate {
		t.Errorf("partition hit rate %.3f not above single card %.3f", part.HitRate, single.HitRate)
	}
	if single.Total.Evictions == 0 {
		t.Error("single card should thrash on the full bank")
	}
}

func TestUnknownFunction(t *testing.T) {
	cl, err := New(2, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Call(9999, []byte{1}); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("err = %v", err)
	}
	if cl.Home(9999) != -2 {
		t.Error("unknown home")
	}
}
