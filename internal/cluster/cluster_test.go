package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sched"
)

func smallCfg() core.Config {
	return core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, ModeReplicate, smallCfg()); err == nil {
		t.Error("zero cards accepted")
	}
	if _, err := New(2, "sharded", smallCfg()); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestReplicateRoundRobin(t *testing.T) {
	cl, err := New(3, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cards() != 3 || cl.Mode() != ModeReplicate {
		t.Fatal("wrong shape")
	}
	f := algos.CRC32()
	in := []byte{1, 2, 3, 4}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		res, card, err := cl.Call(f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(res.Output, want) {
			t.Fatal("wrong output")
		}
		seen[card]++
	}
	for c := 0; c < 3; c++ {
		if seen[c] != 3 {
			t.Errorf("card %d served %d of 9", c, seen[c])
		}
	}
	st := cl.Stats()
	if st.Total.Requests != 9 {
		t.Errorf("aggregate requests = %d", st.Total.Requests)
	}
	// Each card paid its own cold miss.
	if st.Total.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Total.Misses)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartitionPinsFunctions(t *testing.T) {
	cl, err := New(4, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range algos.Bank() {
		home := cl.Home(f.ID())
		if home < 0 || home >= 4 {
			t.Fatalf("%s homed at %d", f.Name(), home)
		}
		for i := 0; i < 3; i++ {
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			res, card, err := cl.Call(f.ID(), in)
			if err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			if card != home {
				t.Fatalf("%s served by card %d, homed at %d", f.Name(), card, home)
			}
			want, _ := f.Exec(in)
			if !bytes.Equal(res.Output, want) {
				t.Fatalf("%s wrong output", f.Name())
			}
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalancesLoad(t *testing.T) {
	cl, err := New(4, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	geom := fpga.Geometry{Rows: 32, Cols: 40}
	load := make([]int, 4)
	for _, f := range algos.Bank() {
		load[cl.Home(f.ID())] += geom.FramesForLUTs(f.LUTs)
	}
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Greedy balancing: the spread stays within the largest single
	// function's demand (19 frames).
	if max-min > 19 {
		t.Errorf("load spread %v too wide", load)
	}
}

func TestPartitionEliminatesThrashAtScale(t *testing.T) {
	// Four 40-frame cards hold the 154-frame bank partitioned: after
	// warmup, zero evictions. One card replicating thrashes hard.
	run := func(n int, mode string) Stats {
		cl, err := New(n, mode, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			for _, f := range algos.Bank() {
				in := make([]byte, f.BlockBytes)
				in[0] = byte(round)
				if _, _, err := cl.Call(f.ID(), in); err != nil {
					t.Fatal(err)
				}
			}
		}
		return cl.Stats()
	}
	part := run(4, ModePartition)
	single := run(1, ModeReplicate)
	if part.Total.Evictions != 0 {
		t.Errorf("partitioned cluster evicted %d times", part.Total.Evictions)
	}
	if part.HitRate <= single.HitRate {
		t.Errorf("partition hit rate %.3f not above single card %.3f", part.HitRate, single.HitRate)
	}
	if single.Total.Evictions == 0 {
		t.Error("single card should thrash on the full bank")
	}
}

func TestUnknownFunction(t *testing.T) {
	cl, err := New(2, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Call(9999, []byte{1}); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("err = %v", err)
	}
	if cl.Home(9999) != -2 {
		t.Error("unknown home")
	}
}

func TestReplicateSingleCard(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := algos.CRC32()
	in := []byte{9, 8, 7, 6}
	want, _ := f.Exec(in)
	for i := 0; i < 5; i++ {
		res, card, err := cl.Call(f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		if card != 0 {
			t.Fatalf("single card cluster served from card %d", card)
		}
		if !bytes.Equal(res.Output, want) {
			t.Fatal("wrong output")
		}
	}
	p := cl.Submit(f.ID(), in)
	res, card, err := p.Wait()
	if err != nil || card != 0 || !bytes.Equal(res.Output, want) {
		t.Fatalf("async single card: card %d err %v", card, err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartitionMoreCardsThanFunctions(t *testing.T) {
	// More cards than bank functions: some cards stay empty, the rest
	// carry one function each, and every call still lands on its home.
	n := algos.BankSize + 4
	cl, err := New(n, ModePartition, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	used := map[int]bool{}
	for _, f := range algos.Bank() {
		home := cl.Home(f.ID())
		if home < 0 || home >= n {
			t.Fatalf("%s homed at %d", f.Name(), home)
		}
		used[home] = true
		in := make([]byte, f.BlockBytes)
		in[0] = 1
		res, card, err := cl.Call(f.ID(), in)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if card != home {
			t.Fatalf("%s served by %d, homed at %d", f.Name(), card, home)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("%s wrong output", f.Name())
		}
	}
	if len(used) != algos.BankSize {
		t.Errorf("%d cards used, want %d (one per function)", len(used), algos.BankSize)
	}
	st := cl.Stats()
	if len(st.PerCardRequests) != n {
		t.Fatalf("PerCardRequests has %d entries, want %d", len(st.PerCardRequests), n)
	}
	empty := 0
	for _, r := range st.PerCardRequests {
		if r == 0 {
			empty++
		}
	}
	if empty != n-algos.BankSize {
		t.Errorf("%d empty cards, want %d", empty, n-algos.BankSize)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAsyncUnknownFunction(t *testing.T) {
	cl, err := New(2, ModeAffinity, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Submit(9999, []byte{1})
	if _, card, err := p.Wait(); !errors.Is(err, ErrUnknownFunction) || card != -1 {
		t.Errorf("Wait = card %d, err %v; want ErrUnknownFunction, card -1", card, err)
	}
	// Serve surfaces the same error after settling every job.
	f := algos.CRC32()
	jobs := []sched.Job{
		{Fn: f.ID(), Input: []byte{1, 2, 3, 4}, Seq: 0},
		{Fn: 9999, Input: []byte{1}, Seq: 1},
	}
	res, err := cl.Serve(jobs, 2)
	if !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("Serve err = %v", err)
	}
	want, _ := f.Exec(jobs[0].Input)
	if !bytes.Equal(res.Outputs[0], want) {
		t.Error("good job did not complete alongside the failing one")
	}
}

func TestAffinityPinsAndCoalesces(t *testing.T) {
	cl, err := New(4, ModeAffinity, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Every function must route consistently to one card.
	pins := map[uint16]int{}
	for round := 0; round < 3; round++ {
		for _, f := range algos.Bank() {
			in := make([]byte, f.BlockBytes)
			in[0] = byte(round + 1)
			res, card, err := cl.Call(f.ID(), in)
			if err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			want, _ := f.Exec(in)
			if !bytes.Equal(res.Output, want) {
				t.Fatalf("%s wrong output", f.Name())
			}
			if prev, ok := pins[f.ID()]; ok && prev != card {
				t.Fatalf("%s moved from card %d to %d", f.Name(), prev, card)
			}
			pins[f.ID()] = card
			if aff := cl.Affinity(f.ID()); aff != card {
				t.Fatalf("Affinity(%s) = %d, served by %d", f.Name(), aff, card)
			}
		}
	}
	// Pins spread across all cards.
	seen := map[int]bool{}
	for _, c := range pins {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("pins landed on %d of 4 cards", len(seen))
	}
	// A burst of same-function jobs coalesces into batches and stays hot.
	f := algos.SHA256()
	in := make([]byte, f.BlockBytes)
	in[0] = 7
	want, _ := f.Exec(in)
	jobs := make([]sched.Job, 64)
	for i := range jobs {
		jobs[i] = sched.Job{Fn: f.ID(), Input: in, Seq: i}
	}
	before := cl.Stats().Total.Misses
	res, err := cl.Serve(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if !bytes.Equal(out, want) {
			t.Fatalf("job %d wrong output", i)
		}
	}
	// At most the first job of the burst pays a reconfiguration (the
	// function may have been evicted by the warmup rounds); every other
	// job must ride the resident configuration.
	if got := cl.Stats().Total.Misses; got > before+1 {
		t.Errorf("same-function burst paid %d reconfigurations", got-before)
	}
	if res.Hits < len(jobs)-1 {
		t.Errorf("burst hits = %d, want >= %d", res.Hits, len(jobs)-1)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestServeMixedWorkload(t *testing.T) {
	cl, err := New(3, ModeAffinity, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	bank := algos.Bank()
	jobs := make([]sched.Job, 120)
	wants := make([][]byte, len(jobs))
	for i := range jobs {
		f := bank[i%len(bank)]
		in := make([]byte, f.BlockBytes)
		in[0] = byte(i)
		jobs[i] = sched.Job{Fn: f.ID(), Input: in, Seq: i}
		wants[i], _ = f.Exec(in)
	}
	res, err := cl.Serve(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !bytes.Equal(res.Outputs[i], wants[i]) {
			t.Fatalf("job %d wrong output", i)
		}
	}
	st := cl.Stats()
	if st.Total.Requests != uint64(len(jobs)) {
		t.Errorf("requests = %d, want %d", st.Total.Requests, len(jobs))
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestClusterConcurrentStress hammers a 4-card cluster from 8 goroutines
// mixing sync Calls and async Submits, then checks every card's mini-OS
// invariants. Run under -race this is the dispatcher's safety proof.
func TestClusterConcurrentStress(t *testing.T) {
	for _, mode := range Modes() {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cl, err := New(4, mode, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			bank := algos.Bank()
			const goroutines, perG = 8, 25
			errs := make(chan error, goroutines)
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						f := bank[(g*perG+i*7)%len(bank)]
						in := make([]byte, f.BlockBytes)
						in[0] = byte(g)
						in[1] = byte(i)
						want, _ := f.Exec(in)
						var out []byte
						if i%2 == 0 {
							res, _, err := cl.Call(f.ID(), in)
							if err != nil {
								errs <- err
								return
							}
							out = res.Output
						} else {
							res, _, err := cl.Submit(f.ID(), in).Wait()
							if err != nil {
								errs <- err
								return
							}
							out = res.Output
						}
						if !bytes.Equal(out, want) {
							errs <- fmt.Errorf("%s: wrong output under contention", f.Name())
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := cl.Stats()
			if st.Total.Requests != goroutines*perG {
				t.Errorf("requests = %d, want %d", st.Total.Requests, goroutines*perG)
			}
			if err := cl.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCloseIdempotent(t *testing.T) {
	cl, err := New(2, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	f := algos.CRC32()
	if _, _, err := cl.Submit(f.ID(), []byte{1, 2, 3, 4}).Wait(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	// Synchronous calls still work after Close.
	if _, _, err := cl.Call(f.ID(), []byte{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
}
