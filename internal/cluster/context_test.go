package cluster

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/metrics"
)

func TestSubmitContextHappyPath(t *testing.T) {
	cl, err := New(2, ModeAffinity, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := algos.CRC32()
	in := []byte{1, 2, 3, 4}
	p := cl.SubmitContext(context.Background(), f.ID(), in, false)
	res, _, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Exec(in)
	if !bytes.Equal(res.Output, want) {
		t.Fatal("wrong output")
	}
}

func TestSubmitContextExpiredBeforeSubmit(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := cl.SubmitContext(ctx, algos.CRC32().ID(), []byte{1}, true)
	if _, _, err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSubmitContextQueueFull saturates a card's queue with the workers
// deliberately never started, so the non-blocking path must observe
// ErrQueueFull deterministically.
func TestSubmitContextQueueFull(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := smallCfg()
	cfg.Metrics = reg
	cl, err := NewWithOptions(1, ModeReplicate, cfg, Options{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Burn the once so no worker drains the queue during the test.
	cl.startOnce.Do(func() {})
	fn := algos.CRC32().ID()
	for i := 0; i < 2; i++ {
		p := cl.SubmitContext(context.Background(), fn, []byte{1}, false)
		select {
		case <-p.Done():
			t.Fatal("queued submission settled with no worker running")
		default:
		}
	}
	p := cl.SubmitContext(context.Background(), fn, []byte{1}, false)
	if _, _, err := p.Wait(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if n := reg.Counter("agile_cluster_rejected_total", metrics.L("card", "0")).Value(); n != 1 {
		t.Fatalf("rejected counter = %d, want 1", n)
	}
	// A blocking submit with a deadline must give up when the queue
	// never drains.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	p = cl.SubmitContext(ctx, fn, []byte{1}, true)
	if _, _, err := p.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocking err = %v, want DeadlineExceeded", err)
	}
	// Now let workers drain what's queued so Close terminates them.
	cl.startWorkers()
	cl.Close()
}

// TestWorkerSkipsExpiredJobs enqueues with workers stopped, expires the
// context, then starts the workers: the job must fail with the deadline
// error without executing.
func TestWorkerSkipsExpiredJobs(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := smallCfg()
	cfg.Metrics = reg
	cl, err := NewWithOptions(1, ModeReplicate, cfg, Options{Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl.startOnce.Do(func() {})
	ctx, cancel := context.WithCancel(context.Background())
	p := cl.SubmitContext(ctx, algos.CRC32().ID(), []byte{1}, false)
	cancel()
	cl.startWorkers()
	if _, _, err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := reg.Counter("agile_cluster_expired_total", metrics.L("card", "0")).Value(); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
	if got := cl.Stats().Total.Requests; got != 0 {
		t.Fatalf("expired job reached the card: %d requests", got)
	}
	cl.Close()
}

func TestSubmitAfterCloseReturnsErrStopped(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	fn := algos.CRC32().ID()
	if _, _, err := cl.Submit(fn, []byte{1}).Wait(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	p := cl.Submit(fn, []byte{1})
	if _, _, err := p.Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestSentinelErrorsAreDistinct(t *testing.T) {
	for _, e := range []error{ErrQueueFull, ErrStopped, ErrUnknownFunction} {
		if e.Error() == "" {
			t.Fatal("empty sentinel message")
		}
	}
	cl, err := New(1, ModeReplicate, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Call(0xFFFF, []byte{1}); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("unknown function err = %v", err)
	}
}
