package cluster

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/metrics"
)

// TestSubmitGroupMatchesIndividualCalls is the cross-client batching
// correctness bar: a group submitted as one queue entry returns, job
// for job, exactly the bytes the same inputs yield as independent
// blocking calls — and every child reports the one card the carrier
// was routed to.
func TestSubmitGroupMatchesIndividualCalls(t *testing.T) {
	cl, err := New(2, ModeAffinity, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := algos.CRC32()
	inputs := make([][]byte, 9)
	for i := range inputs {
		inputs[i] = []byte{byte(i), 2, 3, byte(i * 3)}
	}
	pendings := cl.SubmitGroup(nil, f.ID(), inputs, false)
	if len(pendings) != len(inputs) {
		t.Fatalf("got %d pendings for %d inputs", len(pendings), len(inputs))
	}
	firstCard := -1
	for i, p := range pendings {
		res, card, err := p.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		want, _ := f.Exec(inputs[i])
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("job %d: output %x, want %x", i, res.Output, want)
		}
		if firstCard == -1 {
			firstCard = card
		} else if card != firstCard {
			t.Fatalf("job %d served by card %d, group routed to %d", i, card, firstCard)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitGroupServedAsOneBatch pins the mechanism, not just the
// outputs: with the workers parked, a whole group occupies one queue
// slot, and once served it counts as one coalesced run of len(group)
// jobs.
func TestSubmitGroupServedAsOneBatch(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := smallCfg()
	cfg.Metrics = reg
	cl, err := NewWithOptions(1, ModeReplicate, cfg, Options{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl.startOnce.Do(func() {}) // park the workers
	inputs := [][]byte{{1, 1, 1, 1}, {2, 2, 2, 2}, {3, 3, 3, 3}, {4, 4, 4, 4}}
	pendings := cl.SubmitGroup(nil, algos.CRC32().ID(), inputs, false)
	// Four jobs, one slot: a second group still fits the 2-deep queue.
	more := cl.SubmitGroup(nil, algos.CRC32().ID(), inputs[:2], false)
	for _, p := range append(pendings, more...) {
		select {
		case <-p.Done():
			t.Fatal("group settled with no worker running")
		default:
		}
	}
	cl.startWorkers()
	for i, p := range append(pendings, more...) {
		if _, _, err := p.Wait(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	card := metrics.L("card", "0")
	if n := reg.Counter("agile_cluster_coalesced_jobs_total", card).Value(); n < 4 {
		t.Fatalf("coalesced jobs = %d, want >= 4 (the first group batches)", n)
	}
	if n := reg.Counter("agile_cluster_submitted_total", card).Value(); n != 6 {
		t.Fatalf("submitted counter = %d, want 6 (counts jobs, not carriers)", n)
	}
	cl.Close()
}

// TestSubmitGroupExpiredChildFailsAlone: one child's context expires in
// the queue; it must fail with the context error while its siblings
// are served normally.
func TestSubmitGroupExpiredChildFailsAlone(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := smallCfg()
	cfg.Metrics = reg
	cl, err := NewWithOptions(1, ModeReplicate, cfg, Options{Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl.startOnce.Do(func() {})
	ctx, cancel := context.WithCancel(context.Background())
	ctxs := []context.Context{nil, ctx, nil}
	inputs := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	pendings := cl.SubmitGroup(ctxs, algos.CRC32().ID(), inputs, false)
	cancel()
	cl.startWorkers()
	if _, _, err := pendings[1].Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired child err = %v, want context.Canceled", err)
	}
	for _, i := range []int{0, 2} {
		res, _, err := pendings[i].Wait()
		if err != nil {
			t.Fatalf("live child %d: %v", i, err)
		}
		want, _ := algos.CRC32().Exec(inputs[i])
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("live child %d: wrong output", i)
		}
	}
	if n := reg.Counter("agile_cluster_expired_total", metrics.L("card", "0")).Value(); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
	cl.Close()
}

// TestSubmitGroupErrorPaths: unknown functions fail every child with
// the routing error; an empty group is a no-op; a stopped cluster
// fails the group with ErrStopped.
func TestSubmitGroupErrorPaths(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cl.SubmitGroup(nil, 0xFFFF, [][]byte{{1}, {2}}, false) {
		if _, _, err := p.Wait(); !errors.Is(err, ErrUnknownFunction) {
			t.Fatalf("err = %v, want ErrUnknownFunction", err)
		}
	}
	if got := cl.SubmitGroup(nil, algos.CRC32().ID(), nil, false); len(got) != 0 {
		t.Fatalf("empty group returned %d pendings", len(got))
	}
	cl.Close()
	for _, p := range cl.SubmitGroup(nil, algos.CRC32().ID(), [][]byte{{1}}, false) {
		if _, _, err := p.Wait(); !errors.Is(err, ErrStopped) {
			t.Fatalf("err after close = %v, want ErrStopped", err)
		}
	}
}
