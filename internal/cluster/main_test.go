package cluster

import (
	"fmt"
	"os"
	"testing"

	"agilefpga/internal/testutil"
)

// TestMain fails the package if any cluster worker outlives its test:
// Stop must reap every per-card worker goroutine.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.CheckGoroutineLeaks(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
