package cluster

import (
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/mcu"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sched"
	"agilefpga/internal/trace"
)

// clusterJobs builds a mixed job list touching several functions, sized
// to force evictions and (with prefetch on) prefetcher activity.
func clusterJobs(t *testing.T, n int) []sched.Job {
	t.Helper()
	bank := algos.Bank()
	jobs := make([]sched.Job, n)
	for i := range jobs {
		f := bank[i%len(bank)]
		in := make([]byte, f.BlockBytes)
		in[0], in[1] = byte(i), byte(i>>8)
		jobs[i] = sched.Job{Fn: f.ID(), Input: in, Seq: i}
	}
	return jobs
}

// TestStatsAggregatesEveryField drives a cluster hard enough to make
// most counters non-zero, then checks Stats().Total equals the field-
// by-field sum over the cards — including the fields a summary is most
// tempted to drop (errors, prefetcher, scrubber, placements).
func TestStatsAggregatesEveryField(t *testing.T) {
	cfg := core.Config{
		Geometry: fpga.Geometry{Rows: 32, Cols: 40},
		Prefetch: true,
	}
	cl, err := New(2, ModeReplicate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range clusterJobs(t, 120) {
		if _, _, err := cl.Call(j.Fn, j.Input); err != nil {
			t.Fatal(err)
		}
	}
	// A scrub pass per card gives ScrubTime and FramesChecked weight.
	for _, cp := range cl.cards {
		if _, err := cp.Controller().Scrub(); err != nil {
			t.Fatal(err)
		}
	}

	var want mcu.Stats
	for _, cp := range cl.cards {
		st := cp.Stats()
		want.Requests += st.Requests
		want.Hits += st.Hits
		want.Misses += st.Misses
		want.Evictions += st.Evictions
		want.FramesLoaded += st.FramesLoaded
		want.RawConfigBytes += st.RawConfigBytes
		want.CompConfigBytes += st.CompConfigBytes
		want.ContigPlacements += st.ContigPlacements
		want.ScatterPlacements += st.ScatterPlacements
		want.FramesSkipped += st.FramesSkipped
		want.Prefetches += st.Prefetches
		want.PrefetchHits += st.PrefetchHits
		want.PrefetchTime += st.PrefetchTime
		want.DecompCacheHits += st.DecompCacheHits
		want.DecompCacheBytes += st.DecompCacheBytes
		want.SEURepairs += st.SEURepairs
		want.ScrubTime += st.ScrubTime
		want.PipelinedLoads += st.PipelinedLoads
		want.PipeWindows += st.PipeWindows
		want.PipeStallTime += st.PipeStallTime
		want.PipeOverlapSaved += st.PipeOverlapSaved
		want.Defrags += st.Defrags
		want.Errors += st.Errors
		want.Phases.AddAll(st.Phases)
	}
	got := cl.Stats().Total
	if got != want {
		t.Errorf("aggregation mismatch:\n got  %+v\nwant %+v", got, want)
	}
	if want.Prefetches == 0 {
		t.Error("workload issued no prefetches — aggregation of Prefetches untested")
	}
	if want.ScrubTime == 0 {
		t.Error("scrub passes charged no time — aggregation of ScrubTime untested")
	}
	if want.Evictions == 0 {
		t.Error("workload forced no evictions — aggregation of Evictions untested")
	}
}

// TestClusterTraceCarriesCardIdentity attaches one shared log and
// checks the interleaved timeline stamps every event with a valid card
// index, that more than one card shows up, and that request spans made
// it through the async serving layer.
func TestClusterTraceCarriesCardIdentity(t *testing.T) {
	cl, err := New(3, ModeReplicate, core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	log := &trace.Log{}
	cl.SetTrace(log)
	res, err := cl.Serve(clusterJobs(t, 60), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 60 {
		t.Fatalf("served %d outputs", len(res.Outputs))
	}
	cards := map[int]bool{}
	spans := 0
	for _, e := range log.Events() {
		if e.Card < 0 || e.Card >= cl.Cards() {
			t.Fatalf("event %d carries card %d, outside [0,%d)", e.Seq, e.Card, cl.Cards())
		}
		cards[e.Card] = true
		if e.Kind == trace.KindSpan {
			spans++
		}
	}
	if len(cards) < 2 {
		t.Errorf("events from %d card(s); round-robin over 3 cards should hit several", len(cards))
	}
	if spans == 0 {
		t.Error("no span events — per-phase timeline missing from cluster runs")
	}
	if log.Count(trace.KindRequest) == 0 {
		t.Error("no request events recorded")
	}
}

// TestClusterDispatcherGauges drives the async layer with a registry
// attached and checks the dispatcher-level series: submissions count
// every job, queues drain back to zero, workers end idle, and coalesced
// batches are accounted per card.
func TestClusterDispatcherGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	cl, err := NewWithOptions(2, ModeAffinity,
		core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}, Metrics: reg},
		Options{Coalesce: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Same-function bursts exercise the coalescer.
	bank := algos.Bank()
	var jobs []sched.Job
	for burst := 0; burst < 6; burst++ {
		f := bank[burst%4]
		for i := 0; i < 10; i++ {
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			jobs = append(jobs, sched.Job{Fn: f.ID(), Input: in, Seq: len(jobs)})
		}
	}
	if _, err := cl.Serve(jobs, 2); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	var submitted, coalescedJobs uint64
	for _, snap := range reg.Snapshot() {
		switch snap.Name {
		case "agile_cluster_submitted_total":
			submitted += uint64(snap.Value)
		case "agile_cluster_coalesced_jobs_total":
			coalescedJobs += uint64(snap.Value)
		case "agile_cluster_queue_depth":
			if snap.Value != 0 {
				t.Errorf("card %s queue depth %d after drain", snap.Label("card"), snap.Value)
			}
		case "agile_cluster_worker_busy":
			if snap.Value != 0 {
				t.Errorf("card %s worker still busy after Close", snap.Label("card"))
			}
		}
	}
	if submitted != uint64(len(jobs)) {
		t.Errorf("submitted_total = %d, want %d", submitted, len(jobs))
	}
	if coalescedJobs == 0 {
		t.Error("bursts produced no coalesced jobs")
	}
}
