package cluster

import (
	"context"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/trace"
)

// TestSubmitTracedStampsTimes proves the queue-wait/service-time split
// the server's trace spans are built from: a traced submission carries
// three wall stamps that tile its dispatcher residency — enqueue ≤
// service start ≤ service end — all set before Wait returns.
func TestSubmitTracedStampsTimes(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := algos.CRC32()
	ref := trace.SpanRef{TraceID: 0xA11CE, SpanID: 0xB0B}
	p := cl.SubmitContextTraced(context.Background(), f.ID(), []byte{1, 2, 3, 4}, true, ref)
	if _, _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	sub, start, done := p.TraceTimes()
	if sub == 0 || start == 0 || done == 0 {
		t.Fatalf("traced stamps missing: submit=%d start=%d done=%d", sub, start, done)
	}
	if !(sub <= start && start <= done) {
		t.Fatalf("stamps out of order: submit=%d start=%d done=%d", sub, start, done)
	}
	// Queue wait plus service time must tile the whole residency.
	if (start-sub)+(done-start) != done-sub {
		t.Fatal("queue+service does not tile the residency")
	}
}

// TestSubmitUntracedStampsNothing pins the passivity contract: without
// a trace ref the dispatcher takes no wall-clock stamps at all.
func TestSubmitUntracedStampsNothing(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := algos.CRC32()
	p := cl.Submit(f.ID(), []byte{1, 2, 3, 4})
	if _, _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if sub, start, done := p.TraceTimes(); sub != 0 || start != 0 || done != 0 {
		t.Fatalf("untraced submission stamped times: %d %d %d", sub, start, done)
	}
}

// TestTracedRunTagsCardLog proves the card side of the trace: the
// card-log events of a traced job's run carry the job's trace and span
// ids, attaching every phase record to the owning span tree.
func TestTracedRunTagsCardLog(t *testing.T) {
	cl, err := New(1, ModeReplicate, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	log := &trace.Log{}
	cl.SetTrace(log)
	f := algos.CRC32()
	ref := trace.SpanRef{TraceID: 0xFACE, SpanID: 0xD00D}
	p := cl.SubmitContextTraced(context.Background(), f.ID(), []byte{1, 2, 3, 4}, true, ref)
	if _, _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	tagged := 0
	for _, e := range log.Events() {
		if e.TraceID == ref.TraceID {
			if e.SpanID != ref.SpanID {
				t.Fatalf("event %q has trace id but span id %#x, want %#x", e.Kind, e.SpanID, ref.SpanID)
			}
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no card-log events tagged with the request's trace id")
	}
	// A fresh untraced call must leave new events untagged.
	before := log.Len()
	q := cl.Submit(f.ID(), []byte{5, 6, 7, 8})
	if _, _, err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Events()[before:] {
		if e.TraceID != 0 || e.SpanID != 0 {
			t.Fatalf("untraced call produced tagged event %+v", e)
		}
	}
}
