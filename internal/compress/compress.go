// Package compress implements the bitstream compression schemes stored in
// the co-processor's ROM and undone, window by window, by the
// configuration module (paper §2.2–2.3). Four codecs are provided behind
// one interface:
//
//   - rle: byte-level run-length encoding, the classic scheme for
//     configuration bitstreams (long zero runs in unused logic).
//   - lz77: sliding-window dictionary coding, exploiting repeated LUT
//     patterns across the whole stream.
//   - huffman: canonical Huffman coding of the byte distribution.
//   - framediff: XOR of each frame against the previous frame followed by
//     RLE — the answer to the paper's §4 open problem of exploiting CLB
//     symmetry between frames; near-identical frames collapse to zeros.
//   - none: identity, the uncompressed baseline.
//
// Every codec offers whole-buffer Compress/Decompress plus NewReader,
// an incremental decompressor the configuration module drains in fixed
// windows, and a decompression cost model in configuration-clock cycles
// per output byte (what a hardware decompressor in the configuration
// module would sustain).
package compress

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Codec compresses and decompresses bitstreams.
type Codec interface {
	Name() string
	Compress(src []byte) ([]byte, error)
	// Decompress expands a whole compressed buffer.
	Decompress(comp []byte) ([]byte, error)
	// NewReader returns an incremental decompressor over comp. Read
	// fills windows of the caller's choosing; io.EOF follows the last
	// byte, matching io.Reader semantics.
	NewReader(comp []byte) (io.Reader, error)
	// CyclesPerByte is the decompression throughput cost model: how many
	// configuration-module clock cycles one output byte costs.
	CyclesPerByte() float64
}

// ErrCorrupt reports malformed compressed data.
var ErrCorrupt = errors.New("compress: corrupt stream")

// InputReporter is implemented by every codec reader in this package. It
// reports how many compressed input bytes the reader has pulled from the
// stream so far (header included), monotone non-decreasing and never
// above the stream length. The configuration module uses the per-window
// deltas to cost the ROM streaming stage of its pipelined load: the
// bytes consumed between two windows are the bytes the ROM had to
// deliver for the second window. Decoders that buffer ahead (run bodies,
// literal chunks, bit reservoirs) may attribute a boundary byte to the
// earlier window; the per-window split is a model, the total is exact.
type InputReporter interface {
	InputConsumed() int
}

// Names lists the available codec names, sorted, `none` first.
func Names() []string {
	names := []string{"rle", "lz77", "huffman", "framediff"}
	sort.Strings(names)
	return append([]string{"none"}, names...)
}

// New returns the named codec. frameBytes parameterises framediff (the
// frame period of the XOR predictor) and is ignored by the others.
func New(name string, frameBytes int) (Codec, error) {
	switch name {
	case "none":
		return noneCodec{}, nil
	case "rle":
		return rleCodec{}, nil
	case "lz77":
		return lz77Codec{}, nil
	case "huffman":
		return huffmanCodec{}, nil
	case "framediff":
		if frameBytes <= 0 {
			return nil, fmt.Errorf("compress: framediff needs a positive frame size, got %d", frameBytes)
		}
		return frameDiffCodec{frameBytes: frameBytes}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// decompressAll drains a codec reader; shared by the Decompress methods.
func decompressAll(c Codec, comp []byte) ([]byte, error) {
	r, err := c.NewReader(comp)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// noneCodec is the identity codec.
type noneCodec struct{}

func (noneCodec) Name() string           { return "none" }
func (noneCodec) CyclesPerByte() float64 { return 1.0 }

func (noneCodec) Compress(src []byte) ([]byte, error) {
	return append([]byte(nil), src...), nil
}

func (c noneCodec) Decompress(comp []byte) ([]byte, error) {
	return append([]byte(nil), comp...), nil
}

func (noneCodec) NewReader(comp []byte) (io.Reader, error) {
	return &sliceReader{data: comp}, nil
}

// sliceReader is a minimal incremental reader over a byte slice.
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// InputConsumed reports the bytes read from the underlying slice.
func (r *sliceReader) InputConsumed() int { return r.off }

// putUvarint / readUvarint: stream length headers.
func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte) (v uint64, n int, err error) {
	var shift uint
	for i, b := range src {
		if i > 9 {
			return 0, 0, ErrCorrupt
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrCorrupt
}
