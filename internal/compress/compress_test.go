package compress

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"agilefpga/internal/sim"
)

const testFrameBytes = 672

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := New(name, testFrameBytes)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("zstd", 1); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := New("framediff", 0); err == nil {
		t.Error("framediff with zero frame size accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if names[0] != "none" || len(names) != 5 {
		t.Errorf("Names = %v", names)
	}
}

// corpus builds inputs with bitstream-like statistics: zero runs, repeated
// dictionary words, and some noise.
func corpus() map[string][]byte {
	rng := sim.NewRNG(99)
	sparse := make([]byte, 8192)
	for i := 0; i < len(sparse); i += 64 {
		sparse[i] = byte(rng.Uint64())
	}
	dict := make([]byte, 8192)
	words := [][]byte{{0xCA, 0xCA}, {0x69, 0x96}, {0xAA, 0xAA}, {0x00, 0x80}}
	for i := 0; i+2 <= len(dict); i += 2 {
		copy(dict[i:], words[rng.Intn(len(words))])
	}
	noise := make([]byte, 4096)
	for i := range noise {
		noise[i] = byte(rng.Uint64())
	}
	framed := make([]byte, 4*testFrameBytes)
	base := make([]byte, testFrameBytes)
	for i := range base {
		if i%16 == 0 {
			base[i] = byte(rng.Uint64())
		}
	}
	for f := 0; f < 4; f++ {
		copy(framed[f*testFrameBytes:], base)
		// small per-frame perturbation
		framed[f*testFrameBytes+7] = byte(f)
	}
	return map[string][]byte{
		"sparse": sparse,
		"dict":   dict,
		"noise":  noise,
		"framed": framed,
		"empty":  nil,
		"single": {0x42},
		"runs":   bytes.Repeat([]byte{7}, 1000),
	}
}

func TestRoundTripCorpus(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, data := range corpus() {
			comp, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", c.Name(), name, err)
			}
			got, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s/%s: round trip mismatch (%d vs %d bytes)", c.Name(), name, len(got), len(data))
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(data []byte) bool {
			comp, err := c.Compress(data)
			if err != nil {
				return false
			}
			got, err := c.Decompress(comp)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestWindowedReadMatchesWhole(t *testing.T) {
	data := corpus()["framed"]
	for _, c := range allCodecs(t) {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{1, 3, 64, 640, 100000} {
			r, err := c.NewReader(comp)
			if err != nil {
				t.Fatalf("%s: NewReader: %v", c.Name(), err)
			}
			var got []byte
			buf := make([]byte, window)
			for {
				n, err := r.Read(buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s/window %d: %v", c.Name(), window, err)
				}
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s/window %d: windowed decode differs", c.Name(), window)
			}
		}
	}
}

func TestReaderEOFAfterDrain(t *testing.T) {
	for _, c := range allCodecs(t) {
		comp, _ := c.Compress([]byte("abcabcabcabc"))
		r, err := c.NewReader(comp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(r); err != nil {
			t.Fatalf("%s: drain: %v", c.Name(), err)
		}
		if n, err := r.Read(make([]byte, 8)); n != 0 || err != io.EOF {
			t.Errorf("%s: post-drain Read = (%d, %v), want (0, EOF)", c.Name(), n, err)
		}
	}
}

func TestCompressionRatios(t *testing.T) {
	// Qualitative shape the experiments rely on: all real codecs beat
	// `none` on sparse bitstream-like data, and framediff wins on framed
	// data with inter-frame symmetry.
	data := corpus()
	ratio := func(c Codec, d []byte) float64 {
		comp, err := c.Compress(d)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(d)) / float64(len(comp))
	}
	for _, name := range []string{"rle", "lz77", "huffman", "framediff"} {
		c, _ := New(name, testFrameBytes)
		if r := ratio(c, data["sparse"]); r < 2 {
			t.Errorf("%s on sparse: ratio %.2f < 2", name, r)
		}
	}
	fd, _ := New("framediff", testFrameBytes)
	rle, _ := New("rle", testFrameBytes)
	if rf, rr := ratio(fd, data["framed"]), ratio(rle, data["framed"]); rf <= rr {
		t.Errorf("framediff (%.2f) should beat rle (%.2f) on framed data", rf, rr)
	}
}

func TestIncompressibleDataExpandsBoundedly(t *testing.T) {
	noise := corpus()["noise"]
	for _, c := range allCodecs(t) {
		comp, err := c.Compress(noise)
		if err != nil {
			t.Fatal(err)
		}
		if len(comp) > len(noise)+len(noise)/6+300 {
			t.Errorf("%s: noise expanded %d → %d", c.Name(), len(noise), len(comp))
		}
	}
}

func TestCorruptStreams(t *testing.T) {
	// Truncation of the compressed stream must surface ErrCorrupt (or a
	// clean EOF with short output), never a panic or an infinite loop.
	data := corpus()["dict"]
	for _, c := range allCodecs(t) {
		comp, _ := c.Compress(data)
		for _, cut := range []int{0, 1, len(comp) / 2, len(comp) - 1} {
			if cut >= len(comp) {
				continue
			}
			trunc := comp[:cut]
			r, err := c.NewReader(trunc)
			if err != nil {
				continue // header rejection is fine
			}
			got, err := io.ReadAll(r)
			if err == nil && c.Name() != "none" && c.Name() != "rle" && c.Name() != "framediff" && len(got) == len(data) {
				t.Errorf("%s: truncated at %d decoded fully", c.Name(), cut)
			}
		}
	}
}

func TestFrameDiffRejectsWrongFrameSize(t *testing.T) {
	a, _ := New("framediff", 100)
	b, _ := New("framediff", 200)
	comp, _ := a.Compress([]byte("xxxxxxxxxxyyyyyyyyyy"))
	if _, err := b.NewReader(comp); err == nil {
		t.Error("frame-size mismatch accepted")
	}
}

func TestCyclesPerByteSane(t *testing.T) {
	for _, c := range allCodecs(t) {
		if cpb := c.CyclesPerByte(); cpb < 0.5 || cpb > 16 {
			t.Errorf("%s: CyclesPerByte = %v out of sane range", c.Name(), cpb)
		}
	}
}

func TestUvarint(t *testing.T) {
	f := func(v uint64) bool {
		buf := putUvarint(nil, v)
		got, n, err := readUvarint(buf)
		return err == nil && n == len(buf) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, _, err := readUvarint(nil); err == nil {
		t.Error("empty uvarint accepted")
	}
	if _, _, err := readUvarint(bytes.Repeat([]byte{0x80}, 12)); err == nil {
		t.Error("overlong uvarint accepted")
	}
}

func TestHuffmanSkewedInput(t *testing.T) {
	// Heavily skewed distributions exercise the length-limiting path.
	var data []byte
	for i := 0; i < 18; i++ {
		data = append(data, bytes.Repeat([]byte{byte(i)}, 1<<uint(i%14))...)
	}
	c, _ := New("huffman", 0)
	comp, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("skewed round trip failed: %v", err)
	}
}

func TestRLEWorstCaseAlternating(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 2)
	}
	c, _ := New("rle", 0)
	comp, _ := c.Compress(data)
	got, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("alternating round trip failed")
	}
	if len(comp) > len(data)+len(data)/64+16 {
		t.Errorf("alternating data expanded %d → %d", len(data), len(comp))
	}
}
