package compress

import (
	"encoding/binary"
	"io"
)

// frameDiffCodec is the paper's §4 open problem made concrete: it exploits
// the symmetry between configuration frames. Each byte at offset i >=
// frameBytes is XORed with the byte one frame earlier; frames that repeat
// the previous frame's CLB patterns (the common case inside one function's
// column span) collapse to zero runs, which the inner RLE stage then
// crushes. The first frame passes through unchanged.
//
// Stream layout: uint16 LE frame size, then an RLE stream of the
// differenced bytes.
type frameDiffCodec struct {
	frameBytes int
}

func (frameDiffCodec) Name() string           { return "framediff" }
func (frameDiffCodec) CyclesPerByte() float64 { return 1.25 }

func (c frameDiffCodec) Compress(src []byte) ([]byte, error) {
	diff := make([]byte, len(src))
	for i := range src {
		if i >= c.frameBytes {
			diff[i] = src[i] ^ src[i-c.frameBytes]
		} else {
			diff[i] = src[i]
		}
	}
	inner, err := rleCodec{}.Compress(diff)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 2, 2+len(inner))
	binary.LittleEndian.PutUint16(out, uint16(c.frameBytes))
	return append(out, inner...), nil
}

func (c frameDiffCodec) Decompress(comp []byte) ([]byte, error) {
	return decompressAll(c, comp)
}

func (c frameDiffCodec) NewReader(comp []byte) (io.Reader, error) {
	if len(comp) < 2 {
		return nil, ErrCorrupt
	}
	fb := int(binary.LittleEndian.Uint16(comp))
	if fb != c.frameBytes {
		return nil, ErrCorrupt
	}
	inner, err := rleCodec{}.NewReader(comp[2:])
	if err != nil {
		return nil, err
	}
	return &frameDiffReader{inner: inner, frameBytes: fb, hist: make([]byte, 0, fb)}, nil
}

// frameDiffReader integrates the XOR prediction incrementally, keeping one
// frame of history.
type frameDiffReader struct {
	inner      io.Reader
	frameBytes int
	hist       []byte // last frameBytes of produced output (ring as slice)
	produced   int
}

// InputConsumed reports the frame-size header plus whatever the inner
// RLE reader has consumed.
func (r *frameDiffReader) InputConsumed() int {
	if ir, ok := r.inner.(InputReporter); ok {
		return 2 + ir.InputConsumed()
	}
	return 2
}

func (r *frameDiffReader) Read(p []byte) (int, error) {
	n, err := r.inner.Read(p)
	for i := 0; i < n; i++ {
		b := p[i]
		if r.produced >= r.frameBytes {
			b ^= r.hist[r.produced%r.frameBytes]
		}
		p[i] = b
		if len(r.hist) < r.frameBytes {
			r.hist = append(r.hist, b)
		} else {
			r.hist[r.produced%r.frameBytes] = b
		}
		r.produced++
	}
	return n, err
}
