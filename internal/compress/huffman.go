package compress

import (
	"container/heap"
	"encoding/binary"
	"io"
	"sort"
)

// huffmanCodec is canonical static Huffman coding over bytes:
//
//	header: uvarint raw length, then 256 code lengths (one byte each,
//	        0 = symbol unused, max 15)
//	body:   MSB-first bit-packed canonical codes
//
// The decoder rebuilds the canonical code from the lengths alone.
type huffmanCodec struct{}

func (huffmanCodec) Name() string           { return "huffman" }
func (huffmanCodec) CyclesPerByte() float64 { return 4.0 }

const huffMaxLen = 15

// huffNode is a Huffman tree node for length assignment.
type huffNode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int            { return len(h) }
func (h huffHeap) Less(i, j int) bool  { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildLengths assigns code lengths for the given frequencies, limited to
// huffMaxLen by frequency flattening (rebuild with freq/2+1 until the
// depth fits — crude but simple and convergent).
func buildLengths(freq []uint64) [256]byte {
	var lengths [256]byte
	distinct := 0
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
	}
	if distinct == 0 {
		return lengths
	}
	if distinct == 1 {
		for s, f := range freq {
			if f > 0 {
				lengths[s] = 1
			}
		}
		return lengths
	}
	f := append([]uint64(nil), freq...)
	for {
		h := &huffHeap{}
		heap.Init(h)
		for s, fr := range f {
			if fr > 0 {
				heap.Push(h, &huffNode{freq: fr, sym: s})
			}
		}
		for h.Len() > 1 {
			a := heap.Pop(h).(*huffNode)
			b := heap.Pop(h).(*huffNode)
			heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
		}
		root := heap.Pop(h).(*huffNode)
		maxDepth := 0
		var walk func(n *huffNode, d int)
		walk = func(n *huffNode, d int) {
			if n.sym >= 0 {
				lengths[n.sym] = byte(d)
				if d > maxDepth {
					maxDepth = d
				}
				return
			}
			walk(n.left, d+1)
			walk(n.right, d+1)
		}
		walk(root, 0)
		if maxDepth <= huffMaxLen {
			return lengths
		}
		for i := range f {
			if f[i] > 0 {
				f[i] = f[i]/2 + 1
			}
		}
	}
}

// canonicalCodes derives canonical code values from lengths.
func canonicalCodes(lengths *[256]byte) [256]uint16 {
	type sl struct {
		sym int
		len byte
	}
	var used []sl
	for s, l := range lengths {
		if l > 0 {
			used = append(used, sl{s, l})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].len != used[j].len {
			return used[i].len < used[j].len
		}
		return used[i].sym < used[j].sym
	})
	var codes [256]uint16
	code := uint16(0)
	prevLen := byte(0)
	for _, u := range used {
		code <<= uint(u.len - prevLen)
		prevLen = u.len
		codes[u.sym] = code
		code++
	}
	return codes
}

func (huffmanCodec) Compress(src []byte) ([]byte, error) {
	out := putUvarint(nil, uint64(len(src)))
	var freq [256]uint64
	for _, b := range src {
		freq[b]++
	}
	lengths := buildLengths(freq[:])
	out = append(out, lengths[:]...)
	if len(src) == 0 {
		return out, nil
	}
	codes := canonicalCodes(&lengths)
	var acc uint32
	var nbits uint
	for _, b := range src {
		acc = acc<<uint(lengths[b]) | uint32(codes[b])
		nbits += uint(lengths[b])
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out, nil
}

func (c huffmanCodec) Decompress(comp []byte) ([]byte, error) {
	return decompressAll(c, comp)
}

func (huffmanCodec) NewReader(comp []byte) (io.Reader, error) {
	rawLen, n, err := readUvarint(comp)
	if err != nil {
		return nil, err
	}
	if len(comp) < n+256 {
		return nil, ErrCorrupt
	}
	r := &huffReader{comp: comp, off: n + 256, remaining: int(rawLen)}
	copy(r.lengths[:], comp[n:n+256])
	for _, l := range r.lengths {
		if l > huffMaxLen {
			return nil, ErrCorrupt
		}
	}
	// Canonical decode tables: for each length, the first code value and
	// the symbols of that length in canonical order.
	codes := canonicalCodes(&r.lengths)
	var kraft uint32
	for s, l := range r.lengths {
		if l == 0 {
			continue
		}
		kraft += 1 << (huffMaxLen - uint(l))
		r.count[l]++
		r.syms[l] = append(r.syms[l], struct {
			code uint16
			sym  byte
		}{codes[s], byte(s)})
	}
	// Over-subscribed length tables (Kraft sum above 1) cannot form a
	// prefix code; reject them before they can overflow the LUT.
	if kraft > 1<<huffMaxLen {
		return nil, ErrCorrupt
	}
	for l := 1; l <= huffMaxLen; l++ {
		sort.Slice(r.syms[l], func(i, j int) bool { return r.syms[l][i].code < r.syms[l][j].code })
	}
	// Single-lookup decode table: every huffMaxLen-bit window whose prefix
	// is the canonical code of a symbol maps to sym<<4 | codeLen. Zero
	// entries mark bit patterns no code covers.
	if rawLen > 0 {
		r.lut = make([]uint16, 1<<huffMaxLen)
		for s, l := range r.lengths {
			if l == 0 {
				continue
			}
			base := uint32(codes[s]) << (huffMaxLen - uint(l))
			span := uint32(1) << (huffMaxLen - uint(l))
			if base+span > 1<<huffMaxLen {
				return nil, ErrCorrupt
			}
			entry := uint16(s)<<4 | uint16(l)
			for i := base; i < base+span; i++ {
				r.lut[i] = entry
			}
		}
	}
	return r, nil
}

type huffReader struct {
	comp      []byte
	off       int
	remaining int

	lengths [256]byte
	count   [huffMaxLen + 1]int
	syms    [huffMaxLen + 1][]struct {
		code uint16
		sym  byte
	}

	lut []uint16 // 1<<huffMaxLen entries of sym<<4 | codeLen; 0 = no code

	bitBuf uint64
	bitLen uint
	slow   bool // use the bit-by-bit reference decoder (tests/benchmarks)
	failed error
}

// InputConsumed reports the compressed bytes pulled from the stream:
// everything fetched into the bit reservoir minus the whole bytes still
// unconsumed in it.
func (r *huffReader) InputConsumed() int { return r.off - int(r.bitLen)/8 }

func (r *huffReader) Read(p []byte) (int, error) {
	if r.failed != nil {
		return 0, r.failed
	}
	n := 0
	for n < len(p) && r.remaining > 0 {
		var sym byte
		var err error
		if r.slow {
			sym, err = r.decodeSymbolSlow()
		} else {
			sym, err = r.decodeSymbol()
		}
		if err != nil {
			r.failed = err
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		p[n] = sym
		n++
		r.remaining--
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// decodeSymbol resolves one symbol with a single table lookup: top up the
// bit reservoir to huffMaxLen bits (zero-padding at the tail), peek, and
// consume the matched code's length. Entries shorter than the peek width
// repeat across every padding pattern, so the lookup is exact whenever
// the real bits form a valid code.
func (r *huffReader) decodeSymbol() (byte, error) {
	if r.bitLen <= 32 && r.off+4 <= len(r.comp) {
		r.bitBuf = r.bitBuf<<32 | uint64(binary.BigEndian.Uint32(r.comp[r.off:]))
		r.off += 4
		r.bitLen += 32
	}
	for r.bitLen < huffMaxLen && r.off < len(r.comp) {
		r.bitBuf = r.bitBuf<<8 | uint64(r.comp[r.off])
		r.off++
		r.bitLen += 8
	}
	var idx uint64
	if r.bitLen >= huffMaxLen {
		idx = r.bitBuf >> (r.bitLen - huffMaxLen)
	} else {
		idx = r.bitBuf << (huffMaxLen - r.bitLen)
	}
	e := r.lut[idx&(1<<huffMaxLen-1)]
	l := uint(e & 0xF)
	if l == 0 || l > r.bitLen {
		return 0, ErrCorrupt
	}
	r.bitLen -= l
	return byte(e >> 4), nil
}

// decodeSymbolSlow is the pre-LUT reference decoder: walk the stream bit
// by bit, probing the canonical first-code bucket at every length. It is
// retained so tests can prove the LUT path byte-identical and benchmarks
// can measure the speedup.
func (r *huffReader) decodeSymbolSlow() (byte, error) {
	code := uint16(0)
	for l := 1; l <= huffMaxLen; l++ {
		if r.bitLen == 0 {
			if r.off >= len(r.comp) {
				return 0, ErrCorrupt
			}
			r.bitBuf = uint64(r.comp[r.off])
			r.off++
			r.bitLen = 8
		}
		r.bitLen--
		bit := uint16(r.bitBuf>>r.bitLen) & 1
		code = code<<1 | bit
		if r.count[l] == 0 {
			continue
		}
		bucket := r.syms[l]
		first := bucket[0].code
		if code >= first && int(code-first) < len(bucket) {
			return bucket[code-first].sym, nil
		}
	}
	return 0, ErrCorrupt
}
