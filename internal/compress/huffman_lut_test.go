package compress

import (
	"bytes"
	"io"
	"testing"

	"agilefpga/internal/sim"
)

// decodeHuffman drains a fresh huffman reader over comp, forcing the
// bit-by-bit reference loop when slow is set.
func decodeHuffman(t testing.TB, comp []byte, slow bool) []byte {
	t.Helper()
	rd, err := huffmanCodec{}.NewReader(comp)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.(*huffReader).slow = slow
	out, err := io.ReadAll(rd)
	if err != nil {
		t.Fatalf("decode (slow=%v): %v", slow, err)
	}
	return out
}

// TestHuffmanLUTGolden proves the table-driven decoder byte-identical to
// the bit-by-bit reference on every corpus input plus skew edge cases.
func TestHuffmanLUTGolden(t *testing.T) {
	cases := corpus()
	cases["single-symbol"] = bytes.Repeat([]byte{0x42}, 1000)
	cases["two-symbol"] = bytes.Repeat([]byte{0, 1}, 500)
	cases["empty"] = nil
	skew := []byte{}
	for i := 0; i < 18; i++ {
		skew = append(skew, bytes.Repeat([]byte{byte(i)}, 1<<uint(i%14))...)
	}
	cases["skewed"] = skew
	for name, data := range cases {
		comp, err := huffmanCodec{}.Compress(data)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		fast := decodeHuffman(t, comp, false)
		slowOut := decodeHuffman(t, comp, true)
		if !bytes.Equal(fast, slowOut) {
			t.Errorf("%s: LUT and reference decoders disagree", name)
		}
		if !bytes.Equal(fast, data) {
			t.Errorf("%s: LUT decode does not round-trip", name)
		}
	}
}

// TestHuffmanRejectsOversubscribedTable: a length table whose Kraft sum
// exceeds one is not a prefix code and must be rejected at reader
// construction, not crash the LUT build.
func TestHuffmanRejectsOversubscribedTable(t *testing.T) {
	comp := putUvarint(nil, 100)
	lengths := make([]byte, 256)
	for i := range lengths {
		lengths[i] = 1 // 256 codes of length 1: Kraft sum 128 >> 1
	}
	comp = append(comp, lengths...)
	comp = append(comp, 0xFF, 0xFF)
	if _, err := (huffmanCodec{}).NewReader(comp); err == nil {
		t.Error("over-subscribed length table accepted")
	}
}

// TestInputConsumedMonotone checks the InputReporter contract on every
// codec: consumption starts at or after the header, never decreases as
// windows drain, and never exceeds the stream length.
func TestInputConsumedMonotone(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, data := range corpus() {
			comp, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", c.Name(), name, err)
			}
			rd, err := c.NewReader(comp)
			if err != nil {
				t.Fatalf("%s/%s: NewReader: %v", c.Name(), name, err)
			}
			ir, ok := rd.(InputReporter)
			if !ok {
				t.Fatalf("%s: reader does not implement InputReporter", c.Name())
			}
			prev := ir.InputConsumed()
			if prev < 0 {
				t.Fatalf("%s/%s: negative initial consumption %d", c.Name(), name, prev)
			}
			window := make([]byte, 113) // odd size to cross chunk boundaries
			for {
				_, err := rd.Read(window)
				got := ir.InputConsumed()
				if got < prev {
					t.Fatalf("%s/%s: consumption went backwards %d → %d", c.Name(), name, prev, got)
				}
				if got > len(comp) {
					t.Fatalf("%s/%s: consumed %d of a %d-byte stream", c.Name(), name, got, len(comp))
				}
				prev = got
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s/%s: read: %v", c.Name(), name, err)
				}
			}
			if len(data) > 0 && prev == 0 {
				t.Errorf("%s/%s: produced output without consuming input", c.Name(), name)
			}
		}
	}
}

// huffBenchInput is a mixed-entropy payload large enough for a stable
// throughput comparison between the two decoders.
func huffBenchInput() []byte {
	rng := sim.NewRNG(7)
	data := make([]byte, 1<<18)
	for i := range data {
		switch {
		case i%7 == 0:
			data[i] = byte(rng.Uint64()) // noise keeps long codes in play
		case i%3 == 0:
			data[i] = 0xCA
		default:
			data[i] = byte(i % 16)
		}
	}
	return data
}

func benchmarkHuffmanDecode(b *testing.B, slow bool) {
	data := huffBenchInput()
	comp, err := huffmanCodec{}.Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := huffmanCodec{}.NewReader(comp)
		if err != nil {
			b.Fatal(err)
		}
		rd.(*huffReader).slow = slow
		if _, err := io.ReadFull(rd, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuffmanDecodeLUT vs BenchmarkHuffmanDecodeBitByBit is the
// satellite's throughput proof: the table-driven decoder must sustain at
// least 2x the MB/s of the bit-by-bit reference loop.
func BenchmarkHuffmanDecodeLUT(b *testing.B)      { benchmarkHuffmanDecode(b, false) }
func BenchmarkHuffmanDecodeBitByBit(b *testing.B) { benchmarkHuffmanDecode(b, true) }
