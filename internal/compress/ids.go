package compress

import "fmt"

// Codec identifiers as stored in ROM function records. The numbering is
// part of the on-ROM format and must stay stable.
const (
	IDNone      = 0
	IDRLE       = 1
	IDLZ77      = 2
	IDHuffman   = 3
	IDFrameDiff = 4
)

var idToName = map[byte]string{
	IDNone:      "none",
	IDRLE:       "rle",
	IDLZ77:      "lz77",
	IDHuffman:   "huffman",
	IDFrameDiff: "framediff",
}

var nameToID = map[string]byte{
	"none":      IDNone,
	"rle":       IDRLE,
	"lz77":      IDLZ77,
	"huffman":   IDHuffman,
	"framediff": IDFrameDiff,
}

// IDOf maps a codec name to its ROM record identifier.
func IDOf(name string) (byte, error) {
	id, ok := nameToID[name]
	if !ok {
		return 0, fmt.Errorf("compress: unknown codec %q", name)
	}
	return id, nil
}

// NameOf maps a ROM record identifier back to a codec name.
func NameOf(id byte) (string, error) {
	name, ok := idToName[id]
	if !ok {
		return "", fmt.Errorf("compress: unknown codec id %d", id)
	}
	return name, nil
}

// ByID constructs the codec identified by id (see New for frameBytes).
func ByID(id byte, frameBytes int) (Codec, error) {
	name, err := NameOf(id)
	if err != nil {
		return nil, err
	}
	return New(name, frameBytes)
}
