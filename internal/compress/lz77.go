package compress

import (
	"encoding/binary"
	"io"
)

// lz77Codec is greedy sliding-window dictionary coding with a 4 KiB
// window, a hash-chain matcher and a token stream:
//
//	header:  uvarint raw length
//	body:    groups of up to 8 tokens, each group led by a flag byte
//	         (bit i set → token i is a match), tokens in order:
//	         literal = 1 raw byte
//	         match   = length-4 (1 byte) + offset (2 bytes LE, 1-based)
//
// Matches run 4..259 bytes at offsets 1..4096, capturing the repeated
// LUT dictionary patterns that dominate configuration bitstreams.
type lz77Codec struct{}

func (lz77Codec) Name() string { return "lz77" }

// CyclesPerByte: a hardware LZ decoder emits one byte per cycle from both
// literal and match-copy paths; token parsing overlaps.
func (lz77Codec) CyclesPerByte() float64 { return 1.0 }

const (
	lzWindow   = 4096
	lzMinMatch = 4
	lzMaxMatch = lzMinMatch + 255
	lzMaxChain = 64 // hash-chain positions examined per match attempt
)

func lzHash(p []byte) uint32 {
	return (binary.LittleEndian.Uint32(p) * 2654435761) >> 19 // 13-bit bucket
}

func (lz77Codec) Compress(src []byte) ([]byte, error) {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out, nil
	}
	const nBuckets = 1 << 13
	head := make([]int32, nBuckets)
	prev := make([]int32, len(src))
	for i := range head {
		head[i] = -1
	}

	flagPos := -1
	flagBit := 8
	emitToken := func(isMatch bool, payload []byte) {
		if flagBit == 8 {
			flagPos = len(out)
			out = append(out, 0)
			flagBit = 0
		}
		if isMatch {
			out[flagPos] |= 1 << uint(flagBit)
		}
		flagBit++
		out = append(out, payload...)
	}

	insert := func(i int) {
		if i+lzMinMatch <= len(src) {
			h := lzHash(src[i:])
			prev[i] = head[h]
			head[h] = int32(i)
		}
	}

	i := 0
	for i < len(src) {
		bestLen, bestOff := 0, 0
		if i+lzMinMatch <= len(src) {
			h := lzHash(src[i:])
			cand := head[h]
			limit := len(src) - i
			if limit > lzMaxMatch {
				limit = lzMaxMatch
			}
			for chain := 0; cand >= 0 && chain < lzMaxChain; chain++ {
				off := i - int(cand)
				if off > lzWindow {
					break
				}
				l := 0
				for l < limit && src[int(cand)+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, off
					if l == limit {
						break
					}
				}
				cand = prev[cand]
			}
		}
		if bestLen >= lzMinMatch {
			var tok [3]byte
			tok[0] = byte(bestLen - lzMinMatch)
			binary.LittleEndian.PutUint16(tok[1:], uint16(bestOff))
			emitToken(true, tok[:])
			for k := 0; k < bestLen; k++ {
				insert(i + k)
			}
			i += bestLen
		} else {
			emitToken(false, src[i:i+1])
			insert(i)
			i++
		}
	}
	return out, nil
}

func (c lz77Codec) Decompress(comp []byte) ([]byte, error) {
	return decompressAll(c, comp)
}

func (lz77Codec) NewReader(comp []byte) (io.Reader, error) {
	rawLen, n, err := readUvarint(comp)
	if err != nil {
		return nil, err
	}
	return &lz77Reader{comp: comp, off: n, remaining: int(rawLen)}, nil
}

// lz77Reader incrementally decodes the token stream. It keeps the full
// decoded history (the window never exceeds 4 KiB back-references, but a
// flat buffer keeps the code simple; bitstreams are small).
type lz77Reader struct {
	comp      []byte
	off       int
	remaining int // raw bytes not yet produced

	hist   []byte // all decoded output
	served int    // bytes of hist already returned

	flags   byte
	flagBit int
	failed  error
}

// InputConsumed reports the compressed bytes pulled from the token
// stream, header included.
func (r *lz77Reader) InputConsumed() int { return r.off }

func (r *lz77Reader) Read(p []byte) (int, error) {
	if r.failed != nil {
		return 0, r.failed
	}
	for len(r.hist)-r.served < len(p) && r.remaining > 0 {
		if err := r.decodeToken(); err != nil {
			r.failed = err
			break
		}
	}
	avail := len(r.hist) - r.served
	if avail == 0 {
		if r.failed != nil {
			return 0, r.failed
		}
		return 0, io.EOF
	}
	n := copy(p, r.hist[r.served:])
	r.served += n
	return n, nil
}

func (r *lz77Reader) decodeToken() error {
	if r.flagBit == 0 {
		if r.off >= len(r.comp) {
			return ErrCorrupt
		}
		r.flags = r.comp[r.off]
		r.off++
		r.flagBit = 8
	}
	isMatch := r.flags&1 != 0
	r.flags >>= 1
	r.flagBit--
	if !isMatch {
		if r.off >= len(r.comp) {
			return ErrCorrupt
		}
		r.hist = append(r.hist, r.comp[r.off])
		r.off++
		r.remaining--
		return nil
	}
	if r.off+3 > len(r.comp) {
		return ErrCorrupt
	}
	length := int(r.comp[r.off]) + lzMinMatch
	offset := int(binary.LittleEndian.Uint16(r.comp[r.off+1:]))
	r.off += 3
	if offset == 0 || offset > len(r.hist) || length > r.remaining {
		return ErrCorrupt
	}
	start := len(r.hist) - offset
	for k := 0; k < length; k++ { // byte-wise: matches may overlap themselves
		r.hist = append(r.hist, r.hist[start+k])
	}
	r.remaining -= length
	return nil
}
