package compress

import "io"

// rleCodec is escape-free byte run-length encoding. The stream is a
// sequence of chunks, each led by a control byte c:
//
//	c < 0x80:  literal run — the next c+1 bytes are copied verbatim
//	c >= 0x80: repeat run — the next byte repeats (c-0x80)+2 times
//
// Runs of two equal bytes already pay for themselves, so the encoder
// switches to repeat runs at length >= 3 (a 2-run inside literals is
// cheaper than breaking the literal chunk).
type rleCodec struct{}

func (rleCodec) Name() string           { return "rle" }
func (rleCodec) CyclesPerByte() float64 { return 1.0 }

const (
	rleMaxLiteral = 0x80     // longest literal chunk
	rleMaxRepeat  = 0x7F + 2 // longest repeat chunk (129)
)

func (rleCodec) Compress(src []byte) ([]byte, error) {
	var out []byte
	i := 0
	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > rleMaxLiteral {
				n = rleMaxLiteral
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i < len(src) {
		run := 1
		for i+run < len(src) && src[i+run] == src[i] && run < rleMaxRepeat {
			run++
		}
		if run >= 3 {
			flushLit(i)
			out = append(out, 0x80+byte(run-2), src[i])
			i += run
			litStart = i
		} else {
			i += run
		}
	}
	flushLit(len(src))
	return out, nil
}

func (c rleCodec) Decompress(comp []byte) ([]byte, error) {
	return decompressAll(c, comp)
}

func (rleCodec) NewReader(comp []byte) (io.Reader, error) {
	return &rleReader{comp: comp}, nil
}

// rleReader incrementally decodes an RLE stream.
type rleReader struct {
	comp []byte
	off  int

	// pending run state
	lit    []byte // literal bytes still to deliver
	repB   byte
	repN   int
	failed error
}

// InputConsumed reports the compressed bytes pulled from the stream. A
// chunk is consumed when its header is parsed, so pending run output may
// attribute up to one chunk to the earlier window.
func (r *rleReader) InputConsumed() int { return r.off }

func (r *rleReader) Read(p []byte) (int, error) {
	if r.failed != nil {
		return 0, r.failed
	}
	n := 0
	for n < len(p) {
		if len(r.lit) > 0 {
			c := copy(p[n:], r.lit)
			r.lit = r.lit[c:]
			n += c
			continue
		}
		if r.repN > 0 {
			for n < len(p) && r.repN > 0 {
				p[n] = r.repB
				n++
				r.repN--
			}
			continue
		}
		if r.off >= len(r.comp) {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		ctrl := r.comp[r.off]
		r.off++
		if ctrl < 0x80 {
			cnt := int(ctrl) + 1
			if r.off+cnt > len(r.comp) {
				r.failed = ErrCorrupt
				return n, r.failed
			}
			r.lit = r.comp[r.off : r.off+cnt]
			r.off += cnt
		} else {
			if r.off >= len(r.comp) {
				r.failed = ErrCorrupt
				return n, r.failed
			}
			r.repB = r.comp[r.off]
			r.off++
			r.repN = int(ctrl-0x80) + 2
		}
	}
	return n, nil
}
