package compress

// Robustness: decompressors face ROM contents that may be corrupted or
// maliciously crafted. Arbitrary input must never panic, never loop
// forever, and never allocate unboundedly relative to its declared size.

import (
	"io"
	"testing"

	"agilefpga/internal/sim"
)

func TestDecompressorsSurviveRandomInput(t *testing.T) {
	rng := sim.NewRNG(0xC0DEC)
	for _, c := range allCodecs(t) {
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(512)
			junk := make([]byte, n)
			for i := range junk {
				junk[i] = byte(rng.Uint64())
			}
			r, err := c.NewReader(junk)
			if err != nil {
				continue // header rejection is fine
			}
			// Bounded drain: a decoder must terminate on its own; cap
			// the read in case a declared length is huge.
			buf := make([]byte, 4096)
			total := 0
			for total < 1<<20 {
				k, err := r.Read(buf)
				total += k
				if err != nil {
					break
				}
				if k == 0 {
					t.Fatalf("%s: zero-progress read without error", c.Name())
				}
			}
		}
	}
}

func TestBitFlippedStreamsNeverRoundTrip(t *testing.T) {
	// Flipping a bit in a compressed stream must either error out or
	// produce different output — never silently reproduce the original.
	rng := sim.NewRNG(0xF11D)
	data := make([]byte, 2000)
	for i := range data {
		if i%7 == 0 {
			data[i] = byte(rng.Uint64())
		}
	}
	for _, c := range allCodecs(t) {
		if c.Name() == "none" {
			continue // identity: a flip trivially changes output, skip
		}
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			mut := append([]byte(nil), comp...)
			pos := rng.Intn(len(mut))
			mut[pos] ^= 1 << uint(rng.Intn(8))
			out, err := c.Decompress(mut)
			if err == nil && string(out) == string(data) {
				// The flip landed somewhere immaterial (e.g. padding
				// bits) — acceptable only if re-compressing the output
				// is still coherent; a silent full match of content is
				// fine, silent *corruption* is what must not happen.
				continue
			}
		}
	}
}

func TestReaderAfterErrorStaysFailed(t *testing.T) {
	for _, c := range allCodecs(t) {
		if c.Name() == "none" {
			continue
		}
		comp, _ := c.Compress([]byte("some compressible input input input"))
		if len(comp) < 4 {
			continue
		}
		trunc := comp[:len(comp)/2]
		r, err := c.NewReader(trunc)
		if err != nil {
			continue
		}
		buf := make([]byte, 8)
		var firstErr error
		for i := 0; i < 10000; i++ {
			_, err := r.Read(buf)
			if err != nil {
				firstErr = err
				break
			}
		}
		if firstErr == nil {
			t.Errorf("%s: truncated stream never errored or drained", c.Name())
			continue
		}
		if firstErr == io.EOF {
			continue // clean short stream: fine
		}
		// Subsequent reads must keep failing, not resurrect.
		if _, err := r.Read(buf); err == nil {
			t.Errorf("%s: reader recovered after %v", c.Name(), firstErr)
		}
	}
}
