package core

import (
	"errors"
	"fmt"

	"agilefpga/internal/mcu"
	"agilefpga/internal/pci"
	"agilefpga/internal/sim"
)

// BatchResult reports a pipelined batch of co-processor calls.
type BatchResult struct {
	Outputs [][]byte
	// Latency is the batch completion time under double-buffered DMA:
	// the host streams item k+1's input (and collects item k-1's output)
	// while the card works on item k. The PCI bus is half-duplex, so all
	// bus phases share one resource; the card is the other. The batch
	// finishes no earlier than either resource's total demand, plus the
	// unavoidable serial edges (first input cannot overlap anything, nor
	// can the last output).
	Latency sim.Time
	// SequentialLatency is what the same items cost as independent
	// synchronous calls — the baseline batching is measured against.
	SequentialLatency sim.Time
	// OverlapSaved is the card time the data-module double buffering hid:
	// with the pipelined model (DESIGN §12) the data-input module stages
	// item N+1 while the fabric executes N and the output-collection
	// module drains N-1, so the card's critical path undercuts the sum of
	// its per-item times by this much. Zero under SequentialConfig.
	OverlapSaved sim.Time
	// Hits counts items served without reconfiguration.
	Hits int
	// Results carries the per-item round trips (output, breakdown,
	// latency, hit), for callers that fan a batch back out to
	// individual requests (the cluster dispatcher's coalescer).
	Results []*CallResult
}

// CallBatch executes the named function over every input, modelling a
// double-buffered DMA pipeline. Outputs and card state are identical to
// issuing the calls one by one; only the latency model differs.
func (cp *CoProcessor) CallBatch(name string, inputs [][]byte) (*BatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	f, err := cp.lookup(name)
	if err != nil {
		return nil, err
	}
	return cp.callBatchID(f.ID(), inputs)
}

// CallBatchID is CallBatch by function id.
func (cp *CoProcessor) CallBatchID(fnID uint16, inputs [][]byte) (*BatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.callBatchID(fnID, inputs)
}

// CallBatchIDTraced is CallBatchID with a distributed-trace tag: the
// card-log events of the whole coalesced run are stamped with the
// given ids (by convention the first traced member's), the same
// scoping as CallIDTraced.
func (cp *CoProcessor) CallBatchIDTraced(fnID uint16, inputs [][]byte, traceID, spanID uint64) (*BatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetRequestTrace(traceID, spanID)
	defer cp.ctrl.SetRequestTrace(0, 0)
	return cp.callBatchID(fnID, inputs)
}

func (cp *CoProcessor) callBatchID(fnID uint16, inputs [][]byte) (*BatchResult, error) {
	if len(inputs) == 0 {
		return nil, errors.New("core: empty batch")
	}
	res := &BatchResult{Outputs: make([][]byte, 0, len(inputs))}
	var busTotal, cardTotal sim.Time
	var firstIn, lastOut sim.Time
	// Card-side pipeline: stage 1 is everything up to and including input
	// staging (config path + data-input module), stage 2 the fabric, stage
	// 3 the output-collection module. Double-buffered staging RAM lets the
	// three overlap across items.
	cardPipe := sim.NewPipeline(sim.PhaseDataIn, sim.PhaseExec, sim.PhaseDataOut)
	for i, input := range inputs {
		if len(input) == 0 {
			return nil, fmt.Errorf("core: empty input at batch index %d", i)
		}
		if len(input) > cp.ctrl.InWindowBytes() {
			return nil, fmt.Errorf("core: batch item %d exceeds the staging window", i)
		}
		hitsBefore := cp.ctrl.Stats().Hits

		// Input: burst plus the three mailbox writes.
		inCycles := pci.TransferCycles(len(input))
		if _, err := cp.bus.Write(cp.slot, 1, 0, input); err != nil {
			return nil, err
		}
		for _, rw := range []struct {
			off, val uint32
		}{
			{mcu.RegARG0, uint32(fnID)},
			{mcu.RegARG1, uint32(len(input))},
			{mcu.RegCMD, mcu.CmdExec},
		} {
			cyc, err := cp.bus.WriteWord(cp.slot, 0, rw.off, rw.val)
			if err != nil {
				return nil, err
			}
			inCycles += cyc
		}
		status, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegSTATUS)
		if err != nil {
			return nil, err
		}
		outCycles := cyc
		if status != mcu.StatusOK {
			code, _, _ := cp.bus.ReadWord(cp.slot, 0, mcu.RegERRCODE)
			return nil, fmt.Errorf("core: batch item %d: card error code %d", i, code)
		}
		rlen, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegRESULTLEN)
		if err != nil {
			return nil, err
		}
		outCycles += cyc
		out, cyc, err := cp.bus.Read(cp.slot, 1, cp.ctrl.OutWindowOff(), int(rlen))
		if err != nil {
			return nil, err
		}
		outCycles += cyc
		res.Outputs = append(res.Outputs, out)

		inT := cp.pciDom.Advance(inCycles)
		outT := cp.pciDom.Advance(outCycles)
		itemBr := cp.ctrl.LastBreakdown()
		cardT := itemBr.Total()
		busTotal += inT + outT
		cardTotal += cardT
		exec := itemBr.Get(sim.PhaseExec)
		dataOut := itemBr.Get(sim.PhaseDataOut)
		cardPipe.Feed(cardT-exec-dataOut, exec, dataOut)
		res.SequentialLatency += inT + outT + cardT
		if i == 0 {
			firstIn = inT
		}
		lastOut = outT
		hit := cp.ctrl.Stats().Hits > hitsBefore
		if hit {
			res.Hits++
		}
		itemBr.Add(sim.PhasePCI, inT+outT)
		cp.observeRoundTrip(fnID, itemBr)
		res.Results = append(res.Results, &CallResult{
			Output:    out,
			Breakdown: itemBr,
			Latency:   itemBr.Total(),
			Hit:       hit,
		})
	}
	cardPath := cardTotal
	if !cp.cfg.SequentialConfig {
		cardPath = cardPipe.Latency()
		res.OverlapSaved = cardTotal - cardPath
	}
	pipelined := busTotal
	if edge := firstIn + cardPath + lastOut; edge > pipelined {
		pipelined = edge
	}
	res.Latency = pipelined
	if cp.metrics != nil && res.OverlapSaved != 0 {
		cp.metrics.Counter("agile_batch_overlap_saved_ps_total").Add(uint64(res.OverlapSaved))
	}
	return res, nil
}
