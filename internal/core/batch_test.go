package core

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
)

func TestCallBatchMatchesSequential(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.SHA256()); err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 8)
	for i := range inputs {
		inputs[i] = make([]byte, 512)
		for j := range inputs[i] {
			inputs[i][j] = byte(i*37 + j)
		}
	}
	batch, err := cp.CallBatch("sha256", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Outputs) != len(inputs) {
		t.Fatalf("outputs = %d", len(batch.Outputs))
	}
	for i, in := range inputs {
		want, _ := algos.SHA256().Exec(in)
		if !bytes.Equal(batch.Outputs[i], want) {
			t.Fatalf("item %d output mismatch", i)
		}
	}
	// First item misses (configuration), the rest hit.
	if batch.Hits != len(inputs)-1 {
		t.Errorf("hits = %d, want %d", batch.Hits, len(inputs)-1)
	}
	// Pipelining can only help.
	if batch.Latency > batch.SequentialLatency {
		t.Errorf("batched (%v) slower than sequential (%v)", batch.Latency, batch.SequentialLatency)
	}
	if batch.Latency == 0 {
		t.Error("zero batch latency")
	}
}

func TestCallBatchOverlapWins(t *testing.T) {
	// With enough items, pipelined latency must be meaningfully below
	// the sequential sum: at least the smaller of total-bus and
	// total-card time is hidden.
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.SHA256()); err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 32)
	for i := range inputs {
		inputs[i] = make([]byte, 4096)
		for j := range inputs[i] {
			inputs[i][j] = byte(i + j)
		}
	}
	if _, err := cp.Call("sha256", inputs[0]); err != nil { // warm
		t.Fatal(err)
	}
	batch, err := cp.CallBatch("sha256", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(batch.Latency) > 0.85*float64(batch.SequentialLatency) {
		t.Errorf("overlap too weak: %v vs %v", batch.Latency, batch.SequentialLatency)
	}
}

func TestCallBatchValidation(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.CRC32()); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CallBatch("crc32", nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := cp.CallBatch("crc32", [][]byte{{1, 2}, nil}); err == nil {
		t.Error("empty item accepted")
	}
	if _, err := cp.CallBatch("nope", [][]byte{{1}}); err == nil {
		t.Error("unknown function accepted")
	}
	huge := make([]byte, cp.Controller().InWindowBytes()+1)
	if _, err := cp.CallBatch("crc32", [][]byte{huge}); err == nil {
		t.Error("oversized item accepted")
	}
}

func TestCallBatchStateConsistency(t *testing.T) {
	// A batch leaves the card in exactly the state individual calls
	// would: resident function, clean invariants, coherent stats.
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.DES()); err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{[]byte("block001"), []byte("block002"), []byte("block003")}
	if _, err := cp.CallBatch("des", inputs); err != nil {
		t.Fatal(err)
	}
	st := cp.Stats()
	if st.Requests != 3 || st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v", st)
	}
	if !cp.Controller().Resident(algos.IDDES) {
		t.Error("function not resident after batch")
	}
	if err := cp.Controller().CheckInvariants(); err != nil {
		t.Error(err)
	}
}
