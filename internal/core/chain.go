package core

import (
	"errors"
	"fmt"
	"strings"

	"agilefpga/internal/mcu"
	"agilefpga/internal/metrics"
	"agilefpga/internal/pci"
	"agilefpga/internal/sim"
)

// On-fabric function chaining (DESIGN §15): the host ships the input
// once, the card runs every stage with intermediate results handed
// through local RAM, and the host collects only the final output — a
// k-stage pipeline crosses PCI twice instead of 2k times.

// ChainStageResult reports one stage of a chained invocation.
type ChainStageResult struct {
	Fn uint16
	// Hit reports whether the stage was already on the fabric.
	Hit bool
	// Breakdown is the stage's share of the chain's card time (no PCI).
	Breakdown sim.Breakdown
}

// ChainResult reports one chained invocation.
type ChainResult struct {
	// Output is the final stage's output, byte-identical to feeding the
	// stages as separate Calls.
	Output []byte
	// Breakdown covers the whole round trip: every stage's card phases
	// plus PhasePCI charged once for input-in and output-out.
	Breakdown sim.Breakdown
	// Latency is Breakdown.Total().
	Latency sim.Time
	// Hits counts stages that were already resident.
	Hits int
	// Stages carries the per-stage attribution; stage breakdowns sum to
	// Breakdown minus the PCI phase.
	Stages []ChainStageResult
}

// CallChain executes the named functions as one on-card dataflow chain
// over input, stage k's output feeding stage k+1 through the card's
// local RAM.
func (cp *CoProcessor) CallChain(names []string, input []byte) (*ChainResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	fns, err := cp.lookupChain(names)
	if err != nil {
		return nil, err
	}
	return cp.callChainID(fns, input)
}

// CallChainID is CallChain by function ids.
func (cp *CoProcessor) CallChainID(fns []uint16, input []byte) (*ChainResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.callChainID(fns, input)
}

// CallChainIDTraced is CallChainID with a distributed-trace tag, scoped
// by the card lock exactly like CallIDTraced.
func (cp *CoProcessor) CallChainIDTraced(fns []uint16, input []byte, traceID, spanID uint64) (*ChainResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetRequestTrace(traceID, spanID)
	defer cp.ctrl.SetRequestTrace(0, 0)
	return cp.callChainID(fns, input)
}

// lookupChain resolves a stage list of provisioned function names.
// Callers hold cp.mu.
func (cp *CoProcessor) lookupChain(names []string) ([]uint16, error) {
	fns := make([]uint16, len(names))
	for i, name := range names {
		f, err := cp.lookup(name)
		if err != nil {
			return nil, err
		}
		fns[i] = f.ID()
	}
	return fns, nil
}

// latchChain writes the stage list into the card's RegCHAIN latch,
// returning the bus cycles spent. The latch persists across commands,
// so a batch pays it once.
func (cp *CoProcessor) latchChain(fns []uint16) (uint64, error) {
	var busCycles uint64
	for i, fn := range fns {
		cyc, err := cp.bus.WriteWord(cp.slot, 0, mcu.RegCHAIN, uint32(i)<<16|uint32(fn))
		if err != nil {
			return busCycles, err
		}
		busCycles += cyc
	}
	return busCycles, nil
}

// callChainID runs the host chain protocol with cp.mu held: input into
// BAR1, stage latch, CmdExecChain, final output out of BAR1.
func (cp *CoProcessor) callChainID(fns []uint16, input []byte) (*ChainResult, error) {
	if len(fns) < 2 || len(fns) > mcu.MaxChainStages {
		return nil, fmt.Errorf("core: chain must name 2..%d stages, got %d", mcu.MaxChainStages, len(fns))
	}
	if len(input) == 0 {
		return nil, errors.New("core: empty input")
	}
	if len(input) > cp.ctrl.InWindowBytes() {
		return nil, fmt.Errorf("core: input of %d bytes exceeds the %d-byte staging window",
			len(input), cp.ctrl.InWindowBytes())
	}

	var busCycles uint64
	// 1. Input into BAR1 — the one and only host→card data transfer.
	cyc, err := cp.bus.Write(cp.slot, 1, 0, input)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	// 2. Stage latch, arguments, command.
	cyc, err = cp.latchChain(fns)
	busCycles += cyc
	if err != nil {
		return nil, err
	}
	for _, rw := range []struct {
		off, val uint32
	}{
		{mcu.RegARG0, uint32(len(fns))},
		{mcu.RegARG1, uint32(len(input))},
		{mcu.RegCMD, mcu.CmdExecChain},
	} {
		cyc, err := cp.bus.WriteWord(cp.slot, 0, rw.off, rw.val)
		if err != nil {
			return nil, err
		}
		busCycles += cyc
	}
	// 3. Status and result length.
	status, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegSTATUS)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	if status != mcu.StatusOK {
		code, cyc2, _ := cp.bus.ReadWord(cp.slot, 0, mcu.RegERRCODE)
		busCycles += cyc2
		cp.pciDom.Advance(busCycles)
		return nil, fmt.Errorf("core: card reported error code %d for chain %v", code, fns)
	}
	rlen, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegRESULTLEN)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	// 4. Final output from BAR1 — the one card→host data transfer.
	out, cyc, err := cp.bus.Read(cp.slot, 1, cp.ctrl.OutWindowOff(), int(rlen))
	if err != nil {
		return nil, err
	}
	busCycles += cyc

	br := cp.ctrl.LastBreakdown()
	br.Add(sim.PhasePCI, cp.pciDom.Advance(busCycles))
	res := &ChainResult{
		Output:    out,
		Breakdown: br,
		Latency:   br.Total(),
	}
	for _, st := range cp.ctrl.LastChainStages() {
		if st.Hit {
			res.Hits++
		}
		res.Stages = append(res.Stages, ChainStageResult{Fn: st.Fn, Hit: st.Hit, Breakdown: st.Cost})
	}
	cp.observeChainRoundTrip(fns, br)
	return res, nil
}

// observeChainRoundTrip records the host-side view of one finished
// chain under a chain-shaped label ("sha256->aes128"), keeping the
// per-function request histograms uncontaminated; per-stage card
// phases are observed in mcu against each stage's own function.
func (cp *CoProcessor) observeChainRoundTrip(fns []uint16, br sim.Breakdown) {
	if cp.metrics == nil {
		return
	}
	label := cp.chainLabel(fns)
	if t := br.Get(sim.PhasePCI); t != 0 {
		cp.metrics.Histogram("agile_phase_seconds",
			metrics.L("phase", sim.PhasePCI.String()), metrics.L("fn", label)).Observe(t)
	}
	cp.metrics.Histogram("agile_chain_seconds", metrics.L("chain", label)).Observe(br.Total())
}

// chainLabel renders a stage list as one metric label.
func (cp *CoProcessor) chainLabel(fns []uint16) string {
	parts := make([]string, len(fns))
	for i, fn := range fns {
		parts[i] = cp.fnLabel(fn)
	}
	return strings.Join(parts, "->")
}

// ChainBatchResult reports a pipelined batch of chained calls.
type ChainBatchResult struct {
	Outputs [][]byte
	// Latency is the batch completion time with the card's stages
	// pipelined across items: stage k+1 of item N runs while stage k
	// processes item N+1, under the same half-duplex-bus / card
	// two-resource model as BatchResult.
	Latency sim.Time
	// SequentialLatency is what the same items cost as independent
	// synchronous chained calls.
	SequentialLatency sim.Time
	// OverlapSaved is the card time the inter-item stage overlap hid:
	// the card's critical path undercuts the sum of its per-item chain
	// times by this much. Zero under SequentialConfig.
	OverlapSaved sim.Time
	// Hits counts items whose every stage was already resident.
	Hits int
	// Results carries per-item round-trip views for callers that fan a
	// batch back out to individual requests (the cluster's coalescer).
	Results []*CallResult
}

// CallChainBatch executes the named chain over every input, modelling
// the per-stage pipeline across items. Outputs and card state are
// identical to issuing the chained calls one by one.
func (cp *CoProcessor) CallChainBatch(names []string, inputs [][]byte) (*ChainBatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	fns, err := cp.lookupChain(names)
	if err != nil {
		return nil, err
	}
	return cp.callChainBatchID(fns, inputs)
}

// CallChainBatchID is CallChainBatch by function ids.
func (cp *CoProcessor) CallChainBatchID(fns []uint16, inputs [][]byte) (*ChainBatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.callChainBatchID(fns, inputs)
}

// CallChainBatchIDTraced is CallChainBatchID with a distributed-trace
// tag (by convention the first traced member's), scoped like
// CallBatchIDTraced.
func (cp *CoProcessor) CallChainBatchIDTraced(fns []uint16, inputs [][]byte, traceID, spanID uint64) (*ChainBatchResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetRequestTrace(traceID, spanID)
	defer cp.ctrl.SetRequestTrace(0, 0)
	return cp.callChainBatchID(fns, inputs)
}

func (cp *CoProcessor) callChainBatchID(fns []uint16, inputs [][]byte) (*ChainBatchResult, error) {
	if len(fns) < 2 || len(fns) > mcu.MaxChainStages {
		return nil, fmt.Errorf("core: chain must name 2..%d stages, got %d", mcu.MaxChainStages, len(fns))
	}
	if len(inputs) == 0 {
		return nil, errors.New("core: empty batch")
	}
	res := &ChainBatchResult{Outputs: make([][]byte, 0, len(inputs))}
	var busTotal, cardTotal sim.Time
	var firstIn, lastOut sim.Time
	// Card-side pipeline, one slot per physically distinct resource the
	// chain occupies in sequence: the data-input module, each stage's
	// fabric region (chain stages are simultaneously resident, so stage
	// s of item N and stage s+1 of item N-1 genuinely run in parallel),
	// and the output-collection module.
	phases := make([]sim.Phase, 0, len(fns)+2)
	phases = append(phases, sim.PhaseDataIn)
	for range fns {
		phases = append(phases, sim.PhaseExec)
	}
	phases = append(phases, sim.PhaseDataOut)
	cardPipe := sim.NewPipeline(phases...)
	costs := make([]sim.Time, 0, len(fns)+2)

	// The stage latch persists across mailbox commands: pay it once.
	latchCycles, err := cp.latchChain(fns)
	if err != nil {
		return nil, err
	}
	for i, input := range inputs {
		if len(input) == 0 {
			return nil, fmt.Errorf("core: empty input at batch index %d", i)
		}
		if len(input) > cp.ctrl.InWindowBytes() {
			return nil, fmt.Errorf("core: batch item %d exceeds the staging window", i)
		}

		inCycles := latchCycles + pci.TransferCycles(len(input))
		latchCycles = 0
		if _, err := cp.bus.Write(cp.slot, 1, 0, input); err != nil {
			return nil, err
		}
		for _, rw := range []struct {
			off, val uint32
		}{
			{mcu.RegARG0, uint32(len(fns))},
			{mcu.RegARG1, uint32(len(input))},
			{mcu.RegCMD, mcu.CmdExecChain},
		} {
			cyc, err := cp.bus.WriteWord(cp.slot, 0, rw.off, rw.val)
			if err != nil {
				return nil, err
			}
			inCycles += cyc
		}
		status, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegSTATUS)
		if err != nil {
			return nil, err
		}
		outCycles := cyc
		if status != mcu.StatusOK {
			code, _, _ := cp.bus.ReadWord(cp.slot, 0, mcu.RegERRCODE)
			return nil, fmt.Errorf("core: chain batch item %d: card error code %d", i, code)
		}
		rlen, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegRESULTLEN)
		if err != nil {
			return nil, err
		}
		outCycles += cyc
		out, cyc, err := cp.bus.Read(cp.slot, 1, cp.ctrl.OutWindowOff(), int(rlen))
		if err != nil {
			return nil, err
		}
		outCycles += cyc
		res.Outputs = append(res.Outputs, out)

		inT := cp.pciDom.Advance(inCycles)
		outT := cp.pciDom.Advance(outCycles)
		itemBr := cp.ctrl.LastBreakdown()
		stages := cp.ctrl.LastChainStages()
		cardT := itemBr.Total()
		busTotal += inT + outT
		cardTotal += cardT

		// Slot costs, summing exactly to cardT. The entry slot carries
		// stage 0's lookup/config/data-in; each stage slot carries its
		// exec plus — for later stages — the RAM hand-off that precedes
		// it (previous stage's data-out and its own lookup/config/
		// data-in); the exit slot carries the final stage's data-out.
		costs = costs[:0]
		first := stages[0].Cost
		costs = append(costs, first.Total()-first.Get(sim.PhaseExec)-first.Get(sim.PhaseDataOut))
		for s := range stages {
			t := stages[s].Cost.Get(sim.PhaseExec)
			if s > 0 {
				t += stages[s-1].Cost.Get(sim.PhaseDataOut)
				t += stages[s].Cost.Total() - stages[s].Cost.Get(sim.PhaseExec) - stages[s].Cost.Get(sim.PhaseDataOut)
			}
			costs = append(costs, t)
		}
		costs = append(costs, stages[len(stages)-1].Cost.Get(sim.PhaseDataOut))
		cardPipe.Feed(costs...)

		res.SequentialLatency += inT + outT + cardT
		if i == 0 {
			firstIn = inT
		}
		lastOut = outT
		allHit := true
		for s := range stages {
			if !stages[s].Hit {
				allHit = false
				break
			}
		}
		if allHit {
			res.Hits++
		}
		itemBr.Add(sim.PhasePCI, inT+outT)
		cp.observeChainRoundTrip(fns, itemBr)
		res.Results = append(res.Results, &CallResult{
			Output:    out,
			Breakdown: itemBr,
			Latency:   itemBr.Total(),
			Hit:       allHit,
		})
	}
	cardPath := cardTotal
	if !cp.cfg.SequentialConfig {
		cardPath = cardPipe.Latency()
		res.OverlapSaved = cardTotal - cardPath
	}
	pipelined := busTotal
	if edge := firstIn + cardPath + lastOut; edge > pipelined {
		pipelined = edge
	}
	res.Latency = pipelined
	if cp.metrics != nil && res.OverlapSaved != 0 {
		cp.metrics.Counter("agile_chain_overlap_saved_ps_total").Add(uint64(res.OverlapSaved))
	}
	return res, nil
}
