package core

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/compress"
	"agilefpga/internal/sim"
)

// TestChainMatchesStagedCalls is the property DESIGN §15 commits to:
// for every chainable pair of bank functions × codec, a warm chained
// call produces output byte-identical to feeding the stages as separate
// Calls, and its virtual round trip never exceeds the staged sum — the
// RAM hand-off must beat bouncing the intermediate across PCI. A pair
// is chainable when the staged path itself succeeds; pairs whose
// intermediate overflows the chain's RAM staging window are skipped
// (and counted, so a model regression can't silently skip everything).
func TestChainMatchesStagedCalls(t *testing.T) {
	for _, codecName := range compress.Names() {
		codecName := codecName
		t.Run(codecName, func(t *testing.T) {
			cp, err := New(Config{Codec: codecName, RAMBytes: 1024 * 1024})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cp.InstallBank(); err != nil {
				t.Fatal(err)
			}
			chained, skipped := 0, 0
			for _, f0 := range algos.Bank() {
				for _, f1 := range algos.Bank() {
					in := make([]byte, f0.BlockBytes)
					for i := range in {
						in[i] = byte(i*13 + 5)
					}
					// Warm both stages so the arms compare steady state
					// (any two bank functions fit the default fabric, so
					// neither warm load can evict the other).
					warm, err := cp.Call(f0.Name(), in)
					if err != nil {
						t.Fatalf("warm %s: %v", f0.Name(), err)
					}
					if len(warm.Output) == 0 {
						skipped++
						continue
					}
					if _, err := cp.Call(f1.Name(), warm.Output); err != nil {
						// Not a chainable pair (e.g. the intermediate
						// exceeds f1's input window); the chain must agree.
						if _, cerr := cp.CallChain([]string{f0.Name(), f1.Name()}, in); cerr == nil {
							t.Errorf("%s->%s: staged rejected (%v) but chain accepted", f0.Name(), f1.Name(), err)
						}
						skipped++
						continue
					}

					// Staged arm, all warm: the intermediate crosses PCI
					// out and back.
					mid, err := cp.Call(f0.Name(), in)
					if err != nil {
						t.Fatalf("staged %s: %v", f0.Name(), err)
					}
					last, err := cp.Call(f1.Name(), mid.Output)
					if err != nil {
						t.Fatalf("staged %s: %v", f1.Name(), err)
					}

					// Chained arm: same stages, intermediate in local RAM.
					cr, err := cp.CallChain([]string{f0.Name(), f1.Name()}, in)
					if err != nil {
						skipped++
						continue
					}
					chained++
					if !bytes.Equal(cr.Output, last.Output) {
						t.Errorf("%s->%s: chained output diverges from staged", f0.Name(), f1.Name())
					}
					staged := mid.Latency + last.Latency
					if cr.Latency > staged {
						t.Errorf("%s->%s: chain %v slower than staged %v",
							f0.Name(), f1.Name(), cr.Latency, staged)
					}
					// PCI crosses twice, not four times: the chain's PCI
					// share must undercut the staged arms'.
					if cr.Breakdown.Get(sim.PhasePCI) >= mid.Breakdown.Get(sim.PhasePCI)+last.Breakdown.Get(sim.PhasePCI) {
						t.Errorf("%s->%s: chain PCI %v not below staged PCI %v", f0.Name(), f1.Name(),
							cr.Breakdown.Get(sim.PhasePCI),
							mid.Breakdown.Get(sim.PhasePCI)+last.Breakdown.Get(sim.PhasePCI))
					}
					if len(cr.Stages) != 2 {
						t.Fatalf("%s->%s: %d stage attributions", f0.Name(), f1.Name(), len(cr.Stages))
					}
					// Stage breakdowns sum to the chain minus PCI.
					var sum sim.Breakdown
					for _, st := range cr.Stages {
						sum.AddAll(st.Breakdown)
					}
					if sum.Total() != cr.Latency-cr.Breakdown.Get(sim.PhasePCI) {
						t.Errorf("%s->%s: stage costs %v don't sum to chain %v minus PCI %v",
							f0.Name(), f1.Name(), sum.Total(), cr.Latency, cr.Breakdown.Get(sim.PhasePCI))
					}
				}
			}
			if chained < len(algos.Bank())*len(algos.Bank())/2 {
				t.Errorf("only %d pairs chained, %d skipped — chainability collapsed", chained, skipped)
			}
			if err := cp.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChainBatchMatchesChain pins the batch path to the synchronous
// one: same outputs item by item, batch completion no later than the
// sequential sum, and overlap accounting consistent.
func TestChainBatchMatchesChain(t *testing.T) {
	cp, err := New(Config{RAMBytes: 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	chain := []string{"sha256", "aes128"}
	inputs := make([][]byte, 12)
	for i := range inputs {
		inputs[i] = make([]byte, 256)
		for j := range inputs[i] {
			inputs[i][j] = byte(i*31 + j)
		}
	}
	want := make([][]byte, len(inputs))
	for i, in := range inputs {
		cr, err := cp.CallChain(chain, in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = cr.Output
	}
	b, err := cp.CallChainBatch(chain, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if !bytes.Equal(b.Outputs[i], want[i]) {
			t.Errorf("item %d: batch output diverges from synchronous chain", i)
		}
	}
	if b.Latency > b.SequentialLatency {
		t.Errorf("batch %v slower than its own sequential model %v", b.Latency, b.SequentialLatency)
	}
	if b.OverlapSaved == 0 {
		t.Error("warm 12-item chain batch saved nothing — inter-item overlap not engaged")
	}
	if b.Hits != len(inputs) {
		t.Errorf("%d/%d warm items hit", b.Hits, len(inputs))
	}
	if len(b.Results) != len(inputs) {
		t.Fatalf("%d per-item results", len(b.Results))
	}
	for i, r := range b.Results {
		if !bytes.Equal(r.Output, want[i]) {
			t.Errorf("item %d: per-item result output diverges", i)
		}
		if r.Breakdown.Get(sim.PhasePCI) == 0 {
			t.Errorf("item %d: no PCI attributed", i)
		}
	}
	if err := cp.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestChainRejectsBadStageLists pins the validation edges shared with
// the wire layer: stage counts outside [2, MaxChainStages], unknown
// functions, and empty input.
func TestChainRejectsBadStageLists(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	in := []byte{1, 2, 3, 4}
	if _, err := cp.CallChain([]string{"sha256"}, in); err == nil {
		t.Error("1-stage chain accepted")
	}
	long := make([]string, 9)
	for i := range long {
		long[i] = "sha256"
	}
	if _, err := cp.CallChain(long, in); err == nil {
		t.Error("9-stage chain accepted")
	}
	if _, err := cp.CallChain([]string{"sha256", "nope"}, in); err == nil {
		t.Error("unknown stage accepted")
	}
	if _, err := cp.CallChain([]string{"sha256", "aes128"}, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := cp.CallChainBatch([]string{"sha256", "aes128"}, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := cp.CallChainBatch([]string{"sha256", "aes128"}, [][]byte{{1}, nil}); err == nil {
		t.Error("empty batch item accepted")
	}
}
