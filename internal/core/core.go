// Package core assembles the full co-processor of the paper's Figure 1:
// the PCI bus, the microcontroller with its ROM/RAM and mini OS, and the
// partially reconfigurable fabric — plus the host-side driver that talks
// to the card exactly the way the paper describes (inputs over PCI into
// local RAM, commands to the microcontroller, outputs collected back).
//
// It also carries the host software baseline (RunHost) used by the
// offload experiments: the same behavioural computation costed with the
// function's host-cycle model instead of the card pipeline.
package core

import (
	"errors"
	"fmt"
	"sync"

	"agilefpga/internal/algos"
	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/fpga"
	"agilefpga/internal/mcu"
	"agilefpga/internal/memory"
	"agilefpga/internal/metrics"
	"agilefpga/internal/pci"
	"agilefpga/internal/replace"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// HostHz is the host CPU clock for the software baseline: a 2 GHz scalar
// machine of the paper's era.
const HostHz = 2_000_000_000

// Config parameterises the whole system. Zero values select defaults.
type Config struct {
	Geometry    fpga.Geometry // default: fpga.DefaultGeometry
	ROMBytes    int
	RAMBytes    int
	WindowBytes int
	// Codec names the bitstream compression scheme used when installing
	// functions. Default "framediff".
	Codec string
	// Policy names the frame replacement policy ("lru", "fifo", "lfu",
	// "random"). Default "lru" (the paper's). PolicyImpl overrides it.
	Policy     string
	PolicySeed uint64
	PolicyImpl replace.Policy
	// AllowScatter permits non-contiguous placement. Default true.
	NoScatter bool
	// DiffReload enables the mini OS's difference-based reconfiguration
	// flow (lazy eviction + generation-verified revival).
	DiffReload bool
	// Prefetch enables the mini OS's configuration prefetcher.
	Prefetch bool
	// ROMImage boots the card from a pre-burned ROM image (see
	// memory.LoadROM and cmd/bitc -burn); functions found in it are
	// immediately callable without Install.
	ROMImage []byte
	// DecodeCacheBytes bounds the mini OS's decoded-frame cache: reloads
	// whose decoded frame images are cached skip decompression entirely.
	// 0 disables the cache.
	DecodeCacheBytes int
	// SequentialConfig reverts the configuration module to the additive
	// timing model (ROM, decompression, and port writes charged back to
	// back) and disables the card-side batch overlap. The zero value is
	// the pipelined model — see mcu.Config.SequentialConfig and DESIGN
	// §12. Retained for A/B comparison (experiment E18).
	SequentialConfig bool
	// Metrics, when non-nil, receives the telemetry the card and host
	// driver produce: per-phase latency histograms, request/error
	// counters, cache and prefetch behaviour. Observation is passive —
	// it never advances a clock domain — so attaching a registry changes
	// no virtual-time result.
	Metrics *metrics.Registry
}

// CoProcessor is the assembled card plus its host driver. All exported
// methods are safe for concurrent use: one mutex serialises the card, so
// a cluster of cards runs genuinely in parallel — one lock per card.
// Controller() escapes the lock; confine it to single-threaded code.
type CoProcessor struct {
	mu    sync.Mutex
	cfg   Config
	reg   *fpga.Registry
	ctrl  *mcu.Controller
	bus   *pci.Bus
	codec compress.Codec

	pciDom  *sim.Domain
	hostDom *sim.Domain

	slot      int
	installed map[uint16]*algos.Function
	serial    uint16
	metrics   *metrics.Registry
}

// CallResult reports one co-processor invocation.
type CallResult struct {
	Output []byte
	// Breakdown covers the whole round trip, including PhasePCI.
	Breakdown sim.Breakdown
	// Latency is Breakdown.Total().
	Latency sim.Time
	// Hit reports whether the function was already on the fabric.
	Hit bool
}

// New assembles a co-processor with the full algorithm bank registered.
func New(cfg Config) (*CoProcessor, error) {
	if cfg.Geometry == (fpga.Geometry{}) {
		cfg.Geometry = fpga.DefaultGeometry
	}
	if cfg.Codec == "" {
		cfg.Codec = "framediff"
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	pol := cfg.PolicyImpl
	if pol == nil {
		var err error
		pol, err = replace.New(cfg.Policy, cfg.PolicySeed)
		if err != nil {
			return nil, err
		}
	}
	codec, err := compress.New(cfg.Codec, cfg.Geometry.FrameBytes())
	if err != nil {
		return nil, err
	}
	reg := fpga.NewRegistry()
	if err := algos.RegisterAll(reg); err != nil {
		return nil, err
	}
	ctrl, err := mcu.New(mcu.Config{
		Geometry:         cfg.Geometry,
		ROMBytes:         cfg.ROMBytes,
		RAMBytes:         cfg.RAMBytes,
		WindowBytes:      cfg.WindowBytes,
		Policy:           pol,
		AllowScatter:     !cfg.NoScatter,
		DiffReload:       cfg.DiffReload,
		Prefetch:         cfg.Prefetch,
		ROMImage:         cfg.ROMImage,
		DecodeCacheBytes: cfg.DecodeCacheBytes,
		SequentialConfig: cfg.SequentialConfig,
		Metrics:          cfg.Metrics,
	}, reg)
	if err != nil {
		return nil, err
	}
	bus := pci.NewBus()
	const slot = 4
	if err := bus.Attach(slot, ctrl, pci.ConfigSpace{
		VendorID: 0x1172, // Altera, per the proof-of-concept board
		DeviceID: 0xA617,
		Class:    0x0B4000, // co-processor
	}); err != nil {
		return nil, err
	}
	cp := &CoProcessor{
		cfg:       cfg,
		reg:       reg,
		ctrl:      ctrl,
		bus:       bus,
		codec:     codec,
		pciDom:    sim.NewDomain("pci", pci.BusHz),
		hostDom:   sim.NewDomain("host", HostHz),
		slot:      slot,
		installed: make(map[uint16]*algos.Function),
		metrics:   cfg.Metrics,
	}
	// A pre-burned ROM makes its functions callable immediately; the
	// serial counter resumes above the highest burned serial so later
	// installs stay distinguishable.
	if cfg.ROMImage != nil {
		recs, err := ctrl.ROM().Records()
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			for _, f := range algos.Bank() {
				if f.ID() == rec.FnID {
					cp.installed[rec.FnID] = f
				}
			}
			if rec.Serial > cp.serial {
				cp.serial = rec.Serial
			}
		}
	}
	return cp, nil
}

// Controller exposes the card's microcontroller (stats, invariants).
func (cp *CoProcessor) Controller() *mcu.Controller { return cp.ctrl }

// Bus exposes the PCI bus (device discovery demos).
func (cp *CoProcessor) Bus() *pci.Bus { return cp.bus }

// Slot reports the card's PCI slot.
func (cp *CoProcessor) Slot() int { return cp.slot }

// Codec reports the install-time compression codec.
func (cp *CoProcessor) Codec() compress.Codec { return cp.codec }

// BuildImage synthesises a function's frame images and compresses them
// with codec, returning the ROM record and blob. Exposed for the tooling
// (cmd/bitc) and the compression experiments.
func BuildImage(g fpga.Geometry, f *algos.Function, codec compress.Codec, serial uint16) (memory.Record, []byte, error) {
	images, err := bitstream.Synthesize(g, bitstream.Netlist{
		FnID: f.ID(), Serial: serial, LUTs: f.LUTs, Seed: f.Seed(),
	})
	if err != nil {
		return memory.Record{}, nil, err
	}
	raw := make([]byte, 0, len(images)*g.FrameBytes())
	for _, img := range images {
		raw = append(raw, img...)
	}
	blob, err := codec.Compress(raw)
	if err != nil {
		return memory.Record{}, nil, err
	}
	codecID, err := compress.IDOf(codec.Name())
	if err != nil {
		return memory.Record{}, nil, err
	}
	rec := memory.Record{
		Name:       f.Name(),
		FnID:       f.ID(),
		CodecID:    codecID,
		RawSize:    uint32(len(raw)),
		InBus:      f.InBus,
		OutBus:     f.OutBus,
		FrameCount: uint16(len(images)),
		Serial:     serial,
	}
	return rec, blob, nil
}

// Install provisions one bank function: synthesise, compress, push the
// blob over PCI into the card's ROM. It returns the provisioning time
// (bus transfer plus ROM programming).
func (cp *CoProcessor) Install(f *algos.Function) (sim.Time, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.install(f)
}

// install synthesises, compresses and downloads one bank function.
// The caller must hold cp.mu.
func (cp *CoProcessor) install(f *algos.Function) (sim.Time, error) {
	if f == nil {
		return 0, errors.New("core: Install(nil)")
	}
	cp.serial++
	rec, blob, err := BuildImage(cp.cfg.Geometry, f, cp.codec, cp.serial)
	if err != nil {
		return 0, err
	}
	return cp.download(f, rec, blob)
}

// InstallImage provisions a function from an already-built ROM record
// and compressed blob (see BuildImage). A cluster replicating one bank
// across many cards synthesises and compresses each image once and
// downloads the same blob everywhere, instead of paying the synthesis
// per card.
func (cp *CoProcessor) InstallImage(f *algos.Function, rec memory.Record, blob []byte) (sim.Time, error) {
	if f == nil {
		return 0, errors.New("core: InstallImage(nil)")
	}
	if rec.FnID != f.ID() {
		return 0, fmt.Errorf("core: record fn %d does not match %s (%d)", rec.FnID, f.Name(), f.ID())
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if rec.Serial > cp.serial {
		cp.serial = rec.Serial
	}
	return cp.download(f, rec, blob)
}

// download pushes a built image over PCI into the card's ROM and marks
// the function callable. Callers hold cp.mu.
func (cp *CoProcessor) download(f *algos.Function, rec memory.Record, blob []byte) (sim.Time, error) {
	// Provisioning transfer: blob plus record over the bus.
	busTime := cp.pciDom.Advance(pci.TransferCycles(len(blob) + memory.RecordBytes))
	romTime, err := cp.ctrl.Download(rec, blob)
	if err != nil {
		return 0, err
	}
	cp.installed[f.ID()] = f
	return busTime + romTime, nil
}

// InstallBank installs the whole algorithm bank.
func (cp *CoProcessor) InstallBank() (sim.Time, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	var total sim.Time
	for _, f := range algos.Bank() {
		t, err := cp.install(f)
		if err != nil {
			return total, fmt.Errorf("core: installing %s: %w", f.Name(), err)
		}
		total += t
	}
	return total, nil
}

// Installed lists the provisioned functions.
func (cp *CoProcessor) Installed() []*algos.Function {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]*algos.Function, 0, len(cp.installed))
	for _, f := range algos.Bank() {
		if _, ok := cp.installed[f.ID()]; ok {
			out = append(out, f)
		}
	}
	return out
}

// lookup resolves a provisioned function by name.
func (cp *CoProcessor) lookup(name string) (*algos.Function, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return nil, err
	}
	if _, ok := cp.installed[f.ID()]; !ok {
		return nil, fmt.Errorf("core: function %q not installed on the card", name)
	}
	return f, nil
}

// Call executes the named function on the card, following the full host
// protocol: burst input into BAR1, fire the mailbox, read the result.
func (cp *CoProcessor) Call(name string, input []byte) (*CallResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	f, err := cp.lookup(name)
	if err != nil {
		return nil, err
	}
	return cp.callID(f.ID(), input)
}

// CallID is Call by function id.
func (cp *CoProcessor) CallID(fnID uint16, input []byte) (*CallResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.callID(fnID, input)
}

// CallIDTraced is CallID for a request carrying distributed-trace
// context: card-log events emitted while the call runs are stamped
// with the request's trace and span ids (the cluster's service span),
// attaching the per-phase records to the owning span tree. The tag is
// scoped by the card lock, so concurrent untraced calls never inherit
// it. Zero ids degrade to plain CallID.
func (cp *CoProcessor) CallIDTraced(fnID uint16, input []byte, traceID, spanID uint64) (*CallResult, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetRequestTrace(traceID, spanID)
	defer cp.ctrl.SetRequestTrace(0, 0)
	return cp.callID(fnID, input)
}

// callID runs the host protocol with cp.mu held.
func (cp *CoProcessor) callID(fnID uint16, input []byte) (*CallResult, error) {
	if len(input) == 0 {
		return nil, errors.New("core: empty input")
	}
	if len(input) > cp.ctrl.InWindowBytes() {
		return nil, fmt.Errorf("core: input of %d bytes exceeds the %d-byte staging window",
			len(input), cp.ctrl.InWindowBytes())
	}
	hitsBefore := cp.ctrl.Stats().Hits

	var busCycles uint64
	// 1. Input into BAR1.
	cyc, err := cp.bus.Write(cp.slot, 1, 0, input)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	// 2–3. Arguments and command.
	for _, rw := range []struct {
		off uint32
		val uint32
	}{
		{mcu.RegARG0, uint32(fnID)},
		{mcu.RegARG1, uint32(len(input))},
		{mcu.RegCMD, mcu.CmdExec},
	} {
		cyc, err := cp.bus.WriteWord(cp.slot, 0, rw.off, rw.val)
		if err != nil {
			return nil, err
		}
		busCycles += cyc
	}
	// 4. Status and result length.
	status, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegSTATUS)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	if status != mcu.StatusOK {
		code, cyc2, _ := cp.bus.ReadWord(cp.slot, 0, mcu.RegERRCODE)
		busCycles += cyc2
		cp.pciDom.Advance(busCycles)
		return nil, fmt.Errorf("core: card reported error code %d for function %d", code, fnID)
	}
	rlen, cyc, err := cp.bus.ReadWord(cp.slot, 0, mcu.RegRESULTLEN)
	if err != nil {
		return nil, err
	}
	busCycles += cyc
	// 5. Output from BAR1.
	out, cyc, err := cp.bus.Read(cp.slot, 1, cp.ctrl.OutWindowOff(), int(rlen))
	if err != nil {
		return nil, err
	}
	busCycles += cyc

	br := cp.ctrl.LastBreakdown()
	br.Add(sim.PhasePCI, cp.pciDom.Advance(busCycles))
	cp.observeRoundTrip(fnID, br)
	return &CallResult{
		Output:    out,
		Breakdown: br,
		Latency:   br.Total(),
		Hit:       cp.ctrl.Stats().Hits > hitsBefore,
	}, nil
}

// observeRoundTrip records the host-side view of one finished call: the
// PCI phase (charged here, not on the card) and the whole-round-trip
// latency histogram. Card-side phases are observed in mcu.
func (cp *CoProcessor) observeRoundTrip(fnID uint16, br sim.Breakdown) {
	if cp.metrics == nil {
		return
	}
	name := cp.fnLabel(fnID)
	if t := br.Get(sim.PhasePCI); t != 0 {
		cp.metrics.Histogram("agile_phase_seconds",
			metrics.L("phase", sim.PhasePCI.String()), metrics.L("fn", name)).Observe(t)
	}
	cp.metrics.Histogram("agile_request_seconds", metrics.L("fn", name)).Observe(br.Total())
}

// fnLabel resolves a function id to its bank name for metric labels.
func (cp *CoProcessor) fnLabel(fnID uint16) string {
	if f, ok := cp.installed[fnID]; ok {
		return f.Name()
	}
	return fmt.Sprintf("fn%d", fnID)
}

// RunHost executes the function in host software: the same behaviour,
// costed with the function's host-cycle model. The offload baseline.
func (cp *CoProcessor) RunHost(name string, input []byte) ([]byte, sim.Time, error) {
	f, err := algos.ByName(name)
	if err != nil {
		return nil, 0, err
	}
	if len(input) == 0 {
		return nil, 0, errors.New("core: empty input")
	}
	out, err := f.Exec(input)
	if err != nil {
		return nil, 0, err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return out, cp.hostDom.Advance(f.SWCycles(len(input))), nil
}

// SetTrace attaches a structured event log to the card (nil disables).
func (cp *CoProcessor) SetTrace(l *trace.Log) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetTrace(l)
}

// SetCard stamps the card's identity onto its trace events and metric
// labels — the cluster numbers its cards with this.
func (cp *CoProcessor) SetCard(card int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.SetCard(card)
}

// Metrics exposes the telemetry registry (nil when not configured).
func (cp *CoProcessor) Metrics() *metrics.Registry { return cp.metrics }

// Stats exposes the card's counters.
func (cp *CoProcessor) Stats() mcu.Stats {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.Stats()
}

// ResetStats zeroes the card's counters (between experiment phases).
func (cp *CoProcessor) ResetStats() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ctrl.ResetStats()
}

// Resident reports whether fnID currently occupies fabric frames.
func (cp *CoProcessor) Resident(fnID uint16) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.Resident(fnID)
}

// Evict removes fnID from the fabric if resident.
func (cp *CoProcessor) Evict(fnID uint16) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.Evict(fnID)
}

// Utilization reports configured frames versus total.
func (cp *CoProcessor) Utilization() (configured, total int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.Fabric().Utilization()
}

// CheckInvariants verifies the card's mini-OS bookkeeping.
func (cp *CoProcessor) CheckInvariants() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.ctrl.CheckInvariants()
}
