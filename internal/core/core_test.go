package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/fpga"
	"agilefpga/internal/pci"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

func newCP(t *testing.T, cfg Config) *CoProcessor {
	t.Helper()
	cp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestNewDefaults(t *testing.T) {
	cp := newCP(t, Config{})
	if cp.Codec().Name() != "framediff" {
		t.Errorf("default codec = %q", cp.Codec().Name())
	}
	if cp.Controller().PolicyName() != "lru" {
		t.Errorf("default policy = %q", cp.Controller().PolicyName())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Codec: "zstd"}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := New(Config{Policy: "clock"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{Geometry: fpga.Geometry{Rows: 1, Cols: 1}}); err == nil {
		t.Error("degenerate geometry accepted")
	}
}

func TestInstallAndCall(t *testing.T) {
	cp := newCP(t, Config{})
	f := algos.AES128()
	provTime, err := cp.Install(f)
	if err != nil {
		t.Fatal(err)
	}
	if provTime == 0 {
		t.Error("provisioning cost nothing")
	}
	in := []byte("0123456789abcdef")
	res, err := cp.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Exec(in)
	if !bytes.Equal(res.Output, want) {
		t.Error("output mismatch")
	}
	if res.Hit {
		t.Error("cold call reported as hit")
	}
	if res.Breakdown.Get(sim.PhasePCI) == 0 {
		t.Error("no PCI time charged")
	}
	if res.Latency != res.Breakdown.Total() {
		t.Error("Latency != Breakdown total")
	}

	res2, err := cp.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit {
		t.Error("second call should hit")
	}
	if res2.Latency >= res.Latency {
		t.Errorf("hot call (%v) not faster than cold call (%v)", res2.Latency, res.Latency)
	}
}

func TestCallUninstalled(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Call("aes128", []byte{1}); err == nil {
		t.Error("call to uninstalled function accepted")
	}
	if _, err := cp.Call("not-a-function", []byte{1}); err == nil {
		t.Error("call to unknown function accepted")
	}
	if _, err := cp.CallID(algos.IDDES, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestInstallBankAndCallEach(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	if got := len(cp.Installed()); got != len(algos.Bank()) {
		t.Fatalf("installed %d functions", got)
	}
	for _, f := range algos.Bank() {
		in := make([]byte, 2*f.BlockBytes)
		for i := range in {
			in[i] = byte(i*7 + int(f.ID()))
		}
		res, err := cp.Call(f.Name(), in)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(res.Output, want) {
			t.Errorf("%s: output mismatch", f.Name())
		}
		if err := cp.Controller().CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
	}
	st := cp.Stats()
	if st.Requests != uint64(len(algos.Bank())) {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.Evictions == 0 {
		t.Error("bank exceeds the fabric; evictions expected")
	}
}

func TestRunHostMatchesCard(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.SHA256()); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 300)
	for i := range in {
		in[i] = byte(i)
	}
	hostOut, hostTime, err := cp.RunHost("sha256", in)
	if err != nil {
		t.Fatal(err)
	}
	if hostTime == 0 {
		t.Error("host run cost nothing")
	}
	res, err := cp.Call("sha256", in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hostOut, res.Output) {
		t.Error("host and card disagree")
	}
}

func TestHotCallOffloadWins(t *testing.T) {
	// Once resident, the card must beat host software on a compute-dense
	// kernel — the headline claim of the paper's §1. Modular
	// exponentiation is the canonical case (cf. the paper's crypto
	// co-processor references); streaming kernels like CRC are PCI-bound
	// and legitimately lose end-to-end, which E6 quantifies.
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.ModExp()); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 24*500) // 500 modexp records
	for i := range in {
		in[i] = byte(i*31 + 7)
	}
	if _, err := cp.Call("modexp64", in[:24]); err != nil { // warm
		t.Fatal(err)
	}
	res, err := cp.Call("modexp64", in)
	if err != nil {
		t.Fatal(err)
	}
	_, hostTime, err := cp.RunHost("modexp64", in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= hostTime {
		t.Errorf("hot card call (%v) not faster than host (%v)", res.Latency, hostTime)
	}
}

func TestDeviceDiscovery(t *testing.T) {
	cp := newCP(t, Config{})
	id, _ := cp.Bus().ConfigRead(cp.Slot(), pci.CfgRegID)
	if id != 0xA617_1172 {
		t.Errorf("config ID = %08x", id)
	}
}

func TestWorkloadDrivenRun(t *testing.T) {
	cp := newCP(t, Config{Geometry: fpga.Geometry{Rows: 32, Cols: 32}})
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	gen, err := workload.NewZipf(ids, 1.1, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 1024)
	for i := 0; i < 150; i++ {
		fn := gen.Next()
		if _, err := cp.CallID(fn, in); err != nil {
			t.Fatalf("request %d (fn %d): %v", i, fn, err)
		}
	}
	st := cp.Stats()
	if st.Requests != 150 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("degenerate run: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if err := cp.Controller().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStatsResetBetweenPhases(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.CRC32()); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Call("crc32", []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cp.ResetStats()
	if cp.Stats().Requests != 0 {
		t.Error("ResetStats failed")
	}
	// Residency survives a stats reset.
	res, err := cp.Call("crc32", []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Error("function lost residency across stats reset")
	}
}

func TestBootFromROMImage(t *testing.T) {
	// Provision one card, burn its ROM, boot a second card from the
	// image: the functions must be callable without Install.
	builder := newCP(t, Config{})
	if _, err := builder.InstallBank(); err != nil {
		t.Fatal(err)
	}
	image := builder.Controller().ROM().Image()

	booted, err := New(Config{ROMImage: image})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(booted.Installed()); got != len(algos.Bank()) {
		t.Fatalf("booted card knows %d functions", got)
	}
	in := []byte("0123456789abcdef")
	res, err := booted.Call("aes128", in)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := algos.AES128().Exec(in)
	if !bytes.Equal(res.Output, want) {
		t.Error("booted card computes wrong results")
	}
	// Installing more onto a booted card keeps working and bumps serials
	// above the burned ones.
	if err := booted.Controller().CheckInvariants(); err != nil {
		t.Error(err)
	}
	if _, err := New(Config{ROMImage: []byte("garbage")}); err == nil {
		t.Error("garbage ROM image accepted")
	}
}

func TestOversizedInputRejectedHostSide(t *testing.T) {
	cp := newCP(t, Config{})
	if _, err := cp.Install(algos.CRC32()); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, cp.Controller().InWindowBytes()+1)
	if _, err := cp.CallID(algos.IDCRC32, huge); err == nil {
		t.Error("oversized input accepted")
	}
}

// TestCoProcessorConcurrentCalls drives one card from many goroutines:
// the per-card mutex must serialise the host protocol so outputs stay
// correct and the mini-OS invariants hold. Run with -race.
func TestCoProcessorConcurrentCalls(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fns := []*algos.Function{algos.CRC32(), algos.SHA256(), algos.AES128()}
	for _, f := range fns {
		if _, err := cp.Install(f); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, perG = 8, 20
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f := fns[(g+i)%len(fns)]
				in := make([]byte, f.BlockBytes)
				in[0], in[1] = byte(g), byte(i)
				want, _ := f.Exec(in)
				res, err := cp.CallID(f.ID(), in)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(res.Output, want) {
					errs <- fmt.Errorf("%s: wrong output under contention", f.Name())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := cp.Stats().Requests; got != goroutines*perG {
		t.Errorf("requests = %d, want %d", got, goroutines*perG)
	}
	if err := cp.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
