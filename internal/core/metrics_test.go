package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// TestStatsRequiresCardLock asserts the contract documented on
// mcu.Controller.Stats: the controller itself is unsynchronized, and it
// is core.CoProcessor's per-card mutex that makes Stats safe to call
// while other goroutines drive the card. Run under -race, this test
// fails if CoProcessor.Stats ever stops taking the lock.
func TestStatsRequiresCardLock(t *testing.T) {
	cp, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	names := []string{"aes128", "tdes", "sha1", "crc32"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := make([]byte, 64)
			for i := 0; i < 25; i++ {
				if _, err := cp.Call(names[(g+i)%len(names)], in); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				st := cp.Stats()
				if st.Hits > st.Requests {
					t.Error("stats snapshot inconsistent: hits > requests")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := cp.Stats(); st.Requests != 100 {
		t.Errorf("requests = %d, want 100", st.Requests)
	}
}

// metricsWorkload drives a fixed request sequence and returns the
// latency of every call.
func metricsWorkload(t *testing.T, cp *CoProcessor) []sim.Time {
	t.Helper()
	names := []string{"aes128", "sha1", "aes128", "fft64", "tdes", "aes128", "sha1"}
	var lat []sim.Time
	for i, name := range names {
		in := make([]byte, 128)
		in[0] = byte(i)
		res, err := cp.Call(name, in)
		if err != nil {
			t.Fatalf("call %s: %v", name, err)
		}
		lat = append(lat, res.Latency)
	}
	return lat
}

// TestMetricsChangeNoVirtualTime is the determinism guarantee of the
// telemetry layer: the same workload costs exactly the same virtual
// time with and without a registry attached, and — extending the same
// proof to the tracing layer — with every call tagged for a
// 100%-sampled trace via CallIDTraced.
func TestMetricsChangeNoVirtualTime(t *testing.T) {
	plain, err := New(Config{Prefetch: true, DecodeCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := New(Config{
		Prefetch: true, DecodeCacheBytes: 1 << 20,
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(Config{
		Prefetch: true, DecodeCacheBytes: 1 << 20,
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range []*CoProcessor{plain, observed, traced} {
		if _, err := cp.InstallBank(); err != nil {
			t.Fatal(err)
		}
	}
	latPlain := metricsWorkload(t, plain)
	latObserved := metricsWorkload(t, observed)
	latTraced := tracedWorkload(t, traced)
	for i := range latPlain {
		if latPlain[i] != latObserved[i] {
			t.Errorf("call %d: latency %v without metrics, %v with", i, latPlain[i], latObserved[i])
		}
		if latPlain[i] != latTraced[i] {
			t.Errorf("call %d: latency %v untraced, %v traced", i, latPlain[i], latTraced[i])
		}
	}
	if p, o := plain.Stats(), observed.Stats(); p != o {
		t.Errorf("stats diverge: %+v vs %+v", p, o)
	}
	if p, tr := plain.Stats(), traced.Stats(); p != tr {
		t.Errorf("stats diverge under tracing: %+v vs %+v", p, tr)
	}
}

// tracedWorkload is metricsWorkload with every call tagged for a
// sampled trace, the way the cluster dispatcher drives a card when a
// request carries wire trace context.
func tracedWorkload(t *testing.T, cp *CoProcessor) []sim.Time {
	t.Helper()
	tracer := trace.NewTracer(trace.TracerOptions{Sample: 1, Seed: 5})
	defer tracer.Close()
	names := []string{"aes128", "sha1", "aes128", "fft64", "tdes", "aes128", "sha1"}
	var lat []sim.Time
	for i, name := range names {
		fn, err := algos.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, 128)
		in[0] = byte(i)
		ref := tracer.StartRoot("call", "host", fn.ID())
		res, err := cp.CallIDTraced(fn.ID(), in, ref.TraceID, ref.SpanID)
		tracer.End(ref, "ok")
		if err != nil {
			t.Fatalf("call %s: %v", name, err)
		}
		lat = append(lat, res.Latency)
	}
	return lat
}

// TestMetricsRecordRequestPath checks the request path lands in the
// registry: per-phase histograms with function labels, the round-trip
// histogram, and the Prometheus rendering of both.
func TestMetricsRecordRequestPath(t *testing.T) {
	reg := metrics.NewRegistry()
	cp, err := New(Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.InstallBank(); err != nil {
		t.Fatal(err)
	}
	metricsWorkload(t, cp)

	if _, n := reg.QuantileWhere("agile_request_seconds", 0.5, metrics.L("fn", "aes128")); n != 3 {
		t.Errorf("aes128 request observations = %d, want 3", n)
	}
	if _, n := reg.QuantileWhere("agile_phase_seconds", 0.5,
		metrics.L("phase", sim.PhasePCI.String())); n == 0 {
		t.Error("no PCI phase observations — host-side phase not recorded")
	}
	if _, n := reg.QuantileWhere("agile_phase_seconds", 0.5,
		metrics.L("phase", sim.PhaseConfigure.String()), metrics.L("fn", "aes128")); n == 0 {
		t.Error("no configure observations labelled fn=aes128")
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`agile_phase_seconds_bucket{fn="aes128",phase="configure",le="+Inf"}`,
		`agile_request_seconds_count{fn="sha1"}`,
		`agile_requests_total{fn="aes128",result="hit"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
