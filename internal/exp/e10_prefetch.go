package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E10 — configuration prefetching. The mini OS predicts the next function
// (first-order Markov) and loads it during host idle time, hiding
// reconfiguration latency behind think time — the classic answer to the
// cost the paper's on-demand design pays on every swap. Reported per
// workload, prefetch off/on: hit rate (prefetch-satisfied hits included)
// and mean on-request latency. Cyclic traces are perfectly predictable
// (the prefetcher converts every miss); uniform traces are
// unpredictable (the prefetcher must at least do no serious harm).
type E10Result struct {
	Table Table
	// HitRate[workload][mode], mode ∈ {"off", "on"}.
	HitRate map[string]map[string]float64
	// MeanLatency[workload][mode].
	MeanLatency map[string]map[string]sim.Time
}

// RunE10 executes the prefetching experiment.
func RunE10(requests int) (*E10Result, error) {
	if requests <= 0 {
		requests = 1000
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E10Result{
		Table: Table{
			Title:  fmt.Sprintf("E10  Configuration prefetching (%d requests)", requests),
			Header: []string{"workload", "prefetch", "hit rate", "prefetch hits", "mean latency", "prefetch time"},
		},
		HitRate:     make(map[string]map[string]float64),
		MeanLatency: make(map[string]map[string]sim.Time),
	}
	geom := fpga.Geometry{Rows: 32, Cols: 40}
	// The sweep orders workloads by predictability: cyclic is a perfect
	// first-order chain, markov(0.9) mostly follows its successor ring,
	// and uniform is memoryless — the prefetcher's payoff should decay
	// along exactly this axis.
	for _, wname := range []string{"cyclic", "markov0.9", "phased", "zipf", "uniform"} {
		res.HitRate[wname] = make(map[string]float64)
		res.MeanLatency[wname] = make(map[string]sim.Time)
		var gen workload.Generator
		var err error
		if wname == "markov0.9" {
			gen, err = workload.NewMarkov(ids, 0.9, 777)
		} else {
			gen, err = workload.New(wname, ids, 777)
		}
		if err != nil {
			return nil, err
		}
		trace := workload.Collect(gen, requests)
		for _, mode := range []struct {
			name string
			on   bool
		}{{"off", false}, {"on", true}} {
			cp, err := core.New(core.Config{Geometry: geom, Prefetch: mode.on})
			if err != nil {
				return nil, err
			}
			if _, err := cp.InstallBank(); err != nil {
				return nil, err
			}
			var total sim.Time
			for i, fn := range trace {
				f, err := byID(fn)
				if err != nil {
					return nil, err
				}
				in := make([]byte, f.BlockBytes)
				in[0] = byte(i)
				call, err := cp.CallID(fn, in)
				if err != nil {
					return nil, fmt.Errorf("exp: E10 %s/%s request %d: %w", wname, mode.name, i, err)
				}
				total += call.Latency
			}
			st := cp.Stats()
			hr := float64(st.Hits) / float64(st.Requests)
			mean := sim.Time(uint64(total) / uint64(requests))
			res.HitRate[wname][mode.name] = hr
			res.MeanLatency[wname][mode.name] = mean
			res.Table.AddRow(wname, mode.name, fmt.Sprintf("%.3f", hr),
				st.PrefetchHits, mean.String(), st.PrefetchTime.String())
			if err := cp.Controller().CheckInvariants(); err != nil {
				return nil, err
			}
		}
	}
	res.Table.Caption = "device: " + geom.String() + "; prefetch time runs during host idle, never on a request"
	return res, nil
}
