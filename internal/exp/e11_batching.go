package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E11 — batched pipelined calls. The synchronous one-request-at-a-time
// protocol of E5/E6 serialises the PCI bus against the card; a
// double-buffered DMA pipeline overlaps them. Per function, for a batch
// of items: host software time, sequential card time, batched card time,
// and the resulting speedups. The batch rescues kernels whose card time
// exceeds their bus time (sha256) but cannot rescue truly bus-bound ones
// (aes128 — the half-duplex bus is the floor).
type E11Result struct {
	Table Table
	// BatchSpeedup[fn] = host / batched; SeqSpeedup[fn] = host / sequential.
	BatchSpeedup map[string]float64
	SeqSpeedup   map[string]float64
}

// RunE11 executes the batching experiment with `items` payloads of
// itemBytes each per function.
func RunE11(items, itemBytes int) (*E11Result, error) {
	if items <= 0 {
		items = 32
	}
	if itemBytes <= 0 {
		itemBytes = 4096
	}
	res := &E11Result{
		Table: Table{
			Title: fmt.Sprintf("E11  Batched pipelined calls (%d items × %d B)", items, itemBytes),
			Header: []string{"function", "host", "card sequential", "card batched",
				"seq speedup", "batch speedup"},
		},
		BatchSpeedup: make(map[string]float64),
		SeqSpeedup:   make(map[string]float64),
	}
	for _, fname := range []string{"modexp64", "viterbi", "tdes", "sha256", "aes128", "crc32"} {
		f, err := algos.ByName(fname)
		if err != nil {
			return nil, err
		}
		cp, err := core.New(core.Config{RAMBytes: 1024 * 1024})
		if err != nil {
			return nil, err
		}
		if _, err := cp.Install(f); err != nil {
			return nil, err
		}
		n := itemBytes / f.BlockBytes
		if n == 0 {
			n = 1
		}
		inputs := make([][]byte, items)
		for i := range inputs {
			inputs[i] = make([]byte, n*f.BlockBytes)
			for j := range inputs[i] {
				inputs[i][j] = byte(i*31 + j)
			}
		}
		// Warm the fabric so the comparison is steady-state.
		if _, err := cp.Call(fname, inputs[0]); err != nil {
			return nil, fmt.Errorf("exp: E11 warm %s: %w", fname, err)
		}
		batch, err := cp.CallBatch(fname, inputs)
		if err != nil {
			return nil, fmt.Errorf("exp: E11 %s: %w", fname, err)
		}
		var host sim.Time
		for _, in := range inputs {
			_, t, err := cp.RunHost(fname, in)
			if err != nil {
				return nil, err
			}
			host += t
		}
		ss := float64(host) / float64(batch.SequentialLatency)
		bs := float64(host) / float64(batch.Latency)
		res.SeqSpeedup[fname] = ss
		res.BatchSpeedup[fname] = bs
		res.Table.AddRow(fname, host.String(), batch.SequentialLatency.String(),
			batch.Latency.String(), fmt.Sprintf("%.2fx", ss), fmt.Sprintf("%.2fx", bs))
	}
	res.Table.Caption = "batched = double-buffered DMA (half-duplex bus ‖ card); sequential = the E5 protocol"
	return res, nil
}
