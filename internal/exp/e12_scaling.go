package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E12 — device-size scaling: the capacity-planning curve. The same Zipf
// request stream drives devices from 16 to 96 frames; hit rate climbs as
// more of the bank fits and mean latency falls accordingly, saturating
// once the whole working set is resident — the curve a co-processor
// vendor would size the FPGA from.
type E12Result struct {
	Table Table
	// HitRate and MeanLatency per frame count.
	HitRate     map[int]float64
	MeanLatency map[int]sim.Time
}

// E12Cols is the default device-size sweep (frames). The floor is the
// largest single function (viterbi, 19 frames on 32-row columns).
var E12Cols = []int{20, 24, 32, 48, 64, 96}

// RunE12 executes the scaling sweep.
func RunE12(requests int) (*E12Result, error) {
	if requests <= 0 {
		requests = 1000
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E12Result{
		Table: Table{
			Title:  fmt.Sprintf("E12  Device-size scaling under a Zipf stream (%d requests)", requests),
			Header: []string{"frames", "resident capacity", "hit rate", "evictions", "mean latency"},
		},
		HitRate:     make(map[int]float64),
		MeanLatency: make(map[int]sim.Time),
	}
	// Total frame demand of the bank, for the capacity column.
	totalDemand := 0
	for _, f := range algos.Bank() {
		totalDemand += fpga.Geometry{Rows: 32, Cols: 96}.FramesForLUTs(f.LUTs)
	}
	for _, cols := range E12Cols {
		geom := fpga.Geometry{Rows: 32, Cols: cols}
		cp, err := core.New(core.Config{Geometry: geom})
		if err != nil {
			return nil, err
		}
		if _, err := cp.InstallBank(); err != nil {
			return nil, err
		}
		gen, err := workload.NewZipf(ids, 1.1, 4242)
		if err != nil {
			return nil, err
		}
		var total sim.Time
		for i := 0; i < requests; i++ {
			fn := gen.Next()
			f, err := byID(fn)
			if err != nil {
				return nil, err
			}
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			call, err := cp.CallID(fn, in)
			if err != nil {
				return nil, fmt.Errorf("exp: E12 cols=%d request %d: %w", cols, i, err)
			}
			total += call.Latency
		}
		st := cp.Stats()
		hr := float64(st.Hits) / float64(st.Requests)
		mean := sim.Time(uint64(total) / uint64(requests))
		res.HitRate[cols] = hr
		res.MeanLatency[cols] = mean
		res.Table.AddRow(cols, fmt.Sprintf("%.0f%% of bank", 100*float64(cols)/float64(totalDemand)),
			fmt.Sprintf("%.3f", hr), st.Evictions, mean.String())
	}
	res.Table.Caption = fmt.Sprintf("bank total demand: %d frames across %d functions; Zipf(1.1) stream", totalDemand, len(ids))
	return res, nil
}
