package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sched"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E13 — host-side scheduling. The paper's host "issues instructions to
// the microcontroller"; in what order is the host's choice, and because
// swapping functions costs hundreds of microseconds, the order matters
// enormously. A mixed Zipf job queue drains through three schedulers:
// fifo (fair, thrashing), sticky (minimal reconfigurations, unbounded
// overtaking), and window-16 (bounded unfairness). Reported: total
// completion time, reconfigurations, hit rate, and the worst overtaking
// any job suffered.
type E13Result struct {
	Table Table
	// TotalTime and MaxDisplacement per scheduler.
	TotalTime       map[string]sim.Time
	MaxDisplacement map[string]int
	HitRate         map[string]float64
}

// RunE13 executes the scheduling experiment over `jobCount` queued jobs.
func RunE13(jobCount int) (*E13Result, error) {
	if jobCount <= 0 {
		jobCount = 600
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E13Result{
		Table: Table{
			Title: fmt.Sprintf("E13  Host-side job scheduling (%d queued jobs, Zipf mix)", jobCount),
			Header: []string{"scheduler", "total time", "hit rate", "evictions",
				"frames loaded", "max overtaking"},
		},
		TotalTime:       make(map[string]sim.Time),
		MaxDisplacement: make(map[string]int),
		HitRate:         make(map[string]float64),
	}
	// One fixed job queue for all schedulers.
	gen, err := workload.NewZipf(ids, 1.1, 31337)
	if err != nil {
		return nil, err
	}
	trace := workload.Collect(gen, jobCount)

	for _, sname := range sched.Names() {
		picker, err := sched.New(sname)
		if err != nil {
			return nil, err
		}
		cp, err := core.New(core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}})
		if err != nil {
			return nil, err
		}
		if _, err := cp.InstallBank(); err != nil {
			return nil, err
		}
		jobs := make([]sched.Job, jobCount)
		for i, fn := range trace {
			f, err := byID(fn)
			if err != nil {
				return nil, err
			}
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			jobs[i] = sched.Job{Fn: fn, Input: in, Seq: i}
		}
		var total sim.Time
		resident := func() map[uint16]bool {
			m := make(map[uint16]bool)
			for _, fn := range cp.Controller().ResidentFunctions() {
				m[fn] = true
			}
			return m
		}
		serve := func(j sched.Job) error {
			call, err := cp.CallID(j.Fn, j.Input)
			if err != nil {
				return err
			}
			total += call.Latency
			return nil
		}
		_, maxDisp, err := sched.Run(jobs, picker, resident, serve)
		if err != nil {
			return nil, fmt.Errorf("exp: E13 %s: %w", sname, err)
		}
		st := cp.Stats()
		hr := float64(st.Hits) / float64(st.Requests)
		res.TotalTime[sname] = total
		res.MaxDisplacement[sname] = maxDisp
		res.HitRate[sname] = hr
		res.Table.AddRow(sname, total.String(), fmt.Sprintf("%.3f", hr),
			st.Evictions, st.FramesLoaded, maxDisp)
		if err := cp.Controller().CheckInvariants(); err != nil {
			return nil, err
		}
	}
	res.Table.Caption = "same queue, same card (LRU, 40 frames); overtaking = worst (served position − submission position)"
	return res, nil
}
