package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E14 — SEU scrubbing. Single-event upsets flip configuration bits
// without telling anyone; the scrubber reads resident frames back,
// compares them against the ROM golden images, and rewrites what
// differs. Sweeping the scrub interval trades scrub overhead against the
// window of vulnerability — the fraction of requests served while some
// resident frame was corrupted. The harness is omniscient: it tracks its
// own injections, so "vulnerable requests" is exact.
type E14Result struct {
	Table Table
	// VulnerableFrac and ScrubOverhead per scrub interval (0 = never).
	VulnerableFrac map[int]float64
	ScrubOverhead  map[int]sim.Time
	Repaired       map[int]int
}

// E14Intervals is the scrub-interval sweep, in requests per scrub pass
// (0 = scrubbing disabled).
var E14Intervals = []int{0, 100, 25, 5, 1}

// RunE14 executes the reliability experiment: `requests` calls with one
// SEU injected every `seuEvery` requests into a random resident frame.
func RunE14(requests, seuEvery int) (*E14Result, error) {
	if requests <= 0 {
		requests = 500
	}
	if seuEvery <= 0 {
		seuEvery = 10
	}
	res := &E14Result{
		Table: Table{
			Title: fmt.Sprintf("E14  SEU scrubbing: vulnerability vs scrub interval (%d requests, 1 SEU per %d)",
				requests, seuEvery),
			Header: []string{"scrub every", "vulnerable requests", "SEUs repaired", "scrub time", "mean latency"},
		},
		VulnerableFrac: make(map[int]float64),
		ScrubOverhead:  make(map[int]sim.Time),
		Repaired:       make(map[int]int),
	}
	fns := []*algos.Function{algos.DES(), algos.FIR(), algos.CRC32()}
	for _, interval := range E14Intervals {
		cp, err := core.New(core.Config{})
		if err != nil {
			return nil, err
		}
		for _, f := range fns {
			if _, err := cp.Install(f); err != nil {
				return nil, err
			}
		}
		ctrl := cp.Controller()
		rng := sim.NewRNG(0x5EED)
		// corrupted tracks frames the harness has upset and the card has
		// not yet repaired.
		corrupted := make(map[int]bool)
		vulnerable := 0
		var total sim.Time
		for i := 0; i < requests; i++ {
			f := fns[i%len(fns)]
			// Inject an upset into a random resident frame.
			if i%seuEvery == seuEvery-1 {
				victim := fns[rng.Intn(len(fns))]
				frames := ctrl.FramesOf(victim.ID())
				if len(frames) > 0 {
					fi := frames[rng.Intn(len(frames))]
					bit := rng.Intn(ctrl.Fabric().Geometry().FrameBytes() * 8)
					if err := ctrl.Fabric().InjectSEU(fi, bit); err != nil {
						return nil, err
					}
					corrupted[fi] = true
				}
			}
			// Vulnerability check before serving: does the target run on
			// a corrupted frame?
			for _, fi := range ctrl.FramesOf(f.ID()) {
				if corrupted[fi] {
					vulnerable++
					break
				}
			}
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			call, err := cp.CallID(f.ID(), in)
			if err != nil {
				return nil, fmt.Errorf("exp: E14 interval %d request %d: %w", interval, i, err)
			}
			total += call.Latency
			// A miss-reload rewrites frames: clear their corruption.
			if !call.Hit {
				for _, fi := range ctrl.FramesOf(f.ID()) {
					delete(corrupted, fi)
				}
			}
			// Periodic scrub.
			if interval > 0 && i%interval == interval-1 {
				rep, err := ctrl.Scrub()
				if err != nil {
					return nil, err
				}
				if rep.FramesRepaired > 0 {
					// Everything resident is now golden.
					for fi := range corrupted {
						delete(corrupted, fi)
					}
				}
			}
		}
		st := ctrl.Stats()
		frac := float64(vulnerable) / float64(requests)
		label := "never"
		if interval > 0 {
			label = fmt.Sprintf("%d req", interval)
		}
		res.VulnerableFrac[interval] = frac
		res.ScrubOverhead[interval] = st.ScrubTime
		res.Repaired[interval] = int(st.SEURepairs)
		res.Table.AddRow(label, fmt.Sprintf("%d (%.1f%%)", vulnerable, 100*frac),
			st.SEURepairs, st.ScrubTime.String(),
			sim.Time(uint64(total)/uint64(requests)).String())
	}
	res.Table.Caption = "vulnerable = requests served while a resident frame held a flipped bit; " +
		"scrubbing trades readback time for a shorter exposure window"
	return res, nil
}
