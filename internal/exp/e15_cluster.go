package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E15 — multi-card scale-out. When one card's fabric cannot hold the
// working set, the host can add cards. Replication multiplies capacity
// but each card still thrashes its own fabric; partitioning pins each
// function to a home card, and once the per-card share fits, swapping
// vanishes. Reported per (cards × mode): cluster hit rate, evictions,
// mean latency, and the dispatcher's load balance.
type E15Result struct {
	Table Table
	// HitRate and MeanLatency keyed by "<n>/<mode>".
	HitRate     map[string]float64
	MeanLatency map[string]sim.Time
}

// RunE15 executes the cluster experiment.
func RunE15(requests int) (*E15Result, error) {
	if requests <= 0 {
		requests = 800
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E15Result{
		Table: Table{
			Title: fmt.Sprintf("E15  Multi-card scale-out (%d requests, Zipf, 40-frame cards)", requests),
			Header: []string{"cards", "mode", "hit rate", "evictions",
				"mean latency", "per-card requests"},
		},
		HitRate:     make(map[string]float64),
		MeanLatency: make(map[string]sim.Time),
	}
	cfg := core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}}
	for _, n := range []int{1, 2, 4} {
		for _, mode := range cluster.Modes() {
			if n == 1 && mode == cluster.ModePartition {
				continue // identical to replicate with one card
			}
			cl, err := cluster.New(n, mode, cfg)
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewZipf(ids, 1.1, 20_05)
			if err != nil {
				return nil, err
			}
			var total sim.Time
			for i := 0; i < requests; i++ {
				fn := gen.Next()
				f, err := byID(fn)
				if err != nil {
					return nil, err
				}
				in := make([]byte, f.BlockBytes)
				in[0] = byte(i)
				call, _, err := cl.Call(fn, in)
				if err != nil {
					return nil, fmt.Errorf("exp: E15 %d/%s request %d: %w", n, mode, i, err)
				}
				total += call.Latency
			}
			if err := cl.CheckInvariants(); err != nil {
				return nil, err
			}
			st := cl.Stats()
			key := fmt.Sprintf("%d/%s", n, mode)
			mean := sim.Time(uint64(total) / uint64(requests))
			res.HitRate[key] = st.HitRate
			res.MeanLatency[key] = mean
			res.Table.AddRow(n, mode, fmt.Sprintf("%.3f", st.HitRate),
				st.Total.Evictions, mean.String(), fmt.Sprintf("%v", st.PerCardRequests))
		}
	}
	res.Table.Caption = "bank demand 154 frames; 4 partitioned 40-frame cards hold everything resident — swapping disappears"
	return res, nil
}
