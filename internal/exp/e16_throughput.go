package exp

import (
	"fmt"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sched"
	"agilefpga/internal/workload"
)

// E16 — concurrent cluster throughput. E15 measures virtual time; this
// experiment measures the host. The serial baseline drains a mixed
// Zipf workload through a 4-card replicate cluster one blocking Call at
// a time: round-robin routing lands each function on a different card
// every visit, so almost every request re-runs the real decompression
// and port-write code paths. The concurrent path serves the identical
// jobs through the async layer — affinity routing pins functions to
// cards, coalescing folds bursts into pipelined batches, and the
// decoded-frame cache absorbs the reloads affinity cannot avoid. The
// speedup is work avoided, not cores added: it holds even on one CPU.
type E16Result struct {
	Table Table
	// Wall-clock throughput of each dispatcher, in requests per second.
	SerialOpsPerSec     float64
	ConcurrentOpsPerSec float64
	// Speedup = concurrent / serial.
	Speedup float64
	// Per-dispatcher fabric behaviour behind the throughput gap.
	SerialHitRate          float64
	ConcurrentHitRate      float64
	SerialFramesLoaded     uint64
	ConcurrentFramesLoaded uint64
	DecompCacheHits        uint64
	Requests               int
}

// e16Jobs builds the shared mixed workload: a Zipf draw over the whole
// bank, identical for both dispatchers.
func e16Jobs(requests int) ([]sched.Job, error) {
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	gen, err := workload.NewZipf(ids, 1.1, 20_05)
	if err != nil {
		return nil, err
	}
	jobs := make([]sched.Job, requests)
	for i := range jobs {
		fn := gen.Next()
		f, err := byID(fn)
		if err != nil {
			return nil, err
		}
		in := make([]byte, f.BlockBytes)
		in[0], in[1] = byte(i), byte(i>>8)
		jobs[i] = sched.Job{Fn: fn, Input: in, Seq: i}
	}
	return jobs, nil
}

// e16Serial drains jobs through blocking Calls on a replicate cluster.
func e16Serial(jobs []sched.Job) (cluster.Stats, time.Duration, error) {
	cfg := core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}}
	cl, err := cluster.New(4, cluster.ModeReplicate, cfg)
	if err != nil {
		return cluster.Stats{}, 0, err
	}
	start := time.Now() //lint:wallclock E16 compares real serial vs concurrent wall time
	for _, j := range jobs {
		if _, _, err := cl.Call(j.Fn, j.Input); err != nil {
			return cluster.Stats{}, 0, fmt.Errorf("exp: E16 serial job %d: %w", j.Seq, err)
		}
	}
	elapsed := time.Since(start) //lint:wallclock E16 compares real serial vs concurrent wall time
	if err := cl.CheckInvariants(); err != nil {
		return cluster.Stats{}, 0, err
	}
	return cl.Stats(), elapsed, nil
}

// e16Concurrent drains the same jobs through Serve on an affinity
// cluster with the decoded-frame cache enabled.
func e16Concurrent(jobs []sched.Job, workers int) (cluster.Stats, time.Duration, error) {
	cfg := core.Config{
		Geometry:         fpga.Geometry{Rows: 32, Cols: 40},
		DecodeCacheBytes: 1 << 20,
	}
	cl, err := cluster.New(4, cluster.ModeAffinity, cfg)
	if err != nil {
		return cluster.Stats{}, 0, err
	}
	defer cl.Close()
	res, err := cl.Serve(jobs, workers)
	if err != nil {
		return cluster.Stats{}, 0, fmt.Errorf("exp: E16 concurrent: %w", err)
	}
	if err := cl.CheckInvariants(); err != nil {
		return cluster.Stats{}, 0, err
	}
	return cl.Stats(), res.Elapsed, nil
}

// RunE16 executes the throughput comparison.
func RunE16(requests int) (*E16Result, error) {
	if requests <= 0 {
		requests = 2000
	}
	jobs, err := e16Jobs(requests)
	if err != nil {
		return nil, err
	}
	serialStats, serialElapsed, err := e16Serial(jobs)
	if err != nil {
		return nil, err
	}
	concStats, concElapsed, err := e16Concurrent(jobs, 4)
	if err != nil {
		return nil, err
	}
	res := &E16Result{
		Requests:               requests,
		SerialHitRate:          serialStats.HitRate,
		ConcurrentHitRate:      concStats.HitRate,
		SerialFramesLoaded:     serialStats.Total.FramesLoaded,
		ConcurrentFramesLoaded: concStats.Total.FramesLoaded,
		DecompCacheHits:        concStats.Total.DecompCacheHits,
	}
	res.SerialOpsPerSec = float64(requests) / serialElapsed.Seconds()
	res.ConcurrentOpsPerSec = float64(requests) / concElapsed.Seconds()
	if res.SerialOpsPerSec > 0 {
		res.Speedup = res.ConcurrentOpsPerSec / res.SerialOpsPerSec
	}
	res.Table = Table{
		Title:  fmt.Sprintf("E16  Concurrent cluster throughput (%d requests, Zipf, 4×40-frame cards)", requests),
		Header: []string{"dispatcher", "ops/sec", "hit rate", "frames loaded", "decode-cache hits"},
	}
	res.Table.AddRow("serial replicate", fmt.Sprintf("%.0f", res.SerialOpsPerSec),
		fmt.Sprintf("%.3f", res.SerialHitRate), res.SerialFramesLoaded, uint64(0))
	res.Table.AddRow("async affinity+cache", fmt.Sprintf("%.0f", res.ConcurrentOpsPerSec),
		fmt.Sprintf("%.3f", res.ConcurrentHitRate), res.ConcurrentFramesLoaded, res.DecompCacheHits)
	res.Table.Caption = fmt.Sprintf("speedup %.2fx — affinity pins functions to cards and the decoded-frame cache absorbs residual reloads", res.Speedup)
	return res, nil
}
