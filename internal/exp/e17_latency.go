package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E17 — per-phase latency distributions. The earlier experiments report
// phase *totals*; totals hide the shape. A codec that halves the mean
// configure time but fattens its tail is a worse interactive co-processor
// than the totals suggest. This experiment drives the same Zipf request
// stream through one card per codec with the telemetry registry attached
// and reads the latency quantiles the histograms record: the configure
// phase (where codecs differ) and the whole card-side request.
//
// Metrics observation is passive — the registry never advances a clock
// domain — so the quantiles describe exactly the run E3/E8 measure.
type E17Result struct {
	Table Table
}

func (r *E17Result) table() *Table { return &r.Table }

// PhaseQuantile summarises one pipeline phase's latency distribution.
type PhaseQuantile struct {
	Phase string
	P50   sim.Time
	P95   sim.Time
	P99   sim.Time
	Count uint64
}

// PhaseProfile drives requests through one instrumented card and returns
// the per-phase latency quantiles, in pipeline-phase order. Phases with
// no observations are omitted.
func PhaseProfile(requests int, codec string) ([]PhaseQuantile, *metrics.Registry, error) {
	if requests <= 0 {
		requests = 1500
	}
	reg := metrics.NewRegistry()
	cp, err := core.New(core.Config{
		Geometry: fpga.Geometry{Rows: 32, Cols: 40},
		Codec:    codec,
		Metrics:  reg,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := cp.InstallBank(); err != nil {
		return nil, nil, err
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	gen, err := workload.NewZipf(ids, 1.1, 20_05)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < requests; i++ {
		fn := gen.Next()
		f, err := byID(fn)
		if err != nil {
			return nil, nil, err
		}
		in := make([]byte, f.BlockBytes)
		in[0], in[1] = byte(i), byte(i>>8)
		if _, err := cp.CallID(fn, in); err != nil {
			return nil, nil, fmt.Errorf("exp: E17 request %d: %w", i, err)
		}
	}
	if err := cp.CheckInvariants(); err != nil {
		return nil, nil, err
	}
	var out []PhaseQuantile
	for p := 0; p < sim.NumPhases; p++ {
		phase := sim.Phase(p).String()
		match := metrics.L("phase", phase)
		p50, n := reg.QuantileWhere("agile_phase_seconds", 0.50, match)
		if n == 0 {
			continue
		}
		p95, _ := reg.QuantileWhere("agile_phase_seconds", 0.95, match)
		p99, _ := reg.QuantileWhere("agile_phase_seconds", 0.99, match)
		out = append(out, PhaseQuantile{Phase: phase, P50: p50, P95: p95, P99: p99, Count: n})
	}
	return out, reg, nil
}

// RunE17 compares the configure-phase and whole-request latency
// distributions across every bitstream codec.
func RunE17(requests int) (*E17Result, error) {
	if requests <= 0 {
		requests = 1500
	}
	res := &E17Result{Table: Table{
		Title: fmt.Sprintf("E17  Per-phase latency distributions (%d Zipf requests, 40-frame card)", requests),
		Header: []string{"codec", "decompress p50", "decompress p95", "decompress p99",
			"request p50", "request p99", "reconfigs"},
	}}
	for _, codec := range []string{"none", "rle", "lz77", "huffman", "framediff"} {
		phases, reg, err := PhaseProfile(requests, codec)
		if err != nil {
			return nil, fmt.Errorf("exp: E17 codec %s: %w", codec, err)
		}
		var dec PhaseQuantile
		for _, pq := range phases {
			if pq.Phase == sim.PhaseDecompress.String() {
				dec = pq
			}
		}
		reqP50, _ := reg.QuantileWhere("agile_request_seconds", 0.50)
		reqP99, _ := reg.QuantileWhere("agile_request_seconds", 0.99)
		res.Table.AddRow(codec, dec.P50, dec.P95, dec.P99, reqP50, reqP99, dec.Count)
	}
	res.Table.Caption = "quantiles from the telemetry histograms — the decompress tail (p99) separates codecs whose configure-time means look alike"
	return res, nil
}
