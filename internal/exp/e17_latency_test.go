package exp

import (
	"testing"

	"agilefpga/internal/sim"
)

// Shape test for E17: quantiles exist, are ordered, and huffman's
// decompress tail dominates the byte-rate codecs'.
func TestE17Shape(t *testing.T) {
	fast, _, err := PhaseProfile(300, "none")
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := PhaseProfile(300, "huffman")
	if err != nil {
		t.Fatal(err)
	}
	pick := func(pqs []PhaseQuantile, phase sim.Phase) PhaseQuantile {
		for _, pq := range pqs {
			if pq.Phase == phase.String() {
				return pq
			}
		}
		t.Fatalf("phase %s missing from profile", phase)
		return PhaseQuantile{}
	}
	for _, pqs := range [][]PhaseQuantile{fast, slow} {
		for _, pq := range pqs {
			if pq.P50 > pq.P95 || pq.P95 > pq.P99 {
				t.Errorf("%s: quantiles not monotone: p50 %v p95 %v p99 %v",
					pq.Phase, pq.P50, pq.P95, pq.P99)
			}
			if pq.Count == 0 {
				t.Errorf("%s: zero observations reported", pq.Phase)
			}
		}
		if exec := pick(pqs, sim.PhaseExec); exec.Count != 300 {
			t.Errorf("exec observations = %d, want one per request", exec.Count)
		}
	}
	if f, s := pick(fast, sim.PhaseDecompress), pick(slow, sim.PhaseDecompress); s.P99 <= f.P99 {
		t.Errorf("huffman decompress p99 %v not above none %v", s.P99, f.P99)
	}
}
