package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/compress"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E18 — pipelined cold loads. For every codec: the whole-bank cold-load
// configuration path (ROM read + window decompression + port write +
// pipeline stalls) under the additive sequential model versus the
// pipelined model (DESIGN §12), and the resulting speedup. The pipeline
// hides the ROM stream behind the configuration port for byte-rate
// codecs and leaves only genuine decoder-bound stalls exposed for the
// expensive ones.
type E18Result struct {
	Table Table
	// Sequential and Pipelined config-path time per codec, plus the
	// ratio, for assertions.
	Sequential map[string]sim.Time
	Pipelined  map[string]sim.Time
	Speedup    map[string]float64
	// Stall is the pipeline-bubble time left on the critical path, and
	// Saved the virtual time the overlap removed versus the additive
	// charge (both pipelined run, summed over the bank).
	Stall map[string]sim.Time
	Saved map[string]sim.Time
}

// e18ColdLoadPath cold-loads every bank function once on a fresh
// co-processor and sums the configuration path (ROM + decompress + port
// + pipeline stalls), evicting after each call so every load stays cold.
func e18ColdLoadPath(codecName string, sequential bool) (sim.Time, *core.CoProcessor, error) {
	cp, err := core.New(core.Config{Codec: codecName, SequentialConfig: sequential})
	if err != nil {
		return 0, nil, err
	}
	if _, err := cp.InstallBank(); err != nil {
		return 0, nil, err
	}
	var cfgTime sim.Time
	for _, f := range algos.Bank() {
		in := make([]byte, f.BlockBytes)
		for i := range in {
			in[i] = byte(i + 1)
		}
		call, err := cp.Call(f.Name(), in)
		if err != nil {
			return 0, nil, fmt.Errorf("exp: E18 %s/%s: %w", codecName, f.Name(), err)
		}
		cfgTime += call.Breakdown.Get(sim.PhaseROM) +
			call.Breakdown.Get(sim.PhaseDecompress) +
			call.Breakdown.Get(sim.PhaseConfigure) +
			call.Breakdown.Get(sim.PhasePipeStall)
		cp.Controller().Evict(f.ID())
	}
	return cfgTime, cp, nil
}

// RunE18 executes the sequential-vs-pipelined cold-load experiment.
func RunE18() (*E18Result, error) {
	res := &E18Result{
		Table: Table{
			Title: "E18  Sequential vs pipelined cold load per codec (whole bank)",
			Header: []string{"codec", "sequential", "pipelined", "speedup",
				"stall", "overlap saved"},
		},
		Sequential: make(map[string]sim.Time),
		Pipelined:  make(map[string]sim.Time),
		Speedup:    make(map[string]float64),
		Stall:      make(map[string]sim.Time),
		Saved:      make(map[string]sim.Time),
	}
	for _, codecName := range compress.Names() {
		seq, _, err := e18ColdLoadPath(codecName, true)
		if err != nil {
			return nil, err
		}
		pipe, cp, err := e18ColdLoadPath(codecName, false)
		if err != nil {
			return nil, err
		}
		st := cp.Stats()
		res.Sequential[codecName] = seq
		res.Pipelined[codecName] = pipe
		res.Speedup[codecName] = float64(seq) / float64(pipe)
		res.Stall[codecName] = st.PipeStallTime
		res.Saved[codecName] = st.PipeOverlapSaved
		res.Table.AddRow(codecName, seq.String(), pipe.String(),
			fmt.Sprintf("%.2fx", res.Speedup[codecName]),
			st.PipeStallTime.String(), st.PipeOverlapSaved.String())
	}
	res.Table.Caption = "config path = ROM read + window decompression + configuration port + stalls, summed over all 16 cold loads; sequential charges the stages back to back, pipelined overlaps them per window"
	return res, nil
}
