package exp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"agilefpga/internal/client"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/router"
	"agilefpga/internal/sched"
	"agilefpga/internal/server"
	"agilefpga/internal/sim"
)

// E19 — fleet-scale shard routing. E15 showed the partition effect in
// one process: pin functions to cards and swapping disappears (0.98
// hit rate). This experiment asks whether the effect survives the
// network: N in-process agilenetd nodes (×4 cards each) behind one
// agilerouter, a Zipf stream of mixed calls, and three questions —
// does ops/sec scale with nodes, does consistent-hash affinity keep
// the AGGREGATE hit rate at the single-node ceiling (random spraying
// would collapse it), and is the router's per-hop overhead bounded?
// A separate arm kills one backend mid-run and restarts it: the
// availability contract is zero failed well-formed requests (traffic
// retries onto ring replicas after ejection) and probe-based
// reinstatement once the node returns.
type E19Result struct {
	Table Table
	// Workload shape shared by every fleet size.
	Requests    int
	Concurrency int
	// Fleet sizes measured, and per-size outcomes.
	Nodes     []int
	OpsPerSec map[int]float64
	HitRate   map[int]float64
	HopP50    map[int]time.Duration
	HopP99    map[int]time.Duration
	Spills    map[int]uint64
	// Kill arm: a fleet of KillNodes serves KillRequests while one
	// backend dies mid-run and later returns.
	KillNodes          int
	KillRequests       int
	KillFailures       int
	KillEjections      uint64
	KillReinstatements uint64
}

// e19Node is one in-process backend: cluster + server + listener.
type e19Node struct {
	addr string
	cl   *cluster.Cluster
	srv  *server.Server
	serr chan error
}

func e19StartNode(addr string, concurrency int) (*e19Node, error) {
	cfg := core.Config{
		Geometry:         fpga.Geometry{Rows: 32, Cols: 40},
		DecodeCacheBytes: 1 << 20,
	}
	// Card queues sized to the full fan-in make admission loss-free:
	// the experiment measures routing, not shedding.
	cl, err := cluster.NewWithOptions(4, cluster.ModeAffinity, cfg,
		cluster.Options{Queue: concurrency})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cl.Close()
		return nil, err
	}
	srv := server.New(cl, server.Options{MaxInflight: 4 * concurrency})
	n := &e19Node{addr: ln.Addr().String(), cl: cl, srv: srv, serr: make(chan error, 1)}
	go func() { n.serr <- srv.Serve(ln) }()
	return n, nil
}

func (n *e19Node) stop() {
	n.srv.Close()
	<-n.serr
	n.cl.Close()
}

// e19Router builds the router for an arm with experiment-tuned knobs.
func e19Router(addrs []string, reg *metrics.Registry) (*router.Router, error) {
	return router.New(addrs, router.Options{
		Seed:           20_05,
		SpillThreshold: 16,
		MaxRounds:      8,
		ProbeBase:      5 * time.Millisecond,
		ProbeMax:       100 * time.Millisecond,
		Backend: client.Options{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			JitterSeed:  23,
		},
		Metrics: reg,
	})
}

// e19Drive drains jobs[first:last] through rt at the given
// concurrency, counting failures instead of aborting (the kill arm's
// contract is that the count stays zero).
func e19Drive(rt *router.Router, jobs []sched.Job, first, last, concurrency int, onJob func(i int)) int {
	var next atomic.Int64
	next.Store(int64(first))
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= last {
					return
				}
				if onJob != nil {
					onJob(i)
				}
				out, _, err := rt.Call(context.Background(), jobs[i].Fn, jobs[i].Input)
				if err != nil || len(out) == 0 {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(failures.Load())
}

// e19Scale runs the Zipf stream against an n-node fleet and reports
// throughput, aggregate hit rate, hop-overhead quantiles, and spills.
func e19Scale(jobs []sched.Job, n, concurrency int) (ops float64, hitRate float64, p50, p99 time.Duration, spills uint64, err error) {
	nodes := make([]*e19Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		nd, nerr := e19StartNode("127.0.0.1:0", concurrency)
		if nerr != nil {
			return 0, 0, 0, 0, 0, nerr
		}
		nodes = append(nodes, nd)
		addrs = append(addrs, nd.addr)
	}
	reg := metrics.NewRegistry()
	rt, err := e19Router(addrs, reg)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer rt.Close()
	start := time.Now() //lint:wallclock E19 measures real fleet throughput over the network path
	if failures := e19Drive(rt, jobs, 0, len(jobs), concurrency, nil); failures > 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("exp: E19 %d-node arm: %d failed requests", n, failures)
	}
	elapsed := time.Since(start) //lint:wallclock E19 measures real fleet throughput over the network path
	var hits, requests uint64
	for _, nd := range nodes {
		st := nd.cl.Stats()
		if ierr := nd.cl.CheckInvariants(); ierr != nil {
			return 0, 0, 0, 0, 0, ierr
		}
		hits += uint64(st.Total.Hits)
		requests += st.Total.Requests
	}
	if requests > 0 {
		hitRate = float64(hits) / float64(requests)
	}
	q := func(p float64) time.Duration {
		v, _ := reg.QuantileWhere("agile_router_hop_overhead_seconds", p)
		return time.Duration(int64(v) / int64(sim.Nanosecond))
	}
	for _, b := range rt.Backends() {
		spills += b.Spills
	}
	return float64(len(jobs)) / elapsed.Seconds(), hitRate, q(0.50), q(0.99), spills, nil
}

// e19Kill runs the availability arm: n nodes, one killed abruptly a
// quarter of the way in, restarted after the stream drains, then a
// tail of requests confirms the fleet is whole again. Every
// well-formed request must succeed throughout.
func e19Kill(jobs []sched.Job, n, concurrency int) (failures int, ejections, reinstatements uint64, err error) {
	nodes := make([]*e19Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.stop()
			}
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		nd, nerr := e19StartNode("127.0.0.1:0", concurrency)
		if nerr != nil {
			return 0, 0, 0, nerr
		}
		nodes = append(nodes, nd)
		addrs = append(addrs, nd.addr)
	}
	reg := metrics.NewRegistry()
	rt, err := e19Router(addrs, reg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer rt.Close()

	victim := n / 2
	killAt := len(jobs) / 4
	tail := len(jobs) / 5
	var killOnce sync.Once
	failures = e19Drive(rt, jobs, 0, len(jobs)-tail, concurrency, func(i int) {
		if i >= killAt {
			killOnce.Do(func() {
				nodes[victim].stop()
				nodes[victim] = nil
			})
		}
	})

	// Bring the victim back on its old address and wait for the probe
	// loop to reinstate it.
	nd, nerr := e19StartNode(addrs[victim], concurrency)
	if nerr != nil {
		return failures, 0, 0, nerr
	}
	nodes[victim] = nd
	reinstCount := func() uint64 {
		var c uint64
		for _, a := range addrs {
			c += reg.Counter("agile_router_reinstatements_total", metrics.L("backend", a)).Value()
		}
		return c
	}
	deadline := time.Now().Add(15 * time.Second) //lint:wallclock E19 waits in real time for probe-based reinstatement
	for reinstCount() == 0 {
		if time.Now().After(deadline) { //lint:wallclock E19 waits in real time for probe-based reinstatement
			return failures, 0, 0, fmt.Errorf("exp: E19 kill arm: backend never reinstated")
		}
		time.Sleep(5 * time.Millisecond) //lint:wallclock E19 waits in real time for probe-based reinstatement
	}
	failures += e19Drive(rt, jobs, len(jobs)-tail, len(jobs), concurrency, nil)

	for _, a := range addrs {
		ejections += reg.Counter("agile_router_ejections_total", metrics.L("backend", a)).Value()
	}
	return failures, ejections, reinstCount(), nil
}

// RunE19 executes the fleet-scaling experiment. Zero/nil arguments
// select the defaults: 6000 requests, 256 concurrent callers, fleets
// of 1/2/4/8/16 nodes, and a 3-node kill arm.
func RunE19(requests, concurrency int, nodeCounts []int) (*E19Result, error) {
	if requests <= 0 {
		requests = 6000
	}
	if concurrency <= 0 {
		concurrency = 256
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8, 16}
	}
	jobs, err := e16Jobs(requests)
	if err != nil {
		return nil, err
	}
	res := &E19Result{
		Requests:    requests,
		Concurrency: concurrency,
		Nodes:       nodeCounts,
		OpsPerSec:   make(map[int]float64),
		HitRate:     make(map[int]float64),
		HopP50:      make(map[int]time.Duration),
		HopP99:      make(map[int]time.Duration),
		Spills:      make(map[int]uint64),
		KillNodes:   3,
	}
	res.Table = Table{
		Title: fmt.Sprintf("E19  Fleet-scale shard routing (%d requests, %d concurrent callers, Zipf, ×4-card nodes)",
			requests, concurrency),
		Header: []string{"nodes", "cards", "ops/sec", "agg hit rate", "hop p50", "hop p99", "spills"},
	}
	for _, n := range nodeCounts {
		ops, hit, p50, p99, spills, err := e19Scale(jobs, n, concurrency)
		if err != nil {
			return nil, err
		}
		res.OpsPerSec[n] = ops
		res.HitRate[n] = hit
		res.HopP50[n] = p50
		res.HopP99[n] = p99
		res.Spills[n] = spills
		res.Table.AddRow(n, 4*n, fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.3f", hit),
			p50.Round(time.Microsecond).String(), p99.Round(time.Microsecond).String(), spills)
	}

	killJobs := jobs
	if len(killJobs) > requests/2 {
		killJobs = killJobs[:requests/2]
	}
	fails, ejected, reinstated, err := e19Kill(killJobs, res.KillNodes, concurrency)
	if err != nil {
		return nil, err
	}
	res.KillRequests = len(killJobs)
	res.KillFailures = fails
	res.KillEjections = ejected
	res.KillReinstatements = reinstated
	res.Table.Caption = fmt.Sprintf(
		"kill arm (%d nodes, %d requests): one backend killed mid-run and restarted — %d failed requests, %d ejection(s), %d reinstatement(s)",
		res.KillNodes, res.KillRequests, fails, ejected, reinstated)
	return res, nil
}
