package exp

import (
	"bytes"
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E1 — "Figure 1 as a working system". Boot the card, install the whole
// algorithm bank, call every function once end-to-end over PCI, and check
// each output against the behavioural model. The table reports, per
// function, its footprint and the cold-call latency breakdown.
type E1Result struct {
	Table    Table
	Verified int
	Total    int
}

// RunE1 executes the end-to-end experiment.
func RunE1() (*E1Result, error) {
	cp, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := cp.InstallBank(); err != nil {
		return nil, err
	}
	res := &E1Result{
		Table: Table{
			Title: "E1  End-to-end cold call per bank function (framediff codec, LRU)",
			Header: []string{"function", "frames", "raw B", "comp B", "cold latency",
				"pci", "config+decomp", "exec", "ok"},
		},
	}
	for _, f := range algos.Bank() {
		rec, err := cp.Controller().ROM().FindByID(f.ID())
		if err != nil {
			return nil, err
		}
		in := make([]byte, 4*f.BlockBytes)
		for i := range in {
			in[i] = byte(i*13 + int(f.ID()))
		}
		call, err := cp.Call(f.Name(), in)
		if err != nil {
			return nil, fmt.Errorf("exp: E1 %s: %w", f.Name(), err)
		}
		want, err := f.Exec(in)
		if err != nil {
			return nil, err
		}
		ok := bytes.Equal(call.Output, want)
		res.Total++
		if ok {
			res.Verified++
		}
		cfgTime := call.Breakdown.Get(sim.PhaseConfigure) + call.Breakdown.Get(sim.PhaseDecompress)
		res.Table.AddRow(
			f.Name(), int(rec.FrameCount), int(rec.RawSize), int(rec.CompSize),
			call.Latency.String(),
			call.Breakdown.Get(sim.PhasePCI).String(),
			cfgTime.String(),
			call.Breakdown.Get(sim.PhaseExec).String(),
			fmt.Sprintf("%v", ok),
		)
		if err := cp.Controller().CheckInvariants(); err != nil {
			return nil, err
		}
	}
	res.Table.Caption = fmt.Sprintf("%d/%d functions verified against the behavioural model", res.Verified, res.Total)
	return res, nil
}
