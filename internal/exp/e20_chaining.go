package exp

import (
	"bytes"
	"fmt"
	"strings"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E20 — on-fabric function chaining. A k-stage dataflow (hash then
// encrypt, filter then transform) run as k separate Calls pays 2k PCI
// transfers per item: every intermediate result crosses to the host and
// straight back. The chained path (DESIGN §15) keeps all stages
// resident at once and hands intermediates through local RAM, so each
// item crosses PCI twice no matter how many stages run. Per chain, for
// a warm card: staged vs chained per-item latency and PCI share, and
// the batched throughput ceiling — two E11-style CallBatch passes with
// a host round trip between them versus one CallChainBatch whose
// stages overlap across items. Outputs are byte-identical throughout.
type E20Result struct {
	Table Table
	// Per chain ("sha256->aes128"): warm per-item latency and its PCI
	// share, staged vs chained, for assertions.
	StagedLatency map[string]sim.Time
	ChainLatency  map[string]sim.Time
	StagedPCI     map[string]sim.Time
	ChainPCI      map[string]sim.Time
	// Batch completion time for the whole item set: two staged
	// CallBatch passes back to back vs one pipelined CallChainBatch.
	StagedBatch map[string]sim.Time
	ChainBatch  map[string]sim.Time
	// Identical reports whether every chained output matched its staged
	// counterpart byte for byte (per-item and batch paths).
	Identical bool
}

// e20Chains are the dataflows under test: a hash feeding a cipher and a
// filter feeding a transform.
var e20Chains = [][]string{
	{"sha256", "aes128"},
	{"fir16", "fft64"},
}

// RunE20 executes the chaining experiment with `items` payloads of
// itemBytes each per chain.
func RunE20(items, itemBytes int) (*E20Result, error) {
	if items <= 0 {
		items = 16
	}
	if itemBytes <= 0 {
		itemBytes = 2048
	}
	res := &E20Result{
		Table: Table{
			Title: fmt.Sprintf("E20  On-fabric chaining vs staged calls (%d items × %d B, warm)", items, itemBytes),
			Header: []string{"chain", "staged/item", "chained/item", "speedup",
				"PCI staged", "PCI chained", "batch staged", "batch chained", "batch speedup"},
		},
		StagedLatency: make(map[string]sim.Time),
		ChainLatency:  make(map[string]sim.Time),
		StagedPCI:     make(map[string]sim.Time),
		ChainPCI:      make(map[string]sim.Time),
		StagedBatch:   make(map[string]sim.Time),
		ChainBatch:    make(map[string]sim.Time),
		Identical:     true,
	}
	for _, chain := range e20Chains {
		label := strings.Join(chain, "->")
		cp, err := core.New(core.Config{RAMBytes: 1024 * 1024})
		if err != nil {
			return nil, err
		}
		blockBytes := 0
		for _, name := range chain {
			f, err := algos.ByName(name)
			if err != nil {
				return nil, err
			}
			if _, err := cp.Install(f); err != nil {
				return nil, err
			}
			if blockBytes == 0 {
				blockBytes = f.BlockBytes
			}
		}
		n := itemBytes / blockBytes
		if n == 0 {
			n = 1
		}
		inputs := make([][]byte, items)
		for i := range inputs {
			inputs[i] = make([]byte, n*blockBytes)
			for j := range inputs[i] {
				inputs[i][j] = byte(i*31 + j)
			}
		}
		// Warm every stage at once so both arms measure steady state.
		if _, err := cp.CallChain(chain, inputs[0]); err != nil {
			return nil, fmt.Errorf("exp: E20 warm %s: %w", label, err)
		}

		// Staged arm: each stage is its own Call, the intermediate
		// result crossing PCI out and back in between.
		var stagedLat, stagedPCI sim.Time
		stagedOuts := make([][]byte, items)
		for i, in := range inputs {
			cur := in
			for _, name := range chain {
				call, err := cp.Call(name, cur)
				if err != nil {
					return nil, fmt.Errorf("exp: E20 staged %s/%s: %w", label, name, err)
				}
				stagedLat += call.Latency
				stagedPCI += call.Breakdown.Get(sim.PhasePCI)
				cur = call.Output
			}
			stagedOuts[i] = cur
		}

		// Chained arm: one call per item, intermediates in local RAM.
		var chainLat, chainPCI sim.Time
		for i, in := range inputs {
			cr, err := cp.CallChain(chain, in)
			if err != nil {
				return nil, fmt.Errorf("exp: E20 chained %s: %w", label, err)
			}
			chainLat += cr.Latency
			chainPCI += cr.Breakdown.Get(sim.PhasePCI)
			if !bytes.Equal(cr.Output, stagedOuts[i]) {
				res.Identical = false
			}
		}

		// Batched arms: staged = one CallBatch per stage with the whole
		// intermediate set bounced through the host between them;
		// chained = one CallChainBatch with inter-item stage overlap.
		var stagedBatch sim.Time
		batchOuts := inputs
		for _, name := range chain {
			b, err := cp.CallBatch(name, batchOuts)
			if err != nil {
				return nil, fmt.Errorf("exp: E20 staged batch %s/%s: %w", label, name, err)
			}
			stagedBatch += b.Latency
			batchOuts = b.Outputs
		}
		cb, err := cp.CallChainBatch(chain, inputs)
		if err != nil {
			return nil, fmt.Errorf("exp: E20 chain batch %s: %w", label, err)
		}
		for i := range cb.Outputs {
			if !bytes.Equal(cb.Outputs[i], batchOuts[i]) {
				res.Identical = false
			}
		}

		perStaged := stagedLat / sim.Time(items)
		perChained := chainLat / sim.Time(items)
		res.StagedLatency[label] = perStaged
		res.ChainLatency[label] = perChained
		res.StagedPCI[label] = stagedPCI / sim.Time(items)
		res.ChainPCI[label] = chainPCI / sim.Time(items)
		res.StagedBatch[label] = stagedBatch
		res.ChainBatch[label] = cb.Latency
		res.Table.AddRow(label, perStaged.String(), perChained.String(),
			fmt.Sprintf("%.2fx", float64(perStaged)/float64(perChained)),
			res.StagedPCI[label].String(), res.ChainPCI[label].String(),
			stagedBatch.String(), cb.Latency.String(),
			fmt.Sprintf("%.2fx", float64(stagedBatch)/float64(cb.Latency)))
	}
	res.Table.Caption = "staged = one Call per stage (intermediates cross PCI both ways); chained = one CallChain (intermediates in card RAM); batch arms compare two CallBatch passes against one pipelined CallChainBatch; outputs byte-identical"
	return res, nil
}
