package exp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"agilefpga/internal/client"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sched"
	"agilefpga/internal/server"
)

// E23 — network-path throughput. E16 measures the dispatcher under
// direct in-process submission; this experiment measures the same
// cluster behind the TCP edge, at a fan-in high enough that the edge
// itself is the bottleneck. The baseline arm is the network path as it
// stood before multiplexing: every concurrent caller owns one
// connection and blocks on it for a full round trip, so hundreds of
// connections each carry one request per RTT and every request pays
// its own socket wakeup, goroutine handoff, and card-queue slot. The
// mux+batch arm drives the identical workload through one multiplexing
// client (concurrent calls pipelined over a 4-connection pool,
// responses demultiplexed by request id) against a server with
// cross-client batching on: same-function requests from different
// connections coalesce into dwell-bounded windows, and each flushed
// window rides a single queue slot as one coalesced run. The gap is
// per-request overhead amortised — a window shares one enqueue, one
// worker wakeup, and one configuration check across all its requests,
// while the pooled connections replace per-caller socket churn — not
// raw parallelism: both arms run the same concurrency against the
// same cards.
type E23Result struct {
	Table Table
	// Workload shape shared by both arms.
	Requests    int
	Concurrency int
	// Wall-clock throughput of each arm, in requests per second.
	BaselineOpsPerSec float64
	MuxBatchOpsPerSec float64
	// Speedup = mux+batch / baseline.
	Speedup float64
	// Behaviour behind the gap: refusals retried by clients, windows
	// flushed by the batcher, and jobs the cards coalesced.
	BaselineRetries   uint64
	MuxBatchRetries   uint64
	BatchWindows      uint64
	BatchedJobs       uint64
	BaselineCoalesced uint64
	MuxBatchCoalesced uint64
}

// e23Arm boots a fresh cluster + server, drains jobs at the given
// concurrency, and reports throughput plus the registry for forensics.
// batchWindow ≤ 1 selects the baseline arm (no batching, one blocking
// connection per worker); > 1 selects the mux+batch arm (one shared
// multiplexing client, cross-client batching on).
func e23Arm(jobs []sched.Job, concurrency, batchWindow int) (float64, uint64, *metrics.Registry, error) {
	reg := metrics.NewRegistry()
	cfg := core.Config{
		Geometry:         fpga.Geometry{Rows: 32, Cols: 40},
		DecodeCacheBytes: 1 << 20,
		Metrics:          reg,
	}
	cl, err := cluster.New(2, cluster.ModeAffinity, cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer cl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, nil, err
	}
	srv := server.New(cl, server.Options{
		MaxInflight: 4 * concurrency,
		BatchWindow: batchWindow,
		BatchDwell:  500 * time.Microsecond,
		Metrics:     reg,
	})
	serr := make(chan error, 1)
	go func() { serr <- srv.Serve(ln) }()
	defer func() { srv.Close(); <-serr }()
	addr := ln.Addr().String()

	var retries atomic.Uint64
	copts := client.Options{
		MaxRetries:  16,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		JitterSeed:  23,
		OnRetry:     func(int, error) { retries.Add(1) },
	}
	// The baseline emulates the pre-multiplexing client: one connection
	// per caller, at most one request in flight on it. The mux arm
	// shares one client whose 4 connections pipeline everything.
	var shared *client.Client
	if batchWindow > 1 {
		copts.PoolSize = 4
		shared, err = client.Dial(addr, copts)
		if err != nil {
			return 0, 0, nil, err
		}
		defer shared.Close()
	} else {
		copts.PoolSize = 1
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, concurrency)
	start := time.Now() //lint:wallclock E23 compares real network-path wall time across arms
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := shared
			if c == nil {
				own, err := client.Dial(addr, copts)
				if err != nil {
					errCh <- err
					return
				}
				defer own.Close()
				c = own
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out, _, err := c.Call(context.Background(), jobs[i].Fn, jobs[i].Input)
				if err != nil {
					errCh <- fmt.Errorf("exp: E23 job %d: %w", i, err)
					return
				}
				if len(out) == 0 {
					errCh <- fmt.Errorf("exp: E23 job %d: empty output", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:wallclock E23 compares real network-path wall time across arms
	select {
	case err := <-errCh:
		return 0, 0, nil, err
	default:
	}
	if err := cl.CheckInvariants(); err != nil {
		return 0, 0, nil, err
	}
	return float64(len(jobs)) / elapsed.Seconds(), retries.Load(), reg, nil
}

// RunE23 executes the network-path comparison.
func RunE23(requests, concurrency int) (*E23Result, error) {
	if requests <= 0 {
		requests = 4000
	}
	if concurrency <= 0 {
		concurrency = 512
	}
	jobs, err := e16Jobs(requests)
	if err != nil {
		return nil, err
	}
	baseOps, baseRetries, baseReg, err := e23Arm(jobs, concurrency, 0)
	if err != nil {
		return nil, err
	}
	muxOps, muxRetries, muxReg, err := e23Arm(jobs, concurrency, 64)
	if err != nil {
		return nil, err
	}
	coalesced := func(reg *metrics.Registry) uint64 {
		var n uint64
		for _, card := range []string{"0", "1"} {
			n += reg.Counter("agile_cluster_coalesced_jobs_total", metrics.L("card", card)).Value()
		}
		return n
	}
	res := &E23Result{
		Requests:          requests,
		Concurrency:       concurrency,
		BaselineOpsPerSec: baseOps,
		MuxBatchOpsPerSec: muxOps,
		BaselineRetries:   baseRetries,
		MuxBatchRetries:   muxRetries,
		BatchWindows:      muxReg.Histogram("agile_net_batch_window_size").Count(),
		BatchedJobs:       uint64(muxReg.Histogram("agile_net_batch_window_size").Sum()),
		BaselineCoalesced: coalesced(baseReg),
		MuxBatchCoalesced: coalesced(muxReg),
	}
	if res.BaselineOpsPerSec > 0 {
		res.Speedup = res.MuxBatchOpsPerSec / res.BaselineOpsPerSec
	}
	res.Table = Table{
		Title:  fmt.Sprintf("E23  Network-path throughput (%d requests, %d concurrent callers, Zipf, 2×40-frame cards)", requests, concurrency),
		Header: []string{"arm", "ops/sec", "client retries", "batch windows", "batched jobs", "coalesced jobs"},
	}
	res.Table.AddRow("blocking conn-per-caller", fmt.Sprintf("%.0f", res.BaselineOpsPerSec),
		res.BaselineRetries, uint64(0), uint64(0), res.BaselineCoalesced)
	res.Table.AddRow("mux + cross-client batch", fmt.Sprintf("%.0f", res.MuxBatchOpsPerSec),
		res.MuxBatchRetries, res.BatchWindows, res.BatchedJobs, res.MuxBatchCoalesced)
	res.Table.Caption = fmt.Sprintf("speedup %.2fx — a flushed window costs one card-queue slot and one configuration check for the whole batch", res.Speedup)
	return res, nil
}
