package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/compress"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

// E2 — bitstream compression. For every codec: total bank bitstream size,
// compression ratio, and the measured cold configuration time (ROM read +
// window decompression + port write) summed over the bank. This is the
// experiment the paper's §2.2–2.3 compressed-ROM design and §4 open
// problem (exploit CLB symmetry — our framediff codec) call for.
type E2Result struct {
	Table Table
	// Ratio and config time per codec, for assertions.
	Ratio      map[string]float64
	ConfigTime map[string]sim.Time
}

// RunE2 executes the compression experiment.
func RunE2() (*E2Result, error) {
	res := &E2Result{
		Table: Table{
			Title: "E2  Bitstream compression per codec (whole bank, cold loads)",
			Header: []string{"codec", "raw B", "comp B", "ratio",
				"ROM+decomp+port time", "vs none"},
		},
		Ratio:      make(map[string]float64),
		ConfigTime: make(map[string]sim.Time),
	}
	var baseline sim.Time
	for _, codecName := range compress.Names() {
		cp, err := core.New(core.Config{Codec: codecName})
		if err != nil {
			return nil, err
		}
		if _, err := cp.InstallBank(); err != nil {
			return nil, err
		}
		var rawB, compB int
		for _, f := range algos.Bank() {
			rec, err := cp.Controller().ROM().FindByID(f.ID())
			if err != nil {
				return nil, err
			}
			rawB += int(rec.RawSize)
			compB += int(rec.CompSize)
		}
		// Cold-load every function once, summing the configuration path.
		var cfgTime sim.Time
		for _, f := range algos.Bank() {
			in := make([]byte, f.BlockBytes)
			for i := range in {
				in[i] = byte(i + 1)
			}
			call, err := cp.Call(f.Name(), in)
			if err != nil {
				return nil, fmt.Errorf("exp: E2 %s/%s: %w", codecName, f.Name(), err)
			}
			cfgTime += call.Breakdown.Get(sim.PhaseROM) +
				call.Breakdown.Get(sim.PhaseDecompress) +
				call.Breakdown.Get(sim.PhaseConfigure) +
				call.Breakdown.Get(sim.PhasePipeStall)
			// Evict so the next load is cold even though the bank
			// exceeds the device anyway.
			cp.Controller().Evict(f.ID())
		}
		ratio := float64(rawB) / float64(compB)
		res.Ratio[codecName] = ratio
		res.ConfigTime[codecName] = cfgTime
		if codecName == "none" {
			baseline = cfgTime
		}
		rel := "1.00x"
		if baseline > 0 {
			rel = fmt.Sprintf("%.2fx", float64(baseline)/float64(cfgTime))
		}
		res.Table.AddRow(codecName, rawB, compB, ratio, cfgTime.String(), rel)
	}
	res.Table.Caption = "ratio = raw/compressed; time = ROM read + window decompression + configuration port, summed over all 16 cold loads"
	return res, nil
}

// RunE2PerFunction breaks compression down per bank function for one
// codec (used by cmd/bitc and the detailed report).
func RunE2PerFunction(codecName string) (*Table, error) {
	g := fpga.DefaultGeometry
	codec, err := compress.New(codecName, g.FrameBytes())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("E2a  Per-function bitstream sizes (%s)", codecName),
		Header: []string{"function", "LUTs", "frames", "raw B", "comp B", "ratio"},
	}
	for _, f := range algos.Bank() {
		rec, blob, err := core.BuildImage(g, f, codec, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(f.Name(), f.LUTs, int(rec.FrameCount), int(rec.RawSize), len(blob),
			float64(rec.RawSize)/float64(len(blob)))
	}
	return t, nil
}
