package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/replace"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E3 — the Frame Replacement Policy experiment (paper §2.5). The device
// is sized so roughly four of the ten bank functions fit at once; request
// streams of each workload shape drive the card under every policy, with
// the clairvoyant Belady OPT as the upper bound. Reported per (workload,
// policy): hit rate, evictions, and mean request latency.
type E3Result struct {
	Table Table
	// HitRate[workload][policy]
	HitRate map[string]map[string]float64
	// MeanLatency[workload][policy]
	MeanLatency map[string]map[string]sim.Time
}

// E3Geometry holds ~4 of the 16 bank functions (the bank averages ≈9.4
// frames per function on 32-row columns).
var E3Geometry = fpga.Geometry{Rows: 32, Cols: 40}

// RunE3 executes the replacement-policy experiment with the given request
// count per stream.
func RunE3(requests int) (*E3Result, error) {
	if requests <= 0 {
		requests = 2000
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E3Result{
		Table: Table{
			Title:  fmt.Sprintf("E3  Frame Replacement Policy: hit rate / evictions / mean latency (%d requests)", requests),
			Header: []string{"workload", "policy", "hit rate", "evictions", "mean latency"},
		},
		HitRate:     make(map[string]map[string]float64),
		MeanLatency: make(map[string]map[string]sim.Time),
	}
	policies := append(replace.Names()[:4:4], "opt")
	for _, wname := range workload.Names() {
		res.HitRate[wname] = make(map[string]float64)
		res.MeanLatency[wname] = make(map[string]sim.Time)
		// One fixed trace per workload, shared by all policies (and
		// required by OPT's clairvoyance).
		gen, err := workload.New(wname, ids, 1234)
		if err != nil {
			return nil, err
		}
		trace := workload.Collect(gen, requests)
		for _, pname := range policies {
			var pol replace.Policy
			if pname == "opt" {
				pol = replace.NewOPT(trace)
			} else {
				pol, err = replace.New(pname, 99)
				if err != nil {
					return nil, err
				}
			}
			cp, err := core.New(core.Config{Geometry: E3Geometry, PolicyImpl: pol})
			if err != nil {
				return nil, err
			}
			if _, err := cp.InstallBank(); err != nil {
				return nil, err
			}
			var total sim.Time
			for i, fn := range trace {
				f, err := byID(fn)
				if err != nil {
					return nil, err
				}
				in := make([]byte, f.BlockBytes)
				in[0] = byte(i)
				call, err := cp.CallID(fn, in)
				if err != nil {
					return nil, fmt.Errorf("exp: E3 %s/%s request %d: %w", wname, pname, i, err)
				}
				total += call.Latency
			}
			st := cp.Stats()
			hr := float64(st.Hits) / float64(st.Requests)
			mean := sim.Time(uint64(total) / uint64(requests))
			res.HitRate[wname][pname] = hr
			res.MeanLatency[wname][pname] = mean
			res.Table.AddRow(wname, pname, fmt.Sprintf("%.3f", hr), st.Evictions, mean.String())
			if err := cp.Controller().CheckInvariants(); err != nil {
				return nil, err
			}
		}
	}
	res.Table.Caption = "device: " + E3Geometry.String() + " (≈4 of 16 functions resident); opt = clairvoyant Belady bound"
	return res, nil
}

func byID(fn uint16) (*algos.Function, error) {
	for _, f := range algos.Bank() {
		if f.ID() == fn {
			return f, nil
		}
	}
	return nil, fmt.Errorf("exp: unknown function id %d", fn)
}
