package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
	"agilefpga/internal/workload"
)

// E4 — placement: contiguous-only versus scatter (paper §2.5 explicitly
// allows a function to occupy non-contiguous frames), plus
// contiguous-with-periodic-defrag as the middle ground. A mixed-footprint
// request stream churns the fabric; the contiguous-only placer must evict
// algorithms merely to manufacture runs, which scatter placement avoids
// entirely and defragmentation mitigates at a stop-the-world cost. The
// table reports, per mode: hit rate, evictions, frames written, and the
// placement mix.
type E4Result struct {
	Table Table
	// Evictions and HitRate per mode ("contiguous", "scatter").
	Evictions map[string]uint64
	HitRate   map[string]float64
}

// RunE4 executes the placement experiment.
func RunE4(requests int) (*E4Result, error) {
	if requests <= 0 {
		requests = 1000
	}
	var ids []uint16
	for _, f := range algos.Bank() {
		ids = append(ids, f.ID())
	}
	res := &E4Result{
		Table: Table{
			Title: fmt.Sprintf("E4  Contiguous vs scatter placement under churn (%d requests, uniform)", requests),
			Header: []string{"placement", "hit rate", "evictions", "frames written",
				"contig", "scatter", "mean latency"},
		},
		Evictions: make(map[string]uint64),
		HitRate:   make(map[string]float64),
	}
	geom := fpga.Geometry{Rows: 32, Cols: 32}
	for _, mode := range []struct {
		name        string
		noScatter   bool
		defragEvery int
	}{{"contiguous", true, 0}, {"contig+defrag", true, 100}, {"scatter", false, 0}} {
		cp, err := core.New(core.Config{Geometry: geom, NoScatter: mode.noScatter})
		if err != nil {
			return nil, err
		}
		if _, err := cp.InstallBank(); err != nil {
			return nil, err
		}
		gen, err := workload.NewUniform(ids, 4321)
		if err != nil {
			return nil, err
		}
		var total sim.Time
		for i := 0; i < requests; i++ {
			fn := gen.Next()
			f, err := byID(fn)
			if err != nil {
				return nil, err
			}
			in := make([]byte, f.BlockBytes)
			in[0] = byte(i)
			call, err := cp.CallID(fn, in)
			if err != nil {
				return nil, fmt.Errorf("exp: E4 %s request %d: %w", mode.name, i, err)
			}
			total += call.Latency
			if mode.defragEvery > 0 && i%mode.defragEvery == mode.defragEvery-1 {
				if _, cost, err := cp.Controller().Defrag(); err != nil {
					return nil, err
				} else {
					total += cost
				}
			}
			if err := cp.Controller().CheckInvariants(); err != nil {
				return nil, err
			}
		}
		st := cp.Stats()
		hr := float64(st.Hits) / float64(st.Requests)
		res.Evictions[mode.name] = st.Evictions
		res.HitRate[mode.name] = hr
		res.Table.AddRow(mode.name, fmt.Sprintf("%.3f", hr), st.Evictions, st.FramesLoaded,
			st.ContigPlacements, st.ScatterPlacements,
			sim.Time(uint64(total)/uint64(requests)).String())
	}
	res.Table.Caption = "same trace, same policy (LRU); contiguous-only placement evicts extra victims to manufacture runs. " +
		"Periodic defrag (every 100 requests) does NOT pay here — under capacity pressure the binding constraint is frames, " +
		"not fragmentation; defrag wins only when free space suffices but is scattered (unit-tested separately)"
	return res, nil
}
