package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E5 — offload speedup (paper §1: "reduce the computational overload on
// the host"). Per bank function over a large payload: host-software time,
// hot-card kernel time (exec + on-card data movement), and the full
// end-to-end hot latency including PCI. Two speedups fall out: the kernel
// speedup the fabric delivers, and the end-to-end speedup after the
// 32-bit/33 MHz PCI round trip takes its share — compute-dense kernels
// survive the bus, streaming kernels do not.
type E5Result struct {
	Table Table
	// KernelSpeedup and E2ESpeedup per function name.
	KernelSpeedup map[string]float64
	E2ESpeedup    map[string]float64
}

// RunE5 executes the offload experiment with payloadBytes per function.
func RunE5(payloadBytes int) (*E5Result, error) {
	if payloadBytes <= 0 {
		payloadBytes = 12 * 1024
	}
	cp, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := cp.InstallBank(); err != nil {
		return nil, err
	}
	res := &E5Result{
		Table: Table{
			Title: fmt.Sprintf("E5  Offload speedup per function (hot card, ~%d KiB payloads)", payloadBytes/1024),
			Header: []string{"function", "host", "fabric exec", "data modules", "card e2e",
				"kernel speedup", "e2e speedup"},
		},
		KernelSpeedup: make(map[string]float64),
		E2ESpeedup:    make(map[string]float64),
	}
	for _, f := range algos.Bank() {
		blocks := payloadBytes / f.BlockBytes
		if blocks == 0 {
			blocks = 1
		}
		in := make([]byte, blocks*f.BlockBytes)
		for i := range in {
			in[i] = byte(i*2654435761 + int(f.ID()))
		}
		// Warm the fabric.
		if _, err := cp.Call(f.Name(), in[:f.BlockBytes]); err != nil {
			return nil, fmt.Errorf("exp: E5 warm %s: %w", f.Name(), err)
		}
		call, err := cp.Call(f.Name(), in)
		if err != nil {
			return nil, fmt.Errorf("exp: E5 %s: %w", f.Name(), err)
		}
		if !call.Hit {
			return nil, fmt.Errorf("exp: E5 %s: expected a hot call", f.Name())
		}
		_, hostTime, err := cp.RunHost(f.Name(), in)
		if err != nil {
			return nil, err
		}
		kernel := call.Breakdown.Get(sim.PhaseExec)
		data := call.Breakdown.Get(sim.PhaseDataIn) + call.Breakdown.Get(sim.PhaseDataOut)
		ks := float64(hostTime) / float64(kernel)
		es := float64(hostTime) / float64(call.Latency)
		res.KernelSpeedup[f.Name()] = ks
		res.E2ESpeedup[f.Name()] = es
		res.Table.AddRow(f.Name(), hostTime.String(), kernel.String(), data.String(),
			call.Latency.String(), fmt.Sprintf("%.1fx", ks), fmt.Sprintf("%.2fx", es))
	}
	res.Table.Caption = "kernel speedup = host / fabric exec; e2e adds on-card data modules and the 32-bit/33 MHz PCI round trip"
	return res, nil
}
