package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E6 — offload crossover (paper §1 motivation meets §2.3 PCI transfers).
// For a compute-dense kernel (modexp64) and a streaming kernel (aes128),
// sweep the payload from 96 B to 768 KiB and report host time, hot-card
// time, and cold-card time (first call after eviction: PCI + configuration
// + exec). The series shows where offload starts to pay, how cold
// configuration pushes the crossover right, and that bus-bound kernels
// never cross at all.
type E6Result struct {
	Table Table
	// Crossover payload (bytes) at which the hot card first beats the
	// host, per function; 0 = never within the sweep.
	HotCrossover map[string]int
}

// E6Sizes is the default payload sweep (bytes); each is a multiple of
// every swept function's block size (modexp 24 B, aes 16 B → lcm 48).
var E6Sizes = []int{96, 480, 960, 4800, 48_000, 768_000}

// RunE6 executes the crossover sweep. maxSize trims the sweep for quick
// runs (0 = full).
func RunE6(maxSize int) (*E6Result, error) {
	res := &E6Result{
		Table: Table{
			Title:  "E6  Offload crossover: payload sweep, host vs hot card vs cold card",
			Header: []string{"function", "payload B", "host", "card hot", "card cold", "hot wins"},
		},
		HotCrossover: make(map[string]int),
	}
	for _, fname := range []string{"modexp64", "aes128"} {
		f, err := algos.ByName(fname)
		if err != nil {
			return nil, err
		}
		// A larger staging RAM accommodates the big payloads.
		cp, err := core.New(core.Config{RAMBytes: 4 * 1024 * 1024})
		if err != nil {
			return nil, err
		}
		if _, err := cp.Install(f); err != nil {
			return nil, err
		}
		for _, size := range E6Sizes {
			if maxSize > 0 && size > maxSize {
				continue
			}
			in := make([]byte, size)
			for i := range in {
				in[i] = byte(i*31 + 1)
			}
			// Cold: evict first, then call.
			cp.Controller().Evict(f.ID())
			cold, err := cp.CallID(f.ID(), in)
			if err != nil {
				return nil, fmt.Errorf("exp: E6 %s cold %d: %w", fname, size, err)
			}
			// Hot: call again.
			hot, err := cp.CallID(f.ID(), in)
			if err != nil {
				return nil, err
			}
			if !hot.Hit {
				return nil, fmt.Errorf("exp: E6 %s: second call missed", fname)
			}
			_, host, err := cp.RunHost(fname, in)
			if err != nil {
				return nil, err
			}
			wins := hot.Latency < host
			if wins && res.HotCrossover[fname] == 0 {
				res.HotCrossover[fname] = size
			}
			res.Table.AddRow(fname, size, host.String(), hot.Latency.String(),
				cold.Latency.String(), fmt.Sprintf("%v", wins))
		}
	}
	res.Table.Caption = "cold = call immediately after eviction (pays ROM + decompress + configure); modexp crosses early, aes is PCI-bound"
	return res, nil
}

var _ = sim.Time(0)
