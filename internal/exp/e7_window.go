package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E7 — the "window by window" ablation (paper §2.3). The configuration
// module decompresses into a fixed window before pushing bytes at the
// port; the window is also the module's buffer SRAM. Sweeping it for a
// large function (bitonic256, 15 frames) shows the per-window management
// overhead shrinking with window size and flattening once windows reach a
// few hundred bytes — the paper's design point of a small on-chip buffer
// is enough.
type E7Result struct {
	Table Table
	// ConfigPath[window] = ROM+decomp+configure+overhead time of one cold
	// load.
	ConfigPath map[int]sim.Time
}

// E7Windows is the default window sweep in bytes.
var E7Windows = []int{16, 64, 256, 1024, 4096, 16384}

// RunE7 executes the window-size ablation.
func RunE7() (*E7Result, error) {
	f := algos.Bitonic()
	res := &E7Result{
		Table: Table{
			Title:  fmt.Sprintf("E7  Decompression window ablation (cold load of %s, huffman codec)", f.Name()),
			Header: []string{"window B", "cold config path", "decomp", "port", "overhead"},
		},
		ConfigPath: make(map[int]sim.Time),
	}
	for _, window := range E7Windows {
		cp, err := core.New(core.Config{WindowBytes: window, Codec: "huffman"})
		if err != nil {
			return nil, err
		}
		if _, err := cp.Install(f); err != nil {
			return nil, err
		}
		in := make([]byte, f.BlockBytes)
		in[0] = 1
		call, err := cp.Call(f.Name(), in)
		if err != nil {
			return nil, fmt.Errorf("exp: E7 window %d: %w", window, err)
		}
		dec := call.Breakdown.Get(sim.PhaseDecompress)
		port := call.Breakdown.Get(sim.PhaseConfigure)
		ovh := call.Breakdown.Get(sim.PhaseOverhead)
		stall := call.Breakdown.Get(sim.PhasePipeStall)
		total := call.Breakdown.Get(sim.PhaseROM) + dec + port + ovh + stall
		res.ConfigPath[window] = total
		res.Table.AddRow(window, total.String(), dec.String(), port.String(), ovh.String())
	}
	res.Table.Caption = "overhead = per-window MCU buffer management (shrinks with window); decomp = exposed first-window " +
		"fill (grows with window); port time is window-independent; stalls (decoder-bound huffman) are in the total"
	return res, nil
}
