package exp

import (
	"errors"
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/fpga"
	"agilefpga/internal/memory"
)

// E8 — ROM capacity (paper §2.2's two-ended layout). For each ROM size ×
// codec, install an endless series of bank-shaped functions (fresh ids,
// bank LUT footprints cycled) until the bitstream region collides with
// the record table. The count is the size of the algorithm bank the card
// can carry — compression multiplies it.
type E8Result struct {
	Table Table
	// Capacity[romBytes][codec] = functions installed before collision.
	Capacity map[int]map[string]int
}

// E8ROMSizes is the default ROM sweep.
var E8ROMSizes = []int{64 * 1024, 256 * 1024, 1024 * 1024}

// RunE8 executes the ROM-capacity experiment.
func RunE8() (*E8Result, error) {
	g := fpga.DefaultGeometry
	bank := algos.Bank()
	res := &E8Result{
		Table: Table{
			Title:  "E8  ROM capacity: functions stored before the two-ended layout collides",
			Header: append([]string{"ROM"}, compress.Names()...),
		},
		Capacity: make(map[int]map[string]int),
	}
	for _, romBytes := range E8ROMSizes {
		res.Capacity[romBytes] = make(map[string]int)
		row := []interface{}{fmt.Sprintf("%d KiB", romBytes/1024)}
		for _, codecName := range compress.Names() {
			codec, err := compress.New(codecName, g.FrameBytes())
			if err != nil {
				return nil, err
			}
			codecID, err := compress.IDOf(codecName)
			if err != nil {
				return nil, err
			}
			rom, err := memory.NewROM(romBytes)
			if err != nil {
				return nil, err
			}
			count := 0
			for {
				proto := bank[count%len(bank)]
				fnID := uint16(1000 + count)
				images, err := bitstream.Synthesize(g, bitstream.Netlist{
					FnID: fnID, Serial: 1, LUTs: proto.LUTs, Seed: uint64(count) * 977,
				})
				if err != nil {
					return nil, err
				}
				var raw []byte
				for _, img := range images {
					raw = append(raw, img...)
				}
				blob, err := codec.Compress(raw)
				if err != nil {
					return nil, err
				}
				rec := memory.Record{
					Name: proto.Name(), FnID: fnID, CodecID: codecID,
					RawSize: uint32(len(raw)), InBus: proto.InBus, OutBus: proto.OutBus,
					FrameCount: uint16(len(images)), Serial: 1,
				}
				if err := rom.Install(rec, blob); err != nil {
					if errors.Is(err, memory.ErrROMFull) {
						break
					}
					return nil, err
				}
				count++
			}
			res.Capacity[romBytes][codecName] = count
			row = append(row, count)
		}
		res.Table.AddRow(row...)
	}
	res.Table.Caption = "entries = installed functions (bank footprints cycled); geometry " + g.String()
	return res, nil
}
