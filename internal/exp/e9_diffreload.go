package exp

import (
	"fmt"

	"agilefpga/internal/algos"
	"agilefpga/internal/core"
	"agilefpga/internal/sim"
)

// E9 — difference-based reconfiguration (the XAPP290 flow the paper's
// proof-of-concept cites). For every bank function: evict it, call it
// again, and measure the reload's configuration path under the ordinary
// flow (full ROM + decompress + port write) and the difference flow
// (generation-verified revival of the lazily evicted frames). The revival
// fires only when the frames were not reused in between — here they are
// not, which is the flow's best case; the trace-level benefit under real
// churn depends on how often that holds (see the caption).
type E9Result struct {
	Table Table
	// FullReload and DiffReload config-path time per function.
	FullReload map[string]sim.Time
	DiffReload map[string]sim.Time
}

// RunE9 executes the difference-flow experiment.
func RunE9() (*E9Result, error) {
	res := &E9Result{
		Table: Table{
			Title:  "E9  Difference-based reconfiguration: reload cost after eviction",
			Header: []string{"function", "frames", "full reload", "diff reload", "saving"},
		},
		FullReload: make(map[string]sim.Time),
		DiffReload: make(map[string]sim.Time),
	}
	reload := func(diff bool, f *algos.Function) (sim.Time, uint16, error) {
		cp, err := core.New(core.Config{DiffReload: diff})
		if err != nil {
			return 0, 0, err
		}
		if _, err := cp.Install(f); err != nil {
			return 0, 0, err
		}
		in := make([]byte, f.BlockBytes)
		in[0] = 1
		if _, err := cp.Call(f.Name(), in); err != nil {
			return 0, 0, err
		}
		rec, err := cp.Controller().ROM().FindByID(f.ID())
		if err != nil {
			return 0, 0, err
		}
		cp.Controller().Evict(f.ID())
		call, err := cp.Call(f.Name(), in)
		if err != nil {
			return 0, 0, err
		}
		cfg := call.Breakdown.Get(sim.PhaseROM) +
			call.Breakdown.Get(sim.PhaseDecompress) +
			call.Breakdown.Get(sim.PhaseConfigure) +
			call.Breakdown.Get(sim.PhaseOverhead) +
			call.Breakdown.Get(sim.PhasePipeStall)
		return cfg, rec.FrameCount, nil
	}
	for _, f := range algos.Bank() {
		full, frames, err := reload(false, f)
		if err != nil {
			return nil, fmt.Errorf("exp: E9 full %s: %w", f.Name(), err)
		}
		diffed, _, err := reload(true, f)
		if err != nil {
			return nil, fmt.Errorf("exp: E9 diff %s: %w", f.Name(), err)
		}
		res.FullReload[f.Name()] = full
		res.DiffReload[f.Name()] = diffed
		res.Table.AddRow(f.Name(), int(frames), full.String(), diffed.String(),
			fmt.Sprintf("%.0fx", float64(full)/float64(diffed)))
	}
	res.Table.Caption = "diff reload = generation-verified revival (bookkeeping only); it fires only when the " +
		"evicted frames were not reused, the flow's best case — under churn the frames are usually recycled first"
	return res, nil
}
