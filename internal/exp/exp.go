package exp

import (
	"fmt"
	"sort"
)

// Experiment describes one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment at full scale and returns its table.
	Run func() (*Table, error)
}

// All returns the experiment catalogue in id order.
func All() []Experiment {
	exps := []Experiment{
		{"e1", "End-to-end architecture (Figure 1)", func() (*Table, error) {
			r, err := RunE1()
			return tableOf(r, err)
		}},
		{"e2", "Bitstream compression codecs", func() (*Table, error) {
			r, err := RunE2()
			return tableOf(r, err)
		}},
		{"e3", "Frame replacement policies", func() (*Table, error) {
			r, err := RunE3(2000)
			return tableOf(r, err)
		}},
		{"e4", "Contiguous vs scatter placement", func() (*Table, error) {
			r, err := RunE4(1000)
			return tableOf(r, err)
		}},
		{"e5", "Offload speedup per function", func() (*Table, error) {
			r, err := RunE5(12 * 1024)
			return tableOf(r, err)
		}},
		{"e6", "Offload crossover sweep", func() (*Table, error) {
			r, err := RunE6(0)
			return tableOf(r, err)
		}},
		{"e7", "Decompression window ablation", func() (*Table, error) {
			r, err := RunE7()
			return tableOf(r, err)
		}},
		{"e8", "ROM capacity per codec", func() (*Table, error) {
			r, err := RunE8()
			return tableOf(r, err)
		}},
		{"e9", "Difference-based reconfiguration", func() (*Table, error) {
			r, err := RunE9()
			return tableOf(r, err)
		}},
		{"e10", "Configuration prefetching", func() (*Table, error) {
			r, err := RunE10(1000)
			return tableOf(r, err)
		}},
		{"e11", "Batched pipelined calls", func() (*Table, error) {
			r, err := RunE11(32, 4096)
			return tableOf(r, err)
		}},
		{"e12", "Device-size scaling", func() (*Table, error) {
			r, err := RunE12(1000)
			return tableOf(r, err)
		}},
		{"e13", "Host-side job scheduling", func() (*Table, error) {
			r, err := RunE13(600)
			return tableOf(r, err)
		}},
		{"e14", "SEU scrubbing reliability", func() (*Table, error) {
			r, err := RunE14(500, 10)
			return tableOf(r, err)
		}},
		{"e15", "Multi-card scale-out", func() (*Table, error) {
			r, err := RunE15(800)
			return tableOf(r, err)
		}},
		{"e16", "Concurrent cluster throughput", func() (*Table, error) {
			r, err := RunE16(2000)
			return tableOf(r, err)
		}},
		{"e17", "Per-phase latency distributions", func() (*Table, error) {
			r, err := RunE17(1500)
			return tableOf(r, err)
		}},
		{"e18", "Sequential vs pipelined cold load", func() (*Table, error) {
			r, err := RunE18()
			return tableOf(r, err)
		}},
		{"e19", "Fleet-scale shard routing (agilerouter over N nodes)", func() (*Table, error) {
			r, err := RunE19(0, 0, nil)
			return tableOf(r, err)
		}},
		{"e20", "On-fabric function chaining vs staged calls", func() (*Table, error) {
			r, err := RunE20(16, 2048)
			return tableOf(r, err)
		}},
		{"e23", "Network-path throughput (mux + cross-client batching)", func() (*Table, error) {
			r, err := RunE23(4000, 512)
			return tableOf(r, err)
		}},
	}
	sort.Slice(exps, func(i, j int) bool { return expNum(exps[i].ID) < expNum(exps[j].ID) })
	return exps
}

// expNum extracts the numeric suffix of an experiment id for ordering.
func expNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID finds an experiment by id ("e1".."e8").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// tableOf extracts the Table field from any experiment result.
func tableOf(r interface{ table() *Table }, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return r.table(), nil
}

func (r *E1Result) table() *Table  { return &r.Table }
func (r *E2Result) table() *Table  { return &r.Table }
func (r *E3Result) table() *Table  { return &r.Table }
func (r *E4Result) table() *Table  { return &r.Table }
func (r *E5Result) table() *Table  { return &r.Table }
func (r *E6Result) table() *Table  { return &r.Table }
func (r *E7Result) table() *Table  { return &r.Table }
func (r *E8Result) table() *Table  { return &r.Table }
func (r *E9Result) table() *Table  { return &r.Table }
func (r *E10Result) table() *Table { return &r.Table }
func (r *E11Result) table() *Table { return &r.Table }
func (r *E12Result) table() *Table { return &r.Table }
func (r *E13Result) table() *Table { return &r.Table }
func (r *E14Result) table() *Table { return &r.Table }
func (r *E15Result) table() *Table { return &r.Table }
func (r *E16Result) table() *Table { return &r.Table }
func (r *E18Result) table() *Table { return &r.Table }
func (r *E19Result) table() *Table { return &r.Table }
func (r *E20Result) table() *Table { return &r.Table }
func (r *E23Result) table() *Table { return &r.Table }
