package exp

// Shape tests for the extension experiments E9–E12.

import "testing"

func TestE9DiffReloadShape(t *testing.T) {
	r, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	for name, full := range r.FullReload {
		diffed := r.DiffReload[name]
		if diffed >= full {
			t.Errorf("%s: diff reload (%v) not below full reload (%v)", name, diffed, full)
		}
		// The saving must be dramatic — revival is pure bookkeeping.
		if float64(full)/float64(diffed) < 10 {
			t.Errorf("%s: saving only %.1fx", name, float64(full)/float64(diffed))
		}
	}
	if len(r.FullReload) != 16 {
		t.Errorf("covered %d functions", len(r.FullReload))
	}
}

func TestE10PrefetchShape(t *testing.T) {
	r, err := RunE10(400)
	if err != nil {
		t.Fatal(err)
	}
	// Cyclic is perfectly predictable: prefetching must transform the
	// hit rate (off ≈ 0) and slash mean latency.
	if off, on := r.HitRate["cyclic"]["off"], r.HitRate["cyclic"]["on"]; on < off+0.5 {
		t.Errorf("cyclic: prefetch raised hit rate only %.3f → %.3f", off, on)
	}
	if off, on := r.MeanLatency["cyclic"]["off"], r.MeanLatency["cyclic"]["on"]; on >= off {
		t.Errorf("cyclic: prefetch did not cut latency (%v → %v)", off, on)
	}
	// Uniform is unpredictable: prefetching must not devastate the hit
	// rate (mispredictions evict, so a modest cost is acceptable).
	if off, on := r.HitRate["uniform"]["off"], r.HitRate["uniform"]["on"]; on < off-0.15 {
		t.Errorf("uniform: prefetch harmed hit rate %.3f → %.3f", off, on)
	}
	// markov(0.9) sits between: a large but not total prefetch gain.
	mGain := r.HitRate["markov0.9"]["on"] - r.HitRate["markov0.9"]["off"]
	cGain := r.HitRate["cyclic"]["on"] - r.HitRate["cyclic"]["off"]
	uGain := r.HitRate["uniform"]["on"] - r.HitRate["uniform"]["off"]
	if !(uGain < mGain && mGain < cGain) {
		t.Errorf("prefetch gain not ordered by predictability: uniform %.3f, markov %.3f, cyclic %.3f",
			uGain, mGain, cGain)
	}
}

func TestE11BatchingShape(t *testing.T) {
	r, err := RunE11(16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Batching never loses to sequential.
	for fn, bs := range r.BatchSpeedup {
		if bs < r.SeqSpeedup[fn] {
			t.Errorf("%s: batching (%.2fx) below sequential (%.2fx)", fn, bs, r.SeqSpeedup[fn])
		}
	}
	// The headline: batching rescues sha256 (card-bound once the bus
	// overlaps) but cannot rescue aes128 (bus-bound either way).
	if r.SeqSpeedup["sha256"] >= 1 {
		t.Errorf("sha256 sequential %.2fx — expected below 1", r.SeqSpeedup["sha256"])
	}
	if r.BatchSpeedup["sha256"] <= 1 {
		t.Errorf("sha256 batched %.2fx — batching should rescue it", r.BatchSpeedup["sha256"])
	}
	if r.BatchSpeedup["aes128"] >= 1 {
		t.Errorf("aes128 batched %.2fx — the half-duplex bus should still cap it", r.BatchSpeedup["aes128"])
	}
	// Compute-dense kernels gain further from hiding the bus.
	if r.BatchSpeedup["modexp64"] <= r.SeqSpeedup["modexp64"] {
		t.Error("modexp64 gained nothing from batching")
	}
}

func TestE12ScalingShape(t *testing.T) {
	r, err := RunE12(400)
	if err != nil {
		t.Fatal(err)
	}
	// Hit rate must be non-decreasing in device size (within noise) and
	// substantially better at the top than the bottom.
	first, last := E12Cols[0], E12Cols[len(E12Cols)-1]
	if r.HitRate[last] < r.HitRate[first]+0.2 {
		t.Errorf("scaling flat: %.3f @ %d frames vs %.3f @ %d",
			r.HitRate[first], first, r.HitRate[last], last)
	}
	prev := -1.0
	for _, cols := range E12Cols {
		if r.HitRate[cols]+0.05 < prev {
			t.Errorf("hit rate dropped at %d frames: %.3f < %.3f", cols, r.HitRate[cols], prev)
		}
		if r.HitRate[cols] > prev {
			prev = r.HitRate[cols]
		}
	}
	// Latency moves the other way.
	if r.MeanLatency[last] >= r.MeanLatency[first] {
		t.Errorf("latency did not fall with size: %v → %v", r.MeanLatency[first], r.MeanLatency[last])
	}
}

func TestE13SchedulingShape(t *testing.T) {
	r, err := RunE13(300)
	if err != nil {
		t.Fatal(err)
	}
	// Reconfiguration-aware ordering beats FIFO on total time; sticky is
	// the throughput bound, window sits between on fairness.
	if r.TotalTime["sticky"] >= r.TotalTime["fifo"] {
		t.Errorf("sticky (%v) not faster than fifo (%v)", r.TotalTime["sticky"], r.TotalTime["fifo"])
	}
	if r.TotalTime["window"] >= r.TotalTime["fifo"] {
		t.Errorf("window (%v) not faster than fifo (%v)", r.TotalTime["window"], r.TotalTime["fifo"])
	}
	if r.MaxDisplacement["fifo"] != 0 {
		t.Errorf("fifo overtaking = %d", r.MaxDisplacement["fifo"])
	}
	if r.MaxDisplacement["sticky"] <= r.MaxDisplacement["window"] {
		t.Errorf("sticky overtaking (%d) should exceed window's (%d)",
			r.MaxDisplacement["sticky"], r.MaxDisplacement["window"])
	}
	if r.HitRate["sticky"] <= r.HitRate["fifo"] {
		t.Errorf("sticky hit rate %.3f not above fifo %.3f", r.HitRate["sticky"], r.HitRate["fifo"])
	}
}

func TestE14ReliabilityShape(t *testing.T) {
	r, err := RunE14(300, 10)
	if err != nil {
		t.Fatal(err)
	}
	// More frequent scrubbing shrinks the window of vulnerability and
	// costs more scrub time.
	if r.VulnerableFrac[1] >= r.VulnerableFrac[100] {
		t.Errorf("scrub-every-1 vulnerability %.3f not below scrub-every-100 %.3f",
			r.VulnerableFrac[1], r.VulnerableFrac[100])
	}
	if r.VulnerableFrac[0] < r.VulnerableFrac[5] {
		t.Errorf("never-scrub vulnerability %.3f below scrub-every-5 %.3f",
			r.VulnerableFrac[0], r.VulnerableFrac[5])
	}
	if r.ScrubOverhead[1] <= r.ScrubOverhead[100] {
		t.Errorf("scrub-every-1 overhead %v not above scrub-every-100 %v",
			r.ScrubOverhead[1], r.ScrubOverhead[100])
	}
	if r.ScrubOverhead[0] != 0 {
		t.Error("never-scrub paid scrub time")
	}
	if r.Repaired[1] == 0 {
		t.Error("frequent scrubbing repaired nothing")
	}
}

func TestE15ClusterShape(t *testing.T) {
	r, err := RunE15(300)
	if err != nil {
		t.Fatal(err)
	}
	// Partitioning four cards makes the whole bank resident: hit rate
	// near 1, far above any replicated configuration.
	if r.HitRate["4/partition"] < 0.9 {
		t.Errorf("4/partition hit rate %.3f, want ≈1", r.HitRate["4/partition"])
	}
	if r.HitRate["4/partition"] <= r.HitRate["4/replicate"] {
		t.Errorf("partition (%.3f) not above replicate (%.3f) at 4 cards",
			r.HitRate["4/partition"], r.HitRate["4/replicate"])
	}
	if r.HitRate["1/replicate"] >= r.HitRate["4/partition"] {
		t.Error("single card matched the partitioned cluster")
	}
	if r.MeanLatency["4/partition"] >= r.MeanLatency["1/replicate"] {
		t.Errorf("partitioned latency %v not below single card %v",
			r.MeanLatency["4/partition"], r.MeanLatency["1/replicate"])
	}
}

func TestCatalogueExtended(t *testing.T) {
	exps := All()
	if len(exps) != 21 {
		t.Fatalf("%d experiments", len(exps))
	}
	// Numeric ordering: e9 before e10.
	if exps[8].ID != "e9" || exps[9].ID != "e10" {
		t.Errorf("ordering wrong: %s, %s", exps[8].ID, exps[9].ID)
	}
	for _, id := range []string{"e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e23"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
}

func TestE23NetPathShape(t *testing.T) {
	r, err := RunE23(400, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineOpsPerSec <= 0 || r.MuxBatchOpsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %v / %v", r.BaselineOpsPerSec, r.MuxBatchOpsPerSec)
	}
	// The wall-clock speedup is asserted by the benchmark at full scale;
	// here we pin the deterministic shape behind it: every request passes
	// through the batcher, windows actually form (fewer flushes than
	// requests), and the cluster serves the windows as coalesced runs the
	// baseline never sees.
	if r.BatchedJobs != uint64(r.Requests) {
		t.Errorf("batched jobs = %d, want every one of %d requests", r.BatchedJobs, r.Requests)
	}
	if r.BatchWindows == 0 || r.BatchWindows >= uint64(r.Requests) {
		t.Errorf("batch windows = %d for %d requests — no cross-client coalescing", r.BatchWindows, r.Requests)
	}
	if r.MuxBatchCoalesced <= r.BaselineCoalesced {
		t.Errorf("mux arm coalesced %d jobs, baseline %d — batching added nothing",
			r.MuxBatchCoalesced, r.BaselineCoalesced)
	}
	if len(r.Table.Rows) != 2 {
		t.Errorf("table rows = %d", len(r.Table.Rows))
	}
}

func TestE19FleetShape(t *testing.T) {
	r, err := RunE19(600, 64, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock scaling is asserted at full size by the real run in
	// EXPERIMENTS.md; the shape test pins the deterministic invariants:
	// affinity keeps the aggregate hit rate near the E15 single-node
	// ceiling at every fleet size, hop overhead is recorded, and the
	// kill arm loses nothing.
	for _, n := range r.Nodes {
		if r.OpsPerSec[n] <= 0 {
			t.Errorf("%d nodes: non-positive throughput %v", n, r.OpsPerSec[n])
		}
		if r.HitRate[n] < 0.9 {
			t.Errorf("%d nodes: aggregate hit rate %.3f — affinity lost over the network", n, r.HitRate[n])
		}
		if r.HopP99[n] <= 0 {
			t.Errorf("%d nodes: hop-overhead histogram empty", n)
		}
	}
	if r.KillFailures != 0 {
		t.Errorf("kill arm: %d failed well-formed requests, want 0", r.KillFailures)
	}
	if r.KillEjections == 0 {
		t.Error("kill arm: backend was never ejected")
	}
	if r.KillReinstatements == 0 {
		t.Error("kill arm: backend was never reinstated")
	}
	if len(r.Table.Rows) != len(r.Nodes) {
		t.Errorf("table rows = %d, want %d", len(r.Table.Rows), len(r.Nodes))
	}
}

func TestE16ThroughputShape(t *testing.T) {
	r, err := RunE16(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.SerialOpsPerSec <= 0 || r.ConcurrentOpsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %v / %v", r.SerialOpsPerSec, r.ConcurrentOpsPerSec)
	}
	// The wall-clock speedup itself is asserted by the benchmark; here
	// we pin the work-avoidance shape behind it, which is deterministic.
	if r.ConcurrentHitRate <= r.SerialHitRate {
		t.Errorf("affinity hit rate %.3f not above replicate %.3f",
			r.ConcurrentHitRate, r.SerialHitRate)
	}
	if r.ConcurrentFramesLoaded >= r.SerialFramesLoaded {
		t.Errorf("affinity loaded %d frames, replicate %d — no work avoided",
			r.ConcurrentFramesLoaded, r.SerialFramesLoaded)
	}
	if r.DecompCacheHits == 0 {
		t.Error("decoded-frame cache never hit")
	}
	if len(r.Table.Rows) != 2 {
		t.Errorf("table rows = %d", len(r.Table.Rows))
	}
}
