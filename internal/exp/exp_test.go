package exp

import (
	"strings"
	"testing"
)

// The experiment tests assert the qualitative shapes DESIGN.md §6 commits
// to — who wins, roughly by how much, where crossovers fall — at reduced
// request counts so the suite stays fast. The benchmarks run full scale.

func TestE1AllFunctionsVerify(t *testing.T) {
	r, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Verified != r.Total || r.Total != 16 {
		t.Fatalf("verified %d/%d", r.Verified, r.Total)
	}
	out := r.Table.String()
	if !strings.Contains(out, "aes128") || !strings.Contains(out, "bitonic256") {
		t.Error("table missing functions")
	}
}

func TestE2CompressionShape(t *testing.T) {
	r, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	// Every real codec compresses the bank.
	for _, c := range []string{"rle", "lz77", "huffman", "framediff"} {
		if r.Ratio[c] <= 1.0 {
			t.Errorf("%s ratio = %.2f, want > 1", c, r.Ratio[c])
		}
	}
	// The paper's §4 open problem: exploiting inter-frame symmetry must
	// beat plain RLE and Huffman.
	if r.Ratio["framediff"] <= r.Ratio["rle"] {
		t.Errorf("framediff (%.2f) must beat rle (%.2f)", r.Ratio["framediff"], r.Ratio["rle"])
	}
	if r.Ratio["framediff"] <= r.Ratio["huffman"] {
		t.Errorf("framediff (%.2f) must beat huffman (%.2f)", r.Ratio["framediff"], r.Ratio["huffman"])
	}
	// Under the pipelined configuration model (DESIGN §12) the ROM stream
	// hides behind the port, so byte-rate codecs land within a whisker of
	// the uncompressed baseline: compression buys ROM capacity without a
	// configuration-latency bill. Decoders slower than the port cannot
	// hide — framediff (1.25 cycles/byte) sits visibly above none, and
	// bit-serial Huffman (4 cycles/byte) is the clear bottleneck.
	near := r.ConfigTime["none"] + r.ConfigTime["none"]/100
	for _, c := range []string{"rle", "lz77"} {
		if r.ConfigTime[c] > near {
			t.Errorf("%s config time %v not within 1%% of none %v — ROM stream not hidden", c, r.ConfigTime[c], r.ConfigTime["none"])
		}
	}
	if r.ConfigTime["framediff"] <= r.ConfigTime["none"] {
		t.Errorf("framediff (%v) decodes below port rate, must sit above none (%v)",
			r.ConfigTime["framediff"], r.ConfigTime["none"])
	}
	if r.ConfigTime["huffman"] <= r.ConfigTime["framediff"] {
		t.Errorf("huffman (%v) should be decoder-bound, above framediff (%v)",
			r.ConfigTime["huffman"], r.ConfigTime["framediff"])
	}
}

func TestE2PerFunction(t *testing.T) {
	tab, err := RunE2PerFunction("framediff")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	if _, err := RunE2PerFunction("nope"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestE3ReplacementShape(t *testing.T) {
	r, err := RunE3(600)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.02
	for _, w := range []string{"zipf", "phased"} {
		// LRU must be at least competitive with FIFO and Random under
		// locality, and OPT bounds everything.
		if r.HitRate[w]["lru"]+eps < r.HitRate[w]["fifo"] {
			t.Errorf("%s: LRU (%.3f) well below FIFO (%.3f)", w, r.HitRate[w]["lru"], r.HitRate[w]["fifo"])
		}
		if r.HitRate[w]["lru"]+eps < r.HitRate[w]["random"] {
			t.Errorf("%s: LRU (%.3f) well below Random (%.3f)", w, r.HitRate[w]["lru"], r.HitRate[w]["random"])
		}
	}
	for _, w := range []string{"uniform", "zipf", "phased", "cyclic"} {
		for _, p := range []string{"lru", "fifo", "lfu", "random"} {
			if r.HitRate[w][p] > r.HitRate[w]["opt"]+eps {
				t.Errorf("%s: %s (%.3f) beat OPT (%.3f)", w, p, r.HitRate[w][p], r.HitRate[w]["opt"])
			}
		}
	}
	// The cyclic adversary starves LRU; OPT still hits.
	if r.HitRate["cyclic"]["lru"] > 0.05 {
		t.Errorf("cyclic: LRU hit rate %.3f, expected ≈0", r.HitRate["cyclic"]["lru"])
	}
	if r.HitRate["cyclic"]["opt"] < 0.05 {
		t.Errorf("cyclic: OPT hit rate %.3f, expected substantial", r.HitRate["cyclic"]["opt"])
	}
	// Hits are cheaper than misses: higher hit rate → lower mean latency
	// for the same trace (check the extremes on zipf).
	if r.HitRate["zipf"]["opt"] > r.HitRate["zipf"]["random"] &&
		r.MeanLatency["zipf"]["opt"] >= r.MeanLatency["zipf"]["random"] {
		t.Error("zipf: OPT hits more but is not faster")
	}
}

func TestE4PlacementShape(t *testing.T) {
	r, err := RunE4(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Evictions["contiguous"] < r.Evictions["scatter"] {
		t.Errorf("contiguous (%d evictions) should not beat scatter (%d)",
			r.Evictions["contiguous"], r.Evictions["scatter"])
	}
	if r.HitRate["scatter"]+0.02 < r.HitRate["contiguous"] {
		t.Errorf("scatter hit rate %.3f well below contiguous %.3f",
			r.HitRate["scatter"], r.HitRate["contiguous"])
	}
}

func TestE5OffloadShape(t *testing.T) {
	r, err := RunE5(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Every function's fabric kernel beats host software — except md5,
	// the deliberate negative control (serial rounds, fast software).
	for name, ks := range r.KernelSpeedup {
		if name == "md5" {
			if ks >= 1 {
				t.Errorf("md5 kernel speedup %.2f — negative control broken", ks)
			}
			continue
		}
		if ks <= 1 {
			t.Errorf("%s: kernel speedup %.2f ≤ 1", name, ks)
		}
	}
	// Compute-dense kernels survive the PCI round trip; streaming ones
	// are bus-bound.
	if r.E2ESpeedup["modexp64"] <= 1.5 {
		t.Errorf("modexp64 e2e speedup %.2f, want > 1.5", r.E2ESpeedup["modexp64"])
	}
	if r.E2ESpeedup["crc32"] >= 1 {
		t.Errorf("crc32 e2e speedup %.2f, want < 1 (bus-bound)", r.E2ESpeedup["crc32"])
	}
}

func TestE6CrossoverShape(t *testing.T) {
	r, err := RunE6(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.HotCrossover["modexp64"] == 0 {
		t.Error("modexp64 never crossed — offload broken")
	}
	if r.HotCrossover["aes128"] != 0 {
		t.Errorf("aes128 crossed at %d B — PCI model too cheap", r.HotCrossover["aes128"])
	}
}

func TestE7WindowShape(t *testing.T) {
	r, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	// The curve is U-shaped: tiny windows pay per-window management
	// overhead, huge windows lose the decompress/port overlap (the whole
	// first-window fill is exposed). The sweet spot sits in the middle.
	best := E7Windows[0]
	for _, w := range E7Windows {
		if r.ConfigPath[w] < r.ConfigPath[best] {
			best = w
		}
	}
	first, last := E7Windows[0], E7Windows[len(E7Windows)-1]
	if best == first {
		t.Errorf("smallest window (%d B) is optimal — overhead model missing", first)
	}
	if best == last {
		t.Errorf("largest window (%d B) is optimal — overlap model missing", last)
	}
}

func TestE8ROMCapacityShape(t *testing.T) {
	r, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"none", "rle", "framediff"} {
		prev := -1
		for _, size := range E8ROMSizes {
			got := r.Capacity[size][codec]
			if got <= prev {
				t.Errorf("%s: capacity not increasing with ROM size (%d → %d)", codec, prev, got)
			}
			prev = got
		}
	}
	for _, size := range E8ROMSizes {
		if r.Capacity[size]["framediff"] <= r.Capacity[size]["none"] {
			t.Errorf("ROM %d: framediff stores %d ≤ none %d", size,
				r.Capacity[size]["framediff"], r.Capacity[size]["none"])
		}
	}
}

func TestE18PipelineShape(t *testing.T) {
	r, err := RunE18()
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline may never lose to the additive baseline, for any codec.
	for codec, seq := range r.Sequential {
		if r.Pipelined[codec] > seq {
			t.Errorf("%s: pipelined %v slower than sequential %v", codec, r.Pipelined[codec], seq)
		}
	}
	// The acceptance bar: whole-bank framediff cold loads must speed up by
	// at least 1.4x when ROM streaming, decompression, and port writes
	// overlap (DESIGN §12).
	if r.Speedup["framediff"] < 1.4 {
		t.Errorf("framediff speedup %.2fx, want ≥ 1.4x", r.Speedup["framediff"])
	}
	// Decoder-bound huffman stalls the port; byte-rate rle does not.
	if r.Stall["huffman"] == 0 {
		t.Error("huffman (4 cycles/byte) should leave stalls on the critical path")
	}
	if r.Saved["framediff"] == 0 {
		t.Error("framediff overlap saved nothing — pipeline not engaged")
	}
}

func TestE20ChainingShape(t *testing.T) {
	r, err := RunE20(8, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("chained outputs diverged from staged outputs")
	}
	for chain, stagedPCI := range r.StagedPCI {
		// A 2-stage chain crosses PCI twice instead of four times; the
		// intermediate may be smaller than the input, so the chained PCI
		// share must land well under the staged one but need not halve.
		if r.ChainPCI[chain] >= stagedPCI {
			t.Errorf("%s: chained PCI %v not below staged %v", chain, r.ChainPCI[chain], stagedPCI)
		}
		if r.ChainLatency[chain] >= r.StagedLatency[chain] {
			t.Errorf("%s: chained per-item %v not below staged %v",
				chain, r.ChainLatency[chain], r.StagedLatency[chain])
		}
		// The batched chain overlaps stages across items AND drops the
		// host bounce between the two staged CallBatch passes, so it must
		// beat the E11-style staged ceiling.
		if r.ChainBatch[chain] >= r.StagedBatch[chain] {
			t.Errorf("%s: chain batch %v not below staged batches %v",
				chain, r.ChainBatch[chain], r.StagedBatch[chain])
		}
	}
}

func TestCatalogue(t *testing.T) {
	exps := All()
	if len(exps) != 21 {
		t.Fatalf("%d experiments", len(exps))
	}
	if _, err := ByID("e3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("e99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "b"}, Caption: "c"}
	tab.AddRow("x,y", 2) // comma forces quoting
	out := tab.CSV()
	for _, want := range []string{"# T\n", "a,b\n", "\"x,y\",2\n", "# c\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bbbb"}, Caption: "c"}
	tab.AddRow("x", 3.14159)
	out := tab.String()
	for _, want := range []string{"T\n", "a", "bbbb", "x", "3.14", "c\n", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
