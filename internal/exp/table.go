// Package exp implements the experiment harness: one runner per
// experiment in DESIGN.md §6 (E1–E8), each reproducing a table or series
// the paper's evaluation implies. Runners return structured results plus
// a formatted table; cmd/agilebench prints them and bench_test.go wraps
// them in testing.B benchmarks.
package exp

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row of cells, formatting non-strings with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV (header + rows; title and caption
// become comment lines).
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	if t.Caption != "" {
		fmt.Fprintf(&b, "# %s\n", t.Caption)
	}
	return b.String()
}
