package fpga

import "encoding/binary"

// LUT is one 4-input look-up table: a 16-bit truth table.
type LUT struct {
	Init uint16
}

// Slice groups two LUTs and their flip-flops (Virtex-II slice).
type Slice struct {
	LUTs [LUTsPerSlice]LUT
}

// CLB is one configurable logic block: four slices, a flag byte recording
// flip-flop usage and slice modes, and the switch block routing bitmap of
// the adjacent switch matrix.
type CLB struct {
	Slices [SlicesPerCLB]Slice
	Flags  byte
	Switch uint32
}

// EncodeCLB serialises the CLB into dst, which must be at least CLBBytes
// long, and returns the number of bytes written.
func EncodeCLB(dst []byte, c *CLB) int {
	_ = dst[CLBBytes-1]
	off := 0
	for s := range c.Slices {
		for l := range c.Slices[s].LUTs {
			binary.LittleEndian.PutUint16(dst[off:], c.Slices[s].LUTs[l].Init)
			off += LUTBytes
		}
	}
	dst[off] = c.Flags
	off++
	binary.LittleEndian.PutUint32(dst[off:], c.Switch)
	return off + SwitchBytes
}

// DecodeCLB parses one CLB from src, which must be at least CLBBytes long.
func DecodeCLB(src []byte) CLB {
	_ = src[CLBBytes-1]
	var c CLB
	off := 0
	for s := range c.Slices {
		for l := range c.Slices[s].LUTs {
			c.Slices[s].LUTs[l].Init = binary.LittleEndian.Uint16(src[off:])
			off += LUTBytes
		}
	}
	c.Flags = src[off]
	off++
	c.Switch = binary.LittleEndian.Uint32(src[off:])
	return c
}

// UsedLUTs counts the LUTs of the CLB whose truth table is non-zero.
func (c *CLB) UsedLUTs() int {
	n := 0
	for s := range c.Slices {
		for l := range c.Slices[s].LUTs {
			if c.Slices[s].LUTs[l].Init != 0 {
				n++
			}
		}
	}
	return n
}

// Frame signature layout. The first CLB of every configured frame carries
// a 12-byte signature in its LUT-init area identifying the function that
// owns the frame; an empty (all-zero) frame has no signature. Activation
// reads these signatures back from configuration memory, so a function can
// only run if its bits actually made it into the fabric intact.
const (
	sigMagic = 0xC0DE

	sigOffMagic  = 0 // uint16: sigMagic
	sigOffFnID   = 2 // uint16: function identifier
	sigOffIndex  = 4 // uint16: frame index within the function (0-based)
	sigOffTotal  = 6 // uint16: total frames of the function
	sigOffSerial = 8 // uint16: bitstream serial (build generation)
	sigOffCRC    = 10
	// SigBytes is the size of the frame signature.
	SigBytes = 12
)

// Signature identifies the function configured into a frame.
type Signature struct {
	FnID   uint16
	Index  uint16 // frame index within the function's frame set
	Total  uint16 // total frames the function occupies
	Serial uint16 // bitstream build serial, for staleness checks
}

// crc16 is CRC-16/CCITT-FALSE, used for the in-fabric frame signature.
func crc16(p []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range p {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// EncodeSignature writes sig into the first SigBytes of a frame image.
func EncodeSignature(frame []byte, sig Signature) {
	_ = frame[SigBytes-1]
	binary.LittleEndian.PutUint16(frame[sigOffMagic:], sigMagic)
	binary.LittleEndian.PutUint16(frame[sigOffFnID:], sig.FnID)
	binary.LittleEndian.PutUint16(frame[sigOffIndex:], sig.Index)
	binary.LittleEndian.PutUint16(frame[sigOffTotal:], sig.Total)
	binary.LittleEndian.PutUint16(frame[sigOffSerial:], sig.Serial)
	binary.LittleEndian.PutUint16(frame[sigOffCRC:], crc16(frame[:sigOffCRC]))
}

// DecodeSignature reads the frame signature. ok is false for an empty or
// corrupted frame (bad magic or bad signature CRC).
func DecodeSignature(frame []byte) (sig Signature, ok bool) {
	if len(frame) < SigBytes {
		return Signature{}, false
	}
	if binary.LittleEndian.Uint16(frame[sigOffMagic:]) != sigMagic {
		return Signature{}, false
	}
	if binary.LittleEndian.Uint16(frame[sigOffCRC:]) != crc16(frame[:sigOffCRC]) {
		return Signature{}, false
	}
	sig.FnID = binary.LittleEndian.Uint16(frame[sigOffFnID:])
	sig.Index = binary.LittleEndian.Uint16(frame[sigOffIndex:])
	sig.Total = binary.LittleEndian.Uint16(frame[sigOffTotal:])
	sig.Serial = binary.LittleEndian.Uint16(frame[sigOffSerial:])
	return sig, true
}
