package fpga

import (
	"fmt"
	"sort"
)

// Device families. Real FPGA product lines ship one architecture in
// several sizes, each with its own IDCODE so a bitstream built for one
// part cannot configure another — the IDCODE check in the configuration
// port enforces exactly that. The catalogue below is the simulated
// "AGL1" family.
type Device struct {
	Name   string
	Geom   Geometry
	IDCode uint32
}

var deviceCatalog = []Device{
	{Name: "agl1-s", Geom: Geometry{Rows: 32, Cols: 24}, IDCode: 0xA617_0018},
	{Name: "agl1-m", Geom: Geometry{Rows: 32, Cols: 48}, IDCode: 0xA617_0001},
	{Name: "agl1-l", Geom: Geometry{Rows: 32, Cols: 96}, IDCode: 0xA617_0060},
}

// Devices lists the known device family members, smallest first.
func Devices() []Device {
	out := append([]Device(nil), deviceCatalog...)
	sort.Slice(out, func(i, j int) bool { return out[i].Geom.Cols < out[j].Geom.Cols })
	return out
}

// DeviceByName finds a catalogue device.
func DeviceByName(name string) (Device, error) {
	for _, d := range deviceCatalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("fpga: unknown device %q", name)
}

// NewDeviceFabric builds a fabric for a named catalogue device, with the
// family-correct IDCODE.
func NewDeviceFabric(name string, reg *Registry) (*Fabric, error) {
	d, err := DeviceByName(name)
	if err != nil {
		return nil, err
	}
	f := NewFabric(d.Geom, reg)
	f.idcode = d.IDCode
	return f, nil
}
