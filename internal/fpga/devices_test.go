package fpga

import "testing"

func TestDeviceCatalog(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("%d devices", len(devs))
	}
	// Sorted smallest first, distinct IDCODEs, valid geometries.
	seen := map[uint32]bool{}
	prev := 0
	for _, d := range devs {
		if d.Geom.Cols < prev {
			t.Errorf("catalogue not sorted: %s", d.Name)
		}
		prev = d.Geom.Cols
		if seen[d.IDCode] {
			t.Errorf("duplicate IDCODE %08x", d.IDCode)
		}
		seen[d.IDCode] = true
		if err := d.Geom.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName("agl1-m")
	if err != nil || d.Geom != DefaultGeometry || d.IDCode != DefaultIDCode {
		t.Errorf("agl1-m = %+v, %v (the medium part is the family default)", d, err)
	}
	if _, err := DeviceByName("xc2v1000"); err == nil {
		t.Error("foreign part accepted")
	}
}

func TestCrossDeviceBitstreamRejected(t *testing.T) {
	// A bitstream carrying the small part's IDCODE must not configure
	// the large part.
	reg := NewRegistry()
	if err := reg.Register(echoCore{7, "echo"}); err != nil {
		t.Fatal(err)
	}
	large, err := NewDeviceFabric("agl1-l", reg)
	if err != nil {
		t.Fatal(err)
	}
	small, err := DeviceByName("agl1-s")
	if err != nil {
		t.Fatal(err)
	}
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, small.IDCode)
	if _, err := large.Port().Write(s.bytes()); err == nil {
		t.Error("large part accepted the small part's bitstream")
	}
}
