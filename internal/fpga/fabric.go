package fpga

import (
	"errors"
	"fmt"
	"sort"
)

// Fabric is the simulated partially reconfigurable device: frame-organised
// configuration memory, a configuration port, and behavioural execution of
// activated functions.
type Fabric struct {
	geom Geometry
	reg  *Registry
	port ConfigPort

	cfg        [][]byte // configuration memory, one slice per frame
	generation []uint64 // bumped on every write to a frame

	idcode uint32
}

// DefaultIDCode identifies the simulated device family ("AGL1" in hex).
const DefaultIDCode = 0xA617_0001

// NewFabric creates a fabric with the given geometry, drawing function
// behaviour from reg. It panics on an invalid geometry (a construction
// bug, not a runtime condition).
func NewFabric(geom Geometry, reg *Registry) *Fabric {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	f := &Fabric{
		geom:       geom,
		reg:        reg,
		cfg:        make([][]byte, geom.NumFrames()),
		generation: make([]uint64, geom.NumFrames()),
		idcode:     DefaultIDCode,
	}
	for i := range f.cfg {
		f.cfg[i] = make([]byte, geom.FrameBytes())
	}
	f.port.fab = f
	return f
}

// Geometry reports the fabric dimensions.
func (f *Fabric) Geometry() Geometry { return f.geom }

// IDCode reports the device identity checked against bitstream IDCODE
// writes.
func (f *Fabric) IDCode() uint32 { return f.idcode }

// Port returns the configuration port.
func (f *Fabric) Port() *ConfigPort { return &f.port }

// Registry returns the core registry backing behavioural execution.
func (f *Fabric) Registry() *Registry { return f.reg }

// ReadFrame returns a copy of frame i's configuration memory (readback).
func (f *Fabric) ReadFrame(i int) ([]byte, error) {
	if i < 0 || i >= f.geom.NumFrames() {
		return nil, fmt.Errorf("%w: %d", ErrFrameAddress, i)
	}
	out := make([]byte, f.geom.FrameBytes())
	copy(out, f.cfg[i])
	return out, nil
}

// ClearFrame zeroes frame i, returning its logic space to the empty state.
func (f *Fabric) ClearFrame(i int) error {
	if i < 0 || i >= f.geom.NumFrames() {
		return fmt.Errorf("%w: %d", ErrFrameAddress, i)
	}
	for j := range f.cfg[i] {
		f.cfg[i][j] = 0
	}
	f.generation[i]++
	return nil
}

// InjectSEU flips one configuration bit of frame i — a single-event
// upset. Crucially it does NOT bump the frame's write generation:
// radiation does not announce itself to the bookkeeping, which is exactly
// why scrubbing (mcu.Controller.Scrub) has to read configuration memory
// back and compare against the golden image.
func (f *Fabric) InjectSEU(i, bit int) error {
	if i < 0 || i >= f.geom.NumFrames() {
		return fmt.Errorf("%w: %d", ErrFrameAddress, i)
	}
	nbits := f.geom.FrameBytes() * 8
	if bit < 0 || bit >= nbits {
		return fmt.Errorf("fpga: SEU bit %d out of range (frame has %d bits)", bit, nbits)
	}
	f.cfg[i][bit/8] ^= 1 << uint(bit%8)
	return nil
}

// Generation reports the write counter of frame i: it bumps on every
// configuration write or clear, letting bookkeeping layers prove a frame
// is untouched since they last wrote it. Out-of-range frames report 0.
func (f *Fabric) Generation(i int) uint64 {
	if i < 0 || i >= f.geom.NumFrames() {
		return 0
	}
	return f.generation[i]
}

// FrameSignature decodes the function signature of frame i. ok is false
// for empty or corrupted frames.
func (f *Fabric) FrameSignature(i int) (Signature, bool) {
	if i < 0 || i >= f.geom.NumFrames() {
		return Signature{}, false
	}
	return DecodeSignature(f.cfg[i])
}

// Utilization reports how many frames currently hold a valid signature.
func (f *Fabric) Utilization() (configured, total int) {
	for i := range f.cfg {
		if _, ok := DecodeSignature(f.cfg[i]); ok {
			configured++
		}
	}
	return configured, f.geom.NumFrames()
}

// Activation errors.
var (
	ErrNoFrames     = errors.New("fpga: activation with empty frame set")
	ErrBadSignature = errors.New("fpga: frame carries no valid function signature")
	ErrMixedFrames  = errors.New("fpga: frame set spans more than one function")
	ErrIncomplete   = errors.New("fpga: frame set does not cover the whole function")
	ErrUnknownCore  = errors.New("fpga: no behavioural core registered for function")
	ErrOverwritten  = errors.New("fpga: function frames were reconfigured since activation")
)

// Activate binds the frames to the function whose bitstream they carry.
// Every frame must hold a valid signature of the same function and serial,
// and the frame indices must cover 0..Total-1 exactly. The behavioural
// core is resolved through the registry; activation fails if the
// configured function has no registered core — the fabric cannot execute
// bits it does not recognise.
func (f *Fabric) Activate(frames []int) (*Instance, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	var first Signature
	seen := make([]bool, len(frames))
	for n, fi := range frames {
		if fi < 0 || fi >= f.geom.NumFrames() {
			return nil, fmt.Errorf("%w: %d", ErrFrameAddress, fi)
		}
		sig, ok := DecodeSignature(f.cfg[fi])
		if !ok {
			return nil, fmt.Errorf("%w: frame %d", ErrBadSignature, fi)
		}
		if n == 0 {
			first = sig
			if int(sig.Total) != len(frames) {
				return nil, fmt.Errorf("%w: function %d wants %d frames, activation names %d",
					ErrIncomplete, sig.FnID, sig.Total, len(frames))
			}
		} else if sig.FnID != first.FnID || sig.Serial != first.Serial {
			return nil, fmt.Errorf("%w: frame %d holds fn %d/serial %d, expected fn %d/serial %d",
				ErrMixedFrames, fi, sig.FnID, sig.Serial, first.FnID, first.Serial)
		}
		if int(sig.Index) >= len(frames) || seen[sig.Index] {
			return nil, fmt.Errorf("%w: duplicate or out-of-range frame index %d", ErrIncomplete, sig.Index)
		}
		seen[sig.Index] = true
	}
	core, ok := f.reg.Lookup(first.FnID)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCore, first.FnID)
	}
	inst := &Instance{
		fab:    f,
		core:   core,
		serial: first.Serial,
		frames: append([]int(nil), frames...),
		gens:   make([]uint64, len(frames)),
	}
	for n, fi := range frames {
		inst.gens[n] = f.generation[fi]
	}
	sort.Ints(inst.frames)
	return inst, nil
}

// Instance is an activated function: a binding between a set of configured
// frames and the behavioural core the bits identify. The binding is
// invalidated if any of its frames is reconfigured.
type Instance struct {
	fab    *Fabric
	core   Core
	serial uint16
	frames []int
	gens   []uint64

	// Execs counts completed executions.
	Execs uint64
}

// Core reports the behavioural core bound to the instance.
func (in *Instance) Core() Core { return in.core }

// Frames returns the sorted frame set of the instance.
func (in *Instance) Frames() []int { return append([]int(nil), in.frames...) }

// Valid reports whether all frames still hold the configuration the
// instance was activated with.
func (in *Instance) Valid() bool {
	for n, fi := range in.frames {
		if in.fab.generation[fi] != in.gens[n] {
			return false
		}
	}
	return true
}

// Exec runs the function on in-fabric data, returning the output and the
// fabric-clock cycle cost. It fails with ErrOverwritten if any frame was
// reconfigured after activation.
func (in *Instance) Exec(input []byte) (output []byte, cycles uint64, err error) {
	if !in.Valid() {
		return nil, 0, ErrOverwritten
	}
	out, err := in.core.Exec(input)
	if err != nil {
		return nil, 0, fmt.Errorf("fpga: core %q: %w", in.core.Name(), err)
	}
	in.Execs++
	return out, in.core.ExecCycles(len(input)), nil
}
