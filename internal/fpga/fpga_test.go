package fpga

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{{0, 4}, {4, 0}, {-1, 4}, {1, 4}}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
	}
}

func TestGeometrySizes(t *testing.T) {
	g := Geometry{Rows: 32, Cols: 48}
	if got := g.FrameBytes(); got != 32*CLBBytes {
		t.Errorf("FrameBytes = %d", got)
	}
	if got := g.FrameWords(); got != (32*CLBBytes+3)/4 {
		t.Errorf("FrameWords = %d", got)
	}
	if got := g.ConfigBytes(); got != 48*32*CLBBytes {
		t.Errorf("ConfigBytes = %d", got)
	}
	if got := g.LUTsPerFrame(); got != 31*8 {
		t.Errorf("LUTsPerFrame = %d, want %d", got, 31*8)
	}
}

func TestFramesForLUTs(t *testing.T) {
	g := Geometry{Rows: 32, Cols: 48}
	per := g.LUTsPerFrame()
	cases := []struct{ luts, want int }{
		{0, 1}, {1, 1}, {per, 1}, {per + 1, 2}, {3 * per, 3}, {3*per + 5, 4},
	}
	for _, c := range cases {
		if got := g.FramesForLUTs(c.luts); got != c.want {
			t.Errorf("FramesForLUTs(%d) = %d, want %d", c.luts, got, c.want)
		}
	}
}

func TestCLBRoundTrip(t *testing.T) {
	f := func(inits [8]uint16, flags byte, sw uint32) bool {
		var c CLB
		k := 0
		for s := range c.Slices {
			for l := range c.Slices[s].LUTs {
				c.Slices[s].LUTs[l].Init = inits[k]
				k++
			}
		}
		c.Flags = flags
		c.Switch = sw
		buf := make([]byte, CLBBytes)
		if n := EncodeCLB(buf, &c); n != CLBBytes {
			return false
		}
		got := DecodeCLB(buf)
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCLBUsedLUTs(t *testing.T) {
	var c CLB
	if c.UsedLUTs() != 0 {
		t.Errorf("empty CLB UsedLUTs = %d", c.UsedLUTs())
	}
	c.Slices[1].LUTs[0].Init = 0xFFFF
	c.Slices[3].LUTs[1].Init = 1
	if c.UsedLUTs() != 2 {
		t.Errorf("UsedLUTs = %d, want 2", c.UsedLUTs())
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	f := func(fn, idx, total, serial uint16) bool {
		frame := make([]byte, 64)
		EncodeSignature(frame, Signature{FnID: fn, Index: idx, Total: total, Serial: serial})
		got, ok := DecodeSignature(frame)
		return ok && got == (Signature{FnID: fn, Index: idx, Total: total, Serial: serial})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignatureRejectsCorruption(t *testing.T) {
	frame := make([]byte, 64)
	EncodeSignature(frame, Signature{FnID: 7, Index: 1, Total: 3, Serial: 9})
	for i := 0; i < SigBytes; i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		if _, ok := DecodeSignature(mut); ok {
			t.Errorf("flipping signature byte %d went undetected", i)
		}
	}
	if _, ok := DecodeSignature(make([]byte, 64)); ok {
		t.Error("all-zero frame decoded as signed")
	}
	if _, ok := DecodeSignature(make([]byte, 4)); ok {
		t.Error("short frame decoded as signed")
	}
}

// echoCore is a trivial behavioural core for fabric tests.
type echoCore struct {
	id   uint16
	name string
}

func (e echoCore) ID() uint16   { return e.id }
func (e echoCore) Name() string { return e.name }
func (e echoCore) Exec(in []byte) ([]byte, error) {
	out := make([]byte, len(in))
	for i, b := range in {
		out[i] = b ^ 0x5A
	}
	return out, nil
}
func (e echoCore) ExecCycles(n int) uint64 { return uint64(n) + 4 }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echoCore{1, "echo"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echoCore{1, "other"}); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := r.Register(echoCore{2, "echo"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil core accepted")
	}
	if c, ok := r.Lookup(1); !ok || c.Name() != "echo" {
		t.Error("Lookup(1) failed")
	}
	if _, ok := r.Lookup(99); ok {
		t.Error("Lookup(99) should fail")
	}
	if c, ok := r.LookupName("echo"); !ok || c.ID() != 1 {
		t.Error("LookupName failed")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if names := r.Names(); len(names) != 1 || names[0] != "echo" {
		t.Errorf("Names = %v", names)
	}
}

// testFabric builds a small fabric with one registered echo core.
func testFabric(t *testing.T) *Fabric {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(echoCore{7, "echo"}); err != nil {
		t.Fatal(err)
	}
	return NewFabric(Geometry{Rows: 4, Cols: 8}, reg)
}

// wordStream assembles bitstream words and tracks the port CRC.
type wordStream struct {
	words []uint32
	crc   uint32
}

func (s *wordStream) raw(w uint32) { s.words = append(s.words, w) }

func (s *wordStream) reg(reg int, vals ...uint32) {
	s.raw(MakeType1(OpWrite, reg, len(vals)))
	for _, v := range vals {
		if reg != RegCRC {
			s.crc = CRCUpdate(s.crc, reg, v)
		}
		s.raw(v)
	}
	if reg == RegCMD && len(vals) == 1 && vals[0] == CmdRCRC {
		s.crc = 0
	}
}

func (s *wordStream) bytes() []byte {
	out := make([]byte, 4*len(s.words))
	for i, w := range s.words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// frameImage builds a frame payload with a valid signature and a filler
// pattern, returned as FDRI words.
func frameImage(g Geometry, sig Signature, fill byte) []uint32 {
	frame := make([]byte, g.FrameBytes())
	for i := range frame {
		frame[i] = fill
	}
	EncodeSignature(frame, sig)
	words := make([]uint32, g.FrameWords())
	for i := range words {
		var buf [4]byte
		copy(buf[:], frame[4*i:])
		words[i] = binary.BigEndian.Uint32(buf[:])
	}
	return words
}

// loadFunction writes a two-frame function into frames 2 and 5 through the
// configuration port, exactly as a partial bitstream would.
func loadFunction(t *testing.T, f *Fabric, serial uint16) {
	t.Helper()
	g := f.Geometry()
	var s wordStream
	s.raw(DummyWord)
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, f.IDCode())
	s.reg(RegFLR, uint32(g.FrameWords()))
	s.reg(RegCMD, CmdWCFG)
	for n, far := range []int{2, 5} {
		s.reg(RegFAR, uint32(far))
		s.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Index: uint16(n), Total: 2, Serial: serial}, 0xA0+byte(n))...)
	}
	s.reg(RegCMD, CmdLFRM)
	s.reg(RegCRC, s.crc)
	s.reg(RegCMD, CmdDESYNC)
	if _, err := f.Port().Write(s.bytes()); err != nil {
		t.Fatalf("port write: %v", err)
	}
	if err := f.Port().Err(); err != nil {
		t.Fatalf("port fault: %v", err)
	}
}

func TestPortLoadsAndActivates(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)

	if sig, ok := f.FrameSignature(2); !ok || sig.FnID != 7 || sig.Index != 0 {
		t.Fatalf("frame 2 signature = %+v ok=%v", sig, ok)
	}
	if sig, ok := f.FrameSignature(5); !ok || sig.Index != 1 {
		t.Fatalf("frame 5 signature = %+v ok=%v", sig, ok)
	}
	if _, ok := f.FrameSignature(3); ok {
		t.Error("untouched frame 3 has a signature")
	}
	if cfgd, total := f.Utilization(); cfgd != 2 || total != 8 {
		t.Errorf("Utilization = %d/%d", cfgd, total)
	}

	inst, err := f.Activate([]int{5, 2})
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	out, cyc, err := inst.Exec([]byte{1, 2, 3})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if want := []byte{1 ^ 0x5A, 2 ^ 0x5A, 3 ^ 0x5A}; string(out) != string(want) {
		t.Errorf("Exec out = %v, want %v", out, want)
	}
	if cyc != 7 {
		t.Errorf("Exec cycles = %d, want 7", cyc)
	}
	if inst.Execs != 1 {
		t.Errorf("Execs = %d", inst.Execs)
	}
}

func TestPortCycleAccounting(t *testing.T) {
	f := testFabric(t)
	before := f.Port().Cycles()
	if before != 0 {
		t.Fatalf("fresh port cycles = %d", before)
	}
	loadFunction(t, f, 1)
	c := f.Port().TakeCycles()
	if c == 0 {
		t.Fatal("no cycles charged for configuration")
	}
	// One cycle per byte: at minimum the two frame payloads.
	min := uint64(2 * 4 * f.Geometry().FrameWords())
	if c < min {
		t.Errorf("cycles = %d, want >= %d", c, min)
	}
	if f.Port().Cycles() != 0 {
		t.Error("TakeCycles did not reset")
	}
}

func TestActivateRejectsWrongSets(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)

	cases := []struct {
		name   string
		frames []int
		want   error
	}{
		{"empty", nil, ErrNoFrames},
		{"subset", []int{2}, ErrIncomplete},
		{"empty frame", []int{2, 3}, ErrBadSignature},
		{"out of range", []int{2, 99}, ErrFrameAddress},
		{"duplicate", []int{2, 2}, ErrIncomplete},
	}
	for _, c := range cases {
		if _, err := f.Activate(c.frames); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestActivateRejectsMixedSerials(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)
	// Overwrite only frame 2 with a newer serial; frame 5 is stale.
	g := f.Geometry()
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, f.IDCode())
	s.reg(RegFLR, uint32(g.FrameWords()))
	s.reg(RegCMD, CmdWCFG)
	s.reg(RegFAR, 2)
	s.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Index: 0, Total: 2, Serial: 2}, 0xB0)...)
	s.reg(RegCMD, CmdLFRM)
	s.reg(RegCRC, s.crc)
	if _, err := f.Port().Write(s.bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Activate([]int{2, 5}); !errors.Is(err, ErrMixedFrames) {
		t.Errorf("err = %v, want ErrMixedFrames", err)
	}
}

func TestExecAfterOverwriteFails(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)
	inst, err := f.Activate([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Valid() {
		t.Fatal("instance should be valid")
	}
	if err := f.ClearFrame(5); err != nil {
		t.Fatal(err)
	}
	if inst.Valid() {
		t.Error("instance still valid after frame clear")
	}
	if _, _, err := inst.Exec([]byte{1}); !errors.Is(err, ErrOverwritten) {
		t.Errorf("Exec err = %v, want ErrOverwritten", err)
	}
}

func TestPortRejectsBadIDCode(t *testing.T) {
	f := testFabric(t)
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, 0xDEADBEEF)
	_, err := f.Port().Write(s.bytes())
	if !errors.Is(err, ErrIDCODE) {
		t.Fatalf("err = %v, want ErrIDCODE", err)
	}
	if f.Port().Err() == nil {
		t.Error("fault not sticky")
	}
	// Further writes keep failing until Reset.
	if _, err := f.Port().Write([]byte{0, 0, 0, 0}); err == nil {
		t.Error("faulted port accepted data")
	}
	f.Port().Reset()
	if f.Port().Err() != nil {
		t.Error("Reset did not clear fault")
	}
}

func TestPortRejectsFrameDataWithoutSetup(t *testing.T) {
	f := testFabric(t)
	g := f.Geometry()

	// FDRI before WCFG.
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, f.IDCode())
	s.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Total: 1}, 1)...)
	if _, err := f.Port().Write(s.bytes()); !errors.Is(err, ErrNoWCFG) {
		t.Errorf("err = %v, want ErrNoWCFG", err)
	}

	// FDRI before IDCODE.
	f2 := testFabric(t)
	var s2 wordStream
	s2.raw(SyncWord)
	s2.reg(RegCMD, CmdRCRC)
	s2.reg(RegCMD, CmdWCFG)
	s2.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Total: 1}, 1)...)
	if _, err := f2.Port().Write(s2.bytes()); !errors.Is(err, ErrNoIDCheck) {
		t.Errorf("err = %v, want ErrNoIDCheck", err)
	}
}

func TestPortCRCMismatchCorruptsSession(t *testing.T) {
	f := testFabric(t)
	g := f.Geometry()
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, f.IDCode())
	s.reg(RegFLR, uint32(g.FrameWords()))
	s.reg(RegCMD, CmdWCFG)
	s.reg(RegFAR, 1)
	s.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Index: 0, Total: 1, Serial: 1}, 0xCC)...)
	s.reg(RegCMD, CmdLFRM)
	s.reg(RegCRC, s.crc^0xFFFF) // wrong CRC
	if _, err := f.Port().Write(s.bytes()); !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
	// The frame was physically written, but its signature must now be
	// invalid so it can never activate.
	if _, ok := f.FrameSignature(1); ok {
		t.Error("frame from failed session still carries a valid signature")
	}
}

func TestPortRejectsBadFrameAddress(t *testing.T) {
	f := testFabric(t)
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegFAR, 999)
	if _, err := f.Port().Write(s.bytes()); !errors.Is(err, ErrFrameAddress) {
		t.Errorf("err = %v, want ErrFrameAddress", err)
	}
}

func TestPortRejectsBadFLR(t *testing.T) {
	f := testFabric(t)
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegFLR, 5)
	if _, err := f.Port().Write(s.bytes()); !errors.Is(err, ErrFrameLength) {
		t.Errorf("err = %v, want ErrFrameLength", err)
	}
}

func TestPortIgnoresPreSyncNoise(t *testing.T) {
	f := testFabric(t)
	noise := []byte{0x12, 0x34, 0x56, 0x78, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := f.Port().Write(noise); err != nil {
		t.Fatalf("pre-sync noise rejected: %v", err)
	}
	loadFunctionAfterNoise := func() {
		loadFunction(t, f, 3)
	}
	loadFunctionAfterNoise()
	if _, err := f.Activate([]int{2, 5}); err != nil {
		t.Errorf("activate after noisy sync: %v", err)
	}
}

func TestPortRejectsMalformedPackets(t *testing.T) {
	cases := []struct {
		name  string
		words []uint32
	}{
		{"type2", []uint32{SyncWord, 2 << 29}},
		{"read op", []uint32{SyncWord, MakeType1(OpRead, RegSTAT, 1)}},
		{"bad reg", []uint32{SyncWord, MakeType1(OpWrite, 31, 1), 0}},
		{"stat write", []uint32{SyncWord, MakeType1(OpWrite, RegSTAT, 1), 0}},
		{"bad cmd", []uint32{SyncWord, MakeType1(OpWrite, RegCMD, 1), 999}},
	}
	for _, c := range cases {
		f := testFabric(t)
		var s wordStream
		for _, w := range c.words {
			s.raw(w)
		}
		if _, err := f.Port().Write(s.bytes()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadFrameAndClear(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)
	data, err := f.ReadFrame(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeSignature(data); !ok {
		t.Error("readback lost the signature")
	}
	// Readback is a copy: mutating it must not affect the fabric.
	data[0] ^= 0xFF
	if _, ok := f.FrameSignature(2); !ok {
		t.Error("mutating readback corrupted fabric state")
	}
	if _, err := f.ReadFrame(-1); err == nil {
		t.Error("ReadFrame(-1) accepted")
	}
	if err := f.ClearFrame(99); err == nil {
		t.Error("ClearFrame(99) accepted")
	}
}

func TestFramesWrittenCounter(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1)
	if f.Port().FramesWritten != 2 {
		t.Errorf("FramesWritten = %d, want 2", f.Port().FramesWritten)
	}
}
