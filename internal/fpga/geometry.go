// Package fpga simulates a partially reconfigurable FPGA in the style of
// the Xilinx Virtex-II device targeted by the paper's proof-of-concept.
//
// The simulated device is a grid of CLBs (configurable logic blocks, each
// holding four slices of two 4-input LUTs and two flip-flops) with one
// switch block per CLB. Configuration is frame-based: a frame is one full
// column of CLBs plus their switch blocks — exactly the paper's definition
// of "a prespecified number of Logic Blocks and the relevant Switch
// Blocks". Frames are the atomic unit of partial reconfiguration: writing
// one frame leaves every other frame, and any function running in them,
// untouched.
//
// Configuration data enters through a byte-wide configuration port
// (modelled on SelectMAP) that parses a packetised bitstream: a sync word
// followed by type-1 register writes addressing the frame address register
// (FAR), frame data input register (FDRI), command register (CMD) and a
// running CRC. The packet format is defined in this package because the
// port must parse it; the assembler that produces bitstreams lives in
// package bitstream.
//
// Functions configured into frames are executed behaviourally: the first
// CLB of every frame carries a signature identifying the function, and
// activating a frame set binds it to a Core — a Go model of the configured
// logic registered in a Registry — which supplies both the input/output
// behaviour and the fabric cycle cost.
package fpga

import "fmt"

// Per-CLB configuration layout within a frame, in bytes.
const (
	// SlicesPerCLB is the number of slices in one CLB (Virtex-II).
	SlicesPerCLB = 4
	// LUTsPerSlice is the number of 4-input LUTs per slice.
	LUTsPerSlice = 2
	// LUTBytes is the storage for one LUT's 16-bit init vector.
	LUTBytes = 2
	// CLBLUTBytes is the LUT configuration storage of one CLB.
	CLBLUTBytes = SlicesPerCLB * LUTsPerSlice * LUTBytes
	// CLBFlagBytes holds the flip-flop usage / mode flags of one CLB.
	CLBFlagBytes = 1
	// SwitchBytes holds the programmable-interconnect-point bitmap of the
	// switch block attached to one CLB.
	SwitchBytes = 4
	// CLBBytes is the total configuration footprint of one CLB row within
	// a frame: LUT inits, flag byte, switch block.
	CLBBytes = CLBLUTBytes + CLBFlagBytes + SwitchBytes
)

// Geometry describes the fabric dimensions. Frames are columns: the device
// has Cols frames of Rows CLBs each.
type Geometry struct {
	Rows int // CLBs per column (per frame)
	Cols int // columns = number of frames
}

// DefaultGeometry is a medium Virtex-II-class device: 48 frames of 32
// CLBs, 32 KiB of configuration memory.
var DefaultGeometry = Geometry{Rows: 32, Cols: 48}

// Validate reports an error if the geometry is degenerate.
func (g Geometry) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("fpga: invalid geometry %dx%d", g.Rows, g.Cols)
	}
	if g.Rows < 2 {
		return fmt.Errorf("fpga: geometry needs at least 2 rows for the frame signature, got %d", g.Rows)
	}
	return nil
}

// FrameBytes reports the configuration size of one frame.
func (g Geometry) FrameBytes() int { return g.Rows * CLBBytes }

// FrameWords reports the configuration size of one frame in 32-bit words.
// FrameBytes is always a multiple of 4 only when Rows*CLBBytes is; the
// port pads the final word, so FrameWords rounds up.
func (g Geometry) FrameWords() int { return (g.FrameBytes() + 3) / 4 }

// NumFrames reports the number of frames (columns) on the device.
func (g Geometry) NumFrames() int { return g.Cols }

// ConfigBytes reports the total configuration memory of the device.
func (g Geometry) ConfigBytes() int { return g.Cols * g.FrameBytes() }

// LUTsPerFrame reports how many LUTs one frame provides, excluding the
// signature CLB (CLB row 0), which is reserved.
func (g Geometry) LUTsPerFrame() int {
	return (g.Rows - 1) * SlicesPerCLB * LUTsPerSlice
}

// FramesForLUTs reports how many frames a function needing n usable LUTs
// occupies on this geometry, rounding up. A function always occupies at
// least one frame.
func (g Geometry) FramesForLUTs(n int) int {
	per := g.LUTsPerFrame()
	if n <= 0 {
		return 1
	}
	return (n + per - 1) / per
}

func (g Geometry) String() string {
	return fmt.Sprintf("%d×%d CLBs, %d frames × %d B", g.Rows, g.Cols, g.NumFrames(), g.FrameBytes())
}
