package fpga

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Bitstream wire format. Words travel big-endian through the byte-wide
// configuration port, as on SelectMAP. The format mirrors the Virtex-II
// packet scheme closely enough that every control path the paper relies on
// (device check, frame addressing, partial loads, CRC protection) exists.
const (
	// SyncWord marks the start of packet processing.
	SyncWord = 0xAA995566
	// DummyWord is the pad word accepted before sync.
	DummyWord = 0xFFFFFFFF
)

// Configuration registers addressed by type-1 packets.
const (
	RegCRC    = 0 // write: compare against running CRC, then reset it
	RegFAR    = 1 // frame address register
	RegFDRI   = 2 // frame data input; word count = payload length
	RegCMD    = 3 // command register
	RegCTL    = 4 // control (accepted, ignored)
	RegMASK   = 5 // control mask (accepted, ignored)
	RegSTAT   = 6 // status (read-only; writes are an error)
	RegCOR    = 7 // configuration options (accepted, ignored)
	RegIDCODE = 8 // device identity check; must precede FDRI
	RegFLR    = 9 // frame length register, in words; must match geometry
	numRegs   = 10
)

// Command-register values.
const (
	CmdNull   = 0
	CmdWCFG   = 1  // enable configuration writes
	CmdLFRM   = 3  // last frame: close the write session
	CmdRCRC   = 7  // reset the running CRC
	CmdDESYNC = 13 // leave packet mode; a new SyncWord is required
)

// MakeType1 builds a type-1 packet header for op (OpWrite/OpNop) on
// register reg with a payload of count words. Count must fit in 11 bits.
func MakeType1(op, reg, count int) uint32 {
	return 1<<29 | uint32(op&3)<<27 | uint32(reg&0x1F)<<13 | uint32(count&0x7FF)
}

// Packet header opcodes.
const (
	OpNop   = 0
	OpRead  = 1
	OpWrite = 2
)

// parseType1 splits a packet header word.
func parseType1(w uint32) (typ, op, reg, count int) {
	return int(w >> 29), int(w >> 27 & 3), int(w >> 13 & 0x1F), int(w & 0x7FF)
}

// Configuration port errors.
var (
	ErrNotSynced    = errors.New("fpga: configuration port not synchronised")
	ErrBadPacket    = errors.New("fpga: malformed configuration packet")
	ErrIDCODE       = errors.New("fpga: bitstream IDCODE does not match device")
	ErrFrameLength  = errors.New("fpga: bitstream frame length does not match device")
	ErrCRC          = errors.New("fpga: configuration CRC mismatch")
	ErrNoWCFG       = errors.New("fpga: frame data received outside a WCFG session")
	ErrNoIDCheck    = errors.New("fpga: frame data received before IDCODE check")
	ErrFrameAddress = errors.New("fpga: frame address out of range")
	ErrPortFault    = errors.New("fpga: configuration port in error state")
)

// port FSM states.
const (
	stUnsynced = iota
	stHeader   // expecting a packet header
	stData     // consuming FDRI payload words
)

// ConfigPort is the byte-wide configuration interface of the fabric. It
// implements io.Writer; callers stream bitstream bytes (for example the
// mini-OS configuration module, window by window) and the port parses
// packets, performs register writes, and commits frame data into the
// fabric's configuration memory.
//
// Timing: each byte costs one cycle of the configuration clock domain;
// cycle counts accumulate in Cycles and are harvested by the caller.
type ConfigPort struct {
	fab *Fabric

	state   int
	wordBuf [4]byte
	wordLen int

	// packet consumption
	dataReg   int // register receiving payload words
	dataLeft  int // payload words still expected
	wcfg      bool
	idChecked bool
	far       int    // current frame address
	frameOff  int    // byte offset within the frame being filled
	frame     []byte // staging for the frame at far

	crc     uint32
	touched []int // frames written since last RCRC, for corruption marking

	fault  error
	cycles uint64

	// FramesWritten counts frames committed to configuration memory over
	// the port's lifetime.
	FramesWritten uint64
}

// Err reports the sticky port fault, if any.
func (p *ConfigPort) Err() error { return p.fault }

// Cycles reports configuration-clock cycles consumed since the last
// TakeCycles call.
func (p *ConfigPort) Cycles() uint64 { return p.cycles }

// TakeCycles returns the accumulated cycle count and resets it.
func (p *ConfigPort) TakeCycles() uint64 {
	c := p.cycles
	p.cycles = 0
	return c
}

// Reset clears the port FSM and any sticky fault. Configuration memory is
// left as-is (matching a PROG_B-less resync rather than a full reset).
func (p *ConfigPort) Reset() {
	p.state = stUnsynced
	p.wordLen = 0
	p.dataLeft = 0
	p.wcfg = false
	p.idChecked = false
	p.frameOff = 0
	p.frame = nil
	p.crc = 0
	p.touched = nil
	p.fault = nil
}

// Write streams bitstream bytes into the port. It always consumes all of
// data (charging one configuration cycle per byte, as a real byte-wide
// port would clock them in) and reports the first fault encountered, which
// is also kept sticky: a faulted port ignores further data until Reset.
func (p *ConfigPort) Write(data []byte) (int, error) {
	p.cycles += uint64(len(data))
	if p.fault != nil {
		return len(data), p.fault
	}
	for _, b := range data {
		p.wordBuf[p.wordLen] = b
		p.wordLen++
		if p.wordLen < 4 {
			continue
		}
		p.wordLen = 0
		if err := p.word(binary.BigEndian.Uint32(p.wordBuf[:])); err != nil {
			p.fail(err)
			return len(data), err
		}
	}
	return len(data), nil
}

// WriteWord feeds one 32-bit word directly (used by tests).
func (p *ConfigPort) WriteWord(w uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], w)
	_, err := p.Write(b[:])
	return err
}

// fail records a sticky fault and corrupts the signature of every frame
// touched in the failed session, so a half-applied configuration can never
// be activated.
func (p *ConfigPort) fail(err error) {
	p.fault = err
	for _, fi := range p.touched {
		f := p.fab.cfg[fi]
		if len(f) >= SigBytes {
			f[sigOffCRC] ^= 0xFF // invalidate the signature CRC
		}
	}
	p.touched = nil
}

func (p *ConfigPort) word(w uint32) error {
	switch p.state {
	case stUnsynced:
		if w == SyncWord {
			p.state = stHeader
		}
		// Anything else before sync is scanned past, like real hardware.
		return nil

	case stData:
		return p.dataWord(w)

	case stHeader:
		typ, op, reg, count := parseType1(w)
		if w == DummyWord || (typ == 0 && op == OpNop) {
			return nil // pad / NOP
		}
		if typ != 1 {
			return fmt.Errorf("%w: unsupported packet type %d", ErrBadPacket, typ)
		}
		switch op {
		case OpNop:
			return nil
		case OpRead:
			return fmt.Errorf("%w: reads not supported through write port", ErrBadPacket)
		case OpWrite:
		default:
			return fmt.Errorf("%w: bad opcode %d", ErrBadPacket, op)
		}
		if reg >= numRegs {
			return fmt.Errorf("%w: register %d", ErrBadPacket, reg)
		}
		if reg == RegSTAT {
			return fmt.Errorf("%w: STAT is read-only", ErrBadPacket)
		}
		if count == 0 {
			return nil
		}
		p.dataReg = reg
		p.dataLeft = count
		p.state = stData
		return nil
	}
	return fmt.Errorf("%w: bad port state %d", ErrBadPacket, p.state)
}

func (p *ConfigPort) dataWord(w uint32) error {
	p.dataLeft--
	if p.dataLeft == 0 {
		p.state = stHeader
	}
	if p.dataReg != RegCRC {
		p.crcAccum(p.dataReg, w)
	}
	switch p.dataReg {
	case RegCRC:
		if w != p.crc {
			return fmt.Errorf("%w: got %08x, want %08x", ErrCRC, w, p.crc)
		}
		p.crc = 0
		p.touched = nil
		return nil
	case RegFAR:
		if int(w) >= p.fab.geom.NumFrames() {
			return fmt.Errorf("%w: %d (device has %d frames)", ErrFrameAddress, w, p.fab.geom.NumFrames())
		}
		p.far = int(w)
		p.frameOff = 0
		return nil
	case RegFDRI:
		return p.frameDataWord(w)
	case RegCMD:
		return p.command(w)
	case RegIDCODE:
		if w != p.fab.IDCode() {
			return fmt.Errorf("%w: bitstream %08x, device %08x", ErrIDCODE, w, p.fab.IDCode())
		}
		p.idChecked = true
		return nil
	case RegFLR:
		if int(w) != p.fab.geom.FrameWords() {
			return fmt.Errorf("%w: bitstream %d words, device %d", ErrFrameLength, w, p.fab.geom.FrameWords())
		}
		return nil
	case RegCTL, RegMASK, RegCOR:
		return nil // accepted, no behaviour modelled
	}
	return fmt.Errorf("%w: payload for register %d", ErrBadPacket, p.dataReg)
}

func (p *ConfigPort) command(w uint32) error {
	switch w {
	case CmdNull:
		return nil
	case CmdWCFG:
		p.wcfg = true
		return nil
	case CmdLFRM:
		if p.frameOff != 0 {
			return fmt.Errorf("%w: LFRM with partial frame (%d bytes pending)", ErrBadPacket, p.frameOff)
		}
		p.wcfg = false
		return nil
	case CmdRCRC:
		p.crc = 0
		p.touched = nil
		return nil
	case CmdDESYNC:
		if p.frameOff != 0 {
			return fmt.Errorf("%w: DESYNC with partial frame", ErrBadPacket)
		}
		p.state = stUnsynced
		p.wcfg = false
		return nil
	default:
		return fmt.Errorf("%w: unknown command %d", ErrBadPacket, w)
	}
}

func (p *ConfigPort) frameDataWord(w uint32) error {
	if !p.wcfg {
		return ErrNoWCFG
	}
	if !p.idChecked {
		return ErrNoIDCheck
	}
	if p.frame == nil {
		p.frame = make([]byte, p.fab.geom.FrameBytes())
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], w)
	fb := p.fab.geom.FrameBytes()
	for _, b := range buf {
		if p.frameOff < fb {
			p.frame[p.frameOff] = b
			p.frameOff++
		}
		// Bytes beyond FrameBytes within the final padded word are dropped.
	}
	if p.frameOff == fb {
		if p.far >= p.fab.geom.NumFrames() {
			return fmt.Errorf("%w: auto-incremented past device end", ErrFrameAddress)
		}
		copy(p.fab.cfg[p.far], p.frame)
		p.touched = append(p.touched, p.far)
		p.fab.generation[p.far]++
		p.FramesWritten++
		p.far++ // auto-increment, as the FAR does during multi-frame FDRI bursts
		p.frameOff = 0
	}
	return nil
}

// crcAccum folds a register write into the running CRC. The exact
// polynomial matters less than that port and assembler agree; both use
// IEEE CRC-32 over the register id byte followed by the big-endian word.
func (p *ConfigPort) crcAccum(reg int, w uint32) {
	var b [5]byte
	b[0] = byte(reg)
	binary.BigEndian.PutUint32(b[1:], w)
	p.crc = crc32.Update(p.crc, crc32.IEEETable, b[:])
}

// CRCUpdate mirrors the port's CRC accumulation for bitstream assemblers.
func CRCUpdate(crc uint32, reg int, w uint32) uint32 {
	var b [5]byte
	b[0] = byte(reg)
	binary.BigEndian.PutUint32(b[1:], w)
	return crc32.Update(crc, crc32.IEEETable, b[:])
}
