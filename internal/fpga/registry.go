package fpga

import (
	"fmt"
	"sort"
)

// Core is the behavioural model of one hardware function: the logic that a
// configured frame set realises. Exec defines the input→output behaviour;
// ExecCycles is the fabric-clock cost model (what the real logic would
// take, typically derived from the core's pipeline depth and throughput).
//
// A Core is looked up by the function id carried in the frame signatures
// at activation time, so execution requires that the right bits actually
// reached the fabric.
type Core interface {
	ID() uint16
	Name() string
	// Exec computes the function over input. Implementations must treat
	// input as read-only and return freshly allocated output.
	Exec(input []byte) ([]byte, error)
	// ExecCycles reports fabric cycles to process inputLen bytes.
	ExecCycles(inputLen int) uint64
}

// Registry maps function ids to behavioural cores. It models the library
// of netlists the co-processor vendor shipped bitstreams for. The zero
// value is not usable; use NewRegistry.
type Registry struct {
	byID   map[uint16]Core
	byName map[string]Core
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint16]Core), byName: make(map[string]Core)}
}

// Register adds a core. Registering a duplicate id or name is an error.
func (r *Registry) Register(c Core) error {
	if c == nil {
		return fmt.Errorf("fpga: Register(nil)")
	}
	if _, dup := r.byID[c.ID()]; dup {
		return fmt.Errorf("fpga: duplicate core id %d (%s)", c.ID(), c.Name())
	}
	if _, dup := r.byName[c.Name()]; dup {
		return fmt.Errorf("fpga: duplicate core name %q", c.Name())
	}
	r.byID[c.ID()] = c
	r.byName[c.Name()] = c
	return nil
}

// Lookup resolves a core by function id.
func (r *Registry) Lookup(id uint16) (Core, bool) {
	c, ok := r.byID[id]
	return c, ok
}

// LookupName resolves a core by name.
func (r *Registry) LookupName(name string) (Core, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Len reports the number of registered cores.
func (r *Registry) Len() int { return len(r.byID) }

// Names returns all registered core names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
