package fpga

// Robustness: the configuration port faces whatever the host streams at
// it. Random byte soup must never panic, never corrupt frames silently,
// and always leave the port in a recoverable state.

import (
	"testing"

	"agilefpga/internal/sim"
)

func TestPortSurvivesRandomBytes(t *testing.T) {
	rng := sim.NewRNG(0xF0CC)
	for trial := 0; trial < 200; trial++ {
		f := testFabric(t)
		n := rng.Intn(2048) + 4
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = byte(rng.Uint64())
		}
		// Must not panic; error or silence are both acceptable.
		_, _ = f.Port().Write(junk)
		// Whatever happened, no frame may carry a *valid* signature for
		// an unknown function that could activate.
		for i := 0; i < f.Geometry().NumFrames(); i++ {
			if sig, ok := f.FrameSignature(i); ok {
				// A valid signature from random bytes is a 2^-16 CRC
				// fluke at best; activation must still fail safe.
				if _, err := f.Activate([]int{i}); err == nil && sig.Total == 1 {
					t.Fatalf("trial %d: random bytes produced an activatable frame", trial)
				}
			}
		}
		// The port must recover after a reset.
		f.Port().Reset()
		if f.Port().Err() != nil {
			t.Fatalf("trial %d: reset did not clear fault", trial)
		}
		loadFunction(t, f, uint16(trial+1))
		if _, err := f.Activate([]int{2, 5}); err != nil {
			t.Fatalf("trial %d: port unusable after junk + reset: %v", trial, err)
		}
	}
}

func TestPortSurvivesRandomPacketStreams(t *testing.T) {
	// Syntactically valid packet headers with random registers/payloads:
	// a sharper fuzz than raw bytes because it reaches the register FSM.
	rng := sim.NewRNG(0xBEEF)
	for trial := 0; trial < 200; trial++ {
		f := testFabric(t)
		var s wordStream
		s.raw(SyncWord)
		packets := rng.Intn(20) + 1
		for p := 0; p < packets; p++ {
			reg := rng.Intn(12) // includes out-of-range registers
			count := rng.Intn(4)
			s.raw(MakeType1(OpWrite, reg, count))
			for w := 0; w < count; w++ {
				s.raw(uint32(rng.Uint64()))
			}
		}
		_, _ = f.Port().Write(s.bytes())
		f.Port().Reset()
		// Port must still work.
		loadFunction(t, f, uint16(trial+1))
	}
}

func TestWriteAfterDesync(t *testing.T) {
	f := testFabric(t)
	loadFunction(t, f, 1) // ends with DESYNC
	// Post-desync bytes are scanned, not parsed: no fault.
	if _, err := f.Port().Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatalf("post-desync scan failed: %v", err)
	}
	// A second session works without an explicit Reset.
	loadFunction(t, f, 2)
	if _, err := f.Activate([]int{2, 5}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialWordBuffering(t *testing.T) {
	// Bytes may arrive in any chunking; the port must assemble words
	// identically. Load a function one byte at a time.
	f := testFabric(t)
	g := f.Geometry()
	var s wordStream
	s.raw(SyncWord)
	s.reg(RegCMD, CmdRCRC)
	s.reg(RegIDCODE, f.IDCode())
	s.reg(RegFLR, uint32(g.FrameWords()))
	s.reg(RegCMD, CmdWCFG)
	s.reg(RegFAR, 1)
	s.reg(RegFDRI, frameImage(g, Signature{FnID: 7, Index: 0, Total: 1, Serial: 3}, 0x5A)...)
	s.reg(RegCMD, CmdLFRM)
	s.reg(RegCRC, s.crc)
	stream := s.bytes()
	for _, b := range stream {
		if _, err := f.Port().Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Activate([]int{1}); err != nil {
		t.Fatalf("byte-at-a-time load failed: %v", err)
	}
}
