package mcu

import (
	"errors"
	"fmt"

	"agilefpga/internal/memory"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// On-fabric function chaining (DESIGN §15). A chain keeps several bank
// functions resident simultaneously — the non-contiguous placement
// machinery already supports multi-resident fabrics — and feeds stage
// k's output to stage k+1 through the local RAM staging windows, so a
// k-stage pipeline crosses PCI twice (input in, final output out)
// instead of 2k times.

// MaxChainStages bounds a chain's stage list. Mirrored by
// wire.MaxChainStages so a frame that decodes is always executable.
const MaxChainStages = 8

// ErrBadChain reports a stage list outside [2, MaxChainStages].
var ErrBadChain = errors.New("mcu: chain must name 2..8 stages")

// ChainStage reports one stage of a chained execution: its function,
// whether it was already resident, and its share of the chain's cost
// (ROM lookup + configuration in the residency pass, data movement and
// execution in the dataflow pass). Stage costs sum exactly to the
// chain's breakdown.
type ChainStage struct {
	Fn   uint16
	Hit  bool
	Cost sim.Breakdown
}

// ExecuteChain runs fns as one on-card dataflow chain over input. Every
// stage is made resident first — pinned, so loading stage k+1 can never
// evict stage k — then the stages run in order with each intermediate
// result handed to the next stage through local RAM. It returns the
// final output, the whole chain's breakdown (no PCI — the host side
// owns that), and the per-stage attribution.
func (c *Controller) ExecuteChain(fns []uint16, input []byte) ([]byte, sim.Breakdown, []ChainStage, error) {
	var br sim.Breakdown
	spanBase := c.stats.Phases.Total() + c.stats.PrefetchTime
	out, stages, handoff, err := c.executeChain(fns, input, &br)
	c.lastBreakdown = br
	c.lastChain = stages
	c.stats.Phases.AddAll(br)
	if err != nil {
		c.stats.Errors++
		var fn uint16
		if len(fns) > 0 {
			fn = fns[0]
		}
		c.emit(trace.KindError, fn, 0, 0, err.Error())
		c.observeRequest(fn, br, false, err)
		return nil, br, stages, err
	}
	off := spanBase
	for _, st := range stages {
		c.emitSpans(st.Fn, off, st.Cost)
		c.observeRequest(st.Fn, st.Cost, st.Hit, nil)
		off += st.Cost.Total()
	}
	c.stats.ChainRuns++
	c.stats.ChainStages += uint64(len(fns))
	c.stats.ChainHandoffBytes += handoff
	if c.metrics != nil {
		c.metrics.Counter("agile_chain_runs_total").Inc()
		c.metrics.Counter("agile_chain_stages_total").Add(uint64(len(fns)))
		c.metrics.Counter("agile_chain_handoff_bytes_total").Add(handoff)
	}
	return out, br, stages, nil
}

// LastChainStages reports the per-stage attribution of the most recent
// chained command (the mailbox path cannot return it in registers).
// Callers hold the owning card's lock, like LastBreakdown.
func (c *Controller) LastChainStages() []ChainStage { return c.lastChain }

// executeChain is the two-pass chain executor. Pass 1 resolves every
// stage's ROM record and brings all stages onto the fabric at once;
// pass 2 streams the data through them. handoff counts the intermediate
// bytes moved between stages through RAM — traffic that a staged
// execution would have pushed across PCI twice.
func (c *Controller) executeChain(fns []uint16, input []byte, br *sim.Breakdown) (out []byte, stages []ChainStage, handoff uint64, err error) {
	if len(fns) < 2 || len(fns) > MaxChainStages {
		return nil, nil, 0, fmt.Errorf("%w, got %d", ErrBadChain, len(fns))
	}
	if len(input) == 0 {
		return nil, nil, 0, errors.New("mcu: empty input for chain")
	}
	k := &c.kernel
	// Pin every stage for the duration of the chain: place() hides a
	// pinned victim from the policy instead of evicting it. Hidden
	// functions are re-registered with the policy on the way out, so
	// the replacement machinery sees the same resident set afterwards.
	for _, fn := range fns {
		k.pinned[fn] = true
	}
	defer func() {
		for _, fn := range k.hidden {
			if res, ok := k.table[fn]; ok {
				k.policy.OnInstall(fn, res.lastAccess)
			}
		}
		k.hidden = k.hidden[:0]
		for fn := range k.pinned {
			delete(k.pinned, fn)
		}
	}()

	stages = make([]ChainStage, len(fns))
	// Whatever happens, the chain's breakdown is exactly the sum of its
	// stage costs — error paths included.
	defer func() {
		for i := range stages {
			br.AddAll(stages[i].Cost)
		}
	}()

	// Pass 1: make every stage resident simultaneously. Each stage is
	// one request against the replacement machinery, so Requests, Hits
	// and Misses keep their per-function-activation semantics.
	recs := make([]memory.Record, len(fns))
	for i, fn := range fns {
		sbr := &stages[i].Cost
		stages[i].Fn = fn
		c.stats.Requests++
		k.now++
		c.emit(trace.KindRequest, fn, 0, len(input), "chain")

		rec, scanned, ferr := c.findRecord(fn)
		sbr.Add(sim.PhaseROM, c.mcuDom.Advance(memory.ReadCycles(scanned*memory.RecordBytes)))
		if ferr != nil {
			return nil, stages, handoff, ferr
		}
		c.noteFn(rec)
		recs[i] = rec

		res, resident := k.table[fn]
		if resident && res.serial == rec.Serial && res.inst.Valid() {
			c.stats.Hits++
			stages[i].Hit = true
			c.emit(trace.KindHit, fn, len(res.frames), 0, "")
			if k.prefetched[fn] {
				c.stats.PrefetchHits++
			}
		} else {
			if resident {
				// Stale residency (reinstalled function): evict and reload.
				c.evict(fn, sbr)
			}
			c.stats.Misses++
			c.emit(trace.KindMiss, fn, 0, 0, "")
			if _, lerr := c.load(rec, sbr); lerr != nil {
				return nil, stages, handoff, lerr
			}
		}
		delete(k.prefetched, fn)
		k.table[fn].lastAccess = k.now
		k.policy.OnAccess(fn, k.now)
	}

	// Pass 2: stream the data through the chain. Stage 0 reads the
	// host's input from the input window; every later stage streams its
	// predecessor's output straight out of the output window — the RAM
	// hand-off that replaces a per-stage PCI round trip.
	inWin, outWin := c.ram.Capacity()/2, c.ram.Capacity()/2
	cur := input
	for i, fn := range fns {
		sbr := &stages[i].Cost
		rec := recs[i]
		// Generation re-check: if anything invalidated the stage since
		// pass 1 (a scrub rewrite, a reinstall bumping the serial), the
		// stage reloads before it runs rather than executing stale bits.
		res := k.table[fn]
		if res == nil || res.serial != rec.Serial || !res.inst.Valid() {
			if res != nil {
				c.evict(fn, sbr)
			}
			stages[i].Hit = false
			var lerr error
			if res, lerr = c.load(rec, sbr); lerr != nil {
				return nil, stages, handoff, lerr
			}
		}

		padded := padTo(cur, int(rec.InBus))
		if len(padded) > inWin {
			return nil, stages, handoff, fmt.Errorf("%w: chain stage %d input %d bytes, window %d",
				ErrRAMWindow, i, len(padded), inWin)
		}
		off := 0
		if i > 0 {
			off = inWin
			handoff += uint64(len(padded))
		}
		if werr := c.ram.Write(off, padded); werr != nil {
			return nil, stages, handoff, werr
		}
		inBeats := uint64(len(padded)) / uint64(rec.InBus)
		sbr.Add(sim.PhaseDataIn, c.mcuDom.Advance(inBeats+4))

		stageOut, fabCycles, xerr := res.inst.Exec(padded)
		if xerr != nil {
			return nil, stages, handoff, xerr
		}
		sbr.Add(sim.PhaseExec, c.fabDom.Advance(fabCycles))

		outPadded := padTo(stageOut, int(rec.OutBus))
		if len(outPadded) > outWin {
			return nil, stages, handoff, fmt.Errorf("%w: chain stage %d output %d bytes, window %d",
				ErrRAMWindow, i, len(outPadded), outWin)
		}
		if werr := c.ram.Write(inWin, outPadded); werr != nil {
			return nil, stages, handoff, werr
		}
		outBeats := uint64(len(outPadded)) / uint64(rec.OutBus)
		sbr.Add(sim.PhaseDataOut, c.mcuDom.Advance(outBeats+4))

		cur = stageOut
	}
	c.lastOutputLen = len(cur)
	return cur, stages, handoff, nil
}
