package mcu

// The decoded-frame cache. Reloading a function the fabric evicted
// re-runs the whole window-by-window decompression of its compressed
// bitstream, even though the decoded frame images are bit-for-bit the
// ones produced moments earlier. A slice of local RAM set aside as a
// bounded LRU cache of decoded images turns those repeat decodes into
// plain RAM reads: the configuration module still pushes every frame
// through the port (the fabric must be rewritten), but PhaseDecompress
// disappears from the reload entirely.
//
// Entries are keyed by (function id, record serial). The host driver
// bumps the serial on every install, so a re-installed (re-synthesised)
// function can never revive a stale image.

// dcKey identifies a cached configuration: function id in the high
// half, record serial in the low half.
type dcKey uint32

func makeDCKey(fnID, serial uint16) dcKey { return dcKey(fnID)<<16 | dcKey(serial) }

// dcEntry is one cached configuration: the decoded frame images of one
// (function, serial) pair, on an intrusive LRU list.
type dcEntry struct {
	key        dcKey
	frames     [][]byte
	bytes      int
	prev, next *dcEntry
}

// decodeCache is a byte-bounded LRU of decoded frame images. Not safe
// for concurrent use; the owning Controller serialises access.
type decodeCache struct {
	capBytes int
	bytes    int
	entries  map[dcKey]*dcEntry
	// head is most recently used, tail least.
	head, tail *dcEntry
}

// newDecodeCache returns a cache bounded to capBytes of decoded frames.
func newDecodeCache(capBytes int) *decodeCache {
	return &decodeCache{capBytes: capBytes, entries: make(map[dcKey]*dcEntry)}
}

// get returns the cached frame images for key, refreshing recency.
// Callers must treat the returned slices as read-only.
func (d *decodeCache) get(key dcKey) ([][]byte, bool) {
	e, ok := d.entries[key]
	if !ok {
		return nil, false
	}
	d.unlink(e)
	d.pushFront(e)
	return e.frames, true
}

// put caches the frame images for key, evicting least-recently-used
// entries until the byte bound holds. An image set larger than the whole
// cache is not stored.
func (d *decodeCache) put(key dcKey, frames [][]byte) {
	if old, ok := d.entries[key]; ok {
		d.remove(old)
	}
	n := 0
	for _, f := range frames {
		n += len(f)
	}
	if n > d.capBytes {
		return
	}
	for d.bytes+n > d.capBytes && d.tail != nil {
		d.remove(d.tail)
	}
	e := &dcEntry{key: key, frames: frames, bytes: n}
	d.entries[key] = e
	d.pushFront(e)
	d.bytes += n
}

// Len reports the number of cached configurations.
func (d *decodeCache) Len() int { return len(d.entries) }

// Bytes reports the decoded bytes currently held.
func (d *decodeCache) Bytes() int { return d.bytes }

func (d *decodeCache) remove(e *dcEntry) {
	d.unlink(e)
	delete(d.entries, e.key)
	d.bytes -= e.bytes
}

func (d *decodeCache) unlink(e *dcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if d.head == e {
		d.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if d.tail == e {
		d.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (d *decodeCache) pushFront(e *dcEntry) {
	e.next = d.head
	if d.head != nil {
		d.head.prev = e
	}
	d.head = e
	if d.tail == nil {
		d.tail = e
	}
}
