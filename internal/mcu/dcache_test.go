package mcu

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

// fabricSnapshot reads every frame of the fabric back.
func fabricSnapshot(t *testing.T, c *Controller) [][]byte {
	t.Helper()
	g := c.Fabric().Geometry()
	out := make([][]byte, g.NumFrames())
	for i := range out {
		fr, err := c.Fabric().ReadFrame(i)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		out[i] = fr
	}
	return out
}

// TestDecodeCacheHitSkipsDecompress is the acceptance test of the
// decoded-frame cache: a reload whose images are cached reports
// PhaseDecompress == 0 while leaving the fabric byte-identical to a
// full decode, and the output is still correct.
func TestDecodeCacheHitSkipsDecompress(t *testing.T) {
	cfg := defaultCfg()
	cfg.DecodeCacheBytes = 1 << 20
	c := newController(t, cfg)
	f := algos.AES128()
	install(t, c, f, "framediff")
	input := []byte("agile algorithm-on-demand coproc")
	want, _ := f.Exec(input)

	// Cold load: full decompression, and the images land in the cache.
	out, br, err := c.Execute(f.ID(), input)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("cold output wrong")
	}
	if br.Get(sim.PhaseDecompress) == 0 {
		t.Fatal("cold load paid no decompression — test is vacuous")
	}
	if entries, _ := c.DecodeCacheSize(); entries != 1 {
		t.Fatalf("cache entries = %d after cold load", entries)
	}
	coldStats := c.Stats()
	if coldStats.DecompCacheHits != 0 {
		t.Fatalf("cold load counted %d cache hits", coldStats.DecompCacheHits)
	}
	reference := fabricSnapshot(t, c)

	// Evict and reload: the decode must come from the cache.
	if !c.Evict(f.ID()) {
		t.Fatal("evict failed")
	}
	out, br, err = c.Execute(f.ID(), input)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("cached reload output wrong")
	}
	if got := br.Get(sim.PhaseDecompress); got != 0 {
		t.Errorf("cached reload paid PhaseDecompress = %v, want 0", got)
	}
	if br.Get(sim.PhaseCache) == 0 {
		t.Error("cached reload charged no PhaseCache time")
	}
	if br.Get(sim.PhaseConfigure) == 0 {
		t.Error("cached reload must still pay the configuration port")
	}
	st := c.Stats()
	if st.DecompCacheHits != 1 {
		t.Errorf("DecompCacheHits = %d, want 1", st.DecompCacheHits)
	}
	if st.DecompCacheBytes == 0 {
		t.Error("DecompCacheBytes = 0 after a hit")
	}
	got := fabricSnapshot(t, c)
	for i := range reference {
		if !bytes.Equal(reference[i], got[i]) {
			t.Fatalf("frame %d differs between full decode and cache hit", i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDecodeCacheDisabledByDefault: without DecodeCacheBytes a reload
// pays decompression every time.
func TestDecodeCacheDisabledByDefault(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.CRC32()
	install(t, c, f, "framediff")
	in := []byte{1, 2, 3, 4}
	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	c.Evict(f.ID())
	_, br, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatal(err)
	}
	if br.Get(sim.PhaseDecompress) == 0 {
		t.Error("reload skipped decompression with the cache disabled")
	}
	if st := c.Stats(); st.DecompCacheHits != 0 {
		t.Errorf("DecompCacheHits = %d with cache disabled", st.DecompCacheHits)
	}
}

// TestDecodeCacheEvictsAtByteBound bounds the cache below two functions'
// decoded footprints: caching the second must evict the first (LRU), and
// an over-bound image set is never stored.
func TestDecodeCacheEvictsAtByteBound(t *testing.T) {
	g := fpga.DefaultGeometry
	a, b := algos.AES128(), algos.SHA256()
	aBytes := g.FramesForLUTs(a.LUTs) * g.FrameBytes()
	bBytes := g.FramesForLUTs(b.LUTs) * g.FrameBytes()

	cfg := defaultCfg()
	// Room for the larger of the two, not both.
	bound := aBytes
	if bBytes > bound {
		bound = bBytes
	}
	cfg.DecodeCacheBytes = bound
	c := newController(t, cfg)
	install(t, c, a, "framediff")
	install(t, c, b, "framediff")

	inA := []byte("agile algorithm-on-demand coproc")
	inB := []byte("0123456789abcdef0123456789abcdef")
	if _, _, err := c.Execute(a.ID(), inA); err != nil {
		t.Fatal(err)
	}
	if entries, bytes := c.DecodeCacheSize(); entries != 1 || bytes != aBytes {
		t.Fatalf("after A: entries=%d bytes=%d, want 1/%d", entries, bytes, aBytes)
	}
	if _, _, err := c.Execute(b.ID(), inB); err != nil {
		t.Fatal(err)
	}
	entries, cached := c.DecodeCacheSize()
	if cached > cfg.DecodeCacheBytes {
		t.Fatalf("cache holds %d bytes, bound %d", cached, cfg.DecodeCacheBytes)
	}
	if entries != 1 || cached != bBytes {
		t.Fatalf("after B: entries=%d bytes=%d, want 1/%d (A evicted)", entries, cached, bBytes)
	}
	// A's reload is a cache miss (it was evicted), B's is a hit.
	c.Evict(a.ID())
	c.Evict(b.ID())
	if _, _, err := c.Execute(a.ID(), inA); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DecompCacheHits != 0 {
		t.Fatalf("A reload hit a cache that should have evicted it")
	}
	if _, _, err := c.Execute(b.ID(), inB); err != nil {
		t.Fatal(err)
	}
	// A's reload re-cached A, evicting B — so B's reload misses too.
	st = c.Stats()
	if st.DecompCacheHits != 0 {
		t.Fatalf("B survived an eviction it should not have")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDecodeCacheLRUOrder exercises the raw LRU structure: recency
// refresh on get, eviction order, byte accounting, over-bound rejects.
func TestDecodeCacheLRUOrder(t *testing.T) {
	mk := func(n int) [][]byte { return [][]byte{make([]byte, n)} }
	d := newDecodeCache(100)
	d.put(makeDCKey(1, 1), mk(40))
	d.put(makeDCKey(2, 1), mk(40))
	if d.Len() != 2 || d.Bytes() != 80 {
		t.Fatalf("len=%d bytes=%d", d.Len(), d.Bytes())
	}
	// Refresh key 1; inserting 40 more must evict key 2, not key 1.
	if _, ok := d.get(makeDCKey(1, 1)); !ok {
		t.Fatal("key 1 missing")
	}
	d.put(makeDCKey(3, 1), mk(40))
	if _, ok := d.get(makeDCKey(2, 1)); ok {
		t.Error("LRU kept the stale entry")
	}
	if _, ok := d.get(makeDCKey(1, 1)); !ok {
		t.Error("LRU evicted the freshly used entry")
	}
	if d.Bytes() > 100 {
		t.Errorf("bytes=%d over bound", d.Bytes())
	}
	// An entry larger than the whole cache is rejected outright.
	d.put(makeDCKey(4, 1), mk(101))
	if _, ok := d.get(makeDCKey(4, 1)); ok {
		t.Error("over-bound entry cached")
	}
	// Replacing a key frees its old bytes.
	d.put(makeDCKey(1, 1), mk(10))
	want := 0
	for _, k := range []dcKey{makeDCKey(1, 1), makeDCKey(3, 1)} {
		if fr, ok := d.get(k); ok {
			want += len(fr[0])
		}
	}
	if d.Bytes() != want {
		t.Errorf("bytes=%d, want %d", d.Bytes(), want)
	}
	// Distinct serials of one function are distinct entries.
	d.put(makeDCKey(5, 1), mk(10))
	d.put(makeDCKey(5, 2), mk(10))
	if _, ok := d.get(makeDCKey(5, 1)); !ok {
		t.Error("serial 1 clobbered by serial 2")
	}
}

// TestDecodeCacheManySerials hammers insert/evict cycles to shake the
// intrusive list bookkeeping.
func TestDecodeCacheManySerials(t *testing.T) {
	d := newDecodeCache(256)
	for i := 0; i < 1000; i++ {
		d.put(makeDCKey(uint16(i%7), uint16(i)), [][]byte{make([]byte, 64)})
		if d.Bytes() > 256 {
			t.Fatalf("iteration %d: bytes=%d over bound", i, d.Bytes())
		}
		if d.Len() > 4 {
			t.Fatalf("iteration %d: %d entries exceed 256/64", i, d.Len())
		}
	}
	if d.Len() != 4 {
		t.Fatalf("final len=%d", d.Len())
	}
	// Everything still reachable must be the most recent four.
	found := 0
	for i := 996; i < 1000; i++ {
		if _, ok := d.get(makeDCKey(uint16(i%7), uint16(i))); ok {
			found++
		}
	}
	if found != 4 {
		t.Errorf("found %d of the 4 newest entries", found)
	}
}
