package mcu

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/fpga"
)

// freeRuns counts maximal contiguous runs in the free list.
func freeRuns(c *Controller) int {
	fl := c.kernel.freeList
	if len(fl) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(fl); i++ {
		if fl[i] != fl[i-1]+1 {
			runs++
		}
	}
	return runs
}

// fragment builds a deliberately fragmented fabric: load small functions
// everywhere, then evict every other one.
func fragment(t *testing.T, c *Controller) {
	t.Helper()
	fns := []*algos.Function{algos.CRC32(), algos.GFMul(), algos.DES(), algos.FIR(), algos.SHA1()}
	for _, f := range fns {
		install(t, c, f, "rle")
		if _, _, err := c.Execute(f.ID(), make([]byte, f.BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	// Evict alternating residents to punch holes.
	for i, f := range fns {
		if i%2 == 1 {
			c.Evict(f.ID())
		}
	}
}

func TestDefragCompactsFreeSpace(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: false})
	fragment(t, c)
	if freeRuns(c) < 2 {
		t.Skip("fabric not fragmented; scenario needs adjusting")
	}
	moved, cost, err := c.Defrag()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || cost == 0 {
		t.Errorf("defrag moved %d at cost %v", moved, cost)
	}
	if got := freeRuns(c); got != 1 {
		t.Errorf("free space in %d runs after defrag, want 1", got)
	}
	if c.Stats().Defrags != 1 {
		t.Error("defrag not counted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every resident function still computes correctly.
	for _, fn := range c.ResidentFunctions() {
		for _, f := range algos.Bank() {
			if f.ID() != fn {
				continue
			}
			in := make([]byte, f.BlockBytes)
			in[0] = 9
			out, _, err := c.Execute(fn, in)
			if err != nil {
				t.Fatalf("%s after defrag: %v", f.Name(), err)
			}
			want, _ := f.Exec(in)
			if !bytes.Equal(out, want) {
				t.Errorf("%s wrong after defrag", f.Name())
			}
		}
	}
}

func TestDefragEnablesContiguousPlacement(t *testing.T) {
	// A contiguous-only device too fragmented for a big function must
	// accept it after defrag without extra evictions.
	c := newController(t, Config{Geometry: fpga.Geometry{Rows: 32, Cols: 26}, AllowScatter: false})
	small := []*algos.Function{algos.CRC32(), algos.GFMul(), algos.FIR()} // 2+1+5 frames
	for _, f := range small {
		install(t, c, f, "rle")
		if _, _, err := c.Execute(f.ID(), make([]byte, f.BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	install(t, c, algos.FFT(), "rle") // needs 13 contiguous frames
	// Punch a hole in the middle to fragment the 18 free frames.
	c.Evict(algos.GFMul().ID())

	if _, _, err := c.Defrag(); err != nil {
		t.Fatal(err)
	}
	evBefore := c.Stats().Evictions
	if _, _, err := c.Execute(algos.FFT().ID(), make([]byte, algos.FFT().BlockBytes)); err != nil {
		t.Fatalf("fft after defrag: %v", err)
	}
	if c.Stats().Evictions != evBefore {
		t.Errorf("fft load still needed %d evictions after defrag",
			c.Stats().Evictions-evBefore)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragUnderDiffReloadStillCompacts(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: false, DiffReload: true})
	fragment(t, c)
	if _, _, err := c.Defrag(); err != nil {
		t.Fatal(err)
	}
	if got := freeRuns(c); got != 1 {
		t.Errorf("diff-mode defrag left %d free runs", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragEmptyFabric(t *testing.T) {
	c := newController(t, defaultCfg())
	moved, _, err := c.Defrag()
	if err != nil || moved != 0 {
		t.Errorf("empty defrag: moved=%d err=%v", moved, err)
	}
}
