package mcu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"agilefpga/internal/memory"
	"agilefpga/internal/pci"
)

// The controller's PCI target face. BAR0 is the command mailbox; BAR1 is
// a window onto local RAM (inputs in the lower half, outputs in the upper
// half). The host protocol per request is:
//
//  1. burst-write the input into BAR1 at offset 0
//  2. write ARG0 = function id, ARG1 = input length
//  3. write CMD = CmdExec — the command runs synchronously on the card
//  4. read STATUS (StatusOK / StatusError), RESULTLEN
//  5. burst-read the output from BAR1 at OutWindowOff
//
// The one-request-at-a-time synchronous mailbox matches the paper's
// host-issues-instructions-over-PCI model.

// BAR0 register offsets.
const (
	RegCMD       = 0x00
	RegARG0      = 0x04
	RegARG1      = 0x08
	RegSTATUS    = 0x0C
	RegRESULTLEN = 0x10
	RegERRCODE   = 0x14
	RegFREEFRM   = 0x18 // free frame count (read-only telemetry)
	RegREQS      = 0x1C // request counter (read-only telemetry)
	RegCHAIN     = 0x20 // chain stage latch: write (index<<16)|fnID
	bar0Bytes    = 0x24
)

// Mailbox commands.
const (
	CmdNop    = 0
	CmdExec   = 1 // ARG0 = fn id, ARG1 = input length
	CmdEvict  = 2 // ARG0 = fn id
	CmdQuery  = 3 // ARG0 = fn id → STATUS = StatusResident / StatusAbsent
	CmdScrub  = 4 // RESULTLEN = frames repaired
	CmdDefrag = 5 // RESULTLEN = functions moved
	// CmdExecChain runs the functions latched through RegCHAIN as one
	// on-fabric dataflow chain. ARG0 = stage count, ARG1 = input length;
	// input and final output use the same BAR1 windows as CmdExec —
	// intermediate results never leave the card.
	CmdExecChain = 6
)

// STATUS values.
const (
	StatusIdle     = 0
	StatusOK       = 1
	StatusError    = 2
	StatusResident = 3
	StatusAbsent   = 4
)

// Error codes surfaced in ERRCODE.
const (
	ErrCodeNone       = 0
	ErrCodeNoRecord   = 1
	ErrCodeTooLarge   = 2
	ErrCodeNoCapacity = 3
	ErrCodeBadInput   = 4
	ErrCodeInternal   = 5
)

// mailbox holds the BAR0 register file.
type mailbox struct {
	arg0, arg1 uint32
	status     uint32
	resultLen  uint32
	errCode    uint32
	// chain is the stage latch CmdExecChain executes from, filled one
	// stage at a time through RegCHAIN writes. It persists across
	// commands, so a batch of same-chain items latches the stages once.
	chain [MaxChainStages]uint16
}

// OutWindowOff reports the BAR1 offset of the output staging window.
func (c *Controller) OutWindowOff() uint32 { return uint32(c.ram.Capacity() / 2) }

// InWindowBytes reports the size of the BAR1 input staging window.
func (c *Controller) InWindowBytes() int { return c.ram.Capacity() / 2 }

// BARSize implements pci.Device.
func (c *Controller) BARSize(bar int) uint32 {
	switch bar {
	case 0:
		return bar0Bytes
	case 1:
		return uint32(c.ram.Capacity())
	}
	return 0
}

// ReadBAR implements pci.Device.
func (c *Controller) ReadBAR(bar int, off uint32, p []byte) error {
	switch bar {
	case 0:
		return c.readRegs(off, p)
	case 1:
		data, err := c.ram.Read(int(off), len(p))
		if err != nil {
			return err
		}
		copy(p, data)
		return nil
	}
	return fmt.Errorf("%w: BAR%d", pci.ErrBadBAR, bar)
}

// WriteBAR implements pci.Device.
func (c *Controller) WriteBAR(bar int, off uint32, p []byte) error {
	switch bar {
	case 0:
		return c.writeRegs(off, p)
	case 1:
		return c.ram.Write(int(off), p)
	}
	return fmt.Errorf("%w: BAR%d", pci.ErrBadBAR, bar)
}

func (c *Controller) readRegs(off uint32, p []byte) error {
	if off%4 != 0 || len(p)%4 != 0 {
		return fmt.Errorf("mcu: unaligned register read at %#x", off)
	}
	for i := 0; i < len(p); i += 4 {
		var v uint32
		switch off + uint32(i) {
		case RegCMD:
			v = 0
		case RegARG0:
			v = c.regs.arg0
		case RegARG1:
			v = c.regs.arg1
		case RegSTATUS:
			v = c.regs.status
		case RegRESULTLEN:
			v = c.regs.resultLen
		case RegERRCODE:
			v = c.regs.errCode
		case RegFREEFRM:
			v = uint32(len(c.kernel.freeList))
		case RegREQS:
			v = uint32(c.stats.Requests)
		default:
			v = 0
		}
		binary.LittleEndian.PutUint32(p[i:], v)
	}
	return nil
}

func (c *Controller) writeRegs(off uint32, p []byte) error {
	if off%4 != 0 || len(p)%4 != 0 {
		return fmt.Errorf("mcu: unaligned register write at %#x", off)
	}
	for i := 0; i < len(p); i += 4 {
		v := binary.LittleEndian.Uint32(p[i:])
		switch off + uint32(i) {
		case RegARG0:
			c.regs.arg0 = v
		case RegARG1:
			c.regs.arg1 = v
		case RegCMD:
			c.command(v)
		case RegCHAIN:
			if idx := v >> 16; idx < MaxChainStages {
				c.regs.chain[idx] = uint16(v)
			}
		case RegSTATUS, RegRESULTLEN, RegERRCODE, RegFREEFRM, RegREQS:
			// Read-only; writes are ignored, as hardware would.
		}
	}
	return nil
}

// command dispatches a mailbox command synchronously.
func (c *Controller) command(cmd uint32) {
	c.regs.errCode = ErrCodeNone
	switch cmd {
	case CmdNop:
	case CmdExec:
		c.cmdExec()
	case CmdEvict:
		if c.Evict(uint16(c.regs.arg0)) {
			c.regs.status = StatusOK
		} else {
			c.regs.status = StatusAbsent
		}
	case CmdQuery:
		if c.Resident(uint16(c.regs.arg0)) {
			c.regs.status = StatusResident
		} else {
			c.regs.status = StatusAbsent
		}
	case CmdScrub:
		rep, err := c.Scrub()
		if err != nil {
			c.regs.status = StatusError
			c.regs.errCode = ErrCodeInternal
			return
		}
		c.regs.status = StatusOK
		c.regs.resultLen = uint32(rep.FramesRepaired)
	case CmdExecChain:
		c.cmdExecChain()
	case CmdDefrag:
		moved, _, err := c.Defrag()
		if err != nil {
			c.regs.status = StatusError
			c.regs.errCode = ErrCodeInternal
			return
		}
		c.regs.status = StatusOK
		c.regs.resultLen = uint32(moved)
	default:
		c.regs.status = StatusError
		c.regs.errCode = ErrCodeInternal
	}
}

func (c *Controller) cmdExec() {
	fn := uint16(c.regs.arg0)
	n := int(c.regs.arg1)
	if n <= 0 || n > c.InWindowBytes() {
		c.regs.status = StatusError
		c.regs.errCode = ErrCodeBadInput
		return
	}
	input, err := c.ram.Read(0, n)
	if err != nil {
		c.regs.status = StatusError
		c.regs.errCode = ErrCodeBadInput
		return
	}
	out, _, err := c.Execute(fn, input)
	if err != nil {
		c.regs.status = StatusError
		c.regs.errCode = classify(err)
		c.regs.resultLen = 0
		return
	}
	c.regs.status = StatusOK
	c.regs.resultLen = uint32(len(out))
}

func (c *Controller) cmdExecChain() {
	nstages := int(c.regs.arg0)
	n := int(c.regs.arg1)
	if nstages < 2 || nstages > MaxChainStages || n <= 0 || n > c.InWindowBytes() {
		c.regs.status = StatusError
		c.regs.errCode = ErrCodeBadInput
		return
	}
	input, err := c.ram.Read(0, n)
	if err != nil {
		c.regs.status = StatusError
		c.regs.errCode = ErrCodeBadInput
		return
	}
	out, _, _, err := c.ExecuteChain(c.regs.chain[:nstages], input)
	if err != nil {
		c.regs.status = StatusError
		c.regs.errCode = classify(err)
		c.regs.resultLen = 0
		return
	}
	c.regs.status = StatusOK
	c.regs.resultLen = uint32(len(out))
}

func classify(err error) uint32 {
	switch {
	case errors.Is(err, memory.ErrNoRecord):
		return ErrCodeNoRecord
	case errors.Is(err, ErrTooLarge):
		return ErrCodeTooLarge
	case errors.Is(err, ErrNoCapacity):
		return ErrCodeNoCapacity
	case errors.Is(err, ErrRAMWindow), errors.Is(err, ErrBadChain):
		return ErrCodeBadInput
	default:
		return ErrCodeInternal
	}
}

var _ pci.Device = (*Controller)(nil)
