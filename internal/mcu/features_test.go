package mcu

// Tests for the difference-based reconfiguration flow and the
// configuration prefetcher.

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

func TestDiffReloadSkipsIdenticalFrames(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: true, DiffReload: true})
	f := algos.DES()
	install(t, c, f, "framediff")
	in := []byte("8bytes!!")

	// Cold load: everything written.
	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	loaded := c.Stats().FramesLoaded
	if loaded == 0 {
		t.Fatal("cold load wrote nothing")
	}

	// Lazy-evict and reload: the bits are still in the frames and
	// provably untouched, so the load skips the configuration pipeline.
	if !c.Evict(f.ID()) {
		t.Fatal("evict failed")
	}
	out, br, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Exec(in)
	if !bytes.Equal(out, want) {
		t.Error("diff reload corrupted the function")
	}
	st := c.Stats()
	if st.FramesSkipped != loaded {
		t.Errorf("skipped %d frames, want %d", st.FramesSkipped, loaded)
	}
	if st.FramesLoaded != loaded {
		t.Errorf("reload wrote %d extra frames", st.FramesLoaded-loaded)
	}
	// The revived load pays bookkeeping only: no port session, no
	// decompression, no ROM blob read beyond the record scan.
	if br.Get(sim.PhaseConfigure) != 0 || br.Get(sim.PhaseDecompress) != 0 {
		t.Errorf("fast path paid configuration costs: %v", br)
	}
	if br.Get(sim.PhaseOverhead) == 0 {
		t.Error("fast path charged no bookkeeping")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDiffReloadCheaperThanFullReload(t *testing.T) {
	run := func(diff bool) sim.Time {
		c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: true, DiffReload: diff})
		f := algos.Bitonic() // 15 frames: the win is visible
		install(t, c, f, "none")
		in := make([]byte, f.BlockBytes)
		in[0] = 1
		if _, _, err := c.Execute(f.ID(), in); err != nil {
			t.Fatal(err)
		}
		c.Evict(f.ID())
		_, br, err := c.Execute(f.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		return br.Get(sim.PhaseConfigure) + br.Get(sim.PhaseDecompress)
	}
	full := run(false)
	diffed := run(true)
	if diffed >= full {
		t.Errorf("diff reload (%v) not cheaper than full reload (%v)", diffed, full)
	}
}

func TestDiffReloadAfterClobberWritesOnlyDirtyFrames(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: true, DiffReload: true})
	f := algos.FIR() // 5 frames
	install(t, c, f, "rle")
	in := make([]byte, 64)
	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	cold := c.Stats().FramesLoaded
	c.Evict(f.ID())

	// Corrupt one of the lazily evicted frames.
	var dirty int = -1
	for i := 0; i < c.Fabric().Geometry().NumFrames(); i++ {
		if sig, ok := c.Fabric().FrameSignature(i); ok && sig.FnID == f.ID() {
			if err := c.Fabric().ClearFrame(i); err != nil {
				t.Fatal(err)
			}
			dirty = i
			break
		}
	}
	if dirty < 0 {
		t.Fatal("no lazily evicted frame found")
	}

	// Reload. The clobber bumped the frame's write generation, so the
	// stale entry fails verification and the load takes the full
	// pipeline — correctness before cleverness.
	out, _, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Exec(padTo(in, int(f.InBus)))
	if !bytes.Equal(out, want) {
		t.Error("wrong output after partial clobber reload")
	}
	if c.Stats().FramesLoaded <= cold {
		t.Error("nothing written for the dirty frame")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPrefetcherLearnsAlternation(t *testing.T) {
	// Device fits one big function at a time; requests alternate A B A B.
	// Without prefetching every request misses; with it, once the
	// successor table is warm, every request hits.
	mk := func(prefetch bool) *Controller {
		c := newController(t, Config{
			Geometry: fpga.Geometry{Rows: 32, Cols: 16}, AllowScatter: true, Prefetch: prefetch,
		})
		install(t, c, algos.FFT(), "framediff")    // 13 frames
		install(t, c, algos.MatMul(), "framediff") // 11 frames
		return c
	}
	seq := []uint16{algos.IDFFT, algos.IDMatMul, algos.IDFFT, algos.IDMatMul,
		algos.IDFFT, algos.IDMatMul, algos.IDFFT, algos.IDMatMul}
	in := make([]byte, 512)

	base := mk(false)
	for _, fn := range seq {
		if _, _, err := base.Execute(fn, in); err != nil {
			t.Fatal(err)
		}
	}
	if base.Stats().Hits != 0 {
		t.Fatalf("baseline hits = %d, want 0", base.Stats().Hits)
	}

	pf := mk(true)
	for _, fn := range seq {
		if _, _, err := pf.Execute(fn, in); err != nil {
			t.Fatal(err)
		}
		if err := pf.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	st := pf.Stats()
	// The successor table knows A→B after request 2 and B→A after
	// request 3; requests 4..8 should hit via prefetch.
	if st.PrefetchHits < 4 {
		t.Errorf("prefetch hits = %d, want >= 4 (stats %+v)", st.PrefetchHits, st)
	}
	if st.Prefetches == 0 || st.PrefetchTime == 0 {
		t.Error("prefetch cost not accounted")
	}
	// Prefetch time must not appear in request latency: request phases
	// cover only demand work.
	if st.Phases.Total() >= base.Stats().Phases.Total() {
		t.Errorf("prefetching did not reduce on-request time: %v vs %v",
			st.Phases.Total(), base.Stats().Phases.Total())
	}
}

func TestPrefetcherHarmlessOnRepeats(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: true, Prefetch: true})
	f := algos.CRC32()
	install(t, c, f, "rle")
	for i := 0; i < 5; i++ {
		if _, _, err := c.Execute(f.ID(), []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits != 4 {
		t.Errorf("hits = %d", st.Hits)
	}
	if st.Prefetches != 0 {
		t.Errorf("self-succession triggered %d prefetches", st.Prefetches)
	}
}

func TestPrefetcherSurvivesCapacityPressure(t *testing.T) {
	// Prediction of a function too large to co-reside must not wedge the
	// mini OS: the prefetch load evicts via policy like any load, and
	// invariants hold throughout.
	c := newController(t, Config{
		Geometry: fpga.Geometry{Rows: 32, Cols: 20}, AllowScatter: true, Prefetch: true,
	})
	install(t, c, algos.Bitonic(), "framediff") // 15 frames
	install(t, c, algos.FFT(), "framediff")     // 13 frames
	install(t, c, algos.CRC32(), "framediff")   // 2 frames
	in := make([]byte, 1024)
	seq := []uint16{algos.IDBitonic, algos.IDFFT, algos.IDCRC32, algos.IDBitonic, algos.IDFFT, algos.IDCRC32}
	for _, fn := range seq {
		if _, _, err := c.Execute(fn, in); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiffAndPrefetchCompose(t *testing.T) {
	c := newController(t, Config{
		Geometry:     fpga.Geometry{Rows: 32, Cols: 16},
		AllowScatter: true, DiffReload: true, Prefetch: true,
	})
	install(t, c, algos.FFT(), "framediff")
	install(t, c, algos.MatMul(), "framediff")
	in := make([]byte, 512)
	for i := 0; i < 10; i++ {
		fn := algos.IDFFT
		if i%2 == 1 {
			fn = algos.IDMatMul
		}
		if _, _, err := c.Execute(fn, in); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.PrefetchHits == 0 {
		t.Error("no prefetch hits")
	}
	// On a device this tight, evicted frames are always reused before
	// the function returns, so revival never fires — the stale
	// bookkeeping must simply never corrupt anything (checked above via
	// invariants). The revival win itself is covered by
	// TestDiffReloadSkipsIdenticalFrames on a roomier device.
}
