// Package mcu implements the PCI-based microcontroller and its mini OS —
// the paper's §2.3 and §2.5 and the heart of the co-processor. The
// controller owns the ROM and local RAM, drives the FPGA through three
// modules (configuration, data input, output collection), and runs the
// mini OS that keeps the Free Frame List and the Frame Replacement Table
// and applies the Frame Replacement Policy when the fabric overflows.
//
// The controller is a PCI target: BAR0 is its command mailbox, BAR1 a
// window onto local RAM. The host writes inputs into BAR1, fires a
// command through BAR0, and reads results back from BAR1 — the exact
// sequence of the paper's Figure 1 card.
package mcu

import (
	"errors"
	"fmt"

	"agilefpga/internal/fpga"
	"agilefpga/internal/memory"
	"agilefpga/internal/metrics"
	"agilefpga/internal/replace"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// Clock frequencies of the card's domains.
const (
	// MCUHz is the microcontroller clock.
	MCUHz = 50_000_000
	// CfgHz is the configuration module / port clock.
	CfgHz = 50_000_000
	// FabricHz is the FPGA user-logic clock.
	FabricHz = 100_000_000
)

// Config parameterises the controller.
type Config struct {
	Geometry fpga.Geometry
	ROMBytes int
	RAMBytes int
	// ROMImage, when non-nil, boots the card from a pre-burned ROM image
	// (see memory.LoadROM); ROMBytes is then ignored.
	ROMImage []byte
	// WindowBytes is the configuration module's decompression window
	// (paper §2.3: "window by window").
	WindowBytes int
	// Policy is the frame replacement policy. Defaults to the paper's
	// LRU when nil.
	Policy replace.Policy
	// AllowScatter permits non-contiguous frame placement (§2.5 allows
	// functions to occupy non-contiguous frames). When false, placement
	// is strictly contiguous first-fit.
	AllowScatter bool
	// DiffReload enables the difference-based reconfiguration flow in the
	// spirit of XAPP290 (which the paper cites): eviction leaves frame
	// contents in place and records their write generations; when the
	// same function returns and its old frames are still free and
	// untouched (generation-verified — no readback, which would cost as
	// much as rewriting), the load skips the ROM/decompress/port path
	// entirely and just re-activates the bits already in the fabric.
	DiffReload bool
	// Prefetch enables configuration prefetching: after each request the
	// mini OS predicts the next function (first-order Markov on the
	// request stream) and, if absent, loads it during host idle time so
	// the next call hits. The prefetch may evict via the replacement
	// policy; its cost is accounted separately, not on any request.
	Prefetch bool
	// DecodeCacheBytes sets aside a byte-bounded LRU cache of decoded
	// frame images keyed by record serial. A reload whose images are
	// cached skips the window-by-window decompression entirely
	// (PhaseDecompress = 0); the frames are read back from RAM
	// (PhaseCache) and pushed through the port as usual. 0 disables.
	DecodeCacheBytes int
	// SequentialConfig disables the pipelined configuration timing model
	// (DESIGN §12) and reverts to the additive model that charges ROM
	// streaming, window decompression, and configuration-port writes back
	// to back. The zero value is the PipelinedConfig behaviour: while the
	// port clocks in window N, the decompressor produces N+1 and the ROM
	// streams N+2, so a cold load costs the pipeline's critical path and
	// the hidden time shows up as overlap savings. The additive model is
	// retained only for A/B comparison (experiment E18).
	SequentialConfig bool
	// Metrics, when non-nil, receives per-phase latency histograms and
	// behaviour counters. Observation is passive: it never advances a
	// clock domain, so enabling metrics changes no virtual-time result.
	Metrics *metrics.Registry
}

// Default sizing: a 512 KiB bitstream ROM and 64 KiB of staging RAM, on
// the order of the paper's Stratix development board.
const (
	DefaultROMBytes    = 512 * 1024
	DefaultRAMBytes    = 64 * 1024
	DefaultWindowBytes = 256
)

// Controller is the microcontroller. It implements pci.Device.
type Controller struct {
	cfg Config

	fab *fpga.Fabric
	rom *memory.ROM
	ram *memory.RAM

	mcuDom *sim.Domain
	cfgDom *sim.Domain
	fabDom *sim.Domain

	kernel kernel

	// Mailbox registers (BAR0).
	regs mailbox

	lastBreakdown sim.Breakdown
	lastOutputLen int
	// lastChain holds the per-stage attribution of the most recent
	// chained command (CmdExecChain), for the host to collect after the
	// mailbox reports success.
	lastChain []ChainStage

	stats Stats

	// dcache, when non-nil, caches decoded frame images by record serial.
	dcache *decodeCache

	// traceLog, when set, receives structured events (nil = disabled).
	traceLog *trace.Log
	// card is the identity stamped onto trace events — 0 for a
	// single-card system, the card index inside a cluster.
	card int

	// metrics, when set, receives histograms and counters (nil = off).
	metrics *metrics.Registry
	// fnNames caches fn id → record name for metric labels, filled as
	// records are seen (bounded by the ROM's record table).
	fnNames map[uint16]string

	// reqTraceID/reqSpanID, set for the duration of one traced request
	// (core.CallIDTraced holds the card lock around it), stamp emitted
	// card-log events so per-phase records attach to the owning
	// request's distributed span tree. Zero = untraced.
	reqTraceID uint64
	reqSpanID  uint64
}

// SetTrace attaches an event log; pass nil to disable tracing.
func (c *Controller) SetTrace(l *trace.Log) { c.traceLog = l }

// SetCard sets the card identity stamped onto trace events (a cluster
// assigns each card its index; single-card systems keep 0).
func (c *Controller) SetCard(card int) { c.card = card }

// SetMetrics attaches a telemetry registry; pass nil to disable.
func (c *Controller) SetMetrics(r *metrics.Registry) { c.metrics = r }

// SetRequestTrace tags every event emitted until the next call with
// the serving request's distributed-trace identity (zero ids clear the
// tag). Callers must hold the card's serialization (core.CoProcessor's
// per-card lock) across set → execute → clear, which is what the
// CallIDTraced wrappers do.
func (c *Controller) SetRequestTrace(traceID, spanID uint64) {
	c.reqTraceID, c.reqSpanID = traceID, spanID
}

// emit records a trace event stamped with accumulated card time.
func (c *Controller) emit(kind trace.Kind, fn uint16, frames, bytes int, detail string) {
	if c.traceLog == nil {
		return
	}
	c.traceLog.Record(trace.Event{
		TimePS:  uint64(c.stats.Phases.Total() + c.stats.PrefetchTime),
		Kind:    kind,
		Fn:      fn,
		Frames:  frames,
		Bytes:   bytes,
		Detail:  detail,
		Card:    c.card,
		TraceID: c.reqTraceID,
		SpanID:  c.reqSpanID,
	})
}

// emitSpans records one span event per non-zero phase of a finished
// request, laid end to end from base in pipeline order — the data the
// Chrome trace exporter renders as a cards × phases timeline.
func (c *Controller) emitSpans(fn uint16, base sim.Time, br sim.Breakdown) {
	if c.traceLog == nil {
		return
	}
	off := base
	for p := 0; p < sim.NumPhases; p++ {
		t := br.Get(sim.Phase(p))
		if t == 0 {
			continue
		}
		c.traceLog.Record(trace.Event{
			TimePS:  uint64(off),
			Kind:    trace.KindSpan,
			Fn:      fn,
			Detail:  sim.Phase(p).String(),
			DurPS:   uint64(t),
			Card:    c.card,
			TraceID: c.reqTraceID,
			SpanID:  c.reqSpanID,
		})
		off += t
	}
}

// noteFn caches a record's name for metric labels.
func (c *Controller) noteFn(rec memory.Record) {
	if _, ok := c.fnNames[rec.FnID]; !ok {
		c.fnNames[rec.FnID] = rec.Name
	}
}

// fnLabel resolves a function id to its metric label.
func (c *Controller) fnLabel(fn uint16) string {
	if name, ok := c.fnNames[fn]; ok {
		return name
	}
	return fmt.Sprintf("fn%d", fn)
}

// observeRequest records one finished request into the registry: a
// latency histogram per non-zero phase plus the request counter by
// result. All card-side phases are covered; the host adds PhasePCI in
// core, observed there.
func (c *Controller) observeRequest(fn uint16, br sim.Breakdown, hit bool, reqErr error) {
	if c.metrics == nil {
		return
	}
	name := c.fnLabel(fn)
	for p := 0; p < sim.NumPhases; p++ {
		if t := br.Get(sim.Phase(p)); t != 0 {
			c.metrics.Histogram("agile_phase_seconds",
				metrics.L("phase", sim.Phase(p).String()), metrics.L("fn", name)).Observe(t)
		}
	}
	result := "miss"
	switch {
	case reqErr != nil:
		result = "error"
		c.metrics.Counter("agile_errors_total", metrics.L("fn", name)).Inc()
	case hit:
		result = "hit"
	}
	c.metrics.Counter("agile_requests_total",
		metrics.L("fn", name), metrics.L("result", result)).Inc()
}

// resident is one Frame Replacement Table entry: the frames an algorithm
// occupies and the timestamp of its last access (paper §2.5).
type resident struct {
	frames     []int
	inst       *fpga.Instance
	lastAccess uint64
	serial     uint16
}

// kernel is the mini-OS state.
type kernel struct {
	freeList []int // Free Frame List, ascending
	table    map[uint16]*resident
	policy   replace.Policy
	now      uint64 // logical clock, bumped per request

	// Prefetcher state: first-order Markov successor table and the set
	// of functions brought in speculatively and not yet used.
	succ       map[uint16]uint16
	lastFn     uint16
	haveLast   bool
	prefetched map[uint16]bool

	// Difference-based flow: per function, the frames a lazy eviction
	// left intact and their write generations at eviction time.
	stale map[uint16]*staleEntry

	// Chain pinning: functions that must stay resident for the duration
	// of the running chain (ExecuteChain sets and clears them), and the
	// pinned victims place() hid from the policy so Victim() keeps
	// making progress; the chain re-registers them on the way out.
	pinned map[uint16]bool
	hidden []uint16
}

// staleEntry records a lazily evicted function's frames so a returning
// load can prove them untouched and skip reconfiguration.
type staleEntry struct {
	frames []int
	gens   []uint64
	serial uint16
}

// Stats aggregates observable behaviour for the experiments.
type Stats struct {
	Requests     uint64
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	FramesLoaded uint64
	// RawConfigBytes counts decompressed configuration bytes pushed at
	// the port; CompConfigBytes counts compressed bytes read from ROM.
	RawConfigBytes  uint64
	CompConfigBytes uint64
	// Placements by kind.
	ContigPlacements  uint64
	ScatterPlacements uint64
	// Difference-based flow: frames whose readback matched the image and
	// were not rewritten.
	FramesSkipped uint64
	// Prefetcher: speculative loads issued, requests that hit because of
	// one, and the off-request time the prefetches consumed.
	Prefetches   uint64
	PrefetchHits uint64
	PrefetchTime sim.Time
	// Decoded-frame cache: loads served from cached images (skipping
	// decompression) and the decoded bytes those hits reused.
	DecompCacheHits  uint64
	DecompCacheBytes uint64
	// Scrubber: frames repaired after SEU detection and the total time
	// spent in scrub passes.
	SEURepairs uint64
	ScrubTime  sim.Time
	// Pipelined configuration path: loads costed through the pipeline
	// model, windows fed through it, bubble time exposed on the critical
	// path (PhasePipeStall), and the virtual time the overlap hid
	// relative to running the same stage costs back to back.
	PipelinedLoads   uint64
	PipeWindows      uint64
	PipeStallTime    sim.Time
	PipeOverlapSaved sim.Time
	// On-fabric chains: chained runs completed, their total stage count,
	// and the intermediate bytes handed between stages through local RAM
	// instead of crossing PCI (each would otherwise have crossed twice).
	ChainRuns         uint64
	ChainStages       uint64
	ChainHandoffBytes uint64
	// Defrags counts stop-the-world compaction passes.
	Defrags uint64
	// Failures.
	Errors uint64
	// Phase time totals across all requests.
	Phases sim.Breakdown
}

// Controller errors.
var (
	ErrTooLarge   = errors.New("mcu: function does not fit the device")
	ErrNoCapacity = errors.New("mcu: cannot free enough frames")
	ErrBadCommand = errors.New("mcu: unknown command")
	ErrRAMWindow  = errors.New("mcu: I/O exceeds the RAM staging windows")
)

// New builds a controller, its fabric, ROM and RAM.
func New(cfg Config, reg *fpga.Registry) (*Controller, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.ROMBytes == 0 {
		cfg.ROMBytes = DefaultROMBytes
	}
	if cfg.RAMBytes == 0 {
		cfg.RAMBytes = DefaultRAMBytes
	}
	if cfg.WindowBytes == 0 {
		cfg.WindowBytes = DefaultWindowBytes
	}
	if cfg.WindowBytes < 4 {
		return nil, fmt.Errorf("mcu: window of %d bytes is below one port word", cfg.WindowBytes)
	}
	if cfg.Policy == nil {
		cfg.Policy = replace.NewLRU()
	}
	var rom *memory.ROM
	var err error
	if cfg.ROMImage != nil {
		rom, err = memory.LoadROM(cfg.ROMImage)
	} else {
		rom, err = memory.NewROM(cfg.ROMBytes)
	}
	if err != nil {
		return nil, err
	}
	ram, err := memory.NewRAM(cfg.RAMBytes)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		fab:     fpga.NewFabric(cfg.Geometry, reg),
		rom:     rom,
		ram:     ram,
		mcuDom:  sim.NewDomain("mcu", MCUHz),
		cfgDom:  sim.NewDomain("cfg", CfgHz),
		fabDom:  sim.NewDomain("fabric", FabricHz),
		metrics: cfg.Metrics,
		fnNames: make(map[uint16]string),
	}
	if cfg.DecodeCacheBytes > 0 {
		c.dcache = newDecodeCache(cfg.DecodeCacheBytes)
	}
	c.kernel = kernel{
		table:      make(map[uint16]*resident),
		policy:     cfg.Policy,
		succ:       make(map[uint16]uint16),
		prefetched: make(map[uint16]bool),
		stale:      make(map[uint16]*staleEntry),
		pinned:     make(map[uint16]bool),
	}
	for i := 0; i < cfg.Geometry.NumFrames(); i++ {
		c.kernel.freeList = append(c.kernel.freeList, i)
	}
	return c, nil
}

// Fabric exposes the FPGA (read-only uses: readback, utilization).
func (c *Controller) Fabric() *fpga.Fabric { return c.fab }

// ROM exposes the bitstream store.
func (c *Controller) ROM() *memory.ROM { return c.rom }

// Stats returns an unsynchronized copy of the accumulated statistics.
// The Controller itself performs no locking: concurrent callers must
// hold the owning card's lock — core.CoProcessor serialises every entry
// point (including its Stats) behind one mutex per card, which is the
// only reason cluster-wide aggregation is race-free. Calling this
// directly while another goroutine drives Execute through the same
// controller is a data race (asserted by TestStatsRequiresCardLock in
// internal/core).
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (not the mini-OS state).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// FreeFrames reports the current Free Frame List length.
func (c *Controller) FreeFrames() int { return len(c.kernel.freeList) }

// Resident reports whether fn is currently configured on the fabric.
func (c *Controller) Resident(fn uint16) bool {
	_, ok := c.kernel.table[fn]
	return ok
}

// ResidentFunctions lists the functions currently on the fabric.
func (c *Controller) ResidentFunctions() []uint16 {
	out := make([]uint16, 0, len(c.kernel.table))
	for fn := range c.kernel.table {
		out = append(out, fn)
	}
	return out
}

// LastBreakdown reports the per-phase latency of the most recent command.
func (c *Controller) LastBreakdown() sim.Breakdown { return c.lastBreakdown }

// DecodeCacheSize reports the decoded-frame cache occupancy (entries and
// decoded bytes). Both are zero when the cache is disabled.
func (c *Controller) DecodeCacheSize() (entries, bytes int) {
	if c.dcache == nil {
		return 0, 0
	}
	return c.dcache.Len(), c.dcache.Bytes()
}

// Download stores a compressed function bitstream and its record into ROM
// (the host pushes these over PCI at provisioning time, paper §2.2). It
// returns the on-card time consumed.
func (c *Controller) Download(rec memory.Record, blob []byte) (sim.Time, error) {
	if err := c.rom.Install(rec, blob); err != nil {
		return 0, err
	}
	// ROM programming: model write cost like read cost plus a flat
	// programming overhead per install.
	cycles := memory.ReadCycles(len(blob)+memory.RecordBytes) + 64
	return c.mcuDom.Advance(cycles), nil
}

// Evict removes fn from the fabric if resident (host-initiated eviction).
func (c *Controller) Evict(fn uint16) bool {
	if _, ok := c.kernel.table[fn]; !ok {
		return false
	}
	c.evict(fn, &c.lastBreakdown)
	return true
}

// Execute runs function fnID over input, loading it onto the fabric first
// if needed. It returns the output and the per-phase latency breakdown of
// this request (excluding PCI transfer, which the host side owns).
func (c *Controller) Execute(fnID uint16, input []byte) ([]byte, sim.Breakdown, error) {
	var br sim.Breakdown
	spanBase := c.stats.Phases.Total() + c.stats.PrefetchTime
	hitsBefore := c.stats.Hits
	out, err := c.execute(fnID, input, &br)
	c.lastBreakdown = br
	c.stats.Phases.AddAll(br)
	if err != nil {
		c.stats.Errors++
		c.emit(trace.KindError, fnID, 0, 0, err.Error())
		c.observeRequest(fnID, br, false, err)
		return nil, br, err
	}
	c.emitSpans(fnID, spanBase, br)
	c.observeRequest(fnID, br, c.stats.Hits > hitsBefore, nil)
	if c.cfg.Prefetch {
		c.prefetchNext(fnID)
	}
	return out, br, nil
}

// prefetchNext is the configuration prefetcher: it learns first-order
// request succession and speculatively loads the predicted next function
// during host idle time. Its cost lands in Stats.PrefetchTime, never on a
// request — that is the point: reconfiguration latency hides behind the
// host's think time.
func (c *Controller) prefetchNext(cur uint16) {
	k := &c.kernel
	if k.haveLast && k.lastFn != cur {
		k.succ[k.lastFn] = cur
	}
	k.lastFn, k.haveLast = cur, true

	pred, ok := k.succ[cur]
	if !ok || pred == cur {
		return
	}
	if _, resident := k.table[pred]; resident {
		return
	}
	rec, scanned, err := c.findRecord(pred)
	var br sim.Breakdown
	br.Add(sim.PhaseROM, c.mcuDom.Advance(memory.ReadCycles(scanned*memory.RecordBytes)))
	if err == nil {
		if res, lerr := c.load(rec, &br); lerr == nil {
			res.lastAccess = k.now
			k.prefetched[pred] = true
			c.stats.Prefetches++
			c.emit(trace.KindPrefetch, pred, len(res.frames), 0, "")
			if c.metrics != nil {
				c.metrics.Counter("agile_prefetches_total",
					metrics.L("fn", c.fnLabel(pred))).Inc()
			}
		}
	}
	c.stats.PrefetchTime += br.Total()
	if c.metrics != nil && br.Total() != 0 {
		// Off-request work labels with the prefetch pseudo-phase.
		c.metrics.Histogram("agile_phase_seconds",
			metrics.L("phase", sim.PhasePrefetch.String()),
			metrics.L("fn", c.fnLabel(pred))).Observe(br.Total())
	}
}

func (c *Controller) execute(fnID uint16, input []byte, br *sim.Breakdown) ([]byte, error) {
	if len(input) == 0 {
		return nil, fmt.Errorf("mcu: empty input for function %d", fnID)
	}
	c.stats.Requests++
	c.kernel.now++
	c.emit(trace.KindRequest, fnID, 0, len(input), "")

	// Record lookup: the mini OS scans the ROM record table.
	rec, scanned, err := c.findRecord(fnID)
	br.Add(sim.PhaseROM, c.mcuDom.Advance(memory.ReadCycles(scanned*memory.RecordBytes)))
	if err != nil {
		return nil, err
	}
	c.noteFn(rec)

	// Hit or miss against the Frame Replacement Table.
	res, hit := c.kernel.table[fnID]
	if hit && res.serial == rec.Serial && res.inst.Valid() {
		c.stats.Hits++
		c.emit(trace.KindHit, fnID, len(res.frames), 0, "")
		if c.kernel.prefetched[fnID] {
			c.stats.PrefetchHits++
		}
	} else {
		if hit {
			// Stale residency (reinstalled function): evict and reload.
			c.evict(fnID, br)
		}
		c.stats.Misses++
		c.emit(trace.KindMiss, fnID, 0, 0, "")
		res, err = c.load(rec, br)
		if err != nil {
			return nil, err
		}
	}
	delete(c.kernel.prefetched, fnID)
	res.lastAccess = c.kernel.now
	c.kernel.policy.OnAccess(fnID, c.kernel.now)

	// Data input module: stage input into RAM, then stream to the fabric
	// in multiples of the record's input bus width (§2.3). The module is
	// a DMA engine against dual-ported staging RAM, so the RAM access
	// hides behind the bus beats; the charge is beats plus setup.
	inWin, outWin := c.ram.Capacity()/2, c.ram.Capacity()/2
	padded := padTo(input, int(rec.InBus))
	if len(padded) > inWin {
		return nil, fmt.Errorf("%w: input %d bytes, window %d", ErrRAMWindow, len(padded), inWin)
	}
	if err := c.ram.Write(0, padded); err != nil {
		return nil, err
	}
	inBeats := uint64(len(padded)) / uint64(rec.InBus)
	br.Add(sim.PhaseDataIn, c.mcuDom.Advance(inBeats+4))

	// Execute on the fabric.
	out, fabCycles, err := res.inst.Exec(padded)
	if err != nil {
		return nil, err
	}
	br.Add(sim.PhaseExec, c.fabDom.Advance(fabCycles))

	// Output collection module: fabric → RAM in OutBus multiples.
	outPadded := padTo(out, int(rec.OutBus))
	if len(outPadded) > outWin {
		return nil, fmt.Errorf("%w: output %d bytes, window %d", ErrRAMWindow, len(outPadded), outWin)
	}
	if err := c.ram.Write(inWin, outPadded); err != nil {
		return nil, err
	}
	outBeats := uint64(len(outPadded)) / uint64(rec.OutBus)
	br.Add(sim.PhaseDataOut, c.mcuDom.Advance(outBeats+4))

	c.lastOutputLen = len(out)
	return out, nil
}

// findRecord scans the record table like the mini OS would, reporting how
// many records were touched.
func (c *Controller) findRecord(fnID uint16) (memory.Record, int, error) {
	for i := 0; i < c.rom.NumRecords(); i++ {
		rec, err := c.rom.Record(i)
		if err != nil {
			return memory.Record{}, i + 1, err
		}
		if rec.FnID == fnID {
			return rec, i + 1, nil
		}
	}
	return memory.Record{}, c.rom.NumRecords(), fmt.Errorf("%w (function %d)", memory.ErrNoRecord, fnID)
}

// padTo zero-pads p to a multiple of unit (§2.3: every transfer is a
// multiple of the interface bus width).
func padTo(p []byte, unit int) []byte {
	if unit <= 0 {
		unit = 1
	}
	if len(p)%unit == 0 {
		return p
	}
	n := (len(p)/unit + 1) * unit
	out := make([]byte, n)
	copy(out, p)
	return out
}
