package mcu

import (
	"bytes"
	"errors"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/fpga"
	"agilefpga/internal/memory"
	"agilefpga/internal/pci"
	"agilefpga/internal/replace"
	"agilefpga/internal/sim"
)

// newController builds a controller with the full algorithm bank
// registered and the given geometry.
func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	reg := fpga.NewRegistry()
	if err := algos.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// install synthesises, compresses and downloads one bank function.
func install(t *testing.T, c *Controller, f *algos.Function, codecName string) {
	t.Helper()
	g := c.Fabric().Geometry()
	images, err := bitstream.Synthesize(g, bitstream.Netlist{
		FnID: f.ID(), Serial: 1, LUTs: f.LUTs, Seed: f.Seed(),
	})
	if err != nil {
		t.Fatalf("synthesize %s: %v", f.Name(), err)
	}
	var raw []byte
	for _, img := range images {
		raw = append(raw, img...)
	}
	codec, err := compress.New(codecName, g.FrameBytes())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := codec.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	codecID, err := compress.IDOf(codecName)
	if err != nil {
		t.Fatal(err)
	}
	rec := memory.Record{
		Name: f.Name(), FnID: f.ID(), CodecID: codecID,
		RawSize: uint32(len(raw)), InBus: f.InBus, OutBus: f.OutBus,
		FrameCount: uint16(len(images)), Serial: 1,
	}
	if _, err := c.Download(rec, blob); err != nil {
		t.Fatalf("download %s: %v", f.Name(), err)
	}
}

func defaultCfg() Config {
	return Config{Geometry: fpga.DefaultGeometry, AllowScatter: true}
}

func TestExecuteEndToEnd(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.AES128()
	install(t, c, f, "framediff")

	input := []byte("agile algorithm-on-demand coproc") // 32 bytes
	out, br, err := c.Execute(f.ID(), input)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want, _ := f.Exec(input)
	if !bytes.Equal(out, want) {
		t.Error("co-processor output differs from behavioural model")
	}
	// A cold call pays for ROM, decompression, configuration and exec.
	for _, ph := range []sim.Phase{sim.PhaseROM, sim.PhaseDecompress, sim.PhaseConfigure, sim.PhaseExec} {
		if br.Get(ph) == 0 {
			t.Errorf("cold call: phase %v unpaid", ph)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHitAvoidsReconfiguration(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.CRC32()
	install(t, c, f, "rle")
	in := []byte{1, 2, 3, 4}

	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	framesAfterCold := c.Stats().FramesLoaded
	_, br, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.FramesLoaded != framesAfterCold {
		t.Error("hot call reloaded frames")
	}
	if br.Get(sim.PhaseConfigure) != 0 || br.Get(sim.PhaseDecompress) != 0 {
		t.Error("hot call paid configuration costs")
	}
	if br.Get(sim.PhaseExec) == 0 {
		t.Error("hot call has no exec time")
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// 24 frames; aes(9) + fft(13) = 22, then matmul(11) forces eviction.
	c := newController(t, Config{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true})
	aes, fft, mat := algos.AES128(), algos.FFT(), algos.MatMul()
	for _, f := range []*algos.Function{aes, fft, mat} {
		install(t, c, f, "framediff")
	}
	in16 := make([]byte, 512)
	for i := range in16 {
		in16[i] = byte(i)
	}

	mustExec := func(f *algos.Function) {
		t.Helper()
		if _, _, err := c.Execute(f.ID(), in16); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
	}
	mustExec(aes)
	mustExec(fft)
	if !c.Resident(aes.ID()) || !c.Resident(fft.ID()) {
		t.Fatal("both functions should be resident")
	}
	mustExec(mat) // must evict the LRU victim: aes
	if c.Resident(aes.ID()) {
		t.Error("LRU victim aes still resident")
	}
	if !c.Resident(fft.ID()) || !c.Resident(mat.ID()) {
		t.Error("wrong function evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestLRUOrderUnderPressure(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true})
	aes, fft, mat := algos.AES128(), algos.FFT(), algos.MatMul()
	for _, f := range []*algos.Function{aes, fft, mat} {
		install(t, c, f, "framediff")
	}
	in := make([]byte, 512)
	exec := func(f *algos.Function) {
		t.Helper()
		if _, _, err := c.Execute(f.ID(), in); err != nil {
			t.Fatal(err)
		}
	}
	exec(aes)
	exec(fft)
	exec(aes) // refresh aes: now fft is LRU
	exec(mat) // should evict fft, not aes
	if c.Resident(fft.ID()) {
		t.Error("fft survived despite being LRU")
	}
	if !c.Resident(aes.ID()) {
		t.Error("recently used aes was evicted")
	}
}

func TestContiguousOnlyPlacementFragmentation(t *testing.T) {
	// Without scatter, a fragmented free list can force evictions that a
	// scatter placer would avoid. gfmul(1 frame) × alternating installs
	// fragment the space.
	geom := fpga.Geometry{Rows: 32, Cols: 16}
	for _, scatter := range []bool{false, true} {
		c := newController(t, Config{Geometry: geom, AllowScatter: scatter})
		crc, gf, fir := algos.CRC32(), algos.GFMul(), algos.FIR()
		for _, f := range []*algos.Function{crc, gf, fir} {
			install(t, c, f, "rle")
		}
		in := make([]byte, 64)
		for _, f := range []*algos.Function{crc, gf, fir, crc, gf, fir} {
			if _, _, err := c.Execute(f.ID(), in); err != nil {
				t.Fatalf("scatter=%v %s: %v", scatter, f.Name(), err)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("scatter=%v: %v", scatter, err)
			}
		}
		st := c.Stats()
		if scatter && st.ContigPlacements+st.ScatterPlacements == 0 {
			t.Error("no placements recorded")
		}
	}
}

func TestUnknownFunction(t *testing.T) {
	c := newController(t, defaultCfg())
	_, _, err := c.Execute(999, []byte{1})
	if !errors.Is(err, memory.ErrNoRecord) {
		t.Errorf("err = %v, want ErrNoRecord", err)
	}
	if c.Stats().Errors != 1 {
		t.Error("error not counted")
	}
}

func TestFunctionTooLarge(t *testing.T) {
	// A 4-frame device cannot host AES (9 frames at 32 rows).
	c := newController(t, Config{Geometry: fpga.Geometry{Rows: 32, Cols: 4}, AllowScatter: true})
	// Bypass install's synthesize (it would fail) and write the record by
	// hand with an impossible frame count.
	rec := memory.Record{Name: "huge", FnID: algos.IDAES128, CodecID: compress.IDNone,
		InBus: 16, OutBus: 16, FrameCount: 9, Serial: 1}
	if _, err := c.Download(rec, []byte{0}); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.Execute(algos.IDAES128, []byte{1})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestInputExceedsRAMWindow(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, RAMBytes: 4096, AllowScatter: true})
	f := algos.CRC32()
	install(t, c, f, "none")
	_, _, err := c.Execute(f.ID(), make([]byte, 3000)) // window is 2048
	if !errors.Is(err, ErrRAMWindow) {
		t.Errorf("err = %v, want ErrRAMWindow", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCorruptBlobRecovers(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.GFMul()
	// Install a blob that is valid RLE but decompresses to garbage that
	// is not frame-aligned.
	codecID, _ := compress.IDOf("rle")
	codec, _ := compress.New("rle", 0)
	blob, _ := codec.Compress([]byte("this is not a bitstream"))
	rec := memory.Record{Name: f.Name(), FnID: f.ID(), CodecID: codecID,
		InBus: f.InBus, OutBus: f.OutBus, FrameCount: 1, Serial: 1}
	if _, err := c.Download(rec, blob); err != nil {
		t.Fatal(err)
	}
	free := c.FreeFrames()
	_, _, err := c.Execute(f.ID(), []byte{1, 2})
	if err == nil {
		t.Fatal("corrupt blob executed")
	}
	if c.FreeFrames() != free {
		t.Error("failed load leaked frames")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReloadAfterExternalClobber(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.DES()
	install(t, c, f, "lz77")
	in := []byte("8bytes!!")
	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	// Simulate an SEU / rogue reconfiguration wiping one resident frame.
	var clobbered bool
	for i := 0; i < c.Fabric().Geometry().NumFrames(); i++ {
		if sig, ok := c.Fabric().FrameSignature(i); ok && sig.FnID == f.ID() {
			if err := c.Fabric().ClearFrame(i); err != nil {
				t.Fatal(err)
			}
			clobbered = true
			break
		}
	}
	if !clobbered {
		t.Fatal("no resident frame found to clobber")
	}
	out, _, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatalf("Execute after clobber: %v", err)
	}
	want, _ := f.Exec(in)
	if !bytes.Equal(out, want) {
		t.Error("output wrong after reload")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (reload counted)", st.Misses)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllCodecsLoadAllFunctions(t *testing.T) {
	for _, codecName := range compress.Names() {
		c := newController(t, defaultCfg())
		for _, f := range []*algos.Function{algos.CRC32(), algos.GFMul()} {
			install(t, c, f, codecName)
			in := []byte{1, 2, 3, 4, 5, 6, 7, 8}
			out, _, err := c.Execute(f.ID(), in)
			if err != nil {
				t.Fatalf("%s/%s: %v", codecName, f.Name(), err)
			}
			want, _ := f.Exec(padTo(in, int(f.InBus)))
			if !bytes.Equal(out, want) {
				t.Errorf("%s/%s: wrong output", codecName, f.Name())
			}
		}
	}
}

func TestMailboxProtocol(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.CRC32()
	install(t, c, f, "rle")

	bus := pci.NewBus()
	if err := bus.Attach(0, c, pci.ConfigSpace{VendorID: 0x1172, DeviceID: 0xA617}); err != nil {
		t.Fatal(err)
	}

	input := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if _, err := bus.Write(0, 1, 0, input); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.WriteWord(0, 0, RegARG0, uint32(f.ID())); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.WriteWord(0, 0, RegARG1, uint32(len(input))); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdExec); err != nil {
		t.Fatal(err)
	}
	status, _, err := bus.ReadWord(0, 0, RegSTATUS)
	if err != nil || status != StatusOK {
		t.Fatalf("STATUS = %d, %v", status, err)
	}
	rlen, _, _ := bus.ReadWord(0, 0, RegRESULTLEN)
	if rlen != 4 {
		t.Fatalf("RESULTLEN = %d", rlen)
	}
	out, _, err := bus.Read(0, 1, c.OutWindowOff(), int(rlen))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Exec(input)
	if !bytes.Equal(out, want) {
		t.Error("mailbox output mismatch")
	}

	// Query and evict.
	if _, err := bus.WriteWord(0, 0, RegARG0, uint32(f.ID())); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdQuery); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusResident {
		t.Errorf("query status = %d", s)
	}
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdEvict); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusOK {
		t.Errorf("evict status = %d", s)
	}
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdQuery); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusAbsent {
		t.Errorf("post-evict query status = %d", s)
	}

	// Telemetry registers.
	if free, _, _ := bus.ReadWord(0, 0, RegFREEFRM); free != uint32(c.FreeFrames()) {
		t.Error("free-frame telemetry wrong")
	}
	if reqs, _, _ := bus.ReadWord(0, 0, RegREQS); reqs != uint32(c.Stats().Requests) {
		t.Error("request telemetry wrong")
	}
}

func TestMailboxScrubAndDefrag(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.DES()
	install(t, c, f, "rle")
	bus := pci.NewBus()
	if err := bus.Attach(0, c, pci.ConfigSpace{}); err != nil {
		t.Fatal(err)
	}
	// Load the function, upset a bit, scrub over the mailbox.
	if _, _, err := c.Execute(f.ID(), []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	frames := c.FramesOf(f.ID())
	if err := c.Fabric().InjectSEU(frames[1], 500); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdScrub); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusOK {
		t.Fatalf("scrub status = %d", s)
	}
	if n, _, _ := bus.ReadWord(0, 0, RegRESULTLEN); n != 1 {
		t.Errorf("scrub repaired %d frames over mailbox, want 1", n)
	}
	// Defrag over the mailbox.
	if _, err := bus.WriteWord(0, 0, RegCMD, CmdDefrag); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusOK {
		t.Fatalf("defrag status = %d", s)
	}
	if n, _, _ := bus.ReadWord(0, 0, RegRESULTLEN); n != 1 {
		t.Errorf("defrag moved %d functions, want 1", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxErrors(t *testing.T) {
	c := newController(t, defaultCfg())
	bus := pci.NewBus()
	_ = bus.Attach(0, c, pci.ConfigSpace{})

	// Exec of unknown function.
	_, _ = bus.WriteWord(0, 0, RegARG0, 777)
	_, _ = bus.WriteWord(0, 0, RegARG1, 4)
	_, _ = bus.Write(0, 1, 0, []byte{1, 2, 3, 4})
	_, _ = bus.WriteWord(0, 0, RegCMD, CmdExec)
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusError {
		t.Errorf("status = %d, want error", s)
	}
	if code, _, _ := bus.ReadWord(0, 0, RegERRCODE); code != ErrCodeNoRecord {
		t.Errorf("errcode = %d, want ErrCodeNoRecord", code)
	}

	// Zero-length exec.
	_, _ = bus.WriteWord(0, 0, RegARG1, 0)
	_, _ = bus.WriteWord(0, 0, RegCMD, CmdExec)
	if code, _, _ := bus.ReadWord(0, 0, RegERRCODE); code != ErrCodeBadInput {
		t.Errorf("errcode = %d, want ErrCodeBadInput", code)
	}

	// Unknown command.
	_, _ = bus.WriteWord(0, 0, RegCMD, 99)
	if s, _, _ := bus.ReadWord(0, 0, RegSTATUS); s != StatusError {
		t.Errorf("unknown command status = %d", s)
	}

	// Unaligned register access.
	if err := c.WriteBAR(0, 2, []byte{0, 0, 0, 0}); err == nil {
		t.Error("unaligned write accepted")
	}
	if err := c.ReadBAR(0, 2, make([]byte, 4)); err == nil {
		t.Error("unaligned read accepted")
	}
	if err := c.ReadBAR(7, 0, make([]byte, 4)); err == nil {
		t.Error("bogus BAR accepted")
	}
}

func TestDownloadROMFull(t *testing.T) {
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, ROMBytes: 4096, AllowScatter: true})
	// Uncompressed AES is 9 frames × 672 B ≈ 6 KiB: too big for 4 KiB.
	f := algos.AES128()
	g := c.Fabric().Geometry()
	images, err := bitstream.Synthesize(g, bitstream.Netlist{FnID: f.ID(), Serial: 1, LUTs: f.LUTs, Seed: f.Seed()})
	if err != nil {
		t.Fatal(err)
	}
	var raw []byte
	for _, img := range images {
		raw = append(raw, img...)
	}
	rec := memory.Record{Name: f.Name(), FnID: f.ID(), CodecID: compress.IDNone,
		RawSize: uint32(len(raw)), InBus: f.InBus, OutBus: f.OutBus,
		FrameCount: uint16(len(images)), Serial: 1}
	if _, err := c.Download(rec, raw); !errors.Is(err, memory.ErrROMFull) {
		t.Fatalf("err = %v, want ErrROMFull", err)
	}
	// The failed download must leave the ROM consistent.
	if c.ROM().NumRecords() != 0 {
		t.Error("failed download left a record behind")
	}
}

func TestPolicyPluggability(t *testing.T) {
	for _, pname := range []string{"lru", "fifo", "lfu", "random"} {
		pol, err := replace.New(pname, 42)
		if err != nil {
			t.Fatal(err)
		}
		c := newController(t, Config{
			Geometry: fpga.Geometry{Rows: 32, Cols: 24}, Policy: pol, AllowScatter: true,
		})
		if c.PolicyName() != pname {
			t.Errorf("PolicyName = %q", c.PolicyName())
		}
		for _, f := range []*algos.Function{algos.AES128(), algos.FFT(), algos.MatMul()} {
			install(t, c, f, "framediff")
		}
		in := make([]byte, 512)
		for i := 0; i < 9; i++ {
			f := []*algos.Function{algos.AES128(), algos.FFT(), algos.MatMul()}[i%3]
			if _, _, err := c.Execute(f.ID(), in); err != nil {
				t.Fatalf("%s: %v", pname, err)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", pname, err)
			}
		}
	}
}

func TestWindowSizeAffectsOverheadOnly(t *testing.T) {
	// Same function, two window sizes: identical output, different
	// overhead accounting.
	run := func(window int) (sim.Breakdown, []byte) {
		c := newController(t, Config{Geometry: fpga.DefaultGeometry, WindowBytes: window, AllowScatter: true})
		f := algos.DES()
		install(t, c, f, "huffman")
		out, br, err := c.Execute(f.ID(), []byte("testing!"))
		if err != nil {
			t.Fatal(err)
		}
		return br, out
	}
	brSmall, outSmall := run(16)
	brBig, outBig := run(4096)
	if !bytes.Equal(outSmall, outBig) {
		t.Fatal("window size changed results")
	}
	if brSmall.Get(sim.PhaseOverhead) <= brBig.Get(sim.PhaseOverhead) {
		t.Error("small windows should cost more overhead")
	}
	if brSmall.Get(sim.PhaseConfigure) != brBig.Get(sim.PhaseConfigure) {
		t.Error("port time should not depend on window size")
	}
}

func TestEmptyInputRejected(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.CRC32()
	install(t, c, f, "none")
	if _, _, err := c.Execute(f.ID(), nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	reg := fpga.NewRegistry()
	if _, err := New(Config{Geometry: fpga.Geometry{Rows: 0, Cols: 0}}, reg); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := New(Config{Geometry: fpga.DefaultGeometry, WindowBytes: 2}, reg); err == nil {
		t.Error("sub-word window accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.GFMul()
	install(t, c, f, "rle")
	for i := 0; i < 5; i++ {
		if _, _, err := c.Execute(f.ID(), []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Requests != 5 || st.Hits != 4 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.RawConfigBytes == 0 || st.CompConfigBytes == 0 {
		t.Error("config byte counters empty")
	}
	if st.CompConfigBytes >= st.RawConfigBytes {
		t.Error("rle did not compress the gfmul bitstream")
	}
	if st.Phases.Total() == 0 {
		t.Error("phase totals empty")
	}
	c.ResetStats()
	if c.Stats().Requests != 0 {
		t.Error("ResetStats failed")
	}
}
