package mcu

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/memory"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// This file is the mini OS proper: placement against the Free Frame List,
// eviction through the Frame Replacement Policy, and the configuration
// module that streams a compressed bitstream from ROM onto the fabric.

// load brings the function of rec onto the fabric: it finds frames
// (evicting if necessary), streams and decompresses the bitstream window
// by window into the configuration port, and activates the function.
func (c *Controller) load(rec memory.Record, br *sim.Breakdown) (*resident, error) {
	c.noteFn(rec)
	demand := int(rec.FrameCount)
	if demand > c.cfg.Geometry.NumFrames() {
		return nil, fmt.Errorf("%w: %q needs %d frames, device has %d",
			ErrTooLarge, rec.Name, demand, c.cfg.Geometry.NumFrames())
	}

	// Difference-based fast path: the function's previous frames are
	// still free and provably untouched, so its bits are already in the
	// fabric — skip the whole ROM/decompress/configure pipeline.
	if c.cfg.DiffReload {
		if res, ok := c.reviveStale(rec, br); ok {
			return res, nil
		}
	}

	frames, err := c.place(demand, br)
	if err != nil {
		return nil, err
	}

	if err := c.configure(rec, frames, br); err != nil {
		// A failed configuration leaves the frames unusable until
		// cleared; scrub them back onto the free list.
		for _, fi := range frames {
			_ = c.fab.ClearFrame(fi)
		}
		c.returnFrames(frames)
		return nil, err
	}

	inst, err := c.fab.Activate(frames)
	if err != nil {
		for _, fi := range frames {
			_ = c.fab.ClearFrame(fi)
		}
		c.returnFrames(frames)
		return nil, fmt.Errorf("mcu: activation after load: %w", err)
	}

	res := &resident{frames: frames, inst: inst, serial: rec.Serial, lastAccess: c.kernel.now}
	c.kernel.table[rec.FnID] = res
	c.kernel.policy.OnInstall(rec.FnID, c.kernel.now)
	if c.metrics != nil {
		c.metrics.Counter("agile_frames_loaded_total",
			metrics.L("fn", c.fnLabel(rec.FnID))).Add(uint64(len(frames)))
	}
	return res, nil
}

// reviveStale checks the difference-flow bookkeeping: if every frame the
// function occupied at its lazy eviction is still on the free list with
// an unchanged write generation, the frames are removed from the free
// list and the function re-activated in place. The cost is pure mini-OS
// bookkeeping — the saving the difference-based flow exists for.
func (c *Controller) reviveStale(rec memory.Record, br *sim.Breakdown) (*resident, bool) {
	k := &c.kernel
	se := k.stale[rec.FnID]
	if se == nil {
		return nil, false
	}
	delete(k.stale, rec.FnID) // single-use: either revived now or gone
	if se.serial != rec.Serial {
		return nil, false
	}
	free := make(map[int]bool, len(k.freeList))
	for _, fi := range k.freeList {
		free[fi] = true
	}
	for i, fi := range se.frames {
		if !free[fi] || c.fab.Generation(fi) != se.gens[i] {
			return nil, false
		}
	}
	inst, err := c.fab.Activate(se.frames)
	if err != nil {
		return nil, false
	}
	remaining := k.freeList[:0]
	member := make(map[int]bool, len(se.frames))
	for _, fi := range se.frames {
		member[fi] = true
	}
	for _, fi := range k.freeList {
		if !member[fi] {
			remaining = append(remaining, fi)
		}
	}
	k.freeList = remaining

	res := &resident{frames: se.frames, inst: inst, serial: rec.Serial, lastAccess: k.now}
	k.table[rec.FnID] = res
	k.policy.OnInstall(rec.FnID, k.now)
	c.stats.FramesSkipped += uint64(len(se.frames))
	br.Add(sim.PhaseOverhead, c.mcuDom.Advance(uint64(8+2*len(se.frames))))
	c.emit(trace.KindRevive, rec.FnID, len(se.frames), 0, "")
	return res, true
}

// place returns `demand` frames from the Free Frame List, evicting
// algorithms chosen by the Frame Replacement Policy until the demand fits
// (paper §2.5). Placement prefers a contiguous run; when none exists and
// scatter is allowed, any free frames serve.
func (c *Controller) place(demand int, br *sim.Breakdown) ([]int, error) {
	for {
		if frames, contiguous, ok := c.takeFrames(demand); ok {
			if contiguous {
				c.stats.ContigPlacements++
			} else {
				c.stats.ScatterPlacements++
			}
			// Free-list bookkeeping: a handful of MCU cycles per frame.
			br.Add(sim.PhaseOverhead, c.mcuDom.Advance(uint64(4+2*demand)))
			c.emit(trace.KindPlace, 0, demand, 0, "")
			return frames, nil
		}
		victim, err := c.kernel.policy.Victim()
		if err != nil {
			return nil, fmt.Errorf("%w: need %d frames, %d free and nothing to evict (%v)",
				ErrNoCapacity, demand, len(c.kernel.freeList), err)
		}
		if c.kernel.pinned[victim] {
			// A chain stage must not displace another stage of the same
			// chain. Hide the pinned function from the policy so Victim()
			// keeps making progress (ExecuteChain re-registers it when the
			// chain ends) and ask again. When only pinned functions remain,
			// Victim() runs dry and the loop errors out above: the chain
			// simply does not fit the device.
			c.kernel.policy.OnEvict(victim)
			c.kernel.hidden = append(c.kernel.hidden, victim)
			continue
		}
		c.evict(victim, br)
	}
}

// takeFrames removes a frame set from the free list: a contiguous run if
// one exists, else (scatter allowed) the lowest free frames.
func (c *Controller) takeFrames(demand int) (frames []int, contiguous, ok bool) {
	fl := c.kernel.freeList
	if demand <= 0 || len(fl) < demand {
		return nil, false, false
	}
	// Contiguous first-fit over the sorted free list.
	start := 0
	for i := 0; i < len(fl); i++ {
		if i > 0 && fl[i] != fl[i-1]+1 {
			start = i
		}
		if i-start+1 == demand {
			frames = append([]int(nil), fl[start:i+1]...)
			c.kernel.freeList = append(fl[:start], fl[i+1:]...)
			return frames, true, true
		}
	}
	if !c.cfg.AllowScatter {
		return nil, false, false
	}
	frames = append([]int(nil), fl[:demand]...)
	c.kernel.freeList = append([]int(nil), fl[demand:]...)
	return frames, false, true
}

// evict removes fn from the fabric, clearing its frames and returning
// them to the Free Frame List.
func (c *Controller) evict(fn uint16, br *sim.Breakdown) {
	res, ok := c.kernel.table[fn]
	if !ok {
		return
	}
	if c.cfg.DiffReload {
		// Lazy eviction: leave the bits in place and remember their
		// write generations so a returning load can prove them intact.
		gens := make([]uint64, len(res.frames))
		for i, fi := range res.frames {
			gens[i] = c.fab.Generation(fi)
		}
		c.kernel.stale[fn] = &staleEntry{frames: res.frames, gens: gens, serial: res.serial}
	} else {
		// Scrub the logic space.
		for _, fi := range res.frames {
			_ = c.fab.ClearFrame(fi)
		}
	}
	c.returnFrames(res.frames)
	delete(c.kernel.table, fn)
	c.kernel.policy.OnEvict(fn)
	c.stats.Evictions++
	c.emit(trace.KindEvict, fn, len(res.frames), 0, "")
	if c.metrics != nil {
		c.metrics.Counter("agile_evictions_total", metrics.L("fn", c.fnLabel(fn))).Inc()
	}
	// Table update + frame scrubbing cost.
	br.Add(sim.PhaseOverhead, c.mcuDom.Advance(uint64(8+2*len(res.frames))))
}

// returnFrames merges frames back into the sorted free list.
func (c *Controller) returnFrames(frames []int) {
	c.kernel.freeList = append(c.kernel.freeList, frames...)
	sort.Ints(c.kernel.freeList)
}

// Defrag compacts the fabric: every resident function is reloaded from
// ROM into the lowest free frames, leaving the free space as one
// contiguous run. It is a stop-the-world operation costing a full
// reconfiguration of everything resident — worth it for a
// contiguous-only placer drowning in fragmentation, pointless when
// scatter placement is allowed (E4 quantifies both). Replacement-policy
// recency is preserved by reloading in least-recently-used-first order,
// so the policy sees the same relative ages it saw before.
func (c *Controller) Defrag() (moved int, cost sim.Time, err error) {
	var br sim.Breakdown
	// Snapshot residents ordered by last access (oldest first).
	type entry struct {
		fn   uint16
		last uint64
	}
	var order []entry
	for fn, res := range c.kernel.table {
		order = append(order, entry{fn, res.lastAccess})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].last != order[j].last {
			return order[i].last < order[j].last
		}
		return order[i].fn < order[j].fn
	})
	for _, e := range order {
		c.evict(e.fn, &br)
	}
	// Compaction must actually move things: drop any difference-flow
	// stale entries so the reloads cannot revive in their old positions.
	for fn := range c.kernel.stale {
		delete(c.kernel.stale, fn)
	}
	for _, e := range order {
		rec, ferr := c.rom.FindByID(e.fn)
		if ferr != nil {
			return moved, br.Total(), ferr
		}
		if _, lerr := c.load(rec, &br); lerr != nil {
			return moved, br.Total(), fmt.Errorf("mcu: defrag reload of fn %d: %w", e.fn, lerr)
		}
		moved++
	}
	c.stats.Defrags++
	c.stats.Phases.AddAll(br)
	return moved, br.Total(), nil
}

// configure is the configuration module (paper §2.3): it reads the
// compressed bitstream from ROM, decompresses it window by window, and
// feeds frame images to the configuration port wrapped in FAR/FDRI
// packets targeting the placed frames.
//
// The ROM stores position-independent frame images (compressed), so the
// same blob can be relocated to whatever frames the placer found — the
// relocation trick that makes run-time placement possible at all.
func (c *Controller) configure(rec memory.Record, frames []int, br *sim.Breakdown) error {
	// Decoded-frame cache fast path: the images for this exact record
	// serial were decoded before and still sit in the cache, so the ROM
	// read and the window-by-window decompression vanish. The frames are
	// read back from RAM (PhaseCache) and pushed through the port as
	// usual — the fabric contents are byte-identical to a full decode.
	if c.dcache != nil {
		if images, ok := c.dcache.get(makeDCKey(rec.FnID, rec.Serial)); ok && len(images) == len(frames) {
			raw := len(images) * c.cfg.Geometry.FrameBytes()
			portCycles, err := c.pushFrames(frames, images)
			if err != nil {
				return err
			}
			if c.cfg.SequentialConfig {
				br.Add(sim.PhaseCache, c.mcuDom.Advance(memory.ReadCycles(raw)))
				br.Add(sim.PhaseConfigure, c.cfgDom.Advance(portCycles))
			} else {
				// Two-stage pipeline: while the port clocks in frame N, the
				// next image is read back from RAM. Cumulative-delta costing
				// keeps the per-frame cycles summing exactly to the totals.
				pipe := sim.NewPipeline(sim.PhaseCache, sim.PhaseConfigure)
				fb := c.cfg.Geometry.FrameBytes()
				var prevRAM, prevPort uint64
				for i := 1; i <= len(images); i++ {
					ramCum := memory.ReadCycles(i * fb)
					portCum := portCycles * uint64(i) / uint64(len(images))
					if i == len(images) {
						ramCum = memory.ReadCycles(raw)
						portCum = portCycles
					}
					pipe.Feed(c.mcuDom.Span(ramCum-prevRAM), c.cfgDom.Span(portCum-prevPort))
					prevRAM, prevPort = ramCum, portCum
				}
				c.mcuDom.Advance(memory.ReadCycles(raw))
				c.cfgDom.Advance(portCycles)
				stall := pipe.Attribute(br)
				c.notePipeline(rec.FnID, pipe, stall)
			}
			br.Add(sim.PhaseOverhead, c.mcuDom.Advance(uint64(4+2*len(frames))))
			c.stats.DecompCacheHits++
			c.stats.DecompCacheBytes += uint64(raw)
			c.stats.FramesLoaded += uint64(len(frames))
			c.stats.RawConfigBytes += uint64(raw)
			c.emit(trace.KindConfigure, rec.FnID, len(frames), raw, "decode-cache")
			if c.metrics != nil {
				c.metrics.Counter("agile_decode_cache_hits_total",
					metrics.L("fn", c.fnLabel(rec.FnID))).Inc()
			}
			return nil
		}
	}

	blob, err := c.rom.Blob(rec)
	if err != nil {
		return err
	}
	c.stats.CompConfigBytes += uint64(len(blob))

	codec, err := compress.ByID(rec.CodecID, c.cfg.Geometry.FrameBytes())
	if err != nil {
		return err
	}
	reader, err := codec.NewReader(blob)
	if err != nil {
		return err
	}
	consumer, _ := reader.(compress.InputReporter)

	// Window-by-window decompression into per-frame images, recording per
	// window the cumulative output and the cumulative ROM bytes the
	// decoder pulled to produce it (the pipeline's ROM-stage costing).
	frameBytes := c.cfg.Geometry.FrameBytes()
	images := make([][]byte, 0, len(frames))
	frameBuf := make([]byte, 0, frameBytes)
	window := make([]byte, c.cfg.WindowBytes)
	type winMark struct{ out, consumed int } // both cumulative
	var wins []winMark
	rawTotal := 0
	for {
		n, rerr := reader.Read(window)
		if n > 0 {
			rawTotal += n
			consumed := len(blob)
			if consumer != nil {
				if consumed = consumer.InputConsumed(); consumed > len(blob) {
					consumed = len(blob)
				}
			}
			wins = append(wins, winMark{out: rawTotal, consumed: consumed})
			chunk := window[:n]
			for len(chunk) > 0 {
				take := frameBytes - len(frameBuf)
				if take > len(chunk) {
					take = len(chunk)
				}
				frameBuf = append(frameBuf, chunk[:take]...)
				chunk = chunk[take:]
				if len(frameBuf) == frameBytes {
					images = append(images, append([]byte(nil), frameBuf...))
					frameBuf = frameBuf[:0]
				}
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return fmt.Errorf("mcu: decompressing %q: %w", rec.Name, rerr)
		}
	}
	if len(frameBuf) != 0 {
		return fmt.Errorf("mcu: bitstream of %q is not frame-aligned (%d trailing bytes)", rec.Name, len(frameBuf))
	}
	if len(images) != len(frames) {
		return fmt.Errorf("mcu: bitstream of %q holds %d frames, record says %d", rec.Name, len(images), len(frames))
	}

	if c.dcache != nil {
		c.dcache.put(makeDCKey(rec.FnID, rec.Serial), images)
	}

	portCycles, err := c.pushFrames(frames, images)
	if err != nil {
		return err
	}

	// Timing of the configuration module. Stage totals first: the ROM
	// delivers the whole blob, the decompressor expands every output
	// byte, the port clocks in every frame packet.
	windows := len(wins)
	romCycles := memory.ReadCycles(len(blob))
	decompCycles := uint64(float64(rawTotal)*codec.CyclesPerByte()) + 1

	if c.cfg.SequentialConfig {
		// Additive model: the three stages run back to back, window
		// overlap disabled — the E18 baseline.
		br.Add(sim.PhaseROM, c.mcuDom.Advance(romCycles))
		br.Add(sim.PhaseDecompress, c.cfgDom.Advance(decompCycles))
		br.Add(sim.PhaseConfigure, c.cfgDom.Advance(portCycles))
	} else {
		// Pipelined model (DESIGN §12): while the port clocks in window
		// N, the decompressor produces N+1 and the ROM streams N+2. Each
		// window's stage costs come from cumulative-delta splits of the
		// stage totals (ROM by bytes consumed, decompress and port by
		// bytes produced), so the per-window costs sum exactly to the
		// totals and the critical path obeys the max-of-stages
		// recurrence. Attribution: pipeline fill to PhaseROM and
		// PhaseDecompress, port busy time to PhaseConfigure, bubbles to
		// PhasePipeStall.
		pipe := sim.NewPipeline(sim.PhaseROM, sim.PhaseDecompress, sim.PhaseConfigure)
		var prevRom, prevDec, prevPort uint64
		for i, w := range wins {
			romCum := memory.ReadCycles(w.consumed)
			decCum := uint64(float64(w.out) * codec.CyclesPerByte())
			portCum := portCycles * uint64(w.out) / uint64(rawTotal)
			if i == len(wins)-1 {
				// The last window closes the books: whatever the decoder
				// under-reported (bit reservoirs, buffered runs) lands here.
				romCum, decCum, portCum = romCycles, decompCycles, portCycles
			}
			pipe.Feed(c.mcuDom.Span(romCum-prevRom), c.cfgDom.Span(decCum-prevDec), c.cfgDom.Span(portCum-prevPort))
			prevRom, prevDec, prevPort = romCum, decCum, portCum
		}
		c.mcuDom.Advance(romCycles)
		c.cfgDom.Advance(decompCycles + portCycles)
		stall := pipe.Attribute(br)
		c.notePipeline(rec.FnID, pipe, stall)
	}
	br.Add(sim.PhaseOverhead, c.mcuDom.Advance(uint64(windows)*8))

	c.stats.FramesLoaded += uint64(len(frames))
	c.stats.RawConfigBytes += uint64(rawTotal)
	c.emit(trace.KindConfigure, rec.FnID, len(frames), rawTotal, codec.Name())
	return nil
}

// notePipeline folds one pipelined load into the stats and telemetry:
// windows fed, critical-path bubbles, overlap savings, and the peak
// number of windows in flight. Observation is passive — every value is
// computed before any metrics call.
func (c *Controller) notePipeline(fn uint16, pipe *sim.Pipeline, stall sim.Time) {
	saved := pipe.Saved()
	c.stats.PipelinedLoads++
	c.stats.PipeWindows += uint64(pipe.Items())
	c.stats.PipeStallTime += stall
	c.stats.PipeOverlapSaved += saved
	if c.metrics == nil {
		return
	}
	name := c.fnLabel(fn)
	c.metrics.Counter("agile_pipe_windows_total", metrics.L("fn", name)).Add(uint64(pipe.Items()))
	c.metrics.Counter("agile_pipe_stall_ps_total", metrics.L("fn", name)).Add(uint64(stall))
	c.metrics.Counter("agile_pipe_overlap_saved_ps_total", metrics.L("fn", name)).Add(uint64(saved))
	c.metrics.Gauge("agile_pipe_windows_in_flight_peak", metrics.L("fn", name)).Set(int64(pipe.PeakInFlight()))
}

// pushFrames wraps frame images in configuration packets and streams
// them through the port, returning the port cycles consumed.
func (c *Controller) pushFrames(frames []int, images [][]byte) (uint64, error) {
	stream, err := bitstream.Assemble(c.cfg.Geometry, c.fab.IDCode(), frames, images)
	if err != nil {
		return 0, err
	}
	port := c.fab.Port()
	port.Reset()
	if _, err := port.Write(stream); err != nil {
		return 0, fmt.Errorf("mcu: configuration port: %w", err)
	}
	return port.TakeCycles(), nil
}

// CheckInvariants verifies the mini-OS bookkeeping: the Free Frame List
// and the Frame Replacement Table partition the frame set, no two
// algorithms share a frame, and every resident frame carries the right
// signature. Tests and failure-injection call it after every operation.
func (c *Controller) CheckInvariants() error {
	seen := make(map[int]string)
	for _, fi := range c.kernel.freeList {
		if fi < 0 || fi >= c.cfg.Geometry.NumFrames() {
			return fmt.Errorf("mcu: free list holds bogus frame %d", fi)
		}
		if owner, dup := seen[fi]; dup {
			return fmt.Errorf("mcu: frame %d on free list twice (%s)", fi, owner)
		}
		seen[fi] = "free"
	}
	for fn, res := range c.kernel.table {
		for _, fi := range res.frames {
			if owner, dup := seen[fi]; dup {
				return fmt.Errorf("mcu: frame %d owned by fn %d and %s", fi, fn, owner)
			}
			seen[fi] = fmt.Sprintf("fn %d", fn)
			sig, ok := c.fab.FrameSignature(fi)
			if !ok {
				return fmt.Errorf("mcu: resident fn %d frame %d has no valid signature", fn, fi)
			}
			if sig.FnID != fn {
				return fmt.Errorf("mcu: frame %d signed by fn %d but owned by fn %d", fi, sig.FnID, fn)
			}
		}
	}
	if len(seen) != c.cfg.Geometry.NumFrames() {
		return fmt.Errorf("mcu: %d frames accounted for, device has %d", len(seen), c.cfg.Geometry.NumFrames())
	}
	return nil
}

// PolicyName reports the active replacement policy.
func (c *Controller) PolicyName() string { return c.kernel.policy.Name() }
