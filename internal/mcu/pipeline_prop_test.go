package mcu

import (
	"bytes"
	"fmt"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/compress"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

// TestPipelineNeverSlower is the property DESIGN §12 commits to: for
// every bank function × codec × window size, the pipelined cold-load
// model finishes no later than the additive sequential model, and the
// two leave byte-identical fabric state (the pipeline is a timing
// model only — it must never change what gets configured).
func TestPipelineNeverSlower(t *testing.T) {
	windows := []int{64, 256, 1024}
	for _, codecName := range compress.Names() {
		for _, win := range windows {
			codecName, win := codecName, win
			t.Run(fmt.Sprintf("%s_w%d", codecName, win), func(t *testing.T) {
				seqC := newController(t, Config{
					Geometry: fpga.DefaultGeometry, AllowScatter: true,
					WindowBytes: win, SequentialConfig: true,
				})
				pipeC := newController(t, Config{
					Geometry: fpga.DefaultGeometry, AllowScatter: true,
					WindowBytes: win,
				})
				for _, f := range algos.Bank() {
					install(t, seqC, f, codecName)
					install(t, pipeC, f, codecName)

					in := make([]byte, f.BlockBytes)
					for i := range in {
						in[i] = byte(i*13 + 5)
					}
					seqOut, seqBr, err := seqC.Execute(f.ID(), in)
					if err != nil {
						t.Fatalf("%s sequential: %v", f.Name(), err)
					}
					pipeOut, pipeBr, err := pipeC.Execute(f.ID(), in)
					if err != nil {
						t.Fatalf("%s pipelined: %v", f.Name(), err)
					}
					if !bytes.Equal(seqOut, pipeOut) {
						t.Fatalf("%s: outputs diverge between timing models", f.Name())
					}
					if pipeBr.Total() > seqBr.Total() {
						t.Errorf("%s: pipelined cold load %v slower than sequential %v",
							f.Name(), pipeBr.Total(), seqBr.Total())
					}
					// The config path proper (the part the pipeline reorders)
					// must also not regress on its own.
					cfgPath := func(br sim.Breakdown) sim.Time {
						return br.Get(sim.PhaseROM) + br.Get(sim.PhaseDecompress) +
							br.Get(sim.PhaseConfigure) + br.Get(sim.PhasePipeStall)
					}
					if cfgPath(pipeBr) > cfgPath(seqBr) {
						t.Errorf("%s: pipelined config path %v slower than sequential %v",
							f.Name(), cfgPath(pipeBr), cfgPath(seqBr))
					}
					// Byte-identical fabric state, frame by frame.
					g := seqC.Fabric().Geometry()
					for fi := 0; fi < g.NumFrames(); fi++ {
						sf, errS := seqC.Fabric().ReadFrame(fi)
						pf, errP := pipeC.Fabric().ReadFrame(fi)
						if (errS == nil) != (errP == nil) {
							t.Fatalf("%s: frame %d readable in one model only", f.Name(), fi)
						}
						if errS == nil && !bytes.Equal(sf, pf) {
							t.Fatalf("%s: frame %d differs between timing models", f.Name(), fi)
						}
					}
					// Keep loads cold; evict from both so the resident sets
					// stay in lockstep.
					seqC.Evict(f.ID())
					pipeC.Evict(f.ID())
				}
			})
		}
	}
}
