package mcu

// Configuration scrubbing: the defence partially reconfigurable systems
// deploy against single-event upsets. The scrubber walks every resident
// function, reads its frames back from configuration memory, compares
// them against the golden images reconstructed from ROM, and rewrites any
// frame that differs. Detection requires the full readback-and-compare —
// an SEU flips bits without telling anyone (see fpga.InjectSEU), so no
// bookkeeping shortcut exists; that is why scrub cost scales with
// resident footprint and why E14 sweeps the scrub interval.

import (
	"fmt"

	"agilefpga/internal/bitstream"
	"agilefpga/internal/compress"
	"agilefpga/internal/memory"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
)

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// FramesChecked counts resident frames read back and compared.
	FramesChecked int
	// FramesRepaired counts frames that differed and were rewritten.
	FramesRepaired int
	// Time is the virtual cost of the pass (readback + golden
	// reconstruction + repairs).
	Time sim.Time
}

// Scrub performs one scrubbing pass over all resident functions. Repairs
// re-activate the affected function, so instances stay valid.
func (c *Controller) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	var br sim.Breakdown
	for fn, res := range c.kernel.table {
		rec, err := c.rom.FindByID(fn)
		if err != nil {
			return rep, fmt.Errorf("mcu: scrub: resident fn %d has no ROM record: %w", fn, err)
		}
		golden, err := c.goldenImages(rec, &br)
		if err != nil {
			return rep, err
		}
		if len(golden) != len(res.frames) {
			return rep, fmt.Errorf("mcu: scrub: fn %d golden image holds %d frames, resident set %d",
				fn, len(golden), len(res.frames))
		}
		var dirtyFrames []int
		var dirtyImages [][]byte
		for i, fi := range res.frames {
			cur, err := c.fab.ReadFrame(fi)
			if err != nil {
				return rep, err
			}
			// Readback: one byte per configuration-clock cycle.
			br.Add(sim.PhaseConfigure, c.cfgDom.Advance(uint64(len(cur))))
			rep.FramesChecked++
			if !framesEqual(cur, golden[i]) {
				dirtyFrames = append(dirtyFrames, fi)
				dirtyImages = append(dirtyImages, golden[i])
			}
		}
		if len(dirtyFrames) == 0 {
			continue
		}
		stream, err := bitstream.Assemble(c.cfg.Geometry, c.fab.IDCode(), dirtyFrames, dirtyImages)
		if err != nil {
			return rep, err
		}
		port := c.fab.Port()
		port.Reset()
		if _, err := port.Write(stream); err != nil {
			return rep, fmt.Errorf("mcu: scrub repair: %w", err)
		}
		br.Add(sim.PhaseConfigure, c.cfgDom.Advance(port.TakeCycles()))
		rep.FramesRepaired += len(dirtyFrames)
		c.stats.SEURepairs += uint64(len(dirtyFrames))
		c.emit(trace.KindConfigure, fn, len(dirtyFrames), 0, "scrub-repair")

		// The repair bumped generations: re-activate to keep the
		// instance valid.
		inst, err := c.fab.Activate(res.frames)
		if err != nil {
			return rep, fmt.Errorf("mcu: scrub re-activation of fn %d: %w", fn, err)
		}
		res.inst = inst
	}
	rep.Time = br.Total()
	c.stats.ScrubTime += rep.Time
	c.stats.Phases.AddAll(br)
	if c.metrics != nil && rep.Time != 0 {
		c.metrics.Histogram("agile_scrub_seconds").Observe(rep.Time)
		c.metrics.Histogram("agile_phase_seconds",
			metrics.L("phase", sim.PhaseScrub.String()),
			metrics.L("fn", "all")).Observe(rep.Time)
	}
	return rep, nil
}

// goldenImages reconstructs a function's frame images from its ROM blob
// (the scrubber's reference copy), charging ROM and decompression cost.
func (c *Controller) goldenImages(rec memory.Record, br *sim.Breakdown) ([][]byte, error) {
	blob, err := c.rom.Blob(rec)
	if err != nil {
		return nil, err
	}
	br.Add(sim.PhaseROM, c.mcuDom.Advance(uint64((len(blob)+1)/2)))
	codec, err := compress.ByID(rec.CodecID, c.cfg.Geometry.FrameBytes())
	if err != nil {
		return nil, err
	}
	raw, err := codec.Decompress(blob)
	if err != nil {
		return nil, err
	}
	br.Add(sim.PhaseDecompress, c.cfgDom.Advance(uint64(float64(len(raw))*codec.CyclesPerByte())))
	fb := c.cfg.Geometry.FrameBytes()
	if len(raw)%fb != 0 {
		return nil, fmt.Errorf("mcu: scrub: golden image of %q not frame-aligned", rec.Name)
	}
	images := make([][]byte, 0, len(raw)/fb)
	for off := 0; off < len(raw); off += fb {
		images = append(images, raw[off:off+fb])
	}
	return images, nil
}

func framesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FramesOf reports the frames a resident function occupies (nil if not
// resident) — used by the reliability experiment's omniscient harness.
func (c *Controller) FramesOf(fn uint16) []int {
	if res, ok := c.kernel.table[fn]; ok {
		return append([]int(nil), res.frames...)
	}
	return nil
}
