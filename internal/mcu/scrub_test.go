package mcu

import (
	"bytes"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/sim"
)

func TestScrubCleanFabric(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.DES()
	install(t, c, f, "framediff")
	if _, _, err := c.Execute(f.ID(), []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesChecked == 0 {
		t.Error("scrub checked nothing")
	}
	if rep.FramesRepaired != 0 {
		t.Errorf("clean fabric needed %d repairs", rep.FramesRepaired)
	}
	if rep.Time == 0 {
		t.Error("scrub was free")
	}
}

func TestScrubRepairsSEU(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.AES128()
	install(t, c, f, "lz77")
	in := []byte("0123456789abcdef")
	if _, _, err := c.Execute(f.ID(), in); err != nil {
		t.Fatal(err)
	}
	frames := c.FramesOf(f.ID())
	if len(frames) == 0 {
		t.Fatal("no resident frames")
	}
	// Flip a logic bit well past the signature area.
	if err := c.Fabric().InjectSEU(frames[2], 400); err != nil {
		t.Fatal(err)
	}
	// The SEU is invisible to the bookkeeping: the generation counter did
	// not move and the instance still looks valid.
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("SEU in logic bits tripped bookkeeping: %v", err)
	}

	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesRepaired != 1 {
		t.Fatalf("repaired %d frames, want 1", rep.FramesRepaired)
	}
	if c.Stats().SEURepairs != 1 {
		t.Error("repair not counted")
	}
	// The function still runs, instance intact, and a second scrub finds
	// nothing.
	out, _, err := c.Execute(f.ID(), in)
	if err != nil {
		t.Fatalf("execute after repair: %v", err)
	}
	want, _ := f.Exec(in)
	if !bytes.Equal(out, want) {
		t.Error("wrong output after repair")
	}
	if c.Stats().Hits == 0 {
		t.Error("repair evicted the function (should re-activate in place)")
	}
	rep2, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FramesRepaired != 0 {
		t.Errorf("second scrub repaired %d frames", rep2.FramesRepaired)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestScrubSignatureSEUDetected(t *testing.T) {
	// An upset inside the signature area breaks the frame's CRC; the
	// scrubber must restore it before the mini OS trips over it.
	c := newController(t, defaultCfg())
	f := algos.CRC32()
	install(t, c, f, "none")
	if _, _, err := c.Execute(f.ID(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	frames := c.FramesOf(f.ID())
	if err := c.Fabric().InjectSEU(frames[0], 3); err != nil { // inside SigBytes
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesRepaired != 1 {
		t.Fatalf("repaired %d", rep.FramesRepaired)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestScrubMultipleFunctionsAndSEUs(t *testing.T) {
	c := newController(t, defaultCfg())
	fns := []*algos.Function{algos.DES(), algos.FIR(), algos.GFMul()}
	for _, f := range fns {
		install(t, c, f, "rle")
		if _, _, err := c.Execute(f.ID(), make([]byte, f.BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(99)
	injected := 0
	for _, f := range fns {
		for _, fi := range c.FramesOf(f.ID()) {
			if rng.Intn(2) == 0 {
				bit := 100 + rng.Intn(4000)
				if err := c.Fabric().InjectSEU(fi, bit); err != nil {
					t.Fatal(err)
				}
				injected++
			}
		}
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesRepaired != injected {
		t.Errorf("repaired %d, injected into %d frames", rep.FramesRepaired, injected)
	}
	for _, f := range fns {
		in := make([]byte, f.BlockBytes)
		in[0] = 1
		out, _, err := c.Execute(f.ID(), in)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(out, want) {
			t.Errorf("%s wrong after mass repair", f.Name())
		}
	}
}

func TestInjectSEUValidation(t *testing.T) {
	c := newController(t, defaultCfg())
	if err := c.Fabric().InjectSEU(-1, 0); err == nil {
		t.Error("bad frame accepted")
	}
	if err := c.Fabric().InjectSEU(0, 1<<30); err == nil {
		t.Error("bad bit accepted")
	}
}
