package mcu

// Randomised state-machine stress: a long interleaving of executes,
// evictions, clobbers and downloads on a small device, with the mini-OS
// bookkeeping invariant checked after every single operation, across the
// feature matrix (scatter × diff × prefetch). This is the test that
// catches ownership leaks no targeted test thinks of.

import (
	"bytes"
	"fmt"
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/fpga"
	"agilefpga/internal/sim"
)

func TestMiniOSRandomOperations(t *testing.T) {
	configs := []Config{
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: false},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true, DiffReload: true},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true, Prefetch: true},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true, DiffReload: true, Prefetch: true},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true, SequentialConfig: true},
		{Geometry: fpga.Geometry{Rows: 32, Cols: 24}, AllowScatter: true, DiffReload: true, Prefetch: true, SequentialConfig: true},
	}
	// A mixed-footprint subset that fits the 24-frame device one or two
	// at a time.
	fns := []*algos.Function{
		algos.CRC32(), algos.GFMul(), algos.DES(), algos.FIR(), algos.AES128(), algos.FFT(),
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d_scatter%v_diff%v_pf%v_seq%v", ci, cfg.AllowScatter, cfg.DiffReload, cfg.Prefetch, cfg.SequentialConfig),
			func(t *testing.T) {
				c := newController(t, cfg)
				for _, f := range fns {
					install(t, c, f, "framediff")
				}
				rng := sim.NewRNG(uint64(ci)*7919 + 17)
				for step := 0; step < 300; step++ {
					f := fns[rng.Intn(len(fns))]
					switch rng.Intn(10) {
					case 0: // host-initiated eviction
						c.Evict(f.ID())
					case 1: // clobber a random frame (SEU injection)
						fi := rng.Intn(c.Fabric().Geometry().NumFrames())
						// Only clobber frames not owned by a resident
						// function — an owned-frame clobber is covered by
						// TestReloadAfterExternalClobber; here it would
						// legitimately trip the invariant until repaired.
						owned := false
						for _, fn := range c.ResidentFunctions() {
							for _, of := range residentFramesOf(c, fn) {
								if of == fi {
									owned = true
								}
							}
						}
						if !owned {
							_ = c.Fabric().ClearFrame(fi)
						}
					default: // execute
						in := make([]byte, f.BlockBytes*(rng.Intn(3)+1))
						for i := range in {
							in[i] = byte(rng.Uint64())
						}
						out, _, err := c.Execute(f.ID(), in)
						if err != nil {
							t.Fatalf("step %d exec %s: %v", step, f.Name(), err)
						}
						want, _ := f.Exec(padTo(in, int(f.InBus)))
						if !bytes.Equal(out, want) {
							t.Fatalf("step %d: %s computed wrong result", step, f.Name())
						}
					}
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
				st := c.Stats()
				if st.Requests == 0 || st.Misses == 0 {
					t.Fatalf("degenerate run: %+v", st)
				}
			})
	}
}

// residentFramesOf peeks the kernel table (test helper, same package).
func residentFramesOf(c *Controller, fn uint16) []int {
	if res, ok := c.kernel.table[fn]; ok {
		return res.frames
	}
	return nil
}

func TestMiniOSRecoversFromClobberStorm(t *testing.T) {
	// Clobber every frame, then demand every function: the mini OS must
	// rebuild the fabric from ROM without help.
	c := newController(t, Config{Geometry: fpga.DefaultGeometry, AllowScatter: true})
	fns := []*algos.Function{algos.CRC32(), algos.DES(), algos.SHA1()}
	for _, f := range fns {
		install(t, c, f, "rle")
		if _, _, err := c.Execute(f.ID(), make([]byte, f.BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < c.Fabric().Geometry().NumFrames(); i++ {
		_ = c.Fabric().ClearFrame(i)
	}
	for _, f := range fns {
		in := make([]byte, f.BlockBytes)
		in[0] = 7
		out, _, err := c.Execute(f.ID(), in)
		if err != nil {
			t.Fatalf("%s after storm: %v", f.Name(), err)
		}
		want, _ := f.Exec(in)
		if !bytes.Equal(out, want) {
			t.Fatalf("%s wrong after storm", f.Name())
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
