package mcu

import (
	"testing"

	"agilefpga/internal/algos"
	"agilefpga/internal/trace"
)

func TestTraceCapturesRequestLifecycle(t *testing.T) {
	c := newController(t, defaultCfg())
	log := &trace.Log{}
	c.SetTrace(log)
	f := algos.CRC32()
	install(t, c, f, "rle")

	if _, _, err := c.Execute(f.ID(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Execute(f.ID(), []byte{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}

	if got := log.Count(trace.KindRequest); got != 2 {
		t.Errorf("requests traced = %d", got)
	}
	if got := log.Count(trace.KindMiss); got != 1 {
		t.Errorf("misses traced = %d", got)
	}
	if got := log.Count(trace.KindHit); got != 1 {
		t.Errorf("hits traced = %d", got)
	}
	if got := log.Count(trace.KindConfigure); got != 1 {
		t.Errorf("configures traced = %d", got)
	}
	// The configure event carries the codec and footprint.
	for _, e := range log.Events() {
		if e.Kind == trace.KindConfigure {
			if e.Detail != "rle" || e.Frames == 0 || e.Bytes == 0 {
				t.Errorf("configure event underspecified: %+v", e)
			}
		}
	}
	// Timestamps are monotone.
	evs := log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TimePS < evs[i-1].TimePS {
			t.Errorf("time went backwards at event %d", i)
		}
	}
}

func TestTraceCapturesEvictAndError(t *testing.T) {
	c := newController(t, defaultCfg())
	log := &trace.Log{}
	c.SetTrace(log)
	f := algos.GFMul()
	install(t, c, f, "none")
	if _, _, err := c.Execute(f.ID(), []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	c.Evict(f.ID())
	if log.Count(trace.KindEvict) != 1 {
		t.Error("evict not traced")
	}
	if _, _, err := c.Execute(999, []byte{1}); err == nil {
		t.Fatal("expected error")
	}
	if log.Count(trace.KindError) != 1 {
		t.Error("error not traced")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := newController(t, defaultCfg())
	f := algos.GFMul()
	install(t, c, f, "none")
	// No SetTrace: must run fine (nil sink).
	if _, _, err := c.Execute(f.ID(), []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
}
