package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ROM image serialisation: the provisioning tool burns a card's ROM once
// and ships the image; LoadROM is what the card does at power-on. The
// format is a small header followed by the raw ROM contents (which embed
// the record table and blobs already).
//
//	magic   "AGLROM1\0"  (8 bytes)
//	cap     uint32       ROM capacity
//	blobTop uint32       first free byte above the bitstream region
//	recBot  uint32       lowest byte of the record table
//	count   uint32       number of records
//	data    cap bytes

var romMagic = [8]byte{'A', 'G', 'L', 'R', 'O', 'M', '1', 0}

const romHeaderBytes = 8 + 4*4

// ErrBadImage reports a malformed ROM image.
var ErrBadImage = errors.New("memory: bad ROM image")

// Image serialises the ROM.
func (r *ROM) Image() []byte {
	out := make([]byte, romHeaderBytes+len(r.data))
	copy(out, romMagic[:])
	binary.LittleEndian.PutUint32(out[8:], uint32(len(r.data)))
	binary.LittleEndian.PutUint32(out[12:], uint32(r.blobTop))
	binary.LittleEndian.PutUint32(out[16:], uint32(r.recBot))
	binary.LittleEndian.PutUint32(out[20:], uint32(r.count))
	copy(out[romHeaderBytes:], r.data)
	return out
}

// LoadROM reconstructs a ROM from an image, verifying the header, the
// region layout, and every record (including CRCs and blob bounds).
func LoadROM(image []byte) (*ROM, error) {
	if len(image) < romHeaderBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadImage, len(image))
	}
	var magic [8]byte
	copy(magic[:], image)
	if magic != romMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	capacity := int(binary.LittleEndian.Uint32(image[8:]))
	blobTop := int(binary.LittleEndian.Uint32(image[12:]))
	recBot := int(binary.LittleEndian.Uint32(image[16:]))
	count := int(binary.LittleEndian.Uint32(image[20:]))
	if len(image) != romHeaderBytes+capacity {
		return nil, fmt.Errorf("%w: header says %d data bytes, image carries %d",
			ErrBadImage, capacity, len(image)-romHeaderBytes)
	}
	if capacity < RecordBytes || blobTop < 0 || recBot > capacity || blobTop > recBot {
		return nil, fmt.Errorf("%w: layout blobTop=%d recBot=%d cap=%d", ErrBadImage, blobTop, recBot, capacity)
	}
	if count*RecordBytes != capacity-recBot {
		return nil, fmt.Errorf("%w: %d records do not fill the table region", ErrBadImage, count)
	}
	rom := &ROM{
		data:    append([]byte(nil), image[romHeaderBytes:]...),
		blobTop: blobTop,
		recBot:  recBot,
		count:   count,
	}
	// Validate every record: CRC, blob bounds, unique ids.
	seen := make(map[uint16]bool, count)
	for i := 0; i < count; i++ {
		rec, err := rom.Record(i)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadImage, i, err)
		}
		if int(rec.Start)+int(rec.CompSize) > blobTop {
			return nil, fmt.Errorf("%w: record %d blob [%d, %d) beyond blob region %d",
				ErrBadImage, i, rec.Start, rec.Start+rec.CompSize, blobTop)
		}
		if seen[rec.FnID] {
			return nil, fmt.Errorf("%w: duplicate function id %d", ErrBadImage, rec.FnID)
		}
		seen[rec.FnID] = true
	}
	return rom, nil
}
