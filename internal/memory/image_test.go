package memory

import (
	"errors"
	"testing"
)

func builtROM(t *testing.T) *ROM {
	t.Helper()
	rom, err := NewROM(4096)
	if err != nil {
		t.Fatal(err)
	}
	for i, blob := range [][]byte{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}} {
		rec := Record{Name: "fn", FnID: uint16(i + 1), CodecID: 1,
			RawSize: uint32(len(blob) * 2), InBus: 4, OutBus: 4, FrameCount: 2, Serial: 1}
		if err := rom.Install(rec, blob); err != nil {
			t.Fatal(err)
		}
	}
	return rom
}

func TestROMImageRoundTrip(t *testing.T) {
	rom := builtROM(t)
	img := rom.Image()
	got, err := LoadROM(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Capacity() != rom.Capacity() || got.NumRecords() != rom.NumRecords() ||
		got.FreeBytes() != rom.FreeBytes() {
		t.Fatal("geometry mismatch after reload")
	}
	for i := 0; i < rom.NumRecords(); i++ {
		a, _ := rom.Record(i)
		b, _ := got.Record(i)
		if a != b {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		blobA, _ := rom.Blob(a)
		blobB, _ := got.Blob(b)
		if string(blobA) != string(blobB) {
			t.Fatalf("blob %d differs", i)
		}
	}
	// A reloaded ROM keeps working: install another function.
	if err := got.Install(Record{Name: "x", FnID: 99}, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	// The image is a copy: mutating it must not touch the source ROM.
	img[romHeaderBytes] ^= 0xFF
	if b, _ := rom.Blob(mustRec(t, rom, 1)); b[0] != 1 {
		t.Error("image aliased ROM memory")
	}
}

func mustRec(t *testing.T, r *ROM, fn uint16) Record {
	t.Helper()
	rec, err := r.FindByID(fn)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLoadROMRejectsCorruption(t *testing.T) {
	rom := builtROM(t)
	good := rom.Image()

	mutate := func(name string, f func(img []byte) []byte) {
		t.Helper()
		img := append([]byte(nil), good...)
		img = f(img)
		if _, err := LoadROM(img); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: err = %v, want ErrBadImage", name, err)
		}
	}
	mutate("short", func(img []byte) []byte { return img[:10] })
	mutate("magic", func(img []byte) []byte { img[0] = 'X'; return img })
	mutate("truncated data", func(img []byte) []byte { return img[:len(img)-5] })
	mutate("record CRC", func(img []byte) []byte {
		img[len(img)-20] ^= 0xFF // inside the newest record
		return img
	})
	mutate("blob overrun", func(img []byte) []byte {
		// Blow up blobTop so record bounds checks fire... rather, shrink
		// blobTop below the blobs' extent.
		img[12] = 0
		img[13] = 0
		return img
	})
	mutate("count mismatch", func(img []byte) []byte { img[20] = 99; return img })
}

func TestLoadROMEmpty(t *testing.T) {
	rom, _ := NewROM(1024)
	got, err := LoadROM(rom.Image())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 0 || got.FreeBytes() != 1024 {
		t.Error("empty ROM did not round trip")
	}
}
