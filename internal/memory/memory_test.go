package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(fnID, inBus, outBus, frames, serial uint16, codec byte, comp, raw uint32) bool {
		rec := Record{
			Name: "aes128", FnID: fnID, CodecID: codec,
			CompSize: comp, RawSize: raw,
			InBus: inBus, OutBus: outBus, FrameCount: frames, Serial: serial,
		}
		var buf [RecordBytes]byte
		if err := rec.encode(buf[:]); err != nil {
			return false
		}
		got, err := decodeRecord(buf[:])
		if err != nil {
			return false
		}
		rec.Start = got.Start // Start is assigned by the ROM
		return got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordNameTooLong(t *testing.T) {
	rec := Record{Name: "a-name-that-is-way-too-long-for-a-record"}
	var buf [RecordBytes]byte
	if err := rec.encode(buf[:]); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestRecordCRCDetectsCorruption(t *testing.T) {
	rec := Record{Name: "crc32", FnID: 4, CompSize: 100}
	var buf [RecordBytes]byte
	if err := rec.encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < RecordBytes; i++ {
		mut := buf
		mut[i] ^= 1
		if i >= 40 && i < 46 {
			continue // reserved bytes are not covered
		}
		if _, err := decodeRecord(mut[:]); err == nil && i < 40 {
			t.Errorf("corrupted byte %d undetected", i)
		}
	}
	if _, err := decodeRecord(buf[:10]); err == nil {
		t.Error("short record accepted")
	}
}

func TestROMTwoEndedLayout(t *testing.T) {
	rom, err := NewROM(1024)
	if err != nil {
		t.Fatal(err)
	}
	blobA := []byte("AAAAAAAAAA")
	blobB := []byte("BBBBB")
	if err := rom.Install(Record{Name: "a", FnID: 1}, blobA); err != nil {
		t.Fatal(err)
	}
	if err := rom.Install(Record{Name: "b", FnID: 2}, blobB); err != nil {
		t.Fatal(err)
	}
	recA, err := rom.FindByID(1)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := rom.FindByID(2)
	if err != nil {
		t.Fatal(err)
	}
	// Blobs grow from the bottom.
	if recA.Start != 0 {
		t.Errorf("first blob at %d, want 0", recA.Start)
	}
	if recB.Start != uint32(len(blobA)) {
		t.Errorf("second blob at %d, want %d", recB.Start, len(blobA))
	}
	// Records grow from the top.
	if rom.NumRecords() != 2 {
		t.Errorf("NumRecords = %d", rom.NumRecords())
	}
	gotA, err := rom.Blob(recA)
	if err != nil || string(gotA) != string(blobA) {
		t.Errorf("blob A readback %q, err %v", gotA, err)
	}
	gotB, _ := rom.Blob(recB)
	if string(gotB) != string(blobB) {
		t.Errorf("blob B readback %q", gotB)
	}
	if rom.FreeBytes() != 1024-len(blobA)-len(blobB)-2*RecordBytes {
		t.Errorf("FreeBytes = %d", rom.FreeBytes())
	}
}

func TestROMFull(t *testing.T) {
	rom, err := NewROM(RecordBytes + 20)
	if err != nil {
		t.Fatal(err)
	}
	// Fits exactly: blob of 20 plus one record.
	if err := rom.Install(Record{Name: "x", FnID: 1}, make([]byte, 20)); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
	if rom.FreeBytes() != 0 {
		t.Errorf("FreeBytes = %d, want 0", rom.FreeBytes())
	}
	// Anything more collides.
	if err := rom.Install(Record{Name: "y", FnID: 2}, nil); !errors.Is(err, ErrROMFull) {
		t.Errorf("err = %v, want ErrROMFull", err)
	}
	// Failed install leaves the ROM unchanged.
	if rom.NumRecords() != 1 {
		t.Errorf("failed install changed record count")
	}
}

func TestROMDuplicateID(t *testing.T) {
	rom, _ := NewROM(4096)
	if err := rom.Install(Record{Name: "a", FnID: 7}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := rom.Install(Record{Name: "b", FnID: 7}, []byte{2}); !errors.Is(err, ErrDupFnID) {
		t.Errorf("err = %v, want ErrDupFnID", err)
	}
}

func TestROMLookupFailures(t *testing.T) {
	rom, _ := NewROM(4096)
	if _, err := rom.FindByID(9); !errors.Is(err, ErrNoRecord) {
		t.Errorf("FindByID on empty: %v", err)
	}
	if _, err := rom.FindByName("nope"); !errors.Is(err, ErrNoRecord) {
		t.Errorf("FindByName on empty: %v", err)
	}
	if _, err := rom.Record(0); !errors.Is(err, ErrNoRecord) {
		t.Errorf("Record(0) on empty: %v", err)
	}
	if _, err := rom.Record(-1); !errors.Is(err, ErrNoRecord) {
		t.Errorf("Record(-1): %v", err)
	}
}

func TestROMFindByName(t *testing.T) {
	rom, _ := NewROM(4096)
	_ = rom.Install(Record{Name: "sha256", FnID: 1}, []byte{1, 2})
	_ = rom.Install(Record{Name: "des", FnID: 2}, []byte{3})
	rec, err := rom.FindByName("des")
	if err != nil || rec.FnID != 2 {
		t.Errorf("FindByName(des) = %+v, %v", rec, err)
	}
	recs, err := rom.Records()
	if err != nil || len(recs) != 2 || recs[0].Name != "sha256" {
		t.Errorf("Records() = %+v, %v", recs, err)
	}
}

func TestROMReadAtBounds(t *testing.T) {
	rom, _ := NewROM(100)
	if _, err := rom.ReadAt(90, 20); !errors.Is(err, ErrROMBounds) {
		t.Errorf("overread: %v", err)
	}
	if _, err := rom.ReadAt(-1, 2); !errors.Is(err, ErrROMBounds) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := rom.ReadAt(0, -2); !errors.Is(err, ErrROMBounds) {
		t.Errorf("negative length: %v", err)
	}
}

func TestROMCompSizeMismatch(t *testing.T) {
	rom, _ := NewROM(4096)
	err := rom.Install(Record{Name: "x", FnID: 1, CompSize: 5}, make([]byte, 10))
	if err == nil {
		t.Error("CompSize mismatch accepted")
	}
}

func TestNewROMTooSmall(t *testing.T) {
	if _, err := NewROM(10); err == nil {
		t.Error("tiny ROM accepted")
	}
}

func TestReadCycles(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {100, 50}}
	for _, c := range cases {
		if got := ReadCycles(c.n); got != c.want {
			t.Errorf("ReadCycles(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestRAMReadWrite(t *testing.T) {
	ram, err := NewRAM(256)
	if err != nil {
		t.Fatal(err)
	}
	if ram.Capacity() != 256 {
		t.Errorf("Capacity = %d", ram.Capacity())
	}
	if err := ram.Write(10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ram.Read(10, 5)
	if err != nil || string(got) != "hello" {
		t.Errorf("Read = %q, %v", got, err)
	}
	// Readback is a copy.
	got[0] = 'X'
	got2, _ := ram.Read(10, 5)
	if string(got2) != "hello" {
		t.Error("Read returned aliased memory")
	}
}

func TestRAMBounds(t *testing.T) {
	ram, _ := NewRAM(16)
	if err := ram.Write(10, make([]byte, 10)); !errors.Is(err, ErrRAMBounds) {
		t.Errorf("overwrite: %v", err)
	}
	if err := ram.Write(-1, []byte{1}); !errors.Is(err, ErrRAMBounds) {
		t.Errorf("negative write: %v", err)
	}
	if _, err := ram.Read(12, 10); !errors.Is(err, ErrRAMBounds) {
		t.Errorf("overread: %v", err)
	}
	if _, err := ram.Read(0, -1); !errors.Is(err, ErrRAMBounds) {
		t.Errorf("negative read: %v", err)
	}
	if _, err := NewRAM(0); err == nil {
		t.Error("zero-capacity RAM accepted")
	}
}

func TestAccessCycles(t *testing.T) {
	if got := AccessCycles(9); got != 3 {
		t.Errorf("AccessCycles(9) = %d, want 3", got)
	}
}

func TestROMManyRecordsProperty(t *testing.T) {
	// Installing k functions then reading them all back preserves every
	// field and never overlaps blobs.
	f := func(seed uint8) bool {
		rom, err := NewROM(64 * 1024)
		if err != nil {
			return false
		}
		k := int(seed%20) + 1
		blobs := make([][]byte, k)
		for i := 0; i < k; i++ {
			blob := make([]byte, (i*37)%300+1)
			for j := range blob {
				blob[j] = byte(i)
			}
			blobs[i] = blob
			rec := Record{
				Name: "fn", FnID: uint16(i), CodecID: byte(i % 5),
				RawSize: uint32(len(blob) * 3), InBus: 8, OutBus: 4,
				FrameCount: uint16(i%6 + 1), Serial: uint16(i),
			}
			if err := rom.Install(rec, blob); err != nil {
				return false
			}
		}
		for i := 0; i < k; i++ {
			rec, err := rom.FindByID(uint16(i))
			if err != nil {
				return false
			}
			got, err := rom.Blob(rec)
			if err != nil || string(got) != string(blobs[i]) {
				return false
			}
			if rec.FrameCount != uint16(i%6+1) || rec.RawSize != uint32(len(blobs[i])*3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
