package memory

import (
	"errors"
	"fmt"
)

// RAM is the word-addressed local store the microcontroller stages
// function inputs and outputs in (paper §2.3). Accesses are bounds-checked
// and cost-modelled through a 32-bit interface.
type RAM struct {
	data []byte
}

// RAMBytesPerCycle is the local RAM port width: 32-bit SRAM delivers 4
// bytes per microcontroller cycle.
const RAMBytesPerCycle = 4

// ErrRAMBounds reports an out-of-range RAM access.
var ErrRAMBounds = errors.New("memory: RAM access out of bounds")

// NewRAM returns a RAM of the given capacity.
func NewRAM(capacity int) (*RAM, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memory: invalid RAM capacity %d", capacity)
	}
	return &RAM{data: make([]byte, capacity)}, nil
}

// Capacity reports the RAM size in bytes.
func (r *RAM) Capacity() int { return len(r.data) }

// Write copies p into RAM at off.
func (r *RAM) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > len(r.data) {
		return fmt.Errorf("%w: write [%d, %d) of %d", ErrRAMBounds, off, off+len(p), len(r.data))
	}
	copy(r.data[off:], p)
	return nil
}

// Read copies n bytes at off into a fresh slice.
func (r *RAM) Read(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(r.data) {
		return nil, fmt.Errorf("%w: read [%d, %d) of %d", ErrRAMBounds, off, off+n, len(r.data))
	}
	out := make([]byte, n)
	copy(out, r.data[off:])
	return out, nil
}

// AccessCycles reports microcontroller cycles to move n bytes through the
// RAM port.
func AccessCycles(n int) uint64 {
	return uint64((n + RAMBytesPerCycle - 1) / RAMBytesPerCycle)
}
