// Package memory models the co-processor's on-board storage: the ROM
// holding compressed configuration bitstreams and the function record
// table (paper §2.2), and the local RAM staging function inputs and
// outputs (paper §2.3).
//
// The ROM follows the paper's two-ended layout exactly: compressed
// bitstreams are appended from the bottom of the address space while the
// record table grows down from the top; the device is full when the two
// regions would collide. Records are genuinely serialised into the ROM
// bytes — the microcontroller reads them back through the same address
// space it reads bitstreams from.
package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record is one function entry in the ROM record table: where the
// compressed bitstream lives, how big it is compressed and raw, which
// codec it uses, the function's I/O bus widths and frame demand — the
// fields the paper's §2.2 record holds, plus what the mini OS needs for
// placement.
type Record struct {
	Name       string // up to 16 bytes
	FnID       uint16
	CodecID    byte
	Start      uint32 // byte offset of the compressed bitstream in ROM
	CompSize   uint32
	RawSize    uint32
	InBus      uint16 // input bus width in bytes; transfers are multiples of it
	OutBus     uint16 // output bus width in bytes
	FrameCount uint16 // frames the function occupies on the fabric
	Serial     uint16 // bitstream build serial
}

// RecordBytes is the on-ROM footprint of one serialised record.
const RecordBytes = 48

const recNameBytes = 16

// encode serialises the record into dst (RecordBytes long).
func (r *Record) encode(dst []byte) error {
	if len(r.Name) > recNameBytes {
		return fmt.Errorf("memory: record name %q exceeds %d bytes", r.Name, recNameBytes)
	}
	for i := range dst[:RecordBytes] {
		dst[i] = 0
	}
	copy(dst, r.Name)
	binary.LittleEndian.PutUint16(dst[16:], r.FnID)
	dst[18] = r.CodecID
	binary.LittleEndian.PutUint32(dst[20:], r.Start)
	binary.LittleEndian.PutUint32(dst[24:], r.CompSize)
	binary.LittleEndian.PutUint32(dst[28:], r.RawSize)
	binary.LittleEndian.PutUint16(dst[32:], r.InBus)
	binary.LittleEndian.PutUint16(dst[34:], r.OutBus)
	binary.LittleEndian.PutUint16(dst[36:], r.FrameCount)
	binary.LittleEndian.PutUint16(dst[38:], r.Serial)
	binary.LittleEndian.PutUint16(dst[46:], recCRC(dst[:46]))
	return nil
}

// decodeRecord parses a serialised record, verifying its CRC.
func decodeRecord(src []byte) (Record, error) {
	if len(src) < RecordBytes {
		return Record{}, errors.New("memory: short record")
	}
	if binary.LittleEndian.Uint16(src[46:]) != recCRC(src[:46]) {
		return Record{}, errors.New("memory: record CRC mismatch")
	}
	name := src[:recNameBytes]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	return Record{
		Name:       string(name[:end]),
		FnID:       binary.LittleEndian.Uint16(src[16:]),
		CodecID:    src[18],
		Start:      binary.LittleEndian.Uint32(src[20:]),
		CompSize:   binary.LittleEndian.Uint32(src[24:]),
		RawSize:    binary.LittleEndian.Uint32(src[28:]),
		InBus:      binary.LittleEndian.Uint16(src[32:]),
		OutBus:     binary.LittleEndian.Uint16(src[34:]),
		FrameCount: binary.LittleEndian.Uint16(src[36:]),
		Serial:     binary.LittleEndian.Uint16(src[38:]),
	}, nil
}

// recCRC is CRC-16/CCITT over the record body.
func recCRC(p []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range p {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// ROM errors.
var (
	ErrROMFull   = errors.New("memory: ROM full (bitstream and record regions collided)")
	ErrNoRecord  = errors.New("memory: no such function record")
	ErrROMBounds = errors.New("memory: ROM access out of bounds")
	ErrDupFnID   = errors.New("memory: duplicate function id in ROM")
)

// ROMBytesPerCycle is the ROM read port width: a 16-bit flash interface
// delivers 2 bytes per microcontroller cycle.
const ROMBytesPerCycle = 2

// ROM is the two-ended configuration store.
type ROM struct {
	data    []byte
	blobTop int // first free byte above the bitstream region (grows up)
	recBot  int // lowest byte of the record table (grows down)
	count   int // number of records
}

// NewROM returns a ROM of the given capacity.
func NewROM(capacity int) (*ROM, error) {
	if capacity < RecordBytes {
		return nil, fmt.Errorf("memory: ROM capacity %d below one record", capacity)
	}
	return &ROM{data: make([]byte, capacity), recBot: capacity}, nil
}

// Capacity reports the ROM size in bytes.
func (r *ROM) Capacity() int { return len(r.data) }

// FreeBytes reports the unused gap between the two regions.
func (r *ROM) FreeBytes() int { return r.recBot - r.blobTop }

// NumRecords reports how many function records the table holds.
func (r *ROM) NumRecords() int { return r.count }

// Install appends a compressed bitstream to the blob region and its
// record to the table. The Start field of rec is filled in by the ROM.
// Install fails with ErrROMFull if the regions would collide, leaving the
// ROM unchanged.
func (r *ROM) Install(rec Record, blob []byte) error {
	if rec.CompSize != 0 && int(rec.CompSize) != len(blob) {
		return fmt.Errorf("memory: record CompSize %d != blob %d", rec.CompSize, len(blob))
	}
	if _, err := r.FindByID(rec.FnID); err == nil {
		return fmt.Errorf("%w: %d (%s)", ErrDupFnID, rec.FnID, rec.Name)
	}
	need := len(blob) + RecordBytes
	if r.FreeBytes() < need {
		return fmt.Errorf("%w: need %d bytes, %d free", ErrROMFull, need, r.FreeBytes())
	}
	rec.Start = uint32(r.blobTop)
	rec.CompSize = uint32(len(blob))
	slot := r.recBot - RecordBytes
	if err := rec.encode(r.data[slot:]); err != nil {
		return err
	}
	copy(r.data[r.blobTop:], blob)
	r.blobTop += len(blob)
	r.recBot = slot
	r.count++
	return nil
}

// Record returns the i-th record (installation order).
func (r *ROM) Record(i int) (Record, error) {
	if i < 0 || i >= r.count {
		return Record{}, fmt.Errorf("%w: index %d of %d", ErrNoRecord, i, r.count)
	}
	slot := len(r.data) - (i+1)*RecordBytes
	return decodeRecord(r.data[slot:])
}

// Records returns all records in installation order.
func (r *ROM) Records() ([]Record, error) {
	out := make([]Record, 0, r.count)
	for i := 0; i < r.count; i++ {
		rec, err := r.Record(i)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// FindByID locates the record of function fnID.
func (r *ROM) FindByID(fnID uint16) (Record, error) {
	for i := 0; i < r.count; i++ {
		rec, err := r.Record(i)
		if err != nil {
			return Record{}, err
		}
		if rec.FnID == fnID {
			return rec, nil
		}
	}
	return Record{}, fmt.Errorf("%w: id %d", ErrNoRecord, fnID)
}

// FindByName locates the record of the named function.
func (r *ROM) FindByName(name string) (Record, error) {
	for i := 0; i < r.count; i++ {
		rec, err := r.Record(i)
		if err != nil {
			return Record{}, err
		}
		if rec.Name == name {
			return rec, nil
		}
	}
	return Record{}, fmt.Errorf("%w: name %q", ErrNoRecord, name)
}

// ReadAt copies n bytes starting at off into a fresh slice.
func (r *ROM) ReadAt(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(r.data) {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrROMBounds, off, off+n)
	}
	out := make([]byte, n)
	copy(out, r.data[off:])
	return out, nil
}

// Blob returns the compressed bitstream of rec.
func (r *ROM) Blob(rec Record) ([]byte, error) {
	return r.ReadAt(int(rec.Start), int(rec.CompSize))
}

// ReadCycles reports microcontroller cycles to read n bytes from ROM.
func ReadCycles(n int) uint64 {
	return uint64((n + ROMBytesPerCycle - 1) / ROMBytesPerCycle)
}
