// Package metrics is the co-processor's telemetry layer: lock-cheap
// counters, gauges and fixed-bucket histograms over virtual time,
// collected into one Registry and exported either as a structured
// snapshot (quantile queries, BENCH.json enrichment) or as Prometheus
// text exposition (the agilesim -metrics-addr endpoint).
//
// Recording is designed to be safe on the hot path: every instrument is
// a handful of atomic operations, series lookup takes only a read lock
// once a series exists, and — mirroring trace.Log — a nil *Registry is
// a valid sink that records nothing, so instrumented code never
// branches on "are metrics enabled" beyond the nil check Go gives for
// free. Observation never advances any clock domain: enabling metrics
// cannot change a single virtual-time experiment number.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"agilefpga/internal/sim"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depths, busy flags).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc and Dec move the gauge by ±1. Safe on nil receivers.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates virtual-time observations into fixed buckets.
// Bounds are upper-inclusive bucket edges in ascending order; a final
// implicit +Inf bucket catches everything above the last bound.
type Histogram struct {
	bounds  []sim.Time
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Uint64 // picoseconds
	// Exemplar: the trace id and value of the most recent traced
	// observation, linking the aggregate series back to one concrete
	// request a reader can pull from /debug/traces. Two independent
	// atomics — a torn id/value pair costs a slightly mismatched
	// exemplar, never a wrong aggregate.
	exTraceID atomic.Uint64
	exValue   atomic.Uint64
}

// DefaultLatencyBuckets covers the repository's virtual-latency range:
// hit-path phases sit in the hundreds of nanoseconds, full
// reconfigurations in the hundreds of microseconds to milliseconds.
func DefaultLatencyBuckets() []sim.Time {
	return []sim.Time{
		100 * sim.Nanosecond, 250 * sim.Nanosecond, 500 * sim.Nanosecond,
		1 * sim.Microsecond, 2500 * sim.Nanosecond, 5 * sim.Microsecond,
		10 * sim.Microsecond, 25 * sim.Microsecond, 50 * sim.Microsecond,
		100 * sim.Microsecond, 250 * sim.Microsecond, 500 * sim.Microsecond,
		1 * sim.Millisecond, 2500 * sim.Microsecond, 5 * sim.Millisecond,
		10 * sim.Millisecond, 25 * sim.Millisecond, 50 * sim.Millisecond,
		100 * sim.Millisecond,
	}
}

// SizeBuckets covers count-valued histograms (batch window sizes,
// queue occupancies): powers of two from 1 to 1024, stored in the same
// sim.Time bucket machinery the latency histograms use — one raw unit
// per counted item, no time semantics.
func SizeBuckets() []sim.Time {
	return []sim.Time{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// Observe records one virtual-time sample. Safe on a nil receiver.
func (h *Histogram) Observe(t sim.Time) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return t <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(t))
}

// ObserveExemplar is Observe plus an exemplar: when traceID is
// non-zero the observation's trace id is remembered (last writer
// wins) and exported alongside the series, so a latency spike on a
// dashboard links to the distributed trace that caused it. Safe on a
// nil receiver.
func (h *Histogram) ObserveExemplar(t sim.Time, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(t)
	if traceID != 0 {
		h.exTraceID.Store(traceID)
		h.exValue.Store(uint64(t))
	}
}

// Exemplar reports the most recent traced observation (zero trace id
// when no traced observation has been recorded). Safe on a nil
// receiver.
func (h *Histogram) Exemplar() (traceID uint64, value sim.Time) {
	if h == nil {
		return 0, 0
	}
	return h.exTraceID.Load(), sim.Time(h.exValue.Load())
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return sim.Time(h.sum.Load())
}

// seriesKind discriminates the three instrument types.
type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered instrument with its identity.
type series struct {
	name   string
	labels []Label
	kind   seriesKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds every registered series. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is a valid no-op sink:
// all lookup methods return nil instruments whose methods do nothing.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey builds the map key: name plus sorted k=v pairs. Labels are
// sorted so call sites need not agree on ordering.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) > 1 {
		labels = append([]Label(nil), labels...)
		sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), labels
}

// lookup finds or creates a series, taking only a read lock on the hot
// (already registered) path. bounds applies only to histogram creation
// (nil = DefaultLatencyBuckets) and is ignored once the series exists.
func (r *Registry) lookup(name string, labels []Label, kind seriesKind, bounds []sim.Time) *series {
	key, sorted := seriesKey(name, labels)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s != nil {
		return s
	}
	s = &series{name: name, labels: sorted, kind: kind}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		s.hist = &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	}
	r.series[key] = s
	return s
}

// Counter returns the counter series for name+labels, creating it on
// first use. A nil registry returns a nil (no-op) counter. Looking a
// name up with a different instrument type than it was first registered
// with returns a detached no-op instrument rather than corrupting the
// registered one.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindCounter, nil)
	if s.kind != kindCounter {
		return nil
	}
	return s.counter
}

// Gauge returns the gauge series for name+labels, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindGauge, nil)
	if s.kind != kindGauge {
		return nil
	}
	return s.gauge
}

// Histogram returns the histogram series for name+labels with the
// default latency buckets, creating it on first use. A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindHistogram, nil)
	if s.kind != kindHistogram {
		return nil
	}
	return s.hist
}

// HistogramWith is Histogram with explicit bucket bounds (ascending
// upper edges), for series whose values are not latencies — batch
// window sizes, occupancies. Bounds apply only when the series is
// created; later lookups return the existing histogram unchanged, so
// every call site of one series should pass the same bounds.
func (r *Registry) HistogramWith(name string, bounds []sim.Time, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindHistogram, bounds)
	if s.kind != kindHistogram {
		return nil
	}
	return s.hist
}

// SeriesSnapshot is one series' frozen state.
type SeriesSnapshot struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge" or "histogram"
	// Value carries counter/gauge readings.
	Value int64
	// Histogram state: per-bucket (non-cumulative) counts aligned with
	// Bounds, plus the implicit +Inf bucket at the end.
	Bounds  []sim.Time
	Buckets []uint64
	Count   uint64
	Sum     sim.Time
	// ExemplarTraceID/ExemplarValue carry the histogram's most recent
	// traced observation (zero id = none).
	ExemplarTraceID uint64
	ExemplarValue   sim.Time
}

// Label reports the value of one label key ("" when absent).
func (s SeriesSnapshot) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram snapshot
// by linear interpolation within the containing bucket. Observations in
// the +Inf bucket clamp to the highest finite bound. Returns 0 when the
// snapshot is empty or not a histogram.
func (s SeriesSnapshot) Quantile(q float64) sim.Time {
	if s.Count == 0 || len(s.Bounds) == 0 || len(s.Buckets) != len(s.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		prev := cum
		cum += float64(n)
		if cum < target || n == 0 {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: clamp
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := sim.Time(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (target - prev) / float64(n)
		return lo + sim.Time(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// snapshotOne freezes one series.
func snapshotOne(s *series) SeriesSnapshot {
	out := SeriesSnapshot{
		Name:   s.name,
		Labels: append([]Label(nil), s.labels...),
		Kind:   s.kind.String(),
	}
	switch s.kind {
	case kindCounter:
		out.Value = int64(s.counter.Value())
	case kindGauge:
		out.Value = s.gauge.Value()
	case kindHistogram:
		out.Bounds = append([]sim.Time(nil), s.hist.bounds...)
		out.Buckets = make([]uint64, len(s.hist.buckets))
		for i := range s.hist.buckets {
			out.Buckets[i] = s.hist.buckets[i].Load()
		}
		out.Count = s.hist.Count()
		out.Sum = s.hist.Sum()
		out.ExemplarTraceID, out.ExemplarValue = s.hist.Exemplar()
	}
	return out
}

// Snapshot freezes every series, sorted by name then labels — a stable
// order for exporters and tests. Safe on a nil registry (returns nil).
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		out = append(out, snapshotOne(s))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// MergeHistograms sums histogram snapshots that share identical bucket
// bounds into one (label-less) snapshot — the aggregation behind
// "quantile over all functions for one phase". Non-histogram and
// mismatched-bounds entries are skipped. ok is false when nothing
// merged.
func MergeHistograms(snaps []SeriesSnapshot) (merged SeriesSnapshot, ok bool) {
	for _, s := range snaps {
		if s.Kind != "histogram" || len(s.Buckets) != len(s.Bounds)+1 {
			continue
		}
		if !ok {
			merged = SeriesSnapshot{
				Name:    s.Name,
				Kind:    "histogram",
				Bounds:  append([]sim.Time(nil), s.Bounds...),
				Buckets: make([]uint64, len(s.Buckets)),
			}
			ok = true
		}
		if len(s.Bounds) != len(merged.Bounds) {
			continue
		}
		for i, b := range s.Buckets {
			merged.Buckets[i] += b
		}
		merged.Count += s.Count
		merged.Sum += s.Sum
	}
	return merged, ok
}

// QuantileWhere merges every histogram series called name whose labels
// include all of match, then reports the q-quantile and the merged
// observation count. Safe on a nil registry.
func (r *Registry) QuantileWhere(name string, q float64, match ...Label) (sim.Time, uint64) {
	if r == nil {
		return 0, 0
	}
	var picked []SeriesSnapshot
	for _, s := range r.Snapshot() {
		if s.Name != name || s.Kind != "histogram" {
			continue
		}
		matches := true
		for _, m := range match {
			if s.Label(m.Key) != m.Value {
				matches = false
				break
			}
		}
		if matches {
			picked = append(picked, s)
		}
	}
	merged, ok := MergeHistograms(picked)
	if !ok {
		return 0, 0
	}
	return merged.Quantile(q), merged.Count
}
