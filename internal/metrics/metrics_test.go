package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"agilefpga/internal/sim"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x", L("a", "b")).Inc()
	r.Gauge("y").Set(7)
	r.Histogram("z").Observe(sim.Microsecond)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v", got)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil registry wrote output")
	}
	if q, n := r.QuantileWhere("z", 0.5); q != 0 || n != 0 {
		t.Error("nil registry quantile nonzero")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", L("fn", "aes128"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Same name+labels returns the same series regardless of label order.
	if r.Counter("reqs", L("fn", "aes128")) != c {
		t.Error("lookup did not dedupe")
	}
	g := r.Gauge("depth", L("card", "0"))
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Dec()
	if g.Value() != 2 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestTypeMismatchReturnsNoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	if g := r.Gauge("m"); g != nil {
		t.Error("type mismatch returned a live instrument")
	}
	// The original keeps working and the mismatch was a no-op.
	r.Gauge("m").Set(99)
	if r.Counter("m").Value() != 1 {
		t.Error("counter corrupted by mismatched lookup")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", L("phase", "exec"))
	for i := 0; i < 100; i++ {
		h.Observe(10 * sim.Microsecond) // falls in the (5µs, 10µs] bucket
	}
	if h.Count() != 100 || h.Sum() != 1000*sim.Microsecond {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	q := snap[0].Quantile(0.5)
	if q <= 5*sim.Microsecond || q > 10*sim.Microsecond {
		t.Errorf("p50 = %v, want in (5µs, 10µs]", q)
	}
	// All mass in one bucket: p99 stays in the same bucket.
	if q99 := snap[0].Quantile(0.99); q99 > 10*sim.Microsecond {
		t.Errorf("p99 = %v", q99)
	}
}

// TestHistogramWithCustomBuckets pins the count-valued histogram path:
// SizeBuckets bounds resolve sizes exactly (each power of two is its
// own upper edge), and the bounds stick on first registration.
func TestHistogramWithCustomBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("batch_window", SizeBuckets())
	for _, n := range []int{1, 1, 8, 8, 8, 32} {
		h.Observe(sim.Time(n))
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Count != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap[0].Bounds[0]; got != 1 {
		t.Fatalf("first bound = %v, want 1", got)
	}
	// Bucket counts: ≤1 holds 2, (4,8] holds 3, (16,32] holds 1.
	if snap[0].Buckets[0] != 2 || snap[0].Buckets[3] != 3 || snap[0].Buckets[5] != 1 {
		t.Fatalf("buckets = %v", snap[0].Buckets)
	}
	// A later default-bounds lookup of the same series must return the
	// same histogram, not re-bucket it.
	if h2 := r.Histogram("batch_window"); h2 != h {
		t.Fatal("second lookup returned a different histogram")
	}
}

func TestQuantileSpreadIsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast, 10 slow: p50 low, p95+ high.
	for i := 0; i < 90; i++ {
		h.Observe(200 * sim.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2 * sim.Millisecond)
	}
	s := r.Snapshot()[0]
	p50, p95, p99 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	if p50 > sim.Microsecond {
		t.Errorf("p50 = %v, want sub-µs", p50)
	}
	if p99 < sim.Millisecond {
		t.Errorf("p99 = %v, want ≥ 1ms", p99)
	}
}

func TestQuantileOverflowClampsToTopBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(10 * sim.Second) // beyond every bound → +Inf bucket
	s := r.Snapshot()[0]
	top := s.Bounds[len(s.Bounds)-1]
	if got := s.Quantile(0.99); got != top {
		t.Errorf("overflow quantile = %v, want clamp to %v", got, top)
	}
}

func TestMergeHistogramsAndQuantileWhere(t *testing.T) {
	r := NewRegistry()
	r.Histogram("agile_phase_seconds", L("phase", "exec"), L("fn", "a")).Observe(sim.Microsecond)
	r.Histogram("agile_phase_seconds", L("phase", "exec"), L("fn", "b")).Observe(sim.Microsecond)
	r.Histogram("agile_phase_seconds", L("phase", "configure"), L("fn", "a")).Observe(sim.Millisecond)
	if _, n := r.QuantileWhere("agile_phase_seconds", 0.5, L("phase", "exec")); n != 2 {
		t.Errorf("merged count = %d, want 2", n)
	}
	q, n := r.QuantileWhere("agile_phase_seconds", 0.5, L("phase", "configure"))
	if n != 1 || q < 500*sim.Microsecond {
		t.Errorf("configure quantile = %v (n=%d)", q, n)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("agile_requests_total", L("fn", "aes128"), L("result", "hit")).Add(3)
	r.Gauge("agile_cluster_queue_depth", L("card", "0")).Set(2)
	r.Histogram("agile_phase_seconds", L("phase", "configure"), L("fn", "aes128")).Observe(300 * sim.Microsecond)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE agile_requests_total counter",
		`agile_requests_total{fn="aes128",result="hit"} 3`,
		"# TYPE agile_cluster_queue_depth gauge",
		`agile_cluster_queue_depth{card="0"} 2`,
		"# TYPE agile_phase_seconds histogram",
		`agile_phase_seconds_bucket{fn="aes128",phase="configure",le="+Inf"} 1`,
		`agile_phase_seconds_count{fn="aes128",phase="configure"} 1`,
		`agile_phase_seconds_sum{fn="aes128",phase="configure"} 0.0003`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 500µs bucket includes the 300µs sample.
	if !strings.Contains(out, `le="0.0005"} 1`) {
		t.Errorf("cumulative bucket missing:\n%s", out)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if _, err := r.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition not deterministic")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", L("g", string(rune('a'+g)))).Inc()
				r.Histogram("h").Observe(sim.Time(i) * sim.Microsecond)
				r.Gauge("q").Inc()
			}
		}(g)
	}
	wg.Wait()
	if r.Gauge("q").Value() != 4000 {
		t.Errorf("gauge = %d", r.Gauge("q").Value())
	}
	if r.Histogram("h").Count() != 4000 {
		t.Errorf("hist count = %d", r.Histogram("h").Count())
	}
	total := uint64(0)
	for _, s := range r.Snapshot() {
		if s.Name == "c" {
			total += uint64(s.Value)
		}
	}
	if total != 4000 {
		t.Errorf("counters sum = %d", total)
	}
}
