package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), the format every
// Prometheus-compatible scraper understands. Virtual-time values are
// exported in seconds, the Prometheus base unit, so dashboards read
// "0.0014" for a 1.4 ms reconfiguration regardless of the picosecond
// resolution underneath.

// help strings for the metric families this repository records. Names
// outside the map export without a HELP line.
var helpFor = map[string]string{
	"agile_phase_seconds":                "Virtual-time latency per request phase, per function.",
	"agile_request_seconds":              "End-to-end virtual request latency including the PCI round trip.",
	"agile_requests_total":               "Requests served, by function and result (hit, miss, error).",
	"agile_errors_total":                 "Failed requests, by function.",
	"agile_evictions_total":              "Frame Replacement Policy evictions, by function.",
	"agile_frames_loaded_total":          "Configuration frames written to the fabric, by function.",
	"agile_prefetches_total":             "Speculative configuration loads issued, by function.",
	"agile_scrub_seconds":                "Virtual time per SEU scrub pass.",
	"agile_decode_cache_hits_total":      "Reloads served from the decoded-frame cache, by function.",
	"agile_cluster_submitted_total":      "Jobs submitted to a card's queue, by card.",
	"agile_cluster_queue_depth":          "Jobs currently waiting in a card's submission queue.",
	"agile_cluster_worker_busy":          "Whether a card's worker is executing a run (0/1).",
	"agile_cluster_coalesce_runs_total":  "Coalesced runs executed by a card's worker.",
	"agile_cluster_coalesced_jobs_total": "Jobs folded into coalesced runs, by card.",
}

// formatSeconds renders virtual time as seconds with full precision.
func formatSeconds(t uint64) string {
	return strconv.FormatFloat(float64(t)/1e12, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders labels as {k="v",...} ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWith appends one extra pair (used for histogram le labels).
func labelStringWith(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return labelString(all)
}

// WriteTo writes the whole registry in Prometheus text exposition
// format. It implements io.WriterTo; output order is deterministic
// (series sorted by name then labels). Safe on a nil registry.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var n int64
	snaps := r.Snapshot()
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	lastName := ""
	for _, s := range snaps {
		if s.Name != lastName {
			lastName = s.Name
			if help, ok := helpFor[s.Name]; ok {
				if err := emit("# HELP %s %s\n", s.Name, help); err != nil {
					return n, err
				}
			}
			if err := emit("# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return n, err
			}
		}
		switch s.Kind {
		case "counter":
			if err := emit("%s%s %d\n", s.Name, labelString(s.Labels), uint64(s.Value)); err != nil {
				return n, err
			}
		case "gauge":
			if err := emit("%s%s %d\n", s.Name, labelString(s.Labels), s.Value); err != nil {
				return n, err
			}
		case "histogram":
			cum := uint64(0)
			for i, b := range s.Bounds {
				cum += s.Buckets[i]
				le := formatSeconds(uint64(b))
				if err := emit("%s_bucket%s %d\n", s.Name, labelStringWith(s.Labels, "le", le), cum); err != nil {
					return n, err
				}
			}
			cum += s.Buckets[len(s.Bounds)]
			bucketLine := fmt.Sprintf("%s_bucket%s %d", s.Name, labelStringWith(s.Labels, "le", "+Inf"), cum)
			if s.ExemplarTraceID != 0 {
				// OpenMetrics-style exemplar: attach the most recent traced
				// observation to the +Inf bucket (which every sample lands
				// in cumulatively), linking the series to /debug/traces.
				bucketLine += fmt.Sprintf(` # {trace_id="%x"} %s`,
					s.ExemplarTraceID, formatSeconds(uint64(s.ExemplarValue)))
			}
			if err := emit("%s\n", bucketLine); err != nil {
				return n, err
			}
			if err := emit("%s_sum%s %s\n", s.Name, labelString(s.Labels), formatSeconds(uint64(s.Sum))); err != nil {
				return n, err
			}
			if err := emit("%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
