// Package pci is a transaction-level model of the 32-bit/33 MHz PCI bus
// the co-processor card sits on (the paper's proof-of-concept uses an
// Altera Stratix PCI development board). It models what the experiments
// need from PCI: per-transaction arbitration and address overhead, burst
// data phases, burst-length limits, and a configuration space for device
// discovery — enough that host↔board transfer cost scales the way a real
// bus makes it scale.
package pci

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Bus timing model, in PCI clock cycles.
const (
	// BusHz is the PCI clock.
	BusHz = 33_000_000
	// WordBytes is the bus width.
	WordBytes = 4
	// MaxBurstBytes caps one burst transaction (latency-timer expiry
	// forces re-arbitration on long transfers).
	MaxBurstBytes = 256

	arbCycles  = 3 // bus arbitration before each transaction
	addrCycles = 1 // address phase
	waitCycles = 1 // initial target wait state
)

// PCI errors.
var (
	ErrNoDevice = errors.New("pci: no device at slot")
	ErrBadBAR   = errors.New("pci: access to unimplemented BAR")
	ErrBounds   = errors.New("pci: access beyond BAR window")
	ErrSlotUsed = errors.New("pci: slot already occupied")
)

// Device is a PCI target: a set of base address register (BAR) windows.
type Device interface {
	// BARSize reports the size in bytes of the BAR window, 0 if the BAR
	// is unimplemented.
	BARSize(bar int) uint32
	// ReadBAR fills p from the BAR window at off.
	ReadBAR(bar int, off uint32, p []byte) error
	// WriteBAR stores p into the BAR window at off.
	WriteBAR(bar int, off uint32, p []byte) error
}

// ConfigSpace is the identification header of a device.
type ConfigSpace struct {
	VendorID uint16
	DeviceID uint16
	Class    uint32
}

// Standard configuration registers (byte offsets).
const (
	CfgRegID    = 0x00 // device ID << 16 | vendor ID
	CfgRegClass = 0x08 // class code
	CfgRegBAR0  = 0x10 // BAR0 size probe; BARn at 0x10+4n
)

type slot struct {
	dev Device
	cfg ConfigSpace
}

// Bus is a single-segment PCI bus with numbered slots.
type Bus struct {
	slots map[int]*slot
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{slots: make(map[int]*slot)} }

// Attach plugs a device into a slot.
func (b *Bus) Attach(slotNo int, d Device, cfg ConfigSpace) error {
	if d == nil {
		return errors.New("pci: Attach(nil device)")
	}
	if _, used := b.slots[slotNo]; used {
		return fmt.Errorf("%w: %d", ErrSlotUsed, slotNo)
	}
	b.slots[slotNo] = &slot{dev: d, cfg: cfg}
	return nil
}

// Slots lists occupied slot numbers.
func (b *Bus) Slots() []int {
	var out []int
	for s := range b.slots {
		out = append(out, s)
	}
	return out
}

func (b *Bus) at(slotNo int) (*slot, error) {
	s, ok := b.slots[slotNo]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoDevice, slotNo)
	}
	return s, nil
}

// ConfigRead performs a type-0 configuration read. Unoccupied slots
// return all-ones (master abort), as on a real bus, with no error.
func (b *Bus) ConfigRead(slotNo int, reg int) (uint32, uint64) {
	cycles := uint64(arbCycles + addrCycles + waitCycles + 1)
	s, ok := b.slots[slotNo]
	if !ok {
		return 0xFFFFFFFF, cycles
	}
	switch {
	case reg == CfgRegID:
		return uint32(s.cfg.DeviceID)<<16 | uint32(s.cfg.VendorID), cycles
	case reg == CfgRegClass:
		return s.cfg.Class, cycles
	case reg >= CfgRegBAR0 && reg < CfgRegBAR0+24 && (reg-CfgRegBAR0)%4 == 0:
		return s.dev.BARSize((reg - CfgRegBAR0) / 4), cycles
	default:
		return 0, cycles
	}
}

// TransferCycles is the bus cost of moving n bytes via burst
// transactions: each MaxBurstBytes chunk pays arbitration, address and
// wait-state overhead plus one cycle per data word.
func TransferCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	var cycles uint64
	for n > 0 {
		chunk := n
		if chunk > MaxBurstBytes {
			chunk = MaxBurstBytes
		}
		words := (chunk + WordBytes - 1) / WordBytes
		cycles += arbCycles + addrCycles + waitCycles + uint64(words)
		n -= chunk
	}
	return cycles
}

// wordCycles is the cost of one single-word (non-burst) transaction.
const wordCycles = arbCycles + addrCycles + waitCycles + 1

func (b *Bus) checkAccess(s *slot, bar int, off uint32, n int) error {
	size := s.dev.BARSize(bar)
	if size == 0 {
		return fmt.Errorf("%w: BAR%d", ErrBadBAR, bar)
	}
	if uint64(off)+uint64(n) > uint64(size) {
		return fmt.Errorf("%w: BAR%d [%d, %d) of %d", ErrBounds, bar, off, uint64(off)+uint64(n), size)
	}
	return nil
}

// Read bursts n bytes out of a device BAR window. It returns the data and
// the bus cycles consumed.
func (b *Bus) Read(slotNo, bar int, off uint32, n int) ([]byte, uint64, error) {
	s, err := b.at(slotNo)
	if err != nil {
		return nil, 0, err
	}
	if err := b.checkAccess(s, bar, off, n); err != nil {
		return nil, 0, err
	}
	p := make([]byte, n)
	if err := s.dev.ReadBAR(bar, off, p); err != nil {
		return nil, 0, err
	}
	return p, TransferCycles(n), nil
}

// Write bursts p into a device BAR window, returning bus cycles consumed.
func (b *Bus) Write(slotNo, bar int, off uint32, p []byte) (uint64, error) {
	s, err := b.at(slotNo)
	if err != nil {
		return 0, err
	}
	if err := b.checkAccess(s, bar, off, len(p)); err != nil {
		return 0, err
	}
	if err := s.dev.WriteBAR(bar, off, p); err != nil {
		return 0, err
	}
	return TransferCycles(len(p)), nil
}

// ReadWord performs a single-word MMIO read (register access).
func (b *Bus) ReadWord(slotNo, bar int, off uint32) (uint32, uint64, error) {
	s, err := b.at(slotNo)
	if err != nil {
		return 0, 0, err
	}
	if err := b.checkAccess(s, bar, off, WordBytes); err != nil {
		return 0, 0, err
	}
	var buf [WordBytes]byte
	if err := s.dev.ReadBAR(bar, off, buf[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), wordCycles, nil
}

// WriteWord performs a single-word MMIO write (register access).
func (b *Bus) WriteWord(slotNo, bar int, off uint32, v uint32) (uint64, error) {
	s, err := b.at(slotNo)
	if err != nil {
		return 0, err
	}
	if err := b.checkAccess(s, bar, off, WordBytes); err != nil {
		return 0, err
	}
	var buf [WordBytes]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	if err := s.dev.WriteBAR(bar, off, buf[:]); err != nil {
		return 0, err
	}
	return wordCycles, nil
}
