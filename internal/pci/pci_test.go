package pci

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

// memDevice is a simple two-BAR target: BAR0 16-byte registers, BAR1
// 1 KiB memory.
type memDevice struct {
	bar0 [16]byte
	bar1 [1024]byte
}

func (d *memDevice) BARSize(bar int) uint32 {
	switch bar {
	case 0:
		return uint32(len(d.bar0))
	case 1:
		return uint32(len(d.bar1))
	}
	return 0
}

func (d *memDevice) region(bar int) []byte {
	if bar == 0 {
		return d.bar0[:]
	}
	return d.bar1[:]
}

func (d *memDevice) ReadBAR(bar int, off uint32, p []byte) error {
	copy(p, d.region(bar)[off:])
	return nil
}

func (d *memDevice) WriteBAR(bar int, off uint32, p []byte) error {
	copy(d.region(bar)[off:], p)
	return nil
}

func newBus(t *testing.T) (*Bus, *memDevice) {
	t.Helper()
	b := NewBus()
	d := &memDevice{}
	err := b.Attach(3, d, ConfigSpace{VendorID: 0x1172, DeviceID: 0xA617, Class: 0x0B4000})
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

func TestAttachErrors(t *testing.T) {
	b, _ := newBus(t)
	if err := b.Attach(3, &memDevice{}, ConfigSpace{}); !errors.Is(err, ErrSlotUsed) {
		t.Errorf("double attach: %v", err)
	}
	if err := b.Attach(4, nil, ConfigSpace{}); err == nil {
		t.Error("nil device accepted")
	}
	if got := b.Slots(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Slots = %v", got)
	}
}

func TestConfigRead(t *testing.T) {
	b, _ := newBus(t)
	id, cyc := b.ConfigRead(3, CfgRegID)
	if id != 0xA617_1172 {
		t.Errorf("ID reg = %08x", id)
	}
	if cyc == 0 {
		t.Error("config read free")
	}
	if class, _ := b.ConfigRead(3, CfgRegClass); class != 0x0B4000 {
		t.Errorf("class = %06x", class)
	}
	if sz, _ := b.ConfigRead(3, CfgRegBAR0); sz != 16 {
		t.Errorf("BAR0 size = %d", sz)
	}
	if sz, _ := b.ConfigRead(3, CfgRegBAR0+4); sz != 1024 {
		t.Errorf("BAR1 size = %d", sz)
	}
	if sz, _ := b.ConfigRead(3, CfgRegBAR0+8); sz != 0 {
		t.Errorf("BAR2 size = %d", sz)
	}
	// Empty slot: master abort returns all ones.
	if v, _ := b.ConfigRead(9, CfgRegID); v != 0xFFFFFFFF {
		t.Errorf("empty slot read = %08x", v)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	b, _ := newBus(t)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	wcyc, err := b.Write(3, 1, 100, data)
	if err != nil {
		t.Fatal(err)
	}
	got, rcyc, err := b.Read(3, 1, 100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Error("readback mismatch")
	}
	if wcyc != rcyc {
		t.Errorf("asymmetric cycles: write %d read %d", wcyc, rcyc)
	}
	if want := TransferCycles(300); wcyc != want {
		t.Errorf("cycles = %d, want %d", wcyc, want)
	}
}

func TestTransferCycles(t *testing.T) {
	if TransferCycles(0) != 0 {
		t.Error("zero-byte transfer should cost nothing")
	}
	// 4 bytes: one burst of 1 word + 5 overhead.
	if got := TransferCycles(4); got != 6 {
		t.Errorf("TransferCycles(4) = %d, want 6", got)
	}
	// One full burst: 64 words + 5.
	if got := TransferCycles(256); got != 69 {
		t.Errorf("TransferCycles(256) = %d, want 69", got)
	}
	// Two bursts.
	if got := TransferCycles(257); got != 69+6 {
		t.Errorf("TransferCycles(257) = %d, want %d", got, 69+6)
	}
	// Per-byte efficiency improves with size (burst amortisation).
	small := float64(TransferCycles(8)) / 8
	big := float64(TransferCycles(4096)) / 4096
	if big >= small {
		t.Errorf("no burst amortisation: %f vs %f", big, small)
	}
}

func TestTransferCyclesMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)%10000, int(b)%10000
		if x > y {
			x, y = y, x
		}
		return TransferCycles(x) <= TransferCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessErrors(t *testing.T) {
	b, _ := newBus(t)
	if _, _, err := b.Read(5, 0, 0, 4); !errors.Is(err, ErrNoDevice) {
		t.Errorf("missing slot: %v", err)
	}
	if _, _, err := b.Read(3, 4, 0, 4); !errors.Is(err, ErrBadBAR) {
		t.Errorf("bad BAR: %v", err)
	}
	if _, _, err := b.Read(3, 1, 1020, 8); !errors.Is(err, ErrBounds) {
		t.Errorf("overread: %v", err)
	}
	if _, err := b.Write(3, 1, 1024, []byte{1}); !errors.Is(err, ErrBounds) {
		t.Errorf("overwrite: %v", err)
	}
	if _, err := b.WriteWord(5, 0, 0, 1); !errors.Is(err, ErrNoDevice) {
		t.Errorf("word write missing slot: %v", err)
	}
	if _, _, err := b.ReadWord(3, 0, 14); !errors.Is(err, ErrBounds) {
		t.Errorf("unaligned word at end: %v", err)
	}
}

func TestWordAccess(t *testing.T) {
	b, d := newBus(t)
	cyc, err := b.WriteWord(3, 0, 4, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != wordCycles {
		t.Errorf("write word cycles = %d", cyc)
	}
	if got := binary.LittleEndian.Uint32(d.bar0[4:]); got != 0xDEADBEEF {
		t.Errorf("register = %08x", got)
	}
	v, _, err := b.ReadWord(3, 0, 4)
	if err != nil || v != 0xDEADBEEF {
		t.Errorf("ReadWord = %08x, %v", v, err)
	}
}

func TestWordDearerThanBurstPerByte(t *testing.T) {
	// 64 register writes must cost more than one 256-byte burst; this is
	// the property that makes DMA staging worthwhile in E6.
	regs := uint64(64) * wordCycles
	burst := TransferCycles(256)
	if regs <= burst {
		t.Errorf("word loop (%d) not dearer than burst (%d)", regs, burst)
	}
}
