// Package replace implements the Frame Replacement Policy of the paper's
// mini OS (§2.5) and the baselines the experiments compare it against.
//
// The paper's policy is whole-algorithm LRU: the Frame Replacement Table
// stamps each resident algorithm with the last moment it was accessed,
// and the algorithm with the oldest stamp donates its frames. This
// package provides that policy plus FIFO, LFU, seeded-random, and a
// clairvoyant Belady-OPT baseline that bounds what any policy can achieve.
//
// Policies track residency through OnInstall/OnEvict and usage through
// OnAccess; Victim picks the resident function to evict next. All
// tie-breaks are deterministic so experiment runs reproduce exactly.
package replace

import (
	"errors"
	"fmt"
	"sort"

	"agilefpga/internal/sim"
)

// Policy selects eviction victims among resident functions.
type Policy interface {
	Name() string
	// OnInstall records that fn became resident at virtual time now.
	OnInstall(fn uint16, now uint64)
	// OnAccess records an execution of fn at virtual time now. For the
	// clairvoyant OPT baseline, accesses must arrive in trace order.
	OnAccess(fn uint16, now uint64)
	// OnEvict records that fn left the fabric.
	OnEvict(fn uint16)
	// Victim returns the resident function to evict. It fails if nothing
	// is resident.
	Victim() (uint16, error)
}

// ErrNoResident reports a Victim call with an empty resident set.
var ErrNoResident = errors.New("replace: no resident function to evict")

// Names lists the available policy names.
func Names() []string { return []string{"lru", "fifo", "lfu", "random", "opt"} }

// New constructs the named policy. seed feeds the random policy; the
// clairvoyant opt policy cannot be built here — use NewOPT with a trace.
func New(name string, seed uint64) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "lfu":
		return NewLFU(), nil
	case "random":
		return NewRandom(seed), nil
	case "opt":
		return nil, errors.New("replace: opt needs the future trace; use NewOPT")
	default:
		return nil, fmt.Errorf("replace: unknown policy %q", name)
	}
}

// LRU is the paper's policy: evict the algorithm with the oldest
// last-access timestamp. Ties break toward the lower function id.
type LRU struct {
	last map[uint16]uint64
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{last: make(map[uint16]uint64)} }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// OnInstall implements Policy.
func (p *LRU) OnInstall(fn uint16, now uint64) { p.last[fn] = now }

// OnAccess implements Policy.
func (p *LRU) OnAccess(fn uint16, now uint64) {
	if _, resident := p.last[fn]; resident {
		p.last[fn] = now
	}
}

// OnEvict implements Policy.
func (p *LRU) OnEvict(fn uint16) { delete(p.last, fn) }

// Victim implements Policy.
func (p *LRU) Victim() (uint16, error) {
	if len(p.last) == 0 {
		return 0, ErrNoResident
	}
	var victim uint16
	first := true
	var oldest uint64
	for fn, t := range p.last {
		if first || t < oldest || (t == oldest && fn < victim) {
			victim, oldest, first = fn, t, false
		}
	}
	return victim, nil
}

// FIFO evicts in installation order, ignoring accesses.
type FIFO struct {
	order []uint16
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// OnInstall implements Policy.
func (p *FIFO) OnInstall(fn uint16, now uint64) { p.order = append(p.order, fn) }

// OnAccess implements Policy.
func (p *FIFO) OnAccess(fn uint16, now uint64) {}

// OnEvict implements Policy.
func (p *FIFO) OnEvict(fn uint16) {
	for i, f := range p.order {
		if f == fn {
			p.order = append(p.order[:i], p.order[i+1:]...)
			return
		}
	}
}

// Victim implements Policy.
func (p *FIFO) Victim() (uint16, error) {
	if len(p.order) == 0 {
		return 0, ErrNoResident
	}
	return p.order[0], nil
}

// LFU evicts the least frequently used algorithm; ties break toward the
// least recently used, then the lower id.
type LFU struct {
	count map[uint16]uint64
	last  map[uint16]uint64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{count: make(map[uint16]uint64), last: make(map[uint16]uint64)}
}

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// OnInstall implements Policy.
func (p *LFU) OnInstall(fn uint16, now uint64) {
	p.count[fn] = 0
	p.last[fn] = now
}

// OnAccess implements Policy.
func (p *LFU) OnAccess(fn uint16, now uint64) {
	if _, resident := p.count[fn]; resident {
		p.count[fn]++
		p.last[fn] = now
	}
}

// OnEvict implements Policy.
func (p *LFU) OnEvict(fn uint16) {
	delete(p.count, fn)
	delete(p.last, fn)
}

// Victim implements Policy.
func (p *LFU) Victim() (uint16, error) {
	if len(p.count) == 0 {
		return 0, ErrNoResident
	}
	var victim uint16
	first := true
	var bestCount, bestLast uint64
	for fn, c := range p.count {
		l := p.last[fn]
		better := first || c < bestCount ||
			(c == bestCount && l < bestLast) ||
			(c == bestCount && l == bestLast && fn < victim)
		if better {
			victim, bestCount, bestLast, first = fn, c, l, false
		}
	}
	return victim, nil
}

// Random evicts a uniformly random resident algorithm from a seeded
// generator, so runs reproduce.
type Random struct {
	resident map[uint16]struct{}
	rng      *sim.RNG
}

// NewRandom returns a random policy with the given seed.
func NewRandom(seed uint64) *Random {
	return &Random{resident: make(map[uint16]struct{}), rng: sim.NewRNG(seed)}
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// OnInstall implements Policy.
func (p *Random) OnInstall(fn uint16, now uint64) { p.resident[fn] = struct{}{} }

// OnAccess implements Policy.
func (p *Random) OnAccess(fn uint16, now uint64) {}

// OnEvict implements Policy.
func (p *Random) OnEvict(fn uint16) { delete(p.resident, fn) }

// Victim implements Policy.
func (p *Random) Victim() (uint16, error) {
	if len(p.resident) == 0 {
		return 0, ErrNoResident
	}
	ids := make([]int, 0, len(p.resident))
	for fn := range p.resident {
		ids = append(ids, int(fn))
	}
	sort.Ints(ids)
	return uint16(ids[p.rng.Intn(len(ids))]), nil
}

// OPT is Belady's clairvoyant policy: evict the resident algorithm whose
// next use lies farthest in the future (or never comes). It is the
// offline optimum for uniform-cost misses and serves as the upper bound
// in the replacement experiment. Accesses must be reported in exactly the
// order of the trace it was built from.
type OPT struct {
	next     map[uint16][]int // future positions per function, ascending
	resident map[uint16]struct{}
	pos      int
}

// NewOPT builds the clairvoyant policy for a known request trace.
func NewOPT(trace []uint16) *OPT {
	next := make(map[uint16][]int)
	for i, fn := range trace {
		next[fn] = append(next[fn], i)
	}
	return &OPT{next: next, resident: make(map[uint16]struct{})}
}

// Name implements Policy.
func (p *OPT) Name() string { return "opt" }

// OnInstall implements Policy.
func (p *OPT) OnInstall(fn uint16, now uint64) { p.resident[fn] = struct{}{} }

// OnAccess implements Policy. It consumes the function's current trace
// position, so subsequent Victim calls see only genuinely future uses.
func (p *OPT) OnAccess(fn uint16, now uint64) {
	q := p.next[fn]
	if len(q) > 0 {
		p.next[fn] = q[1:]
	}
	p.pos++
}

// OnEvict implements Policy.
func (p *OPT) OnEvict(fn uint16) { delete(p.resident, fn) }

// Victim implements Policy.
func (p *OPT) Victim() (uint16, error) {
	if len(p.resident) == 0 {
		return 0, ErrNoResident
	}
	var victim uint16
	first := true
	farthest := -1
	for fn := range p.resident {
		nxt := 1 << 62 // never used again
		if q := p.next[fn]; len(q) > 0 {
			nxt = q[0]
		}
		if first || nxt > farthest || (nxt == farthest && fn < victim) {
			victim, farthest, first = fn, nxt, false
		}
	}
	return victim, nil
}
