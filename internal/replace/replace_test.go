package replace

import (
	"errors"
	"testing"
)

func TestNew(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "lfu", "random"} {
		p, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name = %q, want %q", p.Name(), name)
		}
	}
	if _, err := New("opt", 1); err == nil {
		t.Error("New(opt) should demand a trace")
	}
	if _, err := New("marvellous", 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAllPoliciesEmptyVictim(t *testing.T) {
	policies := []Policy{NewLRU(), NewFIFO(), NewLFU(), NewRandom(1), NewOPT(nil)}
	for _, p := range policies {
		if _, err := p.Victim(); !errors.Is(err, ErrNoResident) {
			t.Errorf("%s: empty Victim err = %v", p.Name(), err)
		}
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	p := NewLRU()
	p.OnInstall(1, 10)
	p.OnInstall(2, 20)
	p.OnInstall(3, 30)
	p.OnAccess(1, 40) // 1 is now freshest; 2 is oldest
	v, err := p.Victim()
	if err != nil || v != 2 {
		t.Errorf("Victim = %d, %v; want 2", v, err)
	}
	p.OnEvict(2)
	v, _ = p.Victim()
	if v != 3 {
		t.Errorf("second Victim = %d, want 3", v)
	}
}

func TestLRUIgnoresNonResidentAccess(t *testing.T) {
	p := NewLRU()
	p.OnInstall(1, 10)
	p.OnAccess(99, 50) // not resident: must not create an entry
	v, err := p.Victim()
	if err != nil || v != 1 {
		t.Errorf("Victim = %d, %v", v, err)
	}
	p.OnEvict(1)
	if _, err := p.Victim(); err == nil {
		t.Error("phantom resident after non-resident access")
	}
}

func TestLRUTieBreaksDeterministically(t *testing.T) {
	p := NewLRU()
	p.OnInstall(5, 10)
	p.OnInstall(3, 10)
	v, _ := p.Victim()
	if v != 3 {
		t.Errorf("tie Victim = %d, want lower id 3", v)
	}
}

func TestFIFOOrder(t *testing.T) {
	p := NewFIFO()
	p.OnInstall(4, 1)
	p.OnInstall(2, 2)
	p.OnInstall(9, 3)
	p.OnAccess(4, 100) // FIFO ignores recency
	v, _ := p.Victim()
	if v != 4 {
		t.Errorf("Victim = %d, want 4", v)
	}
	p.OnEvict(4)
	if v, _ := p.Victim(); v != 2 {
		t.Errorf("Victim = %d, want 2", v)
	}
	p.OnEvict(99) // evicting a non-resident is a no-op
	if v, _ := p.Victim(); v != 2 {
		t.Errorf("Victim after bogus evict = %d", v)
	}
}

func TestLFUEvictsColdest(t *testing.T) {
	p := NewLFU()
	p.OnInstall(1, 1)
	p.OnInstall(2, 2)
	p.OnAccess(1, 3)
	p.OnAccess(1, 4)
	p.OnAccess(2, 5)
	v, _ := p.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want 2 (1 access vs 2)", v)
	}
	// Frequency ties break by recency.
	p2 := NewLFU()
	p2.OnInstall(7, 1)
	p2.OnInstall(8, 2)
	p2.OnAccess(7, 10)
	p2.OnAccess(8, 20)
	v, _ = p2.Victim()
	if v != 7 {
		t.Errorf("tie Victim = %d, want 7 (older access)", v)
	}
}

func TestRandomDeterministicAndResident(t *testing.T) {
	a, b := NewRandom(7), NewRandom(7)
	for fn := uint16(1); fn <= 5; fn++ {
		a.OnInstall(fn, uint64(fn))
		b.OnInstall(fn, uint64(fn))
	}
	for i := 0; i < 20; i++ {
		va, _ := a.Victim()
		vb, _ := b.Victim()
		if va != vb {
			t.Fatal("same-seed random policies diverged")
		}
		if va < 1 || va > 5 {
			t.Fatalf("victim %d not resident", va)
		}
	}
}

func TestOPTEvictsFarthest(t *testing.T) {
	// Trace: 1 2 3 1 2 ... after serving position 0..2, fn 3 is never
	// used again and must be the victim.
	trace := []uint16{1, 2, 3, 1, 2}
	p := NewOPT(trace)
	p.OnInstall(1, 0)
	p.OnAccess(1, 0)
	p.OnInstall(2, 1)
	p.OnAccess(2, 1)
	p.OnInstall(3, 2)
	p.OnAccess(3, 2)
	v, err := p.Victim()
	if err != nil || v != 3 {
		t.Errorf("Victim = %d, %v; want 3 (never reused)", v, err)
	}
}

func TestOPTPrefersNearReuse(t *testing.T) {
	// After position 0 and 1 are consumed: next use of 1 is position 2,
	// of 2 is position 5. Evict 2.
	trace := []uint16{1, 2, 1, 1, 1, 2}
	p := NewOPT(trace)
	p.OnInstall(1, 0)
	p.OnAccess(1, 0)
	p.OnInstall(2, 1)
	p.OnAccess(2, 1)
	v, _ := p.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want 2", v)
	}
}

// simulateHits runs a toy cache of given capacity over trace and counts
// hits under the policy.
func simulateHits(p Policy, trace []uint16, capacity int) int {
	resident := make(map[uint16]bool)
	hits := 0
	for i, fn := range trace {
		now := uint64(i)
		if resident[fn] {
			hits++
		} else {
			if len(resident) >= capacity {
				v, err := p.Victim()
				if err != nil {
					panic(err)
				}
				p.OnEvict(v)
				delete(resident, v)
			}
			resident[fn] = true
			p.OnInstall(fn, now)
		}
		p.OnAccess(fn, now)
	}
	return hits
}

func zipfTrace(n int) []uint16 {
	// Deterministic skewed trace: function k appears with weight ~1/(k+1).
	var trace []uint16
	for i := 0; len(trace) < n; i++ {
		for fn := uint16(0); fn < 8; fn++ {
			reps := 8 / (int(fn) + 1)
			for r := 0; r < reps && len(trace) < n; r++ {
				trace = append(trace, fn)
			}
		}
	}
	return trace
}

func TestOPTUpperBoundsOthers(t *testing.T) {
	trace := zipfTrace(600)
	cap := 3
	optHits := simulateHits(NewOPT(trace), trace, cap)
	for _, mk := range []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewFIFO() },
		func() Policy { return NewLFU() },
		func() Policy { return NewRandom(3) },
	} {
		p := mk()
		h := simulateHits(p, trace, cap)
		if h > optHits {
			t.Errorf("%s (%d hits) beat OPT (%d) — Belady violated", p.Name(), h, optHits)
		}
	}
}

func TestLRUCyclicPathology(t *testing.T) {
	// Cycling over capacity+1 functions: LRU gets zero hits after warmup,
	// the classic pathology. Sanity-check our implementation shows it.
	var trace []uint16
	for i := 0; i < 400; i++ {
		trace = append(trace, uint16(i%4))
	}
	hits := simulateHits(NewLRU(), trace, 3)
	if hits != 0 {
		t.Errorf("LRU on cyclic trace: %d hits, want 0", hits)
	}
	// OPT does far better on the same trace.
	optHits := simulateHits(NewOPT(trace), trace, 3)
	if optHits <= 100 {
		t.Errorf("OPT on cyclic trace: %d hits, expected many", optHits)
	}
}

func TestLRUBeatsFIFOOnSkewedTrace(t *testing.T) {
	trace := zipfTrace(600)
	lru := simulateHits(NewLRU(), trace, 3)
	fifo := simulateHits(NewFIFO(), trace, 3)
	if lru < fifo {
		t.Errorf("LRU (%d) worse than FIFO (%d) on skewed trace", lru, fifo)
	}
}
