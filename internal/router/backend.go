package router

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"agilefpga/internal/client"
	"agilefpga/internal/metrics"
	"agilefpga/internal/wire"
)

// Backend health states. The machine is
//
//	healthy ──(transport failure ×EjectAfter, or drain)──▶ ejected
//	ejected ──(probe goroutine starts)──▶ probing
//	probing ──(probe answers)──▶ healthy
//
// Ejection starts exactly one probe goroutine, which owns the path
// back: it re-dials on the shared Backoff schedule until the node
// answers a wire request again, then reinstates and exits.
type backendState int32

const (
	stateHealthy backendState = iota
	stateEjected
	stateProbing
)

func (s backendState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateEjected:
		return "ejected"
	case stateProbing:
		return "probing"
	}
	return "unknown"
}

// backend is one agilenetd node as the router sees it: a lazily
// dialled mux client, an in-flight count feeding spill decisions, and
// the health state machine.
type backend struct {
	addr string

	cmu sync.Mutex
	c   *client.Client // nil until the first successful dial

	inflight atomic.Int64
	state    atomic.Int32 // backendState
	fails    atomic.Int32 // consecutive infrastructure failures

	ejections      atomic.Uint64
	reinstatements atomic.Uint64
	spills         atomic.Uint64

	// Registry handles, resolved once at pool build (nil-registry safe).
	gInflight  *metrics.Gauge
	cEject     *metrics.Counter
	cReinstate *metrics.Counter
	cSpill     *metrics.Counter
}

func newBackend(addr string, reg *metrics.Registry) *backend {
	l := metrics.L("backend", addr)
	return &backend{
		addr:       addr,
		gInflight:  reg.Gauge("agile_router_backend_inflight", l),
		cEject:     reg.Counter("agile_router_ejections_total", l),
		cReinstate: reg.Counter("agile_router_reinstatements_total", l),
		cSpill:     reg.Counter("agile_router_spills_total", l),
	}
}

func (b *backend) healthy() bool {
	return backendState(b.state.Load()) == stateHealthy
}

// getClient returns the backend's mux client, dialling it on first
// use. Tolerating a failed dial here (instead of at pool build) lets
// a router start ahead of its backends: the node is simply ejected
// and probed in until it appears.
func (b *backend) getClient(opts client.Options) (*client.Client, error) {
	b.cmu.Lock()
	defer b.cmu.Unlock()
	if b.c != nil {
		return b.c, nil
	}
	c, err := client.Dial(b.addr, opts)
	if err != nil {
		return nil, err
	}
	b.c = c
	return c, nil
}

func (b *backend) closeClient() {
	b.cmu.Lock()
	c := b.c
	b.c = nil
	b.cmu.Unlock()
	if c != nil {
		c.Close()
	}
}

// eject transitions healthy→ejected; returns true for the caller that
// won the transition (and must start the probe goroutine).
func (b *backend) eject() bool {
	if b.state.CompareAndSwap(int32(stateHealthy), int32(stateEjected)) {
		b.ejections.Add(1)
		b.cEject.Inc()
		return true
	}
	return false
}

// reinstate transitions back to healthy from the probe goroutine.
func (b *backend) reinstate() {
	b.fails.Store(0)
	b.state.Store(int32(stateHealthy))
	b.reinstatements.Add(1)
	b.cReinstate.Inc()
}

// probeOnce asks the node one liveness question over a fresh, short-
// deadline connection: an empty-payload request. A live, admitting
// server answers it INVALID_ARGUMENT without touching a card; a
// saturated one answers RESOURCE_EXHAUSTED (alive — shedding is the
// router's job, not the prober's). Only a refusal to answer — or an
// UNAVAILABLE drain/stopped status — keeps the node out.
func probeOnce(addr string, timeout time.Duration) bool {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout)) //lint:wallclock socket deadline for the health probe; the router is outside the simulation
	if err := wire.WriteRequest(conn, &wire.Request{ID: 1, Fn: 0, Deadline: timeout}); err != nil {
		return false
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		return false
	}
	return resp.Status != wire.StatusUnavailable
}
