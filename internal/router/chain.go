package router

import (
	"context"
	"time"
)

// chainKey folds a whole stage list into one synthetic ring key
// (FNV-1a over the big-endian stage bytes, upper half folded in), so a
// chain's affinity is keyed on the chain — the ordered stage list —
// not on any single function. Two chains sharing a stage still route
// independently, and the same chain always lands on the same replica
// set, keeping all of its stages warm together on one backend.
func chainKey(stages []uint16) uint16 {
	h := uint32(2166136261)
	for _, fn := range stages {
		h = (h ^ uint32(fn>>8)) * 16777619
		h = (h ^ uint32(fn&0xFF)) * 16777619
	}
	return uint16(h ^ h>>16)
}

// CallChain routes one chained request through the fleet: the stage
// list runs as a single on-card dataflow chain on whichever backend
// the chain's affinity selects, and the final stage's output comes
// back. Spill, ejection, probing and retry rounds behave exactly as in
// Call.
func (r *Router) CallChain(ctx context.Context, stages []uint16, payload []byte) ([]byte, int, error) {
	var fn uint16
	if len(stages) > 0 {
		fn = stages[0]
	}
	ref := r.opts.Tracer.StartRoot("route", "router", fn)
	start := time.Now() //lint:wallclock hop accounting is wall time; the router is outside the simulation
	out, card, backendNS, err := r.route(ctx, fn, stages, payload, ref)
	r.observeRoute(start, backendNS, err, ref.TraceID)
	r.opts.Tracer.End(ref, routeStatus(err))
	return out, card, err
}
