package router_test

import (
	"fmt"
	"os"
	"testing"

	"agilefpga/internal/testutil"
)

// TestMain fails the package if any router goroutine — front-end
// handler, probe loop, backend mux reader — survives its test:
// graceful teardown is part of the router's contract.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.CheckGoroutineLeaks(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
