// Package router is the fleet-scale serving tier: a front-end that
// speaks the wire protocol on both sides and routes each call to one
// of N backend agilenetd nodes by consistent-hash function affinity —
// the network generalisation of cluster ModeAffinity. Pinning a
// function id to a stable node keeps that node's cards resident for
// the function (the E15 partition effect), so the fleet-wide hit rate
// tracks the single-node ceiling instead of collapsing to random
// placement. Hot functions spill to ring replicas when the primary's
// in-flight count crosses a threshold, failed backends are ejected and
// probed back with jittered backoff, and deadlines plus v2 trace
// context ride through the hop unchanged.
package router

import "sort"

// DefaultVNodes is the virtual-node count per backend. 128 points per
// node keeps the per-node key-share standard deviation under ~10% of
// fair share while the ring stays small enough to rebuild on every
// membership change (16 nodes × 128 points ≈ 2k entries).
const DefaultVNodes = 128

// Ring is a consistent-hash ring mapping the 16-bit function-id space
// onto named nodes via virtual points. Placement is a pure function of
// (seed, member set): insertion order never matters, so two routers
// configured alike route alike. Not internally locked — the Router
// guards it with its own mutex.
type Ring struct {
	vnodes int
	seed   uint64
	nodes  map[string]struct{}
	points []point // sorted by hash; ties broken by node name
}

type point struct {
	hash uint64
	node string
}

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVNodes;
// seed perturbs every point and key hash, so distinct seeds give
// statistically independent placements.
func NewRing(vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, seed: seed, nodes: make(map[string]struct{})}
}

// splitmix64 is the finalising mixer used for every hash on the ring
// (the same construction internal/trace uses for span ids): cheap,
// well-distributed, and deterministic across platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashNode is FNV-1a 64 over the node name, feeding splitmix64 so
// similar names (host:7001, host:7002) land far apart.
func hashNode(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// keyHash places a function id on the ring.
func (r *Ring) keyHash(fn uint16) uint64 {
	return splitmix64(r.seed ^ (uint64(fn) + 0xA61E0000))
}

// Add inserts a node (idempotent). Only keys whose nearest clockwise
// point becomes one of the new node's vnodes move — everything else
// keeps its owner, which is the property that makes membership churn
// cheap for decode caches downstream.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	base := splitmix64(r.seed ^ hashNode(node))
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: splitmix64(base + uint64(v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node and its points (idempotent). Keys it owned
// redistribute to the next clockwise survivors; nothing else moves.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len is the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members sorted by name.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning fn, or "" on an empty ring.
func (r *Ring) Lookup(fn uint16) string {
	ns := r.LookupN(fn, 1)
	if len(ns) == 0 {
		return ""
	}
	return ns[0]
}

// LookupN returns up to n distinct nodes for fn in ring order: the
// primary first, then the replicas met walking clockwise. The replica
// set is as stable under membership change as the primary — a node's
// departure shifts only successors, so spilled heat is not wasted.
func (r *Ring) LookupN(fn uint16, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := r.keyHash(fn)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if _, ok := seen[p.node]; !ok {
			seen[p.node] = struct{}{}
			out = append(out, p.node)
		}
	}
	return out
}
