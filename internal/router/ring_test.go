package router_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"agilefpga/internal/router"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7600", i+1)
	}
	return out
}

func buildRing(nodes []string, seed uint64) *router.Ring {
	r := router.NewRing(0, seed)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// owners maps every function id in the 16-bit key space to its node.
func owners(r *router.Ring) map[uint16]string {
	m := make(map[uint16]string, 1<<16)
	for fn := 0; fn < 1<<16; fn++ {
		m[uint16(fn)] = r.Lookup(uint16(fn))
	}
	return m
}

// TestRingDistributionBounds pins the load-balance property across
// every fleet size the router targets: with default vnodes, no node
// owns less than half or more than twice its fair share of the
// function-id space.
func TestRingDistributionBounds(t *testing.T) {
	for n := 1; n <= 16; n++ {
		r := buildRing(ringNodes(n), 1)
		counts := make(map[string]int, n)
		for fn, node := range owners(r) {
			_ = fn
			counts[node]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		fair := float64(1<<16) / float64(n)
		for node, c := range counts {
			share := float64(c) / fair
			if share < 0.5 || share > 2.0 {
				t.Fatalf("n=%d: node %s owns %.2fx fair share (count %d, fair %.0f)",
					n, node, share, c, fair)
			}
		}
	}
}

// TestRingMinimalKeyMovement is the consistent-hashing property test:
// adding a node moves only the keys the new node takes, removing a
// node moves only the keys it owned. Checked across random sizes and
// seeds with a seeded PRNG so failures replay.
func TestRingMinimalKeyMovement(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 8; trial++ {
		n := 1 + int(rng.Uint64()%12)
		seed := rng.Uint64()
		nodes := ringNodes(n)
		r := buildRing(nodes, seed)
		before := owners(r)

		added := fmt.Sprintf("10.0.1.%d:7600", trial+1)
		r.Add(added)
		after := owners(r)
		moved := 0
		for fn, was := range before {
			now := after[fn]
			if now != was {
				if now != added {
					t.Fatalf("trial %d (n=%d seed=%d): fn %d moved %s → %s, not to the added node",
						trial, n, seed, fn, was, now)
				}
				moved++
			}
		}
		if moved == 0 {
			t.Fatalf("trial %d: added node %s took no keys", trial, added)
		}

		r.Remove(added)
		restored := owners(r)
		for fn, was := range before {
			if restored[fn] != was {
				t.Fatalf("trial %d: fn %d owner %s != %s after add+remove round trip",
					trial, fn, restored[fn], was)
			}
		}

		// Removing an original member moves exactly its keys.
		victim := nodes[int(rng.Uint64()%uint64(n))]
		r.Remove(victim)
		if n == 1 {
			if got := r.Lookup(42); got != "" {
				t.Fatalf("trial %d: empty ring still resolves to %q", trial, got)
			}
			continue
		}
		shrunk := owners(r)
		for fn, was := range before {
			if was == victim {
				if shrunk[fn] == victim {
					t.Fatalf("trial %d: fn %d still owned by removed node", trial, fn)
				}
			} else if shrunk[fn] != was {
				t.Fatalf("trial %d: fn %d moved %s → %s though its owner survived",
					trial, fn, was, shrunk[fn])
			}
		}
	}
}

// TestRingDeterministicSeeding pins that placement is a pure function
// of (seed, member set): insertion order is irrelevant, distinct seeds
// diverge.
func TestRingDeterministicSeeding(t *testing.T) {
	nodes := ringNodes(8)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	a := buildRing(nodes, 99)
	b := buildRing(reversed, 99)
	c := buildRing(nodes, 100)
	diverged := false
	for fn := 0; fn < 1<<16; fn++ {
		if a.Lookup(uint16(fn)) != b.Lookup(uint16(fn)) {
			t.Fatalf("fn %d: same seed, different insertion order → different owner", fn)
		}
		if a.Lookup(uint16(fn)) != c.Lookup(uint16(fn)) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 99 and 100 produced identical placement over the whole key space")
	}
}

// TestRingLookupN pins the replica contract: distinct nodes, primary
// first, count clamped to the member count.
func TestRingLookupN(t *testing.T) {
	r := buildRing(ringNodes(4), 5)
	for fn := uint16(0); fn < 512; fn++ {
		reps := r.LookupN(fn, 3)
		if len(reps) != 3 {
			t.Fatalf("fn %d: got %d replicas, want 3", fn, len(reps))
		}
		if reps[0] != r.Lookup(fn) {
			t.Fatalf("fn %d: primary %s != Lookup %s", fn, reps[0], r.Lookup(fn))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("fn %d: duplicate replica %s", fn, n)
			}
			seen[n] = true
		}
	}
	if got := r.LookupN(7, 99); len(got) != 4 {
		t.Fatalf("LookupN over-asks: got %d, want clamp to 4", len(got))
	}
	if got := router.NewRing(0, 1).LookupN(7, 2); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
}
