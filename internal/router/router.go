package router

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"agilefpga/internal/client"
	"agilefpga/internal/metrics"
	"agilefpga/internal/server"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// Defaults for Options.
const (
	DefaultReplication    = 2
	DefaultSpillThreshold = 8
	DefaultMaxRounds      = 4
	DefaultMaxInflight    = 1024
	DefaultEjectAfter     = 1
	DefaultProbeBase      = 50 * time.Millisecond
	DefaultProbeMax       = 2 * time.Second
	DefaultProbeTimeout   = time.Second
)

// ErrRouterClosed is returned by Serve after Shutdown or Close.
var ErrRouterClosed = errors.New("router: closed")

// ErrNoBackends is returned when every candidate backend refused the
// request across every retry round.
var ErrNoBackends = errors.New("router: no backends available")

// Options tunes the router. The zero value of every field selects a
// default.
type Options struct {
	// Replication is how many ring-consecutive nodes may serve one
	// function (default 2): the primary takes all traffic until its
	// in-flight count reaches SpillThreshold, then calls spill to the
	// least-loaded replica — which warms its caches, replicating the
	// hot function across the fleet exactly as load demands.
	Replication int
	// SpillThreshold is the primary in-flight count at which calls
	// spill to a replica (default 8 ≈ 2× a node's card parallelism).
	SpillThreshold int
	// VNodes and Seed parameterise the consistent-hash ring; equal
	// values on every router instance give identical routing.
	VNodes int
	Seed   uint64
	// MaxRounds bounds full passes over the candidate list (default 4);
	// rounds are separated by the shared jittered backoff schedule.
	MaxRounds int
	// MaxInflight bounds requests admitted by the wire front end
	// (default 1024); excess is refused with RESOURCE_EXHAUSTED.
	MaxInflight int
	// EjectAfter is the consecutive infrastructure-failure count that
	// ejects a backend (default 1). A drain answer ejects immediately
	// regardless.
	EjectAfter int
	// ProbeBase/ProbeMax shape the ejected-backend probe schedule
	// (jittered exponential, shared Backoff implementation); a probe
	// round trip is bounded by ProbeTimeout.
	ProbeBase    time.Duration
	ProbeMax     time.Duration
	ProbeTimeout time.Duration
	// Backend is the template for per-backend mux clients. MaxRetries
	// is forced off (the router retries across backends, not within
	// one) and Metrics is forced nil (per-conn gauge labels would
	// collide across backends — the router exports per-backend series
	// itself).
	Backend client.Options
	// Metrics, if set, receives the router series (per-backend
	// in-flight/ejections/reinstatements/spills/forwards, request
	// latency, hop overhead with exemplars).
	Metrics *metrics.Registry
	// Tracer, if set, records a route span per request between the
	// client's call span and the backend server's rpc span. A traced
	// frame arriving at the front end joins the client's trace; the
	// forward ships the router's attempt span onward.
	Tracer *trace.Tracer
}

// Router fans calls out over a fleet of agilenetd backends by
// consistent-hash function affinity. Use it directly as a library
// (Call/CallMulti) or put it on the wire with Serve. Safe for
// concurrent use.
type Router struct {
	opts        Options
	backendOpts client.Options
	ring        *Ring
	backends    map[string]*backend
	order       []string // sorted backend addrs: deterministic fallback order
	bo          *client.Backoff
	probeBo     *client.Backoff
	sem         chan struct{}

	pctx    context.Context // cancelled on Close/Shutdown: stops probes
	pcancel context.CancelFunc
	probes  sync.WaitGroup
	stop    sync.Once

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	inflight sync.WaitGroup
	connWG   sync.WaitGroup
}

// New builds a router over the given backend addresses (fixed for the
// router's lifetime). Backends are dialled eagerly; one that is down
// at start is not an error — it begins ejected and the probe loop
// reinstates it when it appears.
func New(backends []string, opts Options) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	if opts.Replication <= 0 {
		opts.Replication = DefaultReplication
	}
	if opts.SpillThreshold <= 0 {
		opts.SpillThreshold = DefaultSpillThreshold
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = DefaultEjectAfter
	}
	if opts.ProbeBase <= 0 {
		opts.ProbeBase = DefaultProbeBase
	}
	if opts.ProbeMax <= 0 {
		opts.ProbeMax = DefaultProbeMax
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	bopts := opts.Backend
	bopts.MaxRetries = -1
	bopts.Metrics = nil
	bopts.Tracer = opts.Tracer
	pctx, pcancel := context.WithCancel(context.Background())
	r := &Router{
		opts:        opts,
		backendOpts: bopts,
		ring:        NewRing(opts.VNodes, opts.Seed),
		backends:    make(map[string]*backend, len(backends)),
		bo:          client.NewBackoff(bopts.BaseBackoff, bopts.MaxBackoff, opts.Seed),
		probeBo:     client.NewBackoff(opts.ProbeBase, opts.ProbeMax, opts.Seed),
		sem:         make(chan struct{}, opts.MaxInflight),
		pctx:        pctx,
		pcancel:     pcancel,
		conns:       make(map[net.Conn]struct{}),
	}
	for _, addr := range backends {
		if _, dup := r.backends[addr]; dup {
			continue
		}
		r.ring.Add(addr)
		r.backends[addr] = newBackend(addr, opts.Metrics)
	}
	r.order = r.ring.Nodes()
	for _, addr := range r.order {
		b := r.backends[addr]
		if _, err := b.getClient(r.backendOpts); err != nil {
			if b.eject() {
				r.startProbe(b)
			}
		}
	}
	return r, nil
}

// candidates orders the backends to try for fn: healthy ring replicas
// first (primary, then clockwise), with the least-loaded replica
// promoted over an overloaded primary (load-aware spill); then the
// remaining healthy nodes; then ejected ones as a last resort (a probe
// may lag a node's recovery). The bool reports whether a spill
// promotion happened.
func (r *Router) candidates(fn uint16) ([]*backend, bool) {
	reps := r.ring.LookupN(fn, r.opts.Replication)
	inReps := make(map[string]struct{}, len(reps))
	cands := make([]*backend, 0, len(r.order))
	for _, name := range reps {
		inReps[name] = struct{}{}
		if b := r.backends[name]; b.healthy() {
			cands = append(cands, b)
		}
	}
	spilled := false
	if len(cands) >= 2 {
		primary := cands[0]
		if int(primary.inflight.Load()) >= r.opts.SpillThreshold {
			best, bi := primary, 0
			for i, b := range cands[1:] {
				if b.inflight.Load() < best.inflight.Load() {
					best, bi = b, i+1
				}
			}
			if bi != 0 {
				cands[0], cands[bi] = cands[bi], cands[0]
				spilled = true
			}
		}
	}
	for _, name := range r.order {
		if _, ok := inReps[name]; ok {
			continue
		}
		if b := r.backends[name]; b.healthy() {
			cands = append(cands, b)
		}
	}
	for _, name := range reps {
		if b := r.backends[name]; !b.healthy() {
			cands = append(cands, b)
		}
	}
	for _, name := range r.order {
		if _, ok := inReps[name]; ok {
			continue
		}
		if b := r.backends[name]; !b.healthy() {
			cands = append(cands, b)
		}
	}
	return cands, spilled
}

// disposition classifies a forward failure for the routing loop.
type disposition int

const (
	dispTerminal disposition = iota // the caller's problem — return it
	dispOverload                    // backend alive but shedding — try a replica
	dispDrain                       // graceful drain — eject immediately
	dispInfra                       // transport/unavailable — count toward ejection
)

func classify(err error) disposition {
	var se *client.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case wire.StatusResourceExhausted:
			return dispOverload
		case wire.StatusUnavailable:
			if se.Msg == server.DrainMessage {
				return dispDrain
			}
			return dispInfra
		default:
			return dispTerminal
		}
	}
	var te *client.TransportError
	if errors.As(err, &te) {
		return dispInfra
	}
	return dispTerminal // context errors and the like are not the backend's fault
}

// Call routes one request through the fleet, returning the output and
// the serving backend card. The context deadline bounds routing,
// retries, and the forwarded budget. Non-OK backend statuses surface
// as *client.StatusError, exactly as a direct client call would.
func (r *Router) Call(ctx context.Context, fn uint16, payload []byte) ([]byte, int, error) {
	ref := r.opts.Tracer.StartRoot("route", "router", fn)
	start := time.Now() //lint:wallclock hop accounting is wall time; the router is outside the simulation
	out, card, backendNS, err := r.route(ctx, fn, nil, payload, ref)
	r.observeRoute(start, backendNS, err, ref.TraceID)
	r.opts.Tracer.End(ref, routeStatus(err))
	return out, card, err
}

// MultiCall is one element of a scatter-gather batch.
type MultiCall struct {
	Fn      uint16
	Payload []byte
}

// MultiResult is CallMulti's per-element outcome, in input order.
type MultiResult struct {
	Output []byte
	Card   int
	Err    error
}

// CallMulti scatters a multi-function batch across the fleet — each
// element routed independently by its function's affinity — and
// gathers the results in input order. One scatter span parents the
// per-element route spans.
func (r *Router) CallMulti(ctx context.Context, calls []MultiCall) []MultiResult {
	ref := r.opts.Tracer.StartRoot("scatter", "router", 0)
	results := make([]MultiResult, len(calls))
	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cref := r.opts.Tracer.StartChild(ref, "route", "router", calls[i].Fn)
			start := time.Now() //lint:wallclock hop accounting is wall time; the router is outside the simulation
			out, card, backendNS, err := r.route(ctx, calls[i].Fn, nil, calls[i].Payload, cref)
			r.observeRoute(start, backendNS, err, cref.TraceID)
			r.opts.Tracer.End(cref, routeStatus(err))
			results[i] = MultiResult{Output: out, Card: card, Err: err}
		}(i)
	}
	wg.Wait()
	st := "ok"
	for i := range results {
		if results[i].Err != nil {
			st = "error"
			break
		}
	}
	r.opts.Tracer.End(ref, st)
	return results
}

// route is the candidate/retry loop behind Call, CallChain and the
// wire front end. A non-nil stages list forwards the attempt as a
// chain; ring affinity then keys on the whole chain (chainKey), not on
// any single stage, so a chain's stages warm together on one backend.
// backendNS accumulates wall time spent inside backend forwards, so
// callers can separate hop overhead from backend service time.
func (r *Router) route(ctx context.Context, fn uint16, stages []uint16, payload []byte, ref trace.SpanRef) (out []byte, card int, backendNS int64, err error) {
	key := fn
	if stages != nil {
		key = chainKey(stages)
	}
	var lastErr error
	for round := 0; ; round++ {
		cands, spilled := r.candidates(key)
		if spilled {
			cands[0].spills.Add(1)
			cands[0].cSpill.Inc()
		}
		for _, b := range cands {
			if cerr := ctx.Err(); cerr != nil {
				if lastErr == nil {
					lastErr = cerr
				}
				return nil, -1, backendNS, lastErr
			}
			out, card, dns, ferr := r.forward(ctx, b, fn, stages, payload, ref)
			backendNS += dns
			if ferr == nil {
				return out, card, backendNS, nil
			}
			lastErr = ferr
			switch classify(ferr) {
			case dispTerminal:
				return nil, card, backendNS, ferr
			case dispOverload:
				// Alive but shedding: no ejection, next candidate absorbs.
			case dispDrain:
				if b.eject() {
					r.startProbe(b)
				}
			case dispInfra:
				if int(b.fails.Add(1)) >= r.opts.EjectAfter {
					if b.eject() {
						r.startProbe(b)
					}
				}
			}
		}
		if round+1 >= r.opts.MaxRounds {
			if lastErr == nil {
				lastErr = ErrNoBackends
			}
			return nil, -1, backendNS, lastErr
		}
		if serr := r.bo.Sleep(ctx, round); serr != nil {
			if lastErr == nil {
				lastErr = serr
			}
			return nil, -1, backendNS, lastErr
		}
	}
}

// forward sends one attempt to one backend through its mux client,
// tracking per-backend in-flight (the spill signal) and the forward
// outcome series.
func (r *Router) forward(ctx context.Context, b *backend, fn uint16, stages []uint16, payload []byte, ref trace.SpanRef) ([]byte, int, int64, error) {
	c, err := b.getClient(r.backendOpts)
	if err != nil {
		r.countForward(b, err)
		return nil, -1, 0, err
	}
	b.inflight.Add(1)
	b.gInflight.Inc()
	start := time.Now() //lint:wallclock hop accounting is wall time; the router is outside the simulation
	var out []byte
	var card int
	var cerr error
	if stages != nil {
		out, card, cerr = c.CallChainRef(ctx, stages, payload, ref)
	} else {
		out, card, cerr = c.CallRef(ctx, fn, payload, ref)
	}
	elapsed := time.Since(start) //lint:wallclock hop accounting is wall time; the router is outside the simulation
	b.inflight.Add(-1)
	b.gInflight.Dec()
	if cerr == nil {
		b.fails.Store(0)
	}
	r.countForward(b, cerr)
	return out, card, elapsed.Nanoseconds(), cerr
}

func (r *Router) countForward(b *backend, err error) {
	if r.opts.Metrics == nil {
		return
	}
	r.opts.Metrics.Counter("agile_router_forwards_total",
		metrics.L("backend", b.addr), metrics.L("status", routeStatus(err))).Inc()
}

// observeRoute records one routed request: total latency and the hop
// overhead (total minus time inside backend calls), both with the
// request's trace id as exemplar so the histogram links back to
// /debug/traces.
func (r *Router) observeRoute(start time.Time, backendNS int64, err error, traceID uint64) {
	if r.opts.Metrics == nil {
		return
	}
	elapsed := time.Since(start) //lint:wallclock hop accounting is wall time; the router is outside the simulation
	lbl := metrics.L("status", routeStatus(err))
	r.opts.Metrics.Counter("agile_router_requests_total", lbl).Inc()
	r.opts.Metrics.Histogram("agile_router_request_seconds", lbl).
		ObserveExemplar(sim.Time(elapsed.Nanoseconds())*sim.Nanosecond, traceID)
	overhead := elapsed.Nanoseconds() - backendNS
	if overhead < 0 {
		overhead = 0
	}
	r.opts.Metrics.Histogram("agile_router_hop_overhead_seconds").
		ObserveExemplar(sim.Time(overhead)*sim.Nanosecond, traceID)
}

// routeStatus renders a route outcome as a span/label status string.
func routeStatus(err error) string {
	var se *client.StatusError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &se):
		return se.Status.String()
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	var te *client.TransportError
	if errors.As(err, &te) {
		return "transport"
	}
	return "error"
}

// startProbe launches the single probe goroutine owning b's path back
// to healthy. It re-checks the node on the jittered probe schedule
// until it answers, then drops the stale client (the next forward
// re-dials fresh) and reinstates.
func (r *Router) startProbe(b *backend) {
	r.probes.Add(1)
	go func() {
		defer r.probes.Done()
		b.state.Store(int32(stateProbing))
		for attempt := 0; ; attempt++ {
			if err := r.probeBo.Sleep(r.pctx, attempt); err != nil {
				return // router closing
			}
			if probeOnce(b.addr, r.opts.ProbeTimeout) {
				b.closeClient()
				b.reinstate()
				return
			}
		}
	}()
}

// BackendInfo is one backend's health snapshot.
type BackendInfo struct {
	Addr           string `json:"addr"`
	State          string `json:"state"`
	Inflight       int64  `json:"inflight"`
	Ejections      uint64 `json:"ejections"`
	Reinstatements uint64 `json:"reinstatements"`
	Spills         uint64 `json:"spills"`
}

// Backends snapshots every backend in address order.
func (r *Router) Backends() []BackendInfo {
	out := make([]BackendInfo, 0, len(r.order))
	for _, name := range r.order {
		b := r.backends[name]
		out = append(out, BackendInfo{
			Addr:           b.addr,
			State:          backendState(b.state.Load()).String(),
			Inflight:       b.inflight.Load(),
			Ejections:      b.ejections.Load(),
			Reinstatements: b.reinstatements.Load(),
			Spills:         b.spills.Load(),
		})
	}
	return out
}

// DebugHandler serves the backend table as JSON — mounted at
// /debug/backends by cmd/agilerouter.
func (r *Router) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Backends())
	})
}

// Serve accepts wire-protocol connections on ln, routing every
// request through the fleet, until Shutdown or Close; then it returns
// ErrRouterClosed. The front end mirrors internal/server: pipelined
// requests are handled concurrently, responses may interleave, and a
// duplicate in-flight request id is a fatal protocol error.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		ln.Close()
		return ErrRouterClosed
	}
	if r.ln != nil {
		r.mu.Unlock()
		return errors.New("router: Serve called twice")
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			r.mu.Unlock()
			if draining {
				return ErrRouterClosed
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			conn.Close()
			return ErrRouterClosed
		}
		r.conns[conn] = struct{}{}
		r.connWG.Add(1)
		r.mu.Unlock()
		go r.handleConn(conn)
	}
}

func (r *Router) handleConn(c net.Conn) {
	defer r.connWG.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var wmu sync.Mutex
	write := func(resp *wire.Response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wire.WriteResponse(bw, resp); err != nil {
			return
		}
		bw.Flush()
	}
	var idMu sync.Mutex
	ids := make(map[uint64]struct{})
	for {
		req := new(wire.AnyRequest)
		fr, err := wire.ReadAnyRequestFrame(br, req)
		if err != nil {
			return
		}
		id := req.ID()
		idMu.Lock()
		_, dup := ids[id]
		if !dup {
			ids[id] = struct{}{}
		}
		idMu.Unlock()
		if dup {
			fr.Release()
			write(&wire.Response{ID: id, Status: wire.StatusInvalidArgument, Card: -1,
				Payload: []byte(fmt.Sprintf("request id %d already in flight on this connection", id))})
			return
		}
		finish := func() {
			idMu.Lock()
			delete(ids, id)
			idMu.Unlock()
		}
		r.handleRequest(req, fr, write, finish)
	}
}

// handleRequest admits one front-end request and dispatches it in its
// own goroutine. Admission and in-flight registration happen under mu
// so Shutdown's drain wait cannot race a late admission.
func (r *Router) handleRequest(req *wire.AnyRequest, fr wire.Frame, write func(*wire.Response), finish func()) {
	id, fn := req.ID(), req.Fn()
	refuse := func(st wire.Status, msg string) {
		write(&wire.Response{ID: id, Status: st, Card: -1, Payload: []byte(msg)})
		finish()
		fr.Release()
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		refuse(wire.StatusUnavailable, server.DrainMessage)
		return
	}
	select {
	case r.sem <- struct{}{}:
	default:
		r.mu.Unlock()
		refuse(wire.StatusResourceExhausted,
			fmt.Sprintf("router at capacity (%d in flight)", cap(r.sem)))
		return
	}
	r.inflight.Add(1)
	r.mu.Unlock()
	go func() {
		defer func() {
			<-r.sem
			r.inflight.Done()
		}()
		ctx := context.Background()
		if dl := req.Deadline(); dl > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, dl)
			defer cancel()
		}
		// The route span sits between the client's call span and the
		// backend server's rpc span. A tracer-less router still forwards
		// an incoming context verbatim (passthrough ref), so the trace
		// survives the hop even when this process records nothing.
		var ref trace.SpanRef
		if tc := req.TraceContext(); tc.Valid() {
			ref = r.opts.Tracer.StartRemote(tc.TraceID, tc.SpanID,
				tc.Sampled(), "route", "router", fn)
			if !ref.Valid() && tc.Sampled() {
				ref = trace.SpanRef{TraceID: tc.TraceID, SpanID: tc.SpanID}
			}
		} else {
			ref = r.opts.Tracer.StartRoot("route", "router", fn)
		}
		var stages []uint16
		var payloadIn []byte
		if req.IsChain {
			stages, payloadIn = req.Chain.Stages, req.Chain.Payload
		} else {
			payloadIn = req.Plain.Payload
		}
		start := time.Now() //lint:wallclock hop accounting is wall time; the router is outside the simulation
		out, card, backendNS, err := r.route(ctx, fn, stages, payloadIn, ref)
		st, payload := responseFor(out, err)
		write(&wire.Response{ID: id, Status: st, Card: int16(card), Payload: payload})
		finish()
		fr.Release()
		r.observeRoute(start, backendNS, err, ref.TraceID)
		r.opts.Tracer.End(ref, routeStatus(err))
	}()
}

// responseFor maps a route outcome onto the wire response the router
// answers downstream.
func responseFor(out []byte, err error) (wire.Status, []byte) {
	if err == nil {
		return wire.StatusOK, out
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Status, []byte(se.Msg)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return wire.StatusDeadlineExceeded, []byte("deadline exceeded in router")
	}
	return wire.StatusUnavailable, []byte(err.Error())
}

// closeConns abruptly closes every front-end connection.
func (r *Router) closeConns() {
	r.mu.Lock()
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// stopBackends cancels probes, waits them out, and closes every
// backend client. Idempotent.
func (r *Router) stopBackends() {
	r.stop.Do(func() {
		r.pcancel()
		r.probes.Wait()
		for _, name := range r.order {
			r.backends[name].closeClient()
		}
	})
}

// Shutdown gracefully drains the router: the listener closes, new
// requests are refused with UNAVAILABLE + DrainMessage (so an upstream
// router ejects this one cleanly), admitted requests finish, then
// connections, probes, and backend clients close. Returns ctx.Err()
// if the drain outlives ctx.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	ln := r.ln
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	r.closeConns()
	r.connWG.Wait()
	r.stopBackends()
	return err
}

// Close shuts the router down without waiting for in-flight requests.
func (r *Router) Close() error {
	r.mu.Lock()
	r.draining = true
	ln := r.ln
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	r.closeConns()
	r.connWG.Wait()
	r.stopBackends()
	return nil
}
