package router_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/client"
	"agilefpga/internal/cluster"
	"agilefpga/internal/core"
	"agilefpga/internal/fpga"
	"agilefpga/internal/metrics"
	"agilefpga/internal/router"
	"agilefpga/internal/server"
	"agilefpga/internal/wire"
)

// node is one in-process agilenetd backend: cluster + server + its
// listener, restartable on the same address for reinstatement tests.
type node struct {
	addr string
	cl   *cluster.Cluster
	srv  *server.Server
	serr chan error
}

func startNode(t *testing.T, addr string, cards int) *node {
	t.Helper()
	cl, err := cluster.New(cards, cluster.ModeAffinity,
		core.Config{Geometry: fpga.Geometry{Rows: 32, Cols: 40}})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cl, server.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	n := &node{addr: ln.Addr().String(), cl: cl, srv: srv, serr: make(chan error, 1)}
	go func() { n.serr <- srv.Serve(ln) }()
	return n
}

func (n *node) stop() {
	n.srv.Close()
	<-n.serr
	n.cl.Close()
}

// fleet is N backends plus teardown. The router under test is built
// separately so tests control its options.
type fleet struct {
	nodes []*node
	addrs []string
}

func newFleet(t *testing.T, n, cards int) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		nd := startNode(t, "127.0.0.1:0", cards)
		f.nodes = append(f.nodes, nd)
		f.addrs = append(f.addrs, nd.addr)
	}
	t.Cleanup(func() {
		for _, nd := range f.nodes {
			if nd != nil {
				nd.stop()
			}
		}
	})
	return f
}

// kill abruptly stops node i (connections die mid-flight).
func (f *fleet) kill(t *testing.T, i int) {
	t.Helper()
	f.nodes[i].stop()
	f.nodes[i] = nil
}

// restart brings node i back on its original address.
func (f *fleet) restart(t *testing.T, i int, cards int) {
	t.Helper()
	f.nodes[i] = startNode(t, f.addrs[i], cards)
}

func newTestRouter(t *testing.T, f *fleet, opts router.Options) (*router.Router, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	if opts.Metrics == nil {
		opts.Metrics = reg
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	r, err := router.New(f.addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, reg
}

// TestRouterEndToEndMatchesDirectCall proves the hop is transparent:
// bytes routed through the fleet equal bytes from a direct cluster
// call, for several functions landing on different backends.
func TestRouterEndToEndMatchesDirectCall(t *testing.T) {
	f := newFleet(t, 2, 2)
	r, _ := newTestRouter(t, f, router.Options{})
	in := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for _, fn := range []*algos.Function{algos.CRC32(), algos.MD5(), algos.SHA1(), algos.FIR()} {
		direct, _, err := f.nodes[0].cl.Call(fn.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		got, card, err := r.Call(context.Background(), fn.ID(), in)
		if err != nil {
			t.Fatalf("%s: %v", fn.Name(), err)
		}
		if !bytes.Equal(got, direct.Output) {
			t.Fatalf("%s: routed output %x != direct %x", fn.Name(), got, direct.Output)
		}
		if card < 0 {
			t.Fatalf("%s: served by card %d", fn.Name(), card)
		}
	}
}

// TestRouterAffinity pins the tentpole routing property: absent
// overload, every call for one function lands on exactly one backend
// (the ring primary), so that node's cards stay resident for it.
func TestRouterAffinity(t *testing.T) {
	f := newFleet(t, 3, 1)
	r, reg := newTestRouter(t, f, router.Options{})
	in := []byte{9, 9, 9, 9}
	fn := algos.CRC32().ID()
	for i := 0; i < 20; i++ {
		if _, _, err := r.Call(context.Background(), fn, in); err != nil {
			t.Fatal(err)
		}
	}
	served := 0
	for _, addr := range f.addrs {
		n := reg.Counter("agile_router_forwards_total",
			metrics.L("backend", addr), metrics.L("status", "ok")).Value()
		if n > 0 {
			served++
			if n != 20 {
				t.Fatalf("backend %s served %d of 20", addr, n)
			}
		}
	}
	if served != 1 {
		t.Fatalf("one function spread over %d backends without load", served)
	}
}

// TestRouterSpill drives one hot function with more concurrency than
// the spill threshold: calls must overflow onto a ring replica (both
// backends serve, spills counter advances) — the load-aware
// replication behaviour.
func TestRouterSpill(t *testing.T) {
	f := newFleet(t, 2, 1)
	r, reg := newTestRouter(t, f, router.Options{SpillThreshold: 1, Replication: 2})
	fn := algos.SHA256().ID()
	in := make([]byte, 64)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := r.Call(context.Background(), fn, in); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	var spills uint64
	served := 0
	for _, b := range r.Backends() {
		spills += b.Spills
		if reg.Counter("agile_router_forwards_total",
			metrics.L("backend", b.Addr), metrics.L("status", "ok")).Value() > 0 {
			served++
		}
	}
	if spills == 0 {
		t.Fatal("no spills recorded at threshold 1 under 64-way concurrency")
	}
	if served != 2 {
		t.Fatalf("spilled traffic reached %d backends, want 2", served)
	}
}

// TestRouterKillFailoverAndReinstate is the availability contract: a
// backend dying mid-run causes zero failed well-formed requests (its
// traffic retries onto survivors after ejection), and when the node
// returns the probe loop reinstates it.
func TestRouterKillFailoverAndReinstate(t *testing.T) {
	if testing.Short() {
		t.Skip("polls real probe timers; skipped in -short mode")
	}
	f := newFleet(t, 3, 1)
	r, _ := newTestRouter(t, f, router.Options{
		ProbeBase: 10 * time.Millisecond, ProbeMax: 100 * time.Millisecond,
	})
	in := []byte{1, 2, 3, 4}
	fns := []uint16{algos.CRC32().ID(), algos.MD5().ID(), algos.SHA1().ID(),
		algos.FIR().ID(), algos.AES128().ID(), algos.DES().ID()}
	call := func(i int) {
		if _, _, err := r.Call(context.Background(), fns[i%len(fns)], in); err != nil {
			t.Errorf("call %d failed: %v", i, err)
		}
	}
	for i := 0; i < 30; i++ {
		call(i)
	}
	f.kill(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			call(i)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var ejections uint64
	for _, b := range r.Backends() {
		ejections += b.Ejections
	}
	if ejections == 0 {
		t.Fatal("killed backend was never ejected")
	}

	f.restart(t, 1, 1)
	deadline := time.Now().Add(10 * time.Second) //lint:wallclock test polls for probe-based reinstatement in real time
	for {
		var reinstated uint64
		for _, b := range r.Backends() {
			reinstated += b.Reinstatements
		}
		if reinstated > 0 {
			break
		}
		if time.Now().After(deadline) { //lint:wallclock test polls for probe-based reinstatement in real time
			t.Fatal("restarted backend never reinstated")
		}
		time.Sleep(5 * time.Millisecond) //lint:wallclock test polls for probe-based reinstatement in real time
	}
	for i := 0; i < 30; i++ {
		call(i)
	}
}

// startDrainStub runs a wire-speaking backend stuck mid-drain: every
// request is answered UNAVAILABLE + server.DrainMessage, exactly what
// a draining agilenetd sends while its listener is still reachable.
func startDrainStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	conns := make(map[net.Conn]struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns[c] = struct{}{}
			mu.Unlock()
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				br := bufio.NewReader(c)
				for {
					req := new(wire.Request)
					fr, err := wire.ReadRequestFrame(br, req)
					if err != nil {
						return
					}
					fr.Release()
					wire.WriteResponse(c, &wire.Response{ID: req.ID,
						Status: wire.StatusUnavailable, Card: -1,
						Payload: []byte(server.DrainMessage)})
				}
			}(c)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestRouterDrainEjection: a draining backend answers UNAVAILABLE +
// DrainMessage; the router must eject it on the FIRST such answer —
// drain bypasses the consecutive-failure threshold — while every call
// keeps succeeding on the survivor.
func TestRouterDrainEjection(t *testing.T) {
	f := newFleet(t, 1, 1)
	stub := startDrainStub(t)
	reg := metrics.NewRegistry()
	r, err := router.New([]string{stub, f.addrs[0]}, router.Options{
		// A huge threshold proves the drain path ejects on its own.
		EjectAfter: 1000,
		Seed:       1,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	in := []byte{5, 5, 5, 5}
	fns := []*algos.Function{algos.CRC32(), algos.MD5(), algos.SHA1(), algos.FIR(),
		algos.SHA256(), algos.AES128(), algos.DES(), algos.FFT()}
	for i, fn := range fns {
		if _, _, err := r.Call(context.Background(), fn.ID(), in); err != nil {
			t.Fatalf("call %d (%s): %v", i, fn.Name(), err)
		}
	}
	drained := false
	for _, b := range r.Backends() {
		if b.Addr == stub && b.Ejections > 0 && b.State != "healthy" {
			drained = true
		}
	}
	if !drained {
		t.Fatalf("draining backend was not ejected: %+v", r.Backends())
	}
}

// TestRouterScatterGather: CallMulti fans a multi-function batch
// across the fleet and gathers results in input order, each equal to
// its direct-call twin.
func TestRouterScatterGather(t *testing.T) {
	f := newFleet(t, 3, 2)
	r, _ := newTestRouter(t, f, router.Options{})
	in := []byte{7, 6, 5, 4, 3, 2, 1, 0}
	fns := []*algos.Function{algos.CRC32(), algos.MD5(), algos.SHA1(), algos.SHA256(),
		algos.FIR(), algos.AES128()}
	calls := make([]router.MultiCall, len(fns))
	for i, fn := range fns {
		calls[i] = router.MultiCall{Fn: fn.ID(), Payload: in}
	}
	results := r.CallMulti(context.Background(), calls)
	if len(results) != len(calls) {
		t.Fatalf("got %d results for %d calls", len(results), len(calls))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", fns[i].Name(), res.Err)
		}
		direct, _, err := f.nodes[0].cl.Call(fns[i].ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, direct.Output) {
			t.Fatalf("%s: scatter output %x != direct %x", fns[i].Name(), res.Output, direct.Output)
		}
	}
}

// TestRouterWireFrontEnd puts the router on the wire: an ordinary mux
// client dials the router as if it were a single agilenetd node, and
// the hop stays transparent — outputs match, deadlines propagate, the
// hop-overhead histogram fills.
func TestRouterWireFrontEnd(t *testing.T) {
	f := newFleet(t, 2, 2)
	r, reg := newTestRouter(t, f, router.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serr := make(chan error, 1)
	go func() { serr <- r.Serve(ln) }()
	t.Cleanup(func() {
		r.Close()
		<-serr
	})

	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := []byte{1, 1, 2, 3, 5, 8, 13, 21}
	for _, fn := range []*algos.Function{algos.CRC32(), algos.MD5(), algos.FFT()} {
		direct, _, err := f.nodes[0].cl.Call(fn.ID(), in)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		got, _, err := c.Call(ctx, fn.ID(), in)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", fn.Name(), err)
		}
		if !bytes.Equal(got, direct.Output) {
			t.Fatalf("%s: wire output %x != direct %x", fn.Name(), got, direct.Output)
		}
	}
	// A non-OK backend status crosses both hops intact.
	_, _, err = c.Call(context.Background(), 0x7777, in)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusNotFound {
		t.Fatalf("unknown function through two hops: got %v, want NOT_FOUND", err)
	}
	if n := reg.Histogram("agile_router_hop_overhead_seconds").Count(); n == 0 {
		t.Fatal("hop-overhead histogram is empty after wire calls")
	}
}

// TestRouterDeadlineShortCircuit: an already-expired context never
// reaches a backend.
func TestRouterDeadlineShortCircuit(t *testing.T) {
	f := newFleet(t, 1, 1)
	r, reg := newTestRouter(t, f, router.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := r.Call(ctx, algos.CRC32().ID(), []byte{1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := reg.Counter("agile_router_forwards_total",
		metrics.L("backend", f.addrs[0]), metrics.L("status", "ok")).Value(); n != 0 {
		t.Fatalf("cancelled call reached a backend %d times", n)
	}
}
