// Package sched provides host-side job scheduling for the co-processor.
// Because reconfiguration dominates the cost of switching functions, the
// order the host drains its job queue in changes total latency by large
// factors (the dsppipeline example shows 30× fewer frame loads from
// batching alone). Three online policies bracket the trade-off between
// throughput and fairness:
//
//   - fifo: submission order — maximal fairness, maximal thrash.
//   - sticky: keep serving jobs for the currently resident function as
//     long as any are pending, then move on — minimal reconfigurations,
//     unbounded delay for unlucky jobs.
//   - window(W): like sticky but only looks W jobs ahead and ages the
//     queue head, making it starvation-free — the practical middle
//     ground.
//
// Schedulers are online pickers: given the pending queue and the set of
// functions currently on the fabric, pick the next job. They never see
// the future.
package sched

import (
	"fmt"
)

// Job is one queued co-processor request.
type Job struct {
	// Fn is the target function id.
	Fn uint16
	// Input is the payload.
	Input []byte
	// Seq is the submission index, used for fairness accounting.
	Seq int
}

// Picker selects the next job to serve.
type Picker interface {
	Name() string
	// Next returns the index into pending of the job to serve now.
	// pending is never empty; resident reports the functions currently
	// configured on the fabric.
	Next(pending []Job, resident map[uint16]bool) int
}

// Names lists the available scheduler names.
func Names() []string { return []string{"fifo", "sticky", "window"} }

// New constructs the named picker. window uses lookahead 16; use
// NewWindow for other depths.
func New(name string) (Picker, error) {
	switch name {
	case "fifo":
		return FIFO{}, nil
	case "sticky":
		return Sticky{}, nil
	case "window":
		return NewWindow(16)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", name)
	}
}

// FIFO serves jobs strictly in submission order.
type FIFO struct{}

// Name implements Picker.
func (FIFO) Name() string { return "fifo" }

// Next implements Picker.
func (FIFO) Next(pending []Job, resident map[uint16]bool) int { return 0 }

// Sticky serves any pending job whose function is already resident,
// preferring the oldest; only when nothing matches does it take the head
// of the queue (paying a reconfiguration).
type Sticky struct{}

// Name implements Picker.
func (Sticky) Name() string { return "sticky" }

// Next implements Picker.
func (Sticky) Next(pending []Job, resident map[uint16]bool) int {
	for i, j := range pending {
		if resident[j.Fn] {
			return i
		}
	}
	return 0
}

// Window is Sticky with bounded lookahead *and aging*: only the first
// `depth` pending jobs are candidates, and once the job at the head of
// the queue has been skipped `depth` times it is served unconditionally.
// The aging rule is what makes the scheduler starvation-free — lookahead
// alone is not, because the head can be skipped indefinitely as matching
// jobs keep arriving behind it (the first measurement of this scheduler
// showed exactly that pathology). The guarantee is per-head: a job waits
// at most `depth` skips once it reaches the head, so its total
// overtaking is bounded by depth × its initial queue position, where
// Sticky's is unbounded.
type Window struct {
	depth     int
	headSeq   int
	headSkips int
	primed    bool
}

// NewWindow returns a Window picker with the given lookahead depth.
func NewWindow(depth int) (*Window, error) {
	if depth < 1 {
		return nil, fmt.Errorf("sched: window depth %d must be >= 1", depth)
	}
	return &Window{depth: depth}, nil
}

// Name implements Picker.
func (w *Window) Name() string { return "window" }

// Depth reports the lookahead depth.
func (w *Window) Depth() int { return w.depth }

// Next implements Picker.
func (w *Window) Next(pending []Job, resident map[uint16]bool) int {
	head := pending[0].Seq
	if !w.primed || head != w.headSeq {
		w.headSeq, w.headSkips, w.primed = head, 0, true
	}
	if w.headSkips >= w.depth {
		w.headSkips = 0
		w.primed = false
		return 0
	}
	limit := w.depth
	if limit > len(pending) {
		limit = len(pending)
	}
	for i := 0; i < limit; i++ {
		if resident[pending[i].Fn] {
			if i != 0 {
				w.headSkips++
			}
			return i
		}
	}
	return 0
}

// Run drains the queue through serve (which executes one job and reports
// whether it hit the fabric), returning the service order and the worst
// overtaking any job suffered (served position minus submission index).
func Run(jobs []Job, p Picker, resident func() map[uint16]bool, serve func(Job) error) (order []int, maxDisplacement int, err error) {
	pending := append([]Job(nil), jobs...)
	pos := 0
	for len(pending) > 0 {
		i := p.Next(pending, resident())
		if i < 0 || i >= len(pending) {
			return nil, 0, fmt.Errorf("sched: %s picked %d of %d pending", p.Name(), i, len(pending))
		}
		job := pending[i]
		pending = append(pending[:i], pending[i+1:]...)
		if err := serve(job); err != nil {
			return nil, 0, fmt.Errorf("sched: serving job %d (fn %d): %w", job.Seq, job.Fn, err)
		}
		order = append(order, job.Seq)
		if d := pos - job.Seq; d > maxDisplacement {
			maxDisplacement = d
		}
		pos++
	}
	return order, maxDisplacement, nil
}
