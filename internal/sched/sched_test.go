package sched

import (
	"testing"
)

func jobs(fns ...uint16) []Job {
	out := make([]Job, len(fns))
	for i, fn := range fns {
		out[i] = Job{Fn: fn, Input: []byte{1}, Seq: i}
	}
	return out
}

func TestNew(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name = %q", p.Name())
		}
	}
	if _, err := New("edf"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := NewWindow(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := jobs(1, 2, 1, 3)
	resident := map[uint16]bool{2: true}
	if got := (FIFO{}).Next(q, resident); got != 0 {
		t.Errorf("FIFO picked %d", got)
	}
}

func TestStickyPrefersResident(t *testing.T) {
	q := jobs(1, 2, 1, 2)
	resident := map[uint16]bool{2: true}
	if got := (Sticky{}).Next(q, resident); got != 1 {
		t.Errorf("Sticky picked %d, want 1 (first resident match)", got)
	}
	// Nothing resident: fall back to the head.
	if got := (Sticky{}).Next(q, map[uint16]bool{}); got != 0 {
		t.Errorf("Sticky fallback picked %d", got)
	}
}

func TestWindowBoundsLookahead(t *testing.T) {
	w, err := NewWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	q := jobs(1, 3, 2, 2) // resident fn 2 first appears at index 2
	resident := map[uint16]bool{2: true}
	if got := w.Next(q, resident); got != 0 {
		t.Errorf("window(2) picked %d, want 0 (match outside window)", got)
	}
	w4, _ := NewWindow(4)
	if got := w4.Next(q, resident); got != 2 {
		t.Errorf("window(4) picked %d, want 2", got)
	}
	if w4.Depth() != 4 {
		t.Errorf("Depth = %d", w4.Depth())
	}
}

func TestWindowAgingBoundsStarvation(t *testing.T) {
	// A head job whose function never becomes resident must be served
	// after at most depth skips, however many matches follow it.
	w, _ := NewWindow(3)
	resident := map[uint16]bool{2: true}
	// Queue: head fn=1 (never resident), rest fn=2 (always matching).
	q := jobs(1, 2, 2, 2, 2, 2, 2, 2)
	picks := 0
	for {
		i := w.Next(q, resident)
		if q[i].Fn == 1 {
			break
		}
		q = append(q[:i], q[i+1:]...)
		picks++
		if picks > 10 {
			t.Fatal("head starved past the aging bound")
		}
	}
	if picks != 3 {
		t.Errorf("head served after %d skips, want 3 (= depth)", picks)
	}
}

func TestRunServesEveryJobOnce(t *testing.T) {
	q := jobs(1, 2, 1, 2, 3, 1)
	resident := map[uint16]bool{}
	var served []uint16
	serve := func(j Job) error {
		// Model a single-slot fabric: serving a function makes it the
		// only resident one.
		for k := range resident {
			delete(resident, k)
		}
		resident[j.Fn] = true
		served = append(served, j.Fn)
		return nil
	}
	order, maxDisp, err := Run(q, Sticky{}, func() map[uint16]bool { return resident }, serve)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(q) {
		t.Fatalf("served %d of %d", len(order), len(q))
	}
	seen := map[int]bool{}
	for _, s := range order {
		if seen[s] {
			t.Fatalf("job %d served twice", s)
		}
		seen[s] = true
	}
	// Sticky on 1,2,1,2,3,1 with a single slot groups the 1s and the 2s:
	// switches = number of distinct runs must be below FIFO's 6.
	switches := 1
	for i := 1; i < len(served); i++ {
		if served[i] != served[i-1] {
			switches++
		}
	}
	if switches >= 6 {
		t.Errorf("sticky made %d switches, no better than FIFO", switches)
	}
	if maxDisp <= 0 {
		t.Error("grouping must displace some job")
	}
}

func TestRunFIFOZeroDisplacement(t *testing.T) {
	q := jobs(5, 6, 7)
	_, maxDisp, err := Run(q, FIFO{}, func() map[uint16]bool { return nil }, func(Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if maxDisp != 0 {
		t.Errorf("FIFO displacement = %d", maxDisp)
	}
}

func TestRunPropagatesServeError(t *testing.T) {
	q := jobs(1)
	_, _, err := Run(q, FIFO{}, func() map[uint16]bool { return nil },
		func(Job) error { return errTest })
	if err == nil {
		t.Error("serve error swallowed")
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

var errTest = testErr("boom")

// badPicker returns an out-of-range index.
type badPicker struct{}

func (badPicker) Name() string                        { return "bad" }
func (badPicker) Next(p []Job, r map[uint16]bool) int { return len(p) }

func TestRunRejectsBadPicker(t *testing.T) {
	if _, _, err := Run(jobs(1, 2), badPicker{}, func() map[uint16]bool { return nil },
		func(Job) error { return nil }); err == nil {
		t.Error("bad pick accepted")
	}
}
