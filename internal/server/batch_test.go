package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"agilefpga/internal/algos"
	"agilefpga/internal/client"
	"agilefpga/internal/metrics"
	"agilefpga/internal/wire"
)

// TestPipelinedCallsMatchDirect is the multiplexing acceptance bar: N
// concurrent calls pipelined over ONE connection return byte-identical
// results to N serial direct cluster calls.
func TestPipelinedCallsMatchDirect(t *testing.T) {
	h := newHarness(t, 2, Options{MaxInflight: 64}, nil)
	fn := algos.CRC32()
	const n = 16
	inputs := make([][]byte, n)
	want := make([][]byte, n)
	for i := range inputs {
		inputs[i] = []byte{byte(i), byte(i * 7), 3, 4, byte(i)}
		res, _, err := h.cl.Call(fn.ID(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Output
	}
	c, err := client.Dial(h.addr, client.Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := c.Call(context.Background(), fn.ID(), inputs[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(out, want[i]) {
				errs[i] = fmt.Errorf("network output %x != direct %x", out, want[i])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	if got := h.reg.Gauge("agile_server_connections").Value(); got != 1 {
		t.Errorf("server connections = %d, want 1 — the pipeline must share one conn", got)
	}
}

// TestSlowRequestDoesNotBlockFast: with both requests pipelined on one
// connection, a request parked server-side must not delay one issued
// after it. The admission hook makes "slow" deterministic.
func TestSlowRequestDoesNotBlockFast(t *testing.T) {
	gate := make(chan struct{})
	h := newHarness(t, 1, Options{MaxInflight: 8}, func(req *wire.Request) {
		if req.Fn == algos.MD5().ID() {
			<-gate
		}
	})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	c, err := client.Dial(h.addr, client.Options{PoolSize: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := []byte{1, 2, 3, 4}
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := c.Call(context.Background(), algos.MD5().ID(), in)
		slowDone <- err
	}()
	waitFor(t, func() bool {
		return h.reg.Gauge("agile_server_inflight").Value() == 1
	})
	// The fast call rides the same connection and completes while the
	// slow one is parked.
	out, _, err := c.Call(context.Background(), algos.CRC32().ID(), in)
	if err != nil {
		t.Fatalf("fast call behind a parked request: %v", err)
	}
	want, _ := algos.CRC32().Exec(in)
	if !bytes.Equal(out, want) {
		t.Fatal("fast call returned wrong bytes")
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call settled before its gate: %v", err)
	default:
	}
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestCrossClientBatching: four requests from four DIFFERENT
// connections land in one batching window (the size trigger flushes it
// deterministically: dwell is set far beyond the test), every caller
// gets its own correct bytes, and the window metrics record one
// four-wide flush that the cluster served as one coalesced run.
func TestCrossClientBatching(t *testing.T) {
	h := newHarness(t, 1, Options{BatchWindow: 4, BatchDwell: 10 * time.Second}, nil)
	fn := algos.CRC32()
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			in := []byte{byte(i + 1), 2, 3, byte(i)}
			want, _ := fn.Exec(in)
			out, _, err := c.Call(context.Background(), fn.ID(), in)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(out, want) {
				errs[i] = fmt.Errorf("client %d got wrong bytes", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	hist := h.reg.Histogram("agile_net_batch_window_size")
	if hist.Count() != 1 || hist.Sum() != n {
		t.Errorf("window histogram count=%d sum=%d, want one flush of %d", hist.Count(), hist.Sum(), n)
	}
	if d := h.reg.Counter("agile_net_batch_dwell_ps_total").Value(); d == 0 {
		t.Error("dwell counter recorded nothing")
	}
	if cj := h.reg.Counter("agile_cluster_coalesced_jobs_total", metrics.L("card", "0")).Value(); cj < n {
		t.Errorf("coalesced jobs = %d, want >= %d — the window must run as one batch", cj, n)
	}
}

// TestBatchDwellFlushesPartialWindow: a lone request must not wait for
// a window that will never fill — the dwell timer flushes it.
func TestBatchDwellFlushesPartialWindow(t *testing.T) {
	h := newHarness(t, 1, Options{BatchWindow: 64, BatchDwell: 2 * time.Millisecond}, nil)
	c, err := client.Dial(h.addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := []byte{5, 6, 7, 8}
	want, _ := algos.CRC32().Exec(in)
	out, _, err := c.Call(context.Background(), algos.CRC32().ID(), in)
	if err != nil || !bytes.Equal(out, want) {
		t.Fatalf("lone batched call: out=%x err=%v", out, err)
	}
	hist := h.reg.Histogram("agile_net_batch_window_size")
	if hist.Count() != 1 || hist.Sum() != 1 {
		t.Errorf("window histogram count=%d sum=%d, want one flush of 1", hist.Count(), hist.Sum())
	}
}

// TestDuplicateInflightIDRejected: reusing a request id while the
// first request is still in flight on the same connection is a
// protocol error — answered explicitly with INVALID_ARGUMENT (never a
// hang), and fatal to the connection.
func TestDuplicateInflightIDRejected(t *testing.T) {
	gate := make(chan struct{})
	h := newHarness(t, 1, Options{MaxInflight: 8}, func(req *wire.Request) {
		if req.Fn == algos.MD5().ID() {
			<-gate
		}
	})
	defer close(gate)
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := []byte{1, 2, 3, 4}
	// Request 9 parks in the admission hook; its duplicate arrives while
	// it is provably in flight.
	if err := wire.WriteRequest(conn, &wire.Request{ID: 9, Fn: algos.MD5().ID(), Payload: in}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteRequest(conn, &wire.Request{ID: 9, Fn: algos.CRC32().ID(), Payload: in}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || resp.Status != wire.StatusInvalidArgument {
		t.Fatalf("duplicate answered %+v, want id 9 INVALID_ARGUMENT", resp)
	}
	// The stream is poisoned: the server closes it.
	if _, err := wire.ReadResponse(conn); err == nil {
		t.Fatal("connection stayed open after a protocol error")
	}
	waitFor(t, func() bool {
		return h.reg.Counter("agile_server_protocol_errors_total").Value() == 1
	})
}

// TestSequentialIDReuseIsLegal: the in-flight id set is per request
// lifetime, not per connection lifetime — a client may reuse an id
// once the first use was answered (retries do exactly this).
func TestSequentialIDReuseIsLegal(t *testing.T) {
	h := newHarness(t, 1, Options{}, nil)
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := []byte{4, 3, 2, 1}
	want, _ := algos.CRC32().Exec(in)
	for round := 0; round < 3; round++ {
		if err := wire.WriteRequest(conn, &wire.Request{ID: 42, Fn: algos.CRC32().ID(), Payload: in}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		resp, err := wire.ReadResponse(conn)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != 42 || resp.Status != wire.StatusOK || !bytes.Equal(resp.Payload, want) {
			t.Fatalf("round %d: %+v", round, resp)
		}
	}
}
