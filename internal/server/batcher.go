package server

import (
	"context"
	"sync"
	"time"

	"agilefpga/internal/cluster"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/wire"
)

// batcher coalesces admitted same-function requests from different
// connections into one cluster submission. Each function id has at
// most one open window: the first request opens it and arms a dwell
// timer, later requests join it, and the window flushes when it
// reaches BatchWindow entries or the dwell expires — whichever comes
// first. A flushed window becomes one cluster.SubmitGroup call, so the
// whole cross-client batch rides a single card-queue slot and executes
// as one coalesced run (one configuration check, one batch id).
//
// Dwell is wall-clock by design: it bounds real latency added to real
// network requests, the same domain the server's other timers live in.
// The simulation's virtual clocks are never involved.
type batcher struct {
	cl     *cluster.Cluster
	window int           // flush at this many entries
	dwell  time.Duration // flush this long after the first entry
	reg    *metrics.Registry

	mu   sync.Mutex
	open map[uint16]*batchWin
}

// batchWin is one open window: parallel slices of the joined requests.
type batchWin struct {
	fn      uint16
	timer   *time.Timer
	started time.Time
	ctxs    []context.Context
	inputs  [][]byte
	outs    []chan *cluster.Pending
	flushed bool
}

func newBatcher(cl *cluster.Cluster, window int, dwell time.Duration, reg *metrics.Registry) *batcher {
	return &batcher{cl: cl, window: window, dwell: dwell, reg: reg, open: make(map[uint16]*batchWin)}
}

// submit joins (or opens) the window for req's function and blocks
// until the window flushes — at most dwell — returning the pending
// that carries this request's slot in the group. The request's payload
// is aliased, not copied: it stays valid because the caller holds the
// frame until the pending settles.
func (b *batcher) submit(ctx context.Context, req *wire.Request) *cluster.Pending {
	ch := make(chan *cluster.Pending, 1)
	b.mu.Lock()
	w := b.open[req.Fn]
	if w == nil {
		w = &batchWin{fn: req.Fn, started: time.Now()} //lint:wallclock dwell bounds real client-visible latency at the network edge
		b.open[req.Fn] = w
		w.timer = time.AfterFunc(b.dwell, func() { b.flush(w) }) //lint:wallclock see above
	}
	w.ctxs = append(w.ctxs, ctx)
	w.inputs = append(w.inputs, req.Payload)
	w.outs = append(w.outs, ch)
	full := len(w.outs) >= b.window
	b.mu.Unlock()
	if full {
		b.flush(w)
	}
	return <-ch
}

// flush closes the window and submits it as one group. Idempotent: the
// size trigger and the dwell timer may race, and exactly one wins.
func (b *batcher) flush(w *batchWin) {
	b.mu.Lock()
	if w.flushed {
		b.mu.Unlock()
		return
	}
	w.flushed = true
	if b.open[w.fn] == w {
		delete(b.open, w.fn)
	}
	w.timer.Stop()
	ctxs, inputs, outs := w.ctxs, w.inputs, w.outs
	dwell := time.Since(w.started) //lint:wallclock dwell bounds real client-visible latency at the network edge
	b.mu.Unlock()
	if b.reg != nil {
		b.reg.HistogramWith("agile_net_batch_window_size", metrics.SizeBuckets()).
			Observe(sim.Time(len(outs)))
		b.reg.Counter("agile_net_batch_dwell_ps_total").Add(uint64(dwell.Nanoseconds()) * 1000)
	}
	pendings := b.cl.SubmitGroup(ctxs, w.fn, inputs, false)
	for i, ch := range outs {
		ch <- pendings[i]
	}
}
