package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"agilefpga/internal/cluster"
	"agilefpga/internal/metrics"
	"agilefpga/internal/sim"
	"agilefpga/internal/trace"
	"agilefpga/internal/wire"
)

// batcher coalesces admitted same-function requests from different
// connections into one cluster submission. Each function id has at
// most one open window: the first request opens it and arms a dwell
// timer, later requests join it, and the window flushes when it
// reaches BatchWindow entries or the dwell expires — whichever comes
// first. A flushed window becomes one cluster.SubmitGroup call, so the
// whole cross-client batch rides a single card-queue slot and executes
// as one coalesced run (one configuration check, one batch id).
//
// Dwell is wall-clock by design: it bounds real latency added to real
// network requests, the same domain the server's other timers live in.
// The simulation's virtual clocks are never involved.
type batcher struct {
	cl     *cluster.Cluster
	window int           // flush at this many entries
	dwell  time.Duration // flush this long after the first entry
	reg    *metrics.Registry
	tracer *trace.Tracer

	mu   sync.Mutex
	open map[uint16]*batchWin
}

// batchWin is one open window: parallel slices of the joined requests.
type batchWin struct {
	fn      uint16
	timer   *time.Timer
	started time.Time
	ctxs    []context.Context
	inputs  [][]byte
	outs    []chan *cluster.Pending
	refs    []trace.SpanRef
	flushed bool
}

func newBatcher(cl *cluster.Cluster, window int, dwell time.Duration, reg *metrics.Registry, tracer *trace.Tracer) *batcher {
	return &batcher{cl: cl, window: window, dwell: dwell, reg: reg, tracer: tracer, open: make(map[uint16]*batchWin)}
}

// submit joins (or opens) the window for req's function and blocks
// until the window flushes — at most dwell — returning the pending
// that carries this request's slot in the group. The request's payload
// is aliased, not copied: it stays valid because the caller holds the
// frame until the pending settles.
func (b *batcher) submit(ctx context.Context, req *wire.Request, ref trace.SpanRef) *cluster.Pending {
	ch := make(chan *cluster.Pending, 1)
	b.mu.Lock()
	w := b.open[req.Fn]
	if w == nil {
		w = &batchWin{fn: req.Fn, started: time.Now()} //lint:wallclock dwell bounds real client-visible latency at the network edge
		b.open[req.Fn] = w
		w.timer = time.AfterFunc(b.dwell, func() { b.flush(w) }) //lint:wallclock see above
	}
	w.ctxs = append(w.ctxs, ctx)
	w.inputs = append(w.inputs, req.Payload)
	w.outs = append(w.outs, ch)
	w.refs = append(w.refs, ref)
	full := len(w.outs) >= b.window
	b.mu.Unlock()
	if full {
		b.flush(w)
	}
	return <-ch
}

// flush closes the window and submits it as one group. Idempotent: the
// size trigger and the dwell timer may race, and exactly one wins.
func (b *batcher) flush(w *batchWin) {
	b.mu.Lock()
	if w.flushed {
		b.mu.Unlock()
		return
	}
	w.flushed = true
	if b.open[w.fn] == w {
		delete(b.open, w.fn)
	}
	w.timer.Stop()
	ctxs, inputs, outs, refs := w.ctxs, w.inputs, w.outs, w.refs
	dwell := time.Since(w.started) //lint:wallclock dwell bounds real client-visible latency at the network edge
	b.mu.Unlock()
	if b.reg != nil {
		b.reg.HistogramWith("agile_net_batch_window_size", metrics.SizeBuckets()).
			Observe(sim.Time(len(outs)))
		b.reg.Counter("agile_net_batch_dwell_ps_total").Add(uint64(dwell.Nanoseconds()) * 1000)
	}
	// Link the window to every sampled member's trace: each gets a
	// batch-window span covering the dwell, noting the window size, so
	// cross-client coalescing is visible in each request's own tree.
	note := fmt.Sprintf("size=%d fn=%d", len(outs), w.fn)
	for _, ref := range refs {
		b.tracer.Add(ref, trace.Span{
			Name: "batch-window", Layer: "server", Fn: w.fn, Note: note,
			StartNS: w.started.UnixNano(), DurNS: dwell.Nanoseconds(),
		})
	}
	pendings := b.cl.SubmitGroupTraced(ctxs, w.fn, inputs, false, refs)
	for i, ch := range outs {
		ch <- pendings[i]
	}
}
