package server

import (
	"fmt"
	"os"
	"testing"

	"agilefpga/internal/testutil"
)

// TestMain fails the package if any server goroutine — accept loop,
// connection handler, in-flight executor — survives its test: graceful
// shutdown is part of the server's contract.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.CheckGoroutineLeaks(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
